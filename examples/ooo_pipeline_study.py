"""Out-of-order pipeline study: three simulators, one micro-architecture.

Runs a SPEC95-analogue workload (compiled from minic to SPARC-lite) on

* the conventional cycle-by-cycle simulator (SimpleScalar's role),
* the hand-coded memoizing simulator (FastSim's role), and
* the Facile-compiled fast-forwarding simulator (the paper's artifact),

verifies they are **cycle-exact** with each other, and reports the
speed relationship that Figures 11/12 plot.

Run:  python examples/ooo_pipeline_study.py [workload] [scale]
"""

import sys
import time

from repro.ooo.facile_ooo import run_facile_ooo
from repro.ooo.fastsim import run_fastsim
from repro.ooo.reference import run_reference
from repro.workloads.suite import WORKLOADS, build_cached


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "compress"
    scale = int(sys.argv[2]) if len(sys.argv) > 2 else None
    workload = WORKLOADS[name]
    print(f"Workload: {name} ({workload.description}), "
          f"scale {scale if scale is not None else workload.default_scale}")
    program = build_cached(name, scale)

    def timed(label, fn, *args, **kwargs):
        start = time.perf_counter()
        out = fn(*args, **kwargs)
        return out, time.perf_counter() - start

    ref, t_ref = timed("ref", run_reference, program)
    fast, t_fast = timed("fastsim", run_fastsim, program, memoize=True)
    fast_plain, t_fp = timed("fastsim-", run_fastsim, program, memoize=False)
    facile, t_fac = timed("facile", run_facile_ooo, program, memoized=True)
    facile_plain, t_fcp = timed("facile-", run_facile_ooo, program, memoized=False)

    def sig(stats):
        return (stats.cycles, stats.retired, stats.branches,
                stats.mispredicts, stats.loads, stats.stores)

    assert sig(ref.stats) == sig(fast.stats) == sig(facile.stats)
    assert sig(ref.stats) == sig(fast_plain.stats) == sig(facile_plain.stats)
    stats = ref.stats
    print(f"\nAll five runs are cycle-exact: {stats.cycles:,} cycles, "
          f"{stats.retired:,} instructions (IPC {stats.ipc:.2f})")
    print(f"  branches {stats.branches:,} ({stats.mispredicts:,} mispredicted), "
          f"loads {stats.loads:,}, stores {stats.stores:,}")

    retired = stats.retired
    rows = [
        ("conventional (SimpleScalar role)", t_ref),
        ("hand-coded memoizing (FastSim)", t_fast),
        ("hand-coded, memoization off", t_fp),
        ("Facile-compiled, fast-forwarding", t_fac),
        ("Facile-compiled, slow engine only", t_fcp),
    ]
    print(f"\n{'simulator':<36} {'time':>8} {'kips':>9} {'vs baseline':>12}")
    for label, seconds in rows:
        kips = retired / seconds / 1000
        print(f"{label:<36} {seconds:>7.2f}s {kips:>8.1f}k {t_ref / seconds:>11.2f}x")

    print(f"\nFast-forwarding detail (Facile simulator):")
    print(f"  cycles replayed fast: {facile.run_stats.steps_fast:,} "
          f"/ {facile.run_stats.steps_total:,}")
    print(f"  instructions fast-forwarded: {100 * facile.fast_fraction:.3f}% "
          f"(paper's Table 1 metric)")
    print(f"  action cache: "
          f"{facile.engine.cache.stats.bytes_cumulative / 1024:.0f} KB memoized "
          f"(paper's Table 2 metric)")
    print(f"  verify misses: {facile.engine.cache.stats.misses_verify}")


if __name__ == "__main__":
    main()
