"""Quickstart: the paper's running example, end to end.

Defines the fictitious RISC ISA of Figures 4-6 (``add`` and ``bz``) in
Facile, compiles it into a fast-forwarding simulator, runs a countdown
loop, and shows what the fast-forwarding machinery did: the binding-time
division, recorded actions, replay statistics, and the action-cache miss
the loop exit causes.

Run:  python examples/quickstart.py
"""

from repro.facile import FastForwardEngine, PlainEngine, compile_source

TOY_SIMULATOR = """
// Instruction encodings (paper Figure 4).
token instruction[32] fields
  op 24:31, rl 19:23, r2 14:18, r3 0:4, i 13:13, imm 0:12,
  offset 0:18, fill 5:12;

pat add = op==0x00 && (i==1 || fill==0);
pat bz  = op==0x01;

// Architectural state (paper Figure 5).
val PC : stream;
val nPC : stream;
val R = array(32){0};
val init : stream;

sem add {
  if (i) R[rl] = (R[r2] + imm?sext(13))?u32;
  else   R[rl] = (R[r2] + R[r3])?u32;
};
sem bz {
  if (R[rl] == 0) nPC = PC + offset?sext(19);
};

// The simulator step function (paper Figure 6): one instruction per
// step, keyed by its run-time static argument `pc`.
fun main(pc) {
  PC = pc;
  nPC = PC + 4;
  PC?exec();
  init = nPC;
  stat_retire(1);
}
"""


def encode_add_imm(rl, r2, imm):
    return (0 << 24) | (rl << 19) | (r2 << 14) | (1 << 13) | (imm & 0x1FFF)


def encode_bz(rl, offset):
    return (1 << 24) | (rl << 19) | (offset & 0x7FFFF)


def main() -> None:
    print("Compiling the Figure 4-6 toy simulator...")
    result = compile_source(TOY_SIMULATOR, name="quickstart")
    sim = result.simulator
    summary = sim.division_summary
    print(f"  actions generated:      {summary['n_actions']}")
    print(f"  dynamic result tests:   {summary['n_verify_actions']}")
    print(f"  dynamic variables:      {summary['dynamic_vars']}")
    print(f"  flushed globals:        {summary['flush_globals']}")

    # A countdown loop: r1 = 500; while (r1 != 0) r1 -= 1; then an
    # undecodable word halts the simulator.
    program = [
        encode_add_imm(1, 0, 500),  # 0x1000: r1 = 500
        encode_add_imm(1, 1, -1),  # 0x1004: r1 -= 1
        encode_bz(1, 8),  # 0x1008: if r1 == 0 skip the back-branch
        encode_bz(0, -8),  # 0x100c: goto 0x1004 (r0 is always 0)
        0xFF000000,  # 0x1010: undecodable -> halt
    ]

    def load(ctx):
        for k, word in enumerate(program):
            ctx.mem.write32(0x1000 + 4 * k, word)
        ctx.write_global("init", 0x1000)

    print("\nRunning memoized (fast-forwarding)...")
    ctx = sim.make_context()
    load(ctx)
    engine = FastForwardEngine(sim, ctx)
    stats = engine.run(max_steps=100_000)
    print(f"  steps: {stats.steps_total:,} "
          f"(slow {stats.steps_slow}, fast {stats.steps_fast}, "
          f"recovered {stats.steps_recovered})")
    print(f"  instructions fast-forwarded: {100 * engine.fast_forward_fraction():.2f}%")
    cache = engine.cache.stats
    print(f"  action cache: {cache.entries_created} entries, "
          f"{cache.records_created} records, {cache.bytes_current} bytes")
    print(f"  verify misses (the loop-exit branch): {cache.misses_verify}")
    print(f"  final r1 = {ctx.read_global('R')[1]}")

    print("\nRunning the conventional (plain) build for comparison...")
    ctx2 = sim.make_context()
    load(ctx2)
    PlainEngine(sim, ctx2).run(max_steps=100_000)
    assert ctx.read_global("R") == ctx2.read_global("R")
    print("  architectural state matches the memoized run exactly.")

    print("\nA slice of the generated slow (recording) simulator:")
    for line in sim.source_slow.splitlines()[:16]:
        print("    " + line)


if __name__ == "__main__":
    main()
