"""Functional SPARC-lite simulation through the Facile pipeline.

Assembles a SPARC-lite program (string reversal + checksum), runs it on

* the Python golden-model functional simulator, and
* the Facile-compiled functional simulator (memoized and plain),

and cross-checks every architectural result — the same co-simulation
methodology the test suite uses to validate the compiler.

Run:  python examples/functional_simulation.py
"""

from repro.isa.assembler import assemble
from repro.isa.simulate import run_facile_functional, run_golden

SOURCE = """
        ! Reverse a byte string in place, then checksum it.
        set msg, %o0          ! base
        set 11, %o1           ! length
        clr %o2               ! i = 0
        sub %o1, 1, %o3       ! j = len - 1

swap:   cmp %o2, %o3
        bge sumup
        nop
        ldub [%o0 + %o2], %o4
        ldub [%o0 + %o3], %o5
        stb %o5, [%o0 + %o2]
        stb %o4, [%o0 + %o3]
        add %o2, 1, %o2
        b swap
        sub %o3, 1, %o3       ! delay slot does useful work

sumup:  clr %l0               ! checksum
        clr %l1               ! i
csum:   cmp %l1, %o1
        bge done
        nop
        ldub [%o0 + %l1], %l2
        add %l0, %l2, %l0
        b csum
        add %l1, 1, %l1       ! delay slot again

done:   set result, %l3
        st %l0, [%l3]
        halt

        .data
msg:    .byte 104, 101, 108, 108, 111, 32, 119, 111, 114, 108, 100  ! "hello world"
        .align 4
result: .word 0
"""


def main() -> None:
    program = assemble(SOURCE)
    print("Golden model (Python)...")
    golden = run_golden(program)
    addr = program.symbol("msg")
    reversed_text = bytes(golden.mem.read8(addr + i) for i in range(11)).decode()
    checksum = golden.mem.read32(program.symbol("result"))
    print(f"  reversed: {reversed_text!r}, checksum: {checksum}, "
          f"instructions: {golden.instret:,}")
    assert reversed_text == "dlrow olleh"

    print("\nFacile-compiled functional simulator, fast-forwarding...")
    memo = run_facile_functional(program, memoized=True)
    print(f"  retired: {memo.retired:,} "
          f"(fast steps {memo.stats.steps_fast:,}, slow {memo.stats.steps_slow:,}, "
          f"recovered {memo.stats.steps_recovered:,})")
    print(f"  action cache: {memo.engine.cache.stats.bytes_current:,} bytes, "
          f"{memo.engine.cache.stats.misses_verify} verify misses")

    print("\nFacile-compiled functional simulator, plain build...")
    plain = run_facile_functional(program, memoized=False)
    print(f"  retired: {plain.retired:,}")

    assert memo.retired == plain.retired == golden.instret
    assert memo.regs == plain.regs == golden.regs
    assert memo.ctx.mem.read32(program.symbol("result")) == checksum
    print("\nAll three simulators agree on every architectural result.")


if __name__ == "__main__":
    main()
