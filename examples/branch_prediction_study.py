"""Branch-predictor study on the out-of-order model.

The branch predictor is an *external*, un-memoized substrate (paper
§6.2), so it can be swapped freely without recompiling the simulator.
This example compares four predictors on the branchy ``go`` workload
and a regular loop workload, reporting accuracy and the cycle cost of
mispredictions.

Run:  python examples/branch_prediction_study.py
"""

from repro.ooo.reference import ReferenceOooSim
from repro.uarch.branch import (
    AlwaysNotTaken,
    AlwaysTaken,
    BimodalPredictor,
    FrontEndPredictor,
    GSharePredictor,
    TournamentPredictor,
)
from repro.workloads.suite import WORKLOADS, build_cached

PREDICTORS = {
    "always-taken": lambda: AlwaysTaken(),
    "always-not-taken": lambda: AlwaysNotTaken(),
    "bimodal-2k": lambda: BimodalPredictor(2048),
    "gshare-10": lambda: GSharePredictor(10),
    "tournament": lambda: TournamentPredictor(2048, 10),
}


def study(workload: str, scale: int | None = None) -> None:
    program = build_cached(workload, scale)
    print(f"\nWorkload: {workload} ({WORKLOADS[workload].description})")
    print(f"{'predictor':<18} {'cycles':>10} {'IPC':>6} {'branches':>9} "
          f"{'mispred':>8} {'accuracy':>9}")
    baseline_cycles = None
    for name, make in PREDICTORS.items():
        predictor = FrontEndPredictor(direction=make())
        sim = ReferenceOooSim(program, predictor=predictor)
        sim.run()
        stats = sim.stats
        accuracy = 1 - stats.mispredicts / stats.branches if stats.branches else 1.0
        if baseline_cycles is None:
            baseline_cycles = stats.cycles
        print(f"{name:<18} {stats.cycles:>10,} {stats.ipc:>6.2f} "
              f"{stats.branches:>9,} {stats.mispredicts:>8,} {100 * accuracy:>8.2f}%")


def main() -> None:
    study("go", 1)
    study("mgrid", 1)
    print("\nBetter direction prediction directly buys cycles: the "
          "mispredict penalty is the only difference between rows.")


if __name__ == "__main__":
    main()
