"""Describing a brand-new ISA in Facile: a 16-bit accumulator machine.

The paper's point (§3.1) is that Facile descriptions are concise and
flexible enough to cover ISAs "ranging from RISC to Intel x86".  This
example defines a complete little accumulator architecture — 16-bit
instruction words, an accumulator, one index register, direct-address
memory — writes an assembler for it in ~20 lines of Python, and runs a
multiplication-by-repeated-addition program on the compiled
fast-forwarding simulator.

Run:  python examples/custom_isa.py
"""

from repro.facile import FastForwardEngine, compile_source

ACC16 = """
// 16-bit token: 4-bit opcode, 12-bit operand.
token insn[16] fields opc 12:15, operand 0:11;

pat lda_imm = opc==0;   // A = imm
pat lda_mem = opc==1;   // A = mem[addr]
pat sta     = opc==2;   // mem[addr] = A
pat add_imm = opc==3;   // A += imm
pat add_mem = opc==4;   // A += mem[addr]
pat ldx     = opc==5;   // X = imm
pat dex     = opc==6;   // X -= 1
pat bxnz    = opc==7;   // if (X != 0) goto addr
pat jmp     = opc==8;   // goto addr
pat stop    = opc==15;

val A = 0;
val X = 0;
val PC : stream;
val NEXT : stream;
val init : stream;

sem lda_imm { A = operand; };
sem lda_mem { A = mem_read(operand); };
sem sta     { mem_write(operand, A); };
sem add_imm { A = (A + operand)?u32; };
sem add_mem { A = (A + mem_read(operand))?u32; };
sem ldx     { X = operand; };
sem dex     { X = (X - 1)?u32; };
sem bxnz    { if (X != 0) NEXT = operand; };
sem jmp     { NEXT = operand; };
sem stop    { halt(); };

fun main(pc) {
  PC = pc;
  NEXT = PC + 2;          // 16-bit instructions: 2-byte stride
  PC?exec();
  init = NEXT;
  stat_retire(1);
}
"""

MNEMONICS = {
    "lda#": 0, "lda": 1, "sta": 2, "add#": 3, "add": 4,
    "ldx#": 5, "dex": 6, "bxnz": 7, "jmp": 8, "stop": 15,
}


def assemble_acc16(lines: list[tuple[str, int]], base: int = 0x100) -> list[int]:
    """Tiny assembler: list of (mnemonic, operand) -> 16-bit words."""
    return [(MNEMONICS[m] << 12) | (arg & 0xFFF) for m, arg in lines]


def main() -> None:
    result = compile_source(ACC16, name="acc16")
    sim = result.simulator
    print("Compiled the 16-bit accumulator ISA:")
    print(f"  actions: {sim.division_summary['n_actions']}, "
          f"dynamic result tests: {sim.division_summary['n_verify_actions']}")

    # mem[0x800] = 7 * 13, by repeated addition.
    program = assemble_acc16(
        [
            ("lda#", 0),      # 0x100: A = 0
            ("ldx#", 13),     # 0x102: X = 13
            ("add#", 7),      # 0x104: A += 7      <- loop
            ("dex", 0),       # 0x106: X -= 1
            ("bxnz", 0x104),  # 0x108: if X goto loop
            ("sta", 0x800),   # 0x10a: mem[0x800] = A
            ("stop", 0),      # 0x10c
        ]
    )
    ctx = sim.make_context()
    for k, word in enumerate(program):
        ctx.mem.write16(0x100 + 2 * k, word)
    ctx.write_global("init", 0x100)

    engine = FastForwardEngine(sim, ctx)
    stats = engine.run(max_steps=10_000)
    print(f"\nRan {ctx.retired_total} instructions "
          f"({stats.steps_fast} replayed fast, {stats.steps_slow} recorded).")
    print(f"mem[0x800] = {ctx.mem.read32(0x800)}  (expected {7 * 13})")
    assert ctx.mem.read32(0x800) == 91
    print(f"accumulator A = {ctx.read_global('A')}, X = {ctx.read_global('X')}")
    print(f"loop-exit verify miss recoveries: {stats.steps_recovered}")


if __name__ == "__main__":
    main()
