"""A guided tour of the Facile compiler's phases.

Walks one small simulator through the whole pipeline — parsing,
flattening/inlining, constant folding, binding-time analysis, action
extraction, code generation — showing each phase's output, then runs it
and uses the introspection tools to show what the specialized action
cache recorded and which actions are hot.

Run:  python examples/compiler_tour.py
"""

from repro.facile import FastForwardEngine, compile_source, run_check
from repro.facile.inspect import (
    cache_summary,
    dump_entry,
    explain_check,
    explain_division,
    hot_actions,
    why_dynamic,
)
from repro.facile.inline import flatten_program
from repro.facile.parser import parse
from repro.facile.pprint import format_stmt
from repro.facile.sema import analyze

SOURCE = """
extern cache_sim(1);

val cycles_done = 0;
val R = array(8){0};
val init = 0;

fun effective_addr(base, offset) {
    return (R[base] + offset)?u32;
}

fun main(pc) {
    val addr = effective_addr(pc % 8, 64);
    val latency = cache_sim(addr)?verify;     // dynamic result test
    stat_cycle(latency);
    R[pc % 8] = mem_read(addr);               // dynamic action
    cycles_done = cycles_done + 1;
    if (cycles_done >= 40) halt();
    init = (pc + 1) % 4;
}
"""


def banner(title: str) -> None:
    print(f"\n{'=' * 64}\n{title}\n{'=' * 64}")


def main() -> None:
    banner("1. Parse + semantic analysis")
    program = parse(SOURCE)
    info = analyze(program)
    print(f"functions: {sorted(info.functions)}  externs: {sorted(info.externs)}")
    print(f"globals:   {sorted(info.globals)}")

    banner("2. Flattening (total inlining, side-effect lifting)")
    flat = flatten_program(info)
    print(f"step function parameters: {flat.params}")
    print("flattened body (note: the helper call is gone, the extern")
    print("call is lifted to a temporary):\n")
    print(format_stmt(flat.body)[:1400])

    banner("3. Compile: folding + binding-time analysis + codegen")
    result = compile_source(SOURCE, name="tour")
    print(explain_division(result))

    banner("4. Generated fast engine (the dynamic basic blocks)")
    print(result.simulator.source_fast[:1200])

    banner("5. Run it")

    def cache_sim(addr):
        # One address misses (18 cycles), the rest hit (2) — the
        # paper's §2.2 example latencies.
        return 18 if addr % 256 == 64 else 2

    sim = result.simulator
    ctx = sim.make_context({"cache_sim": cache_sim})
    ctx.write_global("init", 0)
    engine = FastForwardEngine(sim, ctx)
    engine.profile()
    stats = engine.run(max_steps=100)
    print(f"steps: {stats.steps_total} (fast {stats.steps_fast}, "
          f"slow {stats.steps_slow}, recovered {stats.steps_recovered})")
    print(f"simulated cycles: {ctx.cycles}")

    banner("6. The specialized action cache (paper Figure 2/3)")
    print(cache_summary(engine.cache))
    entry = next(iter(engine.cache.entries.values()))
    print("\nfirst entry:")
    print(dump_entry(entry, max_depth=12))

    banner("7. Hot actions")
    print(hot_actions(engine, result, top=5))

    banner("8. Static analysis (repro check)")
    # The tour program steers its loop-exit branch with a *dynamic*
    # global and never pins it with ?verify, so the compiler has to
    # insert the result test implicitly — exactly what FAC202 flags.
    report = run_check(SOURCE, "<tour>")
    print(explain_check(report))
    print("\nwhy is the branch condition dynamic?")
    for line in why_dynamic(result, "cycles_done"):
        print(f"  {line}")

    banner("9. Why-not-native provenance (the IR tier)")
    # The check above already ran the IR stage: every replay body was
    # compiled to stack bytecode and verified (the same verdict gates
    # the C emitter at replay time), and anything pinned to the Python
    # tier is explained.  `cache_sim` is a plain Python extern — not
    # one of the kernel's native dispatch kinds — so FAC411 names it
    # and the `ir` summary shows the lowerable-body census.
    print(f"bodies lowerable to C: {report.ir['bodies_lowerable']}, "
          f"kept on Python: {report.ir['bodies_python']}, "
          f"rejected: {report.ir['bodies_rejected']}")
    for diag in report.sink.sorted():
        if diag.code in ("FAC410", "FAC411"):
            print(f"{diag.code}: {diag.message}")
            for note in diag.notes:
                print(f"   note: {note.message}")


if __name__ == "__main__":
    main()
