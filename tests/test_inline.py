"""Unit tests for flattening/inlining."""

import pytest

from repro.facile import SemanticError
from repro.facile import ast_nodes as A
from repro.facile.inline import flatten_program
from repro.facile.parser import parse
from repro.facile.sema import analyze

HEADER = (
    "token instruction[32] fields op 24:31, rl 19:23, imm 0:12;"
    "pat add = op==0; pat bz = op==1;"
    "val init = 0;"
)


def flat_for(src, header=HEADER):
    info = analyze(parse(header + src))
    return flatten_program(info)


def iter_nodes(node):
    yield node
    for value in vars(node).values():
        if isinstance(value, A.Node):
            yield from iter_nodes(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, A.Node):
                    yield from iter_nodes(item)


def nodes_of(flat, cls):
    return [n for n in iter_nodes(flat.body) if isinstance(n, cls)]


class TestInlining:
    def test_no_calls_remain_after_flattening(self):
        flat = flat_for(
            "fun helper(a) { return a + 1; }"
            "fun main(pc) { init = helper(pc); }"
        )
        for call in nodes_of(flat, A.Call):
            assert call.func not in ("helper",)

    def test_nested_inlining(self):
        flat = flat_for(
            "fun inner(x) { return x * 2; }"
            "fun outer(x) { return inner(x) + 1; }"
            "fun main(pc) { init = outer(pc); }"
        )
        assert not any(c.func in ("inner", "outer") for c in nodes_of(flat, A.Call))

    def test_each_call_site_gets_own_copy(self):
        flat = flat_for(
            "fun h(a) { val t = a + 1; return t; }"
            "fun main(pc) { init = h(pc) + h(pc + 4); }"
        )
        names = [s.name for s in nodes_of(flat, A.ValStmt) if s.name.startswith("t__")]
        assert len(set(names)) == 2  # polyvariance by copying

    def test_params_become_temporaries(self):
        flat = flat_for("fun main(pc) { init = pc; }")
        assert flat.params[0].startswith("pc__")

    def test_locals_alpha_renamed_no_capture(self):
        flat = flat_for(
            "fun h(x) { val v = x; return v; }"
            "fun main(pc) { val v = 10; init = h(v) + v; }"
        )
        val_names = [s.name for s in nodes_of(flat, A.ValStmt)]
        assert len(val_names) == len(set(val_names))


class TestExecExpansion:
    def test_exec_becomes_decode_switch(self):
        flat = flat_for(
            "sem add { init = init + imm; };"
            "fun main(pc) { pc?exec(); }"
        )
        switches = nodes_of(flat, A.Switch)
        assert switches, "exec should expand to a switch"
        attrs = [n for n in iter_nodes(flat.body) if isinstance(n, A.Attr)]
        assert any(a.name == "decode" for a in attrs)
        assert not any(a.name == "exec" for a in attrs)

    def test_field_names_replaced_by_bit_extraction(self):
        flat = flat_for(
            "sem add { init = imm; };"
            "fun main(pc) { pc?exec(); }"
        )
        names = {n.ident for n in iter_nodes(flat.body) if isinstance(n, A.Name)}
        assert "imm" not in names
        bit_attrs = [
            n for n in iter_nodes(flat.body) if isinstance(n, A.Attr) and n.name == "bits"
        ]
        assert bit_attrs

    def test_exec_default_arm_halts(self):
        flat = flat_for("sem add { }; fun main(pc) { pc?exec(); init = pc; }")
        halts = [
            n for n in iter_nodes(flat.body) if isinstance(n, A.Call) and n.func == "halt"
        ]
        assert halts

    def test_user_pat_switch_expands(self):
        flat = flat_for(
            "fun main(pc) { switch (pc) { pat add: init = imm; pat bz: init = 0; } }"
        )
        sw = nodes_of(flat, A.Switch)[0]
        assert all(c.kind in ("int", "default") for c in sw.cases)


class TestSideEffectLifting:
    def test_extern_call_lifted_from_expression(self):
        flat = flat_for(
            "extern cache(1);"
            "fun main(pc) { init = cache(pc) + 1; }",
        )
        # The call must now appear as a ValStmt initializer, not nested
        # inside the Binary.
        for stmt in nodes_of(flat, A.Assign):
            for node in iter_nodes(stmt.value):
                if isinstance(node, A.Call):
                    assert node.func != "cache"

    def test_queue_pop_lifted(self):
        flat = flat_for(
            "val q = queue();"
            "fun main(pc) { q?push_back(pc); init = q?pop_front() + 1; }"
        )
        assigns = nodes_of(flat, A.Assign)
        for stmt in assigns:
            for node in iter_nodes(stmt.value):
                if isinstance(node, A.Attr):
                    assert node.name not in ("pop_front", "pop_back")

    def test_while_with_impure_condition_normalized(self):
        flat = flat_for(
            "extern poll(0);"
            "fun main(pc) { while (poll() != 0) { pc = pc + 1; } init = pc; }"
        )
        loops = nodes_of(flat, A.While)
        assert any(isinstance(w.cond, A.BoolLit) and w.cond.value for w in loops)

    def test_pure_while_condition_kept(self):
        flat = flat_for("fun main(pc) { while (pc < 10) { pc = pc + 1; } init = pc; }")
        loops = nodes_of(flat, A.While)
        assert any(isinstance(w.cond, A.Binary) for w in loops)

    def test_do_while_normalized(self):
        flat = flat_for("fun main(pc) { do { pc = pc + 1; } while (pc < 4); init = pc; }")
        loops = nodes_of(flat, A.While)
        assert loops and isinstance(loops[0].cond, A.BoolLit)

    def test_for_loop_desugared(self):
        flat = flat_for(
            "fun main(pc) { val s = 0;"
            " for (val i = 0; i < 4; i = i + 1) { s = s + i; } init = s; }"
        )
        assert not nodes_of(flat, A.For)
        assert nodes_of(flat, A.While)

    def test_continue_in_for_rejected(self):
        with pytest.raises(SemanticError, match="continue inside 'for'"):
            flat_for(
                "fun main(pc) { for (val i = 0; i < 4; i = i + 1) { continue; } init = 0; }"
            )


class TestReturnElimination:
    def test_no_returns_remain(self):
        flat = flat_for(
            "fun h(a) { if (a) { return 1; } return 2; }"
            "fun main(pc) { init = h(pc); }"
        )
        assert not nodes_of(flat, A.Return)

    def test_early_return_in_loop(self):
        flat = flat_for(
            "fun find(a) { val i = 0; while (i < 8) { if (i == a) { return i; } i = i + 1; } return 99; }"
            "fun main(pc) { init = find(pc); }"
        )
        assert not nodes_of(flat, A.Return)

    def test_void_return(self):
        flat = flat_for(
            "val g = 0;"
            "fun h(a) { if (a) { return; } g = 1; }"
            "fun main(pc) { h(pc); init = g; }"
        )
        assert not nodes_of(flat, A.Return)
