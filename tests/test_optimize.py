"""Unit tests for compile-time constant folding (§6.3 item 5)."""

import pytest
from hypothesis import given, strategies as st

from repro.facile import compile_source
from repro.facile.inline import flatten_program
from repro.facile.optimize import fold_constants
from repro.facile.parser import parse
from repro.facile.sema import analyze
from repro.facile import ast_nodes as A

HEADER = "val init = 0;\n"


def folded_flat(src):
    info = analyze(parse(HEADER + src))
    flat = flatten_program(info)
    n = fold_constants(flat)
    return flat, n


def plain_source(src, fold=True):
    return compile_source(HEADER + src, fold=fold).simulator.source_plain


def run_plain(src, init=0, fold=True):
    from repro.facile import PlainEngine

    result = compile_source(HEADER + src, fold=fold)
    ctx = result.simulator.make_context()
    ctx.write_global("init", init)
    PlainEngine(result.simulator, ctx).run(max_steps=50)
    return ctx


class TestExpressionFolding:
    @pytest.mark.parametrize(
        "expr,value",
        [
            ("2 + 3 * 4", 14),
            ("(10 - 4) / 2", 3),
            ("7 % 3", 1),
            ("-5 / 2", -2),       # C-style truncation
            ("1 << 12", 4096),
            ("0xF0 >> 4", 15),
            ("6 & 3", 2),
            ("6 | 1", 7),
            ("6 ^ 3", 5),
            ("~0 & 0xFF", 255),
            ("!(3 > 4)", 1),
            ("5 == 5", 1),
            ("min(3, 9)", 3),
            ("max(3, 9)", 9),
            ("select(1, 10, 20)", 10),
            ("select(0, 10, 20)", 20),
            ("(0x1FFF)?sext(13)", -1),
            ("(0x1F0)?zext(4)", 0),
            ("(300)?bit(8)", 1),
            ("(0xABCD)?bits(4, 11)", 0xBC),
            ("(0x1FFFFFFFF)?u32", 0xFFFFFFFF),
        ],
    )
    def test_folds_to_literal(self, expr, value):
        flat, n = folded_flat(f"fun main(pc) {{ init = {expr}; }}")
        assert n >= 1
        assign = [s for s in flat.body.stmts if isinstance(s, A.Assign)][-1]
        assert isinstance(assign.value, A.IntLit)
        assert assign.value.value == value

    def test_identity_add_zero(self):
        flat, n = folded_flat("fun main(pc) { init = pc + 0; }")
        assign = [s for s in flat.body.stmts if isinstance(s, A.Assign)][-1]
        assert isinstance(assign.value, A.Name)

    def test_identity_mul_zero(self):
        flat, _ = folded_flat("fun main(pc) { init = pc * 0; }")
        assign = [s for s in flat.body.stmts if isinstance(s, A.Assign)][-1]
        assert isinstance(assign.value, A.IntLit) and assign.value.value == 0

    def test_division_by_zero_not_folded(self):
        # Folding must not crash or hide the runtime error path.
        flat, _ = folded_flat("fun main(pc) { init = pc + (1 / 0) * 0; }")
        # (1/0) stays unfolded; the * 0 identity must not erase it either
        # ... actually x*0 -> 0 is applied; semantics here are that Facile
        # division by a literal zero is undefined, so either is fine —
        # what matters is the compiler doesn't crash.


class TestBranchPruning:
    def test_true_branch_kept(self):
        src = plain_source("fun main(pc) { if (1 < 2) { init = 10; } else { init = 99; } }")
        assert "99" not in src

    def test_false_branch_kept(self):
        src = plain_source("fun main(pc) { if (1 > 2) { init = 99; } else { init = 10; } }")
        assert "99" not in src

    def test_dead_if_removed(self):
        src = plain_source("fun main(pc) { init = pc; if (0) { init = 99; } }")
        assert "99" not in src

    def test_while_false_removed(self):
        src = plain_source("fun main(pc) { init = pc; while (0) { init = 99; } }")
        assert "99" not in src

    def test_constant_switch_selects_arm(self):
        src = plain_source(
            "fun main(pc) { switch (2) { case 1: init = 11; case 2: init = 22;"
            " default: init = 99; } }"
        )
        assert "22" in src and "11" not in src and "99" not in src

    def test_constant_switch_default(self):
        src = plain_source(
            "fun main(pc) { switch (7) { case 1: init = 11; default: init = 44; } }"
        )
        assert "44" in src and "11" not in src


class TestSemanticsPreserved:
    @given(
        a=st.integers(min_value=-1000, max_value=1000),
        b=st.integers(min_value=1, max_value=100),
    )
    def test_property_folding_preserves_arithmetic(self, a, b):
        src = (
            f"val r1 = 0; val r2 = 0;"
            f"fun main(pc) {{"
            f"  r1 = ({a} + pc) * {b} - ({a} / {b});"
            f"  r2 = ({a} % {b}) + (pc << 2);"
            f"  init = pc;"
            f"}}"
        )
        ctx_folded = run_plain(src, init=5, fold=True)
        ctx_unfolded = run_plain(src, init=5, fold=False)
        assert ctx_folded.read_global("r1") == ctx_unfolded.read_global("r1")
        assert ctx_folded.read_global("r2") == ctx_unfolded.read_global("r2")

    def test_folding_keeps_memoized_results(self):
        from .toyisa import compile_toy, countdown_program, run_memoized

        folded = compile_toy()
        unfolded = compile_toy(fold=False)
        ctx_a, _, _ = run_memoized(folded.simulator, countdown_program(9))
        ctx_b, _, _ = run_memoized(unfolded.simulator, countdown_program(9))
        assert ctx_a.read_global("R") == ctx_b.read_global("R")

    def test_break_semantics_preserved_through_splice(self):
        # A constant-true if inside a loop containing break must not
        # change which loop the break exits.
        src = (
            "val r = 0;"
            "fun main(pc) {"
            "  val i = 0;"
            "  while (i < 10) {"
            "    if (1) { if (i == 3) { break; } }"
            "    i = i + 1;"
            "  }"
            "  r = i;"
            "  init = pc;"
            "}"
        )
        ctx = run_plain(src)
        assert ctx.read_global("r") == 3

    def test_fold_counter_reported(self):
        result = compile_source(HEADER + "fun main(pc) { init = 1 + 2; }")
        assert result.n_constant_folds >= 1
        result2 = compile_source(HEADER + "fun main(pc) { init = 1 + 2; }", fold=False)
        assert result2.n_constant_folds == 0
