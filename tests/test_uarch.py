"""Tests for the micro-architecture substrates: caches and predictors."""

import pytest
from hypothesis import given, strategies as st

from repro.uarch.branch import (
    AlwaysNotTaken,
    AlwaysTaken,
    BimodalPredictor,
    BranchTargetBuffer,
    FrontEndPredictor,
    GSharePredictor,
    ReturnAddressStack,
    TournamentPredictor,
)
from repro.uarch.cache import CacheArray, CacheConfig, CacheHierarchy, HierarchyConfig


class TestCacheArray:
    def test_cold_miss_then_hit(self):
        c = CacheArray(CacheConfig(size_bytes=1024, line_bytes=32, assoc=2))
        assert not c.lookup(0x100)
        c.fill(0x100)
        assert c.lookup(0x100)

    def test_same_line_hits(self):
        c = CacheArray(CacheConfig(size_bytes=1024, line_bytes=32, assoc=2))
        c.fill(0x100)
        assert c.lookup(0x11F)  # same 32-byte line
        assert not c.lookup(0x120)  # next line

    def test_lru_eviction(self):
        # 2-way set: fill three conflicting lines, the first goes.
        c = CacheArray(CacheConfig(size_bytes=64, line_bytes=32, assoc=2))
        # Only one set: every line maps to set 0.
        assert c.n_sets == 1
        c.fill(0x000)
        c.fill(0x020)
        c.lookup(0x000)  # touch line 0 -> line 0x020 becomes LRU
        evicted = c.fill(0x040)
        assert evicted == 0x020 >> 5

    def test_size_validation(self):
        with pytest.raises(ValueError):
            CacheArray(CacheConfig(size_bytes=100, line_bytes=32, assoc=3))

    def test_stats(self):
        c = CacheArray(CacheConfig(size_bytes=1024, line_bytes=32, assoc=2))
        c.lookup(0)
        c.fill(0)
        c.lookup(0)
        assert c.stats.accesses == 2
        assert c.stats.hits == 1
        assert c.stats.miss_rate == 0.5


class TestCacheHierarchy:
    def make(self, **kw):
        config = HierarchyConfig(
            l1=CacheConfig("L1D", 1024, 32, 2, 1),
            l2=CacheConfig("L2", 8192, 64, 4, 8),
            memory_latency=40,
            mshr_entries=2,
            **kw,
        )
        return CacheHierarchy(config)

    def test_cold_miss_pays_memory_latency(self):
        h = self.make()
        latency = h.access(0x1000, cycle=0)
        assert latency == 8 + 40 + 1  # l2 + memory + l1 hit

    def test_warm_hit_is_fast(self):
        h = self.make()
        h.access(0x1000, cycle=0)
        assert h.access(0x1000, cycle=100) == 1

    def test_l2_hit_cheaper_than_memory(self):
        h = self.make()
        h.access(0x1000, cycle=0)
        # Evict from tiny L1 with conflicting lines, keep in L2.
        h.access(0x1000 + 1024, cycle=100)
        h.access(0x1000 + 2048, cycle=200)
        latency = h.access(0x1000, cycle=300)
        assert latency == 8 + 1

    def test_mshr_coalescing(self):
        h = self.make()
        first = h.access(0x2000, cycle=0)
        # Access to the same line while the fill is outstanding waits
        # only for the remaining time.
        second = h.access(0x2004, cycle=10)
        assert second < first
        assert h.l1.stats.mshr_coalesced == 1

    def test_mshr_exhaustion_stalls(self):
        h = self.make()
        h.access(0x1000, cycle=0)
        h.access(0x2000, cycle=0)
        h.access(0x3000, cycle=0)  # both MSHRs busy -> stall
        assert h.l1.stats.mshr_stalls >= 1

    def test_store_latency_buffered(self):
        h = self.make()
        latency = h.access(0x1000, cycle=0, is_store=True)
        assert latency == h.config.store_latency
        # The store allocated the line: a subsequent load hits.
        assert h.access(0x1000, cycle=100) == 1

    def test_determinism(self):
        seq = [(0x1000 + 64 * i, i * 3) for i in range(50)]
        out1 = [self_access for self_access in self._run(seq)]
        out2 = [self_access for self_access in self._run(seq)]
        assert out1 == out2

    def _run(self, seq):
        h = self.make()
        return [h.access(a, c) for a, c in seq]

    @given(st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=200))
    def test_property_latency_bounds(self, addrs):
        # Model a consumer that waits out each access (cycle advances by
        # the returned latency): stalls then stay bounded by the MSHR
        # fill times.
        h = self.make()
        lo = h.config.store_latency
        fill = h.config.l2.hit_latency + h.config.memory_latency
        hi = 1 + fill * (h.config.mshr_entries + 1)
        cycle = 0
        for addr in addrs:
            latency = h.access(addr, cycle=cycle)
            assert lo <= latency <= hi
            cycle += latency


class TestPrefetcher:
    def make(self, prefetch):
        config = HierarchyConfig(
            l1=CacheConfig("L1D", 4096, 32, 2, 1),
            l2=CacheConfig("L2", 65536, 64, 4, 8),
            memory_latency=40,
            mshr_entries=8,
            prefetch_next_line=prefetch,
        )
        return CacheHierarchy(config)

    def test_sequential_stream_benefits(self):
        """Striding through lines: with prefetch, every other line is
        already in flight or resident."""
        def total(prefetch):
            h = self.make(prefetch)
            cycle = 0
            lat_sum = 0
            for i in range(64):
                lat = h.access(0x4000 + 32 * i, cycle)
                lat_sum += lat
                cycle += lat
            return lat_sum

        assert total(True) < total(False)

    def test_prefetch_counted(self):
        h = self.make(True)
        h.access(0x4000, 0)
        assert h.l1.stats.prefetches == 1

    def test_random_pattern_unhurt_correctnesswise(self):
        """Prefetching must never change which accesses are demand
        hits and misses counted for a given sequence shape."""
        h = self.make(True)
        for i in range(32):
            h.access((i * 7919 * 32) & 0xFFFF, i * 50)
        stats = h.l1.stats
        assert stats.accesses == 32
        assert stats.hits + stats.misses == 32

    def test_prefetch_off_by_default(self):
        h = CacheHierarchy()
        h.access(0x1000, 0)
        assert h.l1.stats.prefetches == 0


class TestBimodal:
    def test_learns_taken(self):
        p = BimodalPredictor(64)
        for _ in range(4):
            p.update(0x40, True)
        assert p.predict(0x40) is True

    def test_learns_not_taken(self):
        p = BimodalPredictor(64)
        for _ in range(4):
            p.update(0x40, False)
        assert p.predict(0x40) is False

    def test_hysteresis(self):
        p = BimodalPredictor(64)
        for _ in range(4):
            p.update(0x40, True)
        p.update(0x40, False)  # one not-taken shouldn't flip a saturated counter
        assert p.predict(0x40) is True

    def test_aliasing_by_index(self):
        p = BimodalPredictor(16)
        for _ in range(4):
            p.update(0x0, True)
        # 16 entries * 4 bytes apart: pc 0x40 aliases to index 0.
        assert p.predict(16 * 4) is True

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            BimodalPredictor(100)


class TestGShare:
    def test_learns_alternating_pattern(self):
        p = GSharePredictor(history_bits=6)
        # Pattern T,N,T,N... at one pc: gshare can learn it, bimodal can't.
        for i in range(200):
            taken = bool(i % 2)
            p.update(0x80, taken)
        correct = 0
        for i in range(200, 240):
            taken = bool(i % 2)
            if p.predict(0x80) == taken:
                correct += 1
            p.update(0x80, taken)
        assert correct >= 36  # near-perfect once warmed up

    def test_bimodal_fails_alternating_pattern(self):
        p = BimodalPredictor(64)
        correct = 0
        for i in range(200):
            taken = bool(i % 2)
            if p.predict(0x80) == taken:
                correct += 1
            p.update(0x80, taken)
        assert correct <= 120  # roughly chance


class TestTournament:
    def _accuracy(self, predictor, pattern, warmup=150, measure=100):
        correct = 0
        for i in range(warmup + measure):
            taken = pattern(i)
            if i >= warmup and predictor.predict(0x80) == taken:
                correct += 1
            predictor.update(0x80, taken)
        return correct / measure

    def test_beats_bimodal_on_history_pattern(self):
        pattern = lambda i: bool(i % 2)
        tournament = self._accuracy(TournamentPredictor(64, 6), pattern)
        bimodal = self._accuracy(BimodalPredictor(64), pattern)
        assert tournament > bimodal
        assert tournament > 0.9

    def test_matches_bimodal_on_biased_pattern(self):
        pattern = lambda i: True
        tournament = self._accuracy(TournamentPredictor(64, 6), pattern)
        assert tournament == 1.0

    def test_chooser_migrates_toward_gshare(self):
        p = TournamentPredictor(64, 6)
        for i in range(300):
            p.update(0x80, bool(i % 2))
        assert p.chooser[p._index(0x80)] >= 2

    def test_chooser_migrates_toward_bimodal(self):
        p = TournamentPredictor(64, 4)
        # A pattern longer than gshare's 4-bit history that is mostly
        # taken: bimodal nails it, gshare aliases.
        import itertools

        stream = itertools.cycle([True] * 30 + [False])
        for _ in range(600):
            p.update(0x80, next(stream))
        acc = self._accuracy(p, lambda i: True, warmup=0, measure=50)
        assert acc == 1.0


class TestBTBAndRAS:
    def test_btb_miss_then_hit(self):
        btb = BranchTargetBuffer(64)
        assert btb.predict(0x100) is None
        btb.update(0x100, 0x2000)
        assert btb.predict(0x100) == 0x2000

    def test_btb_tag_mismatch(self):
        btb = BranchTargetBuffer(64)
        btb.update(0x100, 0x2000)
        aliased = 0x100 + 64 * 4
        assert btb.predict(aliased) is None

    def test_ras_lifo(self):
        ras = ReturnAddressStack(4)
        ras.push(1)
        ras.push(2)
        assert ras.pop() == 2
        assert ras.pop() == 1
        assert ras.pop() is None

    def test_ras_bounded(self):
        ras = ReturnAddressStack(2)
        for i in range(5):
            ras.push(i)
        assert ras.pop() == 4
        assert ras.pop() == 3
        assert ras.pop() is None


class TestFrontEnd:
    def test_resolve_branch_tracks_accuracy(self):
        fe = FrontEndPredictor(direction=AlwaysTaken())
        assert fe.resolve_branch(0x10, True)
        assert not fe.resolve_branch(0x10, False)
        assert fe.stats.predictions == 2
        assert fe.stats.correct == 1

    def test_indirect_via_btb(self):
        fe = FrontEndPredictor()
        assert not fe.resolve_indirect(0x10, 0x500, is_return=False)  # cold
        assert fe.resolve_indirect(0x10, 0x500, is_return=False)  # learned

    def test_return_via_ras(self):
        fe = FrontEndPredictor()
        fe.note_call(0x104)
        assert fe.resolve_indirect(0x200, 0x104, is_return=True)

    def test_always_not_taken_baseline(self):
        p = AlwaysNotTaken()
        assert p.predict(0) is False
        p.update(0, True)
        assert p.predict(0) is False
