"""Unit tests for code generation: emitted source structure, extern
calls, the ?verify dynamic-result pin, and the paper's cache-simulator
interaction pattern (§2.2)."""

import pytest

from repro.facile import FastForwardEngine, PlainEngine, compile_source
from repro.facile.codegen import idiv, imod

HEADER = "val init = 0;\n"


def build(src, **kwargs):
    return compile_source(HEADER + src, **kwargs)


def run_engine(result, externs=None, init=0, max_steps=100, memoized=True, cache_limit=None):
    sim = result.simulator
    ctx = sim.make_context(externs or {})
    ctx.write_global("init", init)
    if memoized:
        engine = FastForwardEngine(sim, ctx, cache_limit_bytes=cache_limit)
    else:
        engine = PlainEngine(sim, ctx)
    stats = engine.run(max_steps=max_steps)
    return ctx, engine, stats


class TestHelpers:
    def test_idiv_truncates_toward_zero(self):
        assert idiv(7, 2) == 3
        assert idiv(-7, 2) == -3
        assert idiv(7, -2) == -3
        assert idiv(-7, -2) == 3

    def test_imod_sign_follows_dividend(self):
        assert imod(7, 3) == 1
        assert imod(-7, 3) == -1
        assert imod(7, -3) == 1


class TestEmittedStructure:
    def test_rt_static_code_absent_from_fast_engine(self):
        result = build(
            "val out = 0;"
            "fun main(pc) {"
            "  val x = pc * 2 + 1;"      # rt-static: must not appear in fast
            "  out = mem_read(x);"        # dynamic action
            "  init = pc + 4;"
            "}"
        )
        fast = result.simulator.source_fast
        assert "* 2" not in fast  # the rt-static multiply was skipped
        assert "read32" in fast

    def test_placeholders_recorded_for_static_subexpressions(self):
        result = build(
            "val out = 0;"
            "fun main(pc) { out = mem_read(pc * 8 + 64); init = pc + 4; }"
        )
        assert "_ph0" in result.simulator.source_slow
        assert "_ph0" in result.simulator.source_fast

    def test_literal_constants_inline_not_placeholder(self):
        result = build(
            "val out = 0;"
            "fun main(pc) { out = mem_read(pc) + 3; init = pc + 4; }"
        )
        # The literal 3 appears inline in the fast action.
        assert "+ 3)" in result.simulator.source_fast

    def test_flush_actions_emitted_for_rt_static_globals(self):
        result = build("val PC = 0; fun main(pc) { PC = pc; init = pc + 4; }")
        summary = result.simulator.division_summary
        assert "PC" in summary["flush_globals"]

    def test_plain_build_has_no_memoizer_calls(self):
        result = build("fun main(pc) { init = pc + 4; }")
        assert "_M." not in result.simulator.source_plain

    def test_with_plain_false_skips_plain_build(self):
        result = build("fun main(pc) { init = pc + 4; }", with_plain=False)
        assert result.simulator.plain_main is None

    def test_action_numbers_dense(self):
        result = build(
            "val out = 0;"
            "fun main(pc) { out = mem_read(pc); out = out + 1; init = pc + 4; }"
        )
        n = result.simulator.division_summary["n_actions"]
        assert len(result.simulator.fast_actions) == n


class TestExterns:
    def test_extern_called_with_arguments(self):
        calls = []

        def probe(a, b):
            calls.append((a, b))
            return a + b

        result = build(
            "extern probe(2); val out = 0;"
            "fun main(pc) { out = probe(pc, 7); init = pc + 4; halt(); }"
        )
        ctx, _, _ = run_engine(result, {"probe": probe}, init=100)
        assert calls == [(100, 7)]
        assert ctx.read_global("out") == 107

    def test_unbound_extern_raises(self):
        result = build(
            "extern probe(1); val out = 0;"
            "fun main(pc) { out = probe(pc); init = pc; halt(); }"
        )
        from repro.facile import SimulationError

        with pytest.raises(SimulationError, match="not bound"):
            run_engine(result, {}, init=0)

    def test_extern_not_reexecuted_during_recovery(self):
        """The paper: dynamic result tests 'retrieve the dynamic result
        previously calculated by the fast simulator' rather than
        re-running it — so an extern with side effects is called exactly
        once per simulated step, never twice for one step."""
        calls = []

        def counter(step):
            calls.append(step)
            return len(calls)

        # The verify on the extern result changes value every step,
        # forcing a verify miss + recovery on each revisit of the key.
        result = build(
            "extern counter(1); val out = 0;"
            "fun main(pc) {"
            "  val v = counter(pc)?verify;"
            "  out = v;"
            "  if (v >= 5) { halt(); }"
            "  init = pc;"  # same key every step -> replay, miss, recover
            "}"
        )
        ctx, engine, stats = run_engine(result, {"counter": counter}, init=0, max_steps=50)
        assert ctx.halted
        # One extern call per simulated step, despite recovery happening
        # on every step after the first.
        assert len(calls) == stats.steps_total
        assert stats.steps_recovered >= 1


class TestVerifyPin:
    def test_verify_value_flows_into_key(self):
        """The paper's §2.2 pattern: a cache-simulator latency is pinned
        by a dynamic result test and steers rt-static simulation."""
        latencies = iter([18, 18, 18, 2, 18])

        def cache_sim(addr):
            return next(latencies)

        result = build(
            "extern cache_sim(1); val total = 0;"
            "fun main(pc) {"
            "  val lat = cache_sim(pc)?verify;"
            "  stat_cycle(lat);"
            "  val n = pc + 1;"
            "  if (n >= 5) { halt(); }"
            "  init = n;"
            "}"
        )
        ctx, engine, _ = run_engine(result, {"cache_sim": cache_sim}, init=0)
        assert ctx.cycles == 18 + 18 + 18 + 2 + 18

    def test_verify_on_rt_static_value_needs_no_action(self):
        result = build("fun main(pc) { val x = (pc + 1)?verify; init = x; halt(); }")
        assert result.simulator.division_summary["n_verify_actions"] == 0

    def test_same_verify_value_replays_without_miss(self):
        def cache_sim(addr):
            return 18  # always the same latency

        result = build(
            "extern cache_sim(1);"
            "fun main(pc) {"
            "  val lat = cache_sim(pc)?verify;"
            "  stat_cycle(lat);"
            "  init = pc;"  # same key forever: pure replay
            "}"
        )
        ctx, engine, stats = run_engine(result, {"cache_sim": cache_sim}, init=0, max_steps=20)
        assert engine.cache.stats.misses_verify == 0
        assert stats.steps_fast == 19
        assert ctx.cycles == 18 * 20

    def test_changed_verify_value_misses_and_recovers(self):
        values = [7] * 3 + [9] * 3

        def probe(_):
            return values.pop(0)

        result = build(
            "extern probe(1); val seen = 0; val steps = 0;"
            "fun main(pc) {"
            "  val v = probe(pc)?verify;"
            "  seen = seen * 10 + v;"
            "  steps = steps + 1;"
            "  if (steps >= 6) { halt(); }"
            "  init = pc;"
            "}"
        )
        ctx, engine, stats = run_engine(result, {"probe": probe}, init=0, max_steps=10)
        assert ctx.halted
        assert engine.cache.stats.misses_verify >= 1
        assert ctx.read_global("seen") == 777999


class TestControlFlowCodegen:
    def test_rt_static_loop_unrolls_into_actions(self):
        result = build(
            "val out = 0;"
            "fun main(pc) {"
            "  val i = 0;"
            "  while (i < 4) { out = out + mem_read(pc + i * 4); i = i + 1; }"
            "  init = pc; halt();"
            "}"
        )
        ctx, engine, _ = run_engine(result, init=0x100)
        # 4 loads recorded as separate dynamic actions in one entry.
        assert engine.cache.stats.records_created >= 4

    def test_switch_on_rt_static_value(self):
        result = build(
            "val out = 0;"
            "fun main(pc) {"
            "  switch (pc) { case 1: out = 10; case 2, 3: out = 20; default: out = 30; }"
            "  init = pc; halt();"
            "}"
        )
        for init, expected in [(1, 10), (2, 20), (3, 20), (9, 30)]:
            ctx, _, _ = run_engine(result, init=init)
            assert ctx.read_global("out") == expected

    def test_dynamic_branch_both_paths_recorded(self):
        mem_values = {0: 0, 1: 1}

        result = build(
            "val out = 0; val steps = 0;"
            "fun main(pc) {"
            "  if (mem_read(pc) == 0) { out = out + 1; } else { out = out + 100; }"
            "  steps = steps + 1;"
            "  if (steps >= 4) { halt(); }"
            "  init = pc;"
            "}"
        )
        sim = result.simulator
        ctx = sim.make_context()
        ctx.write_global("init", 0)
        engine = FastForwardEngine(sim, ctx)
        # Alternate the memory value so both branch directions occur.
        ctx.mem.write32(0, 0)
        engine.run(max_steps=1)
        ctx.mem.write32(0, 1)
        ctx.halted = False
        engine.run(max_steps=1)
        ctx.mem.write32(0, 0)
        ctx.halted = False
        engine.run(max_steps=2)
        assert ctx.read_global("out") == 1 + 100 + 1 + 1
