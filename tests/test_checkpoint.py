"""Tests for simulation-state checkpointing (snapshot/restore)."""

import pytest

from repro.facile import FastForwardEngine

from .toyisa import compile_toy, countdown_program, load_program


@pytest.fixture(scope="module")
def toy():
    return compile_toy().simulator


class TestSnapshotRestore:
    def test_restore_rewinds_registers(self, toy):
        ctx = toy.make_context()
        load_program(ctx, countdown_program(20))
        engine = FastForwardEngine(toy, ctx)
        engine.run(max_steps=5)
        snap = ctx.snapshot()
        r_at_snap = list(ctx.read_global("R"))
        engine.run(max_steps=10)
        assert list(ctx.read_global("R")) != r_at_snap
        ctx.restore(snap)
        assert list(ctx.read_global("R")) == r_at_snap

    def test_resume_from_snapshot_completes_identically(self, toy):
        # Run A: straight through.
        ctx_a = toy.make_context()
        load_program(ctx_a, countdown_program(15))
        FastForwardEngine(toy, ctx_a).run(max_steps=10_000)

        # Run B: snapshot mid-flight, keep going, rewind, re-run.
        ctx_b = toy.make_context()
        load_program(ctx_b, countdown_program(15))
        engine_b = FastForwardEngine(toy, ctx_b)
        engine_b.run(max_steps=7)
        snap = ctx_b.snapshot()
        engine_b.run(max_steps=3)
        ctx_b.restore(snap)
        engine_b.run(max_steps=10_000)
        assert list(ctx_a.read_global("R")) == list(ctx_b.read_global("R"))
        assert ctx_a.retired_total == ctx_b.retired_total

    def test_memory_restored(self, toy):
        ctx = toy.make_context()
        load_program(ctx, countdown_program(5))
        snap = ctx.snapshot()
        ctx.mem.write32(0x9000, 1234)
        ctx.restore(snap)
        assert ctx.mem.read32(0x9000) == 0

    def test_counters_restored(self, toy):
        ctx = toy.make_context()
        load_program(ctx, countdown_program(8))
        engine = FastForwardEngine(toy, ctx)
        engine.run(max_steps=4)
        snap = ctx.snapshot()
        retired = ctx.retired_total
        engine.run(max_steps=4)
        ctx.restore(snap)
        assert ctx.retired_total == retired

    def test_snapshot_is_isolated(self, toy):
        """Mutating live state must not corrupt an existing snapshot."""
        ctx = toy.make_context()
        load_program(ctx, countdown_program(5))
        snap = ctx.snapshot()
        ctx.read_global("R")[5] = 777
        ctx.restore(snap)
        assert ctx.read_global("R")[5] == 0
