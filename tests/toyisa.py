"""Shared toy-ISA fixtures for the Facile compiler tests.

This is the paper's running example (Figures 4-7): a fictitious RISC
ISA with ``add`` (register or immediate forms) and ``bz`` (branch if
zero), plus the trivial one-instruction-per-step ``main`` of Figure 6.
"""

from __future__ import annotations

from repro.facile import FastForwardEngine, PlainEngine, compile_source

TOY_SOURCE = """
token instruction[32] fields
  op 24:31, rl 19:23, r2 14:18, r3 0:4, i 13:13, imm 0:12,
  offset 0:18, fill 5:12;

pat add = op==0x00 && (i==1 || fill==0);
pat bz  = op==0x01;

val PC : stream;
val nPC : stream;
val R = array(32){0};
val init : stream;

sem add {
  if (i) R[rl] = (R[r2] + imm?sext(13))?u32;
  else   R[rl] = (R[r2] + R[r3])?u32;
};
sem bz {
  if (R[rl] == 0) nPC = PC + offset?sext(19);
};

fun main(pc) {
  PC = pc;
  nPC = PC + 4;
  PC?exec();
  init = nPC;
  stat_retire(1);
}
"""

BASE = 0x1000
HALT_WORD = 0xFF000000  # no pattern matches op 0xFF -> default arm halts


def add_imm(rl: int, r2: int, imm: int) -> int:
    return (0 << 24) | (rl << 19) | (r2 << 14) | (1 << 13) | (imm & 0x1FFF)


def add_reg(rl: int, r2: int, r3: int) -> int:
    return (0 << 24) | (rl << 19) | (r2 << 14) | r3


def bz(rl: int, offset: int) -> int:
    return (1 << 24) | (rl << 19) | (offset & 0x7FFFF)


def compile_toy(**kwargs):
    return compile_source(TOY_SOURCE, name="toy", **kwargs)


def load_program(ctx, words: list[int], base: int = BASE, entry: int | None = None) -> None:
    for i, word in enumerate(words):
        ctx.mem.write32(base + 4 * i, word)
    ctx.write_global("init", entry if entry is not None else base)


def run_memoized(sim, words: list[int], max_steps: int = 10_000, **engine_kwargs):
    ctx = sim.make_context()
    load_program(ctx, words)
    engine = FastForwardEngine(sim, ctx, **engine_kwargs)
    stats = engine.run(max_steps=max_steps)
    return ctx, engine, stats


def run_plain(sim, words: list[int], max_steps: int = 10_000):
    ctx = sim.make_context()
    load_program(ctx, words)
    engine = PlainEngine(sim, ctx)
    stats = engine.run(max_steps=max_steps)
    return ctx, engine, stats


def countdown_program(n: int) -> list[int]:
    """r1 = n; while (r1 != 0) r1 -= 1; halt."""
    return [
        add_imm(1, 0, n),        # 0x1000: r1 = n
        add_imm(1, 1, 0x1FFF),   # 0x1004: r1 -= 1
        bz(1, 8),                # 0x1008: if r1 == 0 goto 0x1010
        bz(0, -8),               # 0x100c: goto 0x1004 (r0 is always 0)
        HALT_WORD,               # 0x1010
    ]
