"""Property-based co-simulation over random SPARC-lite programs.

Hypothesis generates random (but always-terminating) programs; every
simulator in the repo must agree on the architectural outcome, and the
three pipeline models must agree on cycle counts.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import sparclite as S
from repro.isa.assembler import assemble
from repro.isa.funcsim import FunctionalSim
from repro.isa.simulate import run_facile_functional
from repro.ooo.facile_ooo import run_facile_ooo
from repro.ooo.fastsim import run_fastsim
from repro.ooo.reference import run_reference

ARITH = ["add", "sub", "and", "or", "xor", "addcc", "subcc", "sll", "srl", "umul"]
BRANCHES = ["be", "bne", "bg", "bl", "bge", "ble", "bgu", "bcs", "bpos", "bneg"]


@st.composite
def random_programs(draw):
    """Straight-line code with forward branches only: always terminates.

    Every generated instruction carries its own label ``I<k>``;
    branches target a strictly later label, so control only moves
    forward.  A scratch region in .data absorbs all loads/stores, and
    %o0 holds its base (set outside the branch-reachable region).
    """
    n = draw(st.integers(min_value=4, max_value=30))
    body: list[str] = []
    # %r8 (%o0) is reserved as the scratch-memory base so stores can
    # never stray into the text segment (target text must stay static,
    # paper footnote 3).
    dest_regs = [r for r in range(1, 16) if r != 8]
    for i in range(n):
        kind = draw(st.sampled_from(["arith", "arith_imm", "mem", "branch", "cmp"]))
        rd = draw(st.sampled_from(dest_regs))
        rs1 = draw(st.integers(0, 15))
        rs2 = draw(st.integers(0, 15))
        if kind == "arith":
            op = draw(st.sampled_from(ARITH))
            body.append(f"I{i}:    {op} %r{rs1}, %r{rs2}, %r{rd}")
        elif kind == "arith_imm":
            op = draw(st.sampled_from(ARITH))
            imm = draw(st.integers(0, 255))
            body.append(f"I{i}:    {op} %r{rs1}, {imm}, %r{rd}")
        elif kind == "mem":
            offset = draw(st.integers(0, 15)) * 4
            if draw(st.booleans()):
                body.append(f"I{i}:    st %r{rd}, [%o0 + {offset}]")
            else:
                body.append(f"I{i}:    ld [%o0 + {offset}], %r{rd}")
        elif kind == "cmp":
            body.append(f"I{i}:    cmp %r{rs1}, %r{rs2}")
        else:
            target = draw(st.integers(min_value=i + 1, max_value=n))
            op = draw(st.sampled_from(BRANCHES))
            annul = ",a" if draw(st.booleans()) else ""
            body.append(f"I{i}:    {op}{annul} I{target}")
            body.append("        nop")  # delay slot
    lines = ["        set scratch, %o0"] + body
    lines.append(f"I{n}:    halt")
    lines.append("        .data")
    lines.append("scratch: .space 512")
    return "\n".join(lines) + "\n"


def golden(src):
    sim = FunctionalSim.for_program(assemble(src))
    sim.run(100_000)
    assert sim.halted
    return sim


class TestRandomProgramEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(random_programs())
    def test_facile_functional_matches_golden(self, src):
        g = golden(src)
        program = assemble(src)
        memo = run_facile_functional(program, memoized=True, max_steps=100_000)
        assert memo.halted
        assert memo.regs == g.regs
        assert memo.retired == g.instret

    @settings(max_examples=25, deadline=None)
    @given(random_programs())
    def test_ooo_simulators_cycle_exact(self, src):
        program = assemble(src)
        ref = run_reference(program, max_cycles=200_000)
        fast = run_fastsim(program, max_cycles=200_000)
        facile = run_facile_ooo(program, max_steps=200_000)
        assert ref.stats.cycles == fast.stats.cycles == facile.stats.cycles
        assert ref.stats.retired == fast.stats.retired == facile.stats.retired
        assert ref.stats.mispredicts == fast.stats.mispredicts == facile.stats.mispredicts

    @settings(max_examples=25, deadline=None)
    @given(random_programs())
    def test_ooo_architectural_state_matches_golden(self, src):
        g = golden(src)
        facile = run_facile_ooo(assemble(src), max_steps=200_000)
        assert list(facile.ctx.read_global("R")) == g.regs
