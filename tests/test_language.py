"""End-to-end tests of Facile language features through the full
compile-and-run pipeline (both engines)."""

import pytest

from repro.facile import FastForwardEngine, PlainEngine, compile_source

HEADER = "val init = 0;\n"


def run_both(src, steps=6, init=0, externs=None, header=HEADER):
    """Run `steps` simulator steps on both engines; returns both ctxs."""
    result = compile_source(header + src)
    sim = result.simulator
    outs = []
    for engine_cls in (FastForwardEngine, PlainEngine):
        ctx = sim.make_context(dict(externs or {}))
        ctx.write_global("init", init)
        engine_cls(sim, ctx).run(max_steps=steps)
        outs.append(ctx)
    return outs


def run_value(src, global_name, **kwargs):
    memo, plain = run_both(src, **kwargs)
    a = memo.read_global(global_name)
    b = plain.read_global(global_name)
    assert a == b, f"engines disagree on {global_name}: {a} vs {b}"
    return a


class TestArithmeticSemantics:
    def test_division_truncates_like_c(self):
        src = "val r = 0; fun main(pc) { r = (0 - 7) / 2; init = pc; }"
        assert run_value(src, "r", steps=1) == -3

    def test_modulo_sign(self):
        src = "val r = 0; fun main(pc) { r = (0 - 7) % 3; init = pc; }"
        assert run_value(src, "r", steps=1) == -1

    def test_shift_operators(self):
        src = "val r = 0; fun main(pc) { r = (1 << 10) >> 3; init = pc; }"
        assert run_value(src, "r", steps=1) == 128

    def test_u32_wrap(self):
        src = "val r = 0; fun main(pc) { r = (0xFFFFFFFF + 1)?u32; init = pc; }"
        assert run_value(src, "r", steps=1) == 0

    def test_s32_reinterpret(self):
        src = "val r = 0; fun main(pc) { r = (0xFFFFFFFF)?s32; init = pc; }"
        assert run_value(src, "r", steps=1) == -1

    def test_logical_ops_produce_01(self):
        src = "val r = 0; fun main(pc) { r = (5 && 7) + (0 || 9) * 10; init = pc; }"
        assert run_value(src, "r", steps=1) == 11


class TestQueues:
    def test_queue_fifo_roundtrip(self):
        src = """
        val r = 0;
        fun main(pc) {
            val q = queue();
            q?push_back(1);
            q?push_back(2);
            q?push_front(3);
            r = q?pop_front() * 100 + q?pop_front() * 10 + q?pop_front();
            init = pc;
        }
        """
        assert run_value(src, "r", steps=1) == 312

    def test_queue_size_and_empty(self):
        src = """
        val r = 0;
        fun main(pc) {
            val q = queue();
            val e0 = q?empty();
            q?push_back(7);
            q?push_back(8);
            r = e0 * 100 + q?size() * 10 + q?empty();
            init = pc;
        }
        """
        assert run_value(src, "r", steps=1) == 120

    def test_dynamic_queue_global(self):
        """A queue holding dynamic values persists across steps and is
        maintained correctly during replay."""
        src = """
        val q = queue();
        val r = 0;
        fun main(pc) {
            q?push_back(mem_read(pc));
            if (q?size() > 3) {
                r = r + q?pop_front();
            }
            init = pc;
        }
        """
        def setup(ctx):
            ctx.mem.write32(0, 5)

        result = compile_source(HEADER.replace("val init = 0;", "") + "val init = 0;" + src)
        sim = result.simulator
        values = []
        for engine_cls in (FastForwardEngine, PlainEngine):
            ctx = sim.make_context()
            setup(ctx)
            engine_cls(sim, ctx).run(max_steps=10)
            values.append(ctx.read_global("r"))
        assert values[0] == values[1] == 5 * 7  # pops on steps 3..9


class TestArraysAndKeys:
    def test_rt_static_array_local(self):
        src = """
        val r = 0;
        fun main(pc) {
            val a = array(5){3};
            a[2] = a[2] + pc;
            val i = 0;
            val s = 0;
            while (i < 5) { s = s + a[i]; i = i + 1; }
            r = s;
            init = pc;
        }
        """
        assert run_value(src, "r", steps=1, init=10) == 3 * 5 + 10

    def test_array_copy_is_independent(self):
        src = """
        val r = 0;
        fun main(pc) {
            val a = array(3){1};
            val b = a?copy();
            b[0] = 99;
            r = a[0] * 100 + b[0];
            init = pc;
        }
        """
        assert run_value(src, "r", steps=1) == 199

    def test_multi_parameter_key(self):
        """main with several parameters: init holds a tuple key."""
        src = """
        val total = 0;
        fun main(a, b) {
            total = total + a * 10 + b;
            init = (a + 1, b + 2);
            if (a >= 3) halt();
        }
        """
        result = compile_source("val init = 0;\n" + src)
        sim = result.simulator
        for engine_cls in (FastForwardEngine, PlainEngine):
            ctx = sim.make_context()
            ctx.write_global("init", (0, 0))
            engine_cls(sim, ctx).run(max_steps=50)
            # steps: (0,0) (1,2) (2,4) (3,6) -> halt
            assert ctx.read_global("total") == 0 + 12 + 24 + 36

    def test_array_in_key_replays(self):
        """An rt-static array as a main parameter round-trips through
        freeze/thaw and drives memoization."""
        src = """
        val sum = 0;
        fun main(arr, n) {
            val i = 0;
            val s = 0;
            while (i < 3) { s = s + arr[i]; i = i + 1; }
            sum = sum + s;
            arr[n % 3] = arr[n % 3] + 1;
            if (n >= 5) halt();
            init = (arr, n + 1);
        }
        """
        result = compile_source("val init = 0;\n" + src)
        sim = result.simulator
        totals = []
        for engine_cls in (FastForwardEngine, PlainEngine):
            ctx = sim.make_context()
            ctx.write_global("init", ((0, 0, 0), 0))
            engine_cls(sim, ctx).run(max_steps=20)
            totals.append(ctx.read_global("sum"))
        assert totals[0] == totals[1]


class TestControlFlow:
    def test_do_while(self):
        src = """
        val r = 0;
        fun main(pc) {
            val i = 0;
            do { r = r + 2; i = i + 1; } while (i < 4);
            init = pc;
        }
        """
        assert run_value(src, "r", steps=1) == 8

    def test_for_loop(self):
        src = """
        val r = 0;
        fun main(pc) {
            for (val i = 0; i < 5; i = i + 1) { r = r + i; }
            init = pc;
        }
        """
        assert run_value(src, "r", steps=1) == 10

    def test_nested_break_continue(self):
        src = """
        val r = 0;
        fun main(pc) {
            val i = 0;
            while (i < 6) {
                i = i + 1;
                if (i == 2) { continue; }
                if (i == 5) { break; }
                r = r + i;
            }
            init = pc;
        }
        """
        assert run_value(src, "r", steps=1) == 1 + 3 + 4

    def test_compound_assignment(self):
        src = """
        val r = 0;
        fun main(pc) {
            val x = 10;
            x += 5; x -= 2; x *= 3; x /= 2; x %= 12;
            r = x;
            init = pc;
        }
        """
        assert run_value(src, "r", steps=1) == ((10 + 5 - 2) * 3 // 2) % 12

    def test_dynamic_loop_bound(self):
        """A loop whose trip count is dynamic unrolls into per-iteration
        recorded paths and replays correctly when the count repeats."""
        src = """
        val r = 0;
        fun main(pc) {
            val n = mem_read(0);
            val i = 0;
            while (i < n) { i = i + 1; }
            r = r + i;
            init = pc;
        }
        """
        result = compile_source(HEADER + src)
        sim = result.simulator
        ctx = sim.make_context()
        ctx.mem.write32(0, 4)
        engine = FastForwardEngine(sim, ctx)
        engine.run(max_steps=3)
        assert ctx.read_global("r") == 12
        # Change the bound: replay must miss and recover correctly.
        ctx.mem.write32(0, 2)
        ctx.halted = False
        engine.run(max_steps=2)
        assert ctx.read_global("r") == 12 + 4
        assert engine.cache.stats.misses_verify >= 1


class TestFunctions:
    def test_helper_functions_compose(self):
        src = """
        val r = 0;
        fun square(x) { return x * x; }
        fun sum_squares(n) {
            val s = 0;
            val i = 1;
            while (i <= n) { s = s + square(i); i = i + 1; }
            return s;
        }
        fun main(pc) { r = sum_squares(4); init = pc; }
        """
        assert run_value(src, "r", steps=1) == 1 + 4 + 9 + 16

    def test_early_return_in_helper(self):
        src = """
        val r = 0;
        fun clamp(x) {
            if (x > 10) { return 10; }
            if (x < 0) { return 0; }
            return x;
        }
        fun main(pc) { r = clamp(15) * 100 + clamp(0 - 5) * 10 + clamp(7); init = pc; }
        """
        assert run_value(src, "r", steps=1) == 1007

    def test_void_helper_with_side_effects(self):
        src = """
        val log = array(4){0};
        val n = 0;
        fun note(v) { log[n] = v; n = n + 1; }
        fun main(pc) {
            note(pc);
            note(pc * 2);
            init = pc;
        }
        """
        memo, plain = run_both(src, steps=2, init=3)
        assert list(memo.read_global("log")) == list(plain.read_global("log"))
