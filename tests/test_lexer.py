"""Unit tests for the Facile tokenizer."""

import pytest

from repro.facile.lexer import TokKind, tokenize
from repro.facile.source import LexError, SourceBuffer


def toks(text):
    return tokenize(SourceBuffer(text))


def kinds(text):
    return [t.kind for t in toks(text)[:-1]]


def texts(text):
    return [t.text for t in toks(text)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        result = toks("")
        assert len(result) == 1
        assert result[0].kind is TokKind.EOF

    def test_identifier(self):
        (tok,) = toks("foo_bar9")[:-1]
        assert tok.kind is TokKind.IDENT
        assert tok.text == "foo_bar9"

    def test_keywords_are_distinguished(self):
        assert kinds("token pat sem val fun if while") == [TokKind.KEYWORD] * 7

    def test_ident_starting_with_keyword_prefix(self):
        (tok,) = toks("tokenize")[:-1]
        assert tok.kind is TokKind.IDENT

    def test_decimal_int(self):
        (tok,) = toks("1234")[:-1]
        assert tok.kind is TokKind.INT
        assert tok.value == 1234

    def test_hex_int(self):
        (tok,) = toks("0x5b000")[:-1]
        assert tok.value == 0x5B000

    def test_hex_uppercase_prefix(self):
        (tok,) = toks("0XFF")[:-1]
        assert tok.value == 255

    def test_zero(self):
        (tok,) = toks("0")[:-1]
        assert tok.value == 0

    def test_string_literal(self):
        (tok,) = toks('"hello"')[:-1]
        assert tok.kind is TokKind.STRING
        assert tok.value == "hello"

    def test_string_escapes(self):
        (tok,) = toks(r'"a\nb\t\"q\""')[:-1]
        assert tok.value == 'a\nb\t"q"'


class TestOperators:
    def test_multichar_operators_maximal_munch(self):
        assert texts("a <<= b") == ["a", "<<=", "b"]
        assert texts("a << b") == ["a", "<<", "b"]
        assert texts("a <= b") == ["a", "<=", "b"]
        assert texts("a < b") == ["a", "<", "b"]

    def test_logical_operators(self):
        assert texts("a && b || !c") == ["a", "&&", "b", "||", "!", "c"]

    def test_question_mark_attribute_sigil(self):
        assert texts("imm?sext(32)") == ["imm", "?", "sext", "(", "32", ")"]

    def test_all_compound_assignments(self):
        for op in ["+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="]:
            assert texts(f"x {op} 1") == ["x", op, "1"]


class TestComments:
    def test_line_comment(self):
        assert texts("a // comment\nb") == ["a", "b"]

    def test_line_comment_at_eof(self):
        assert texts("a // no newline") == ["a"]

    def test_block_comment(self):
        assert texts("a /* stuff\nmore */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError, match="unterminated"):
            toks("a /* oops")


class TestErrorsAndSpans:
    def test_stray_character(self):
        with pytest.raises(LexError, match="unexpected character"):
            toks("a @ b")

    def test_number_followed_by_letter(self):
        with pytest.raises(LexError):
            toks("12abc")

    def test_hex_without_digits(self):
        with pytest.raises(LexError, match="no digits"):
            toks("0x;")

    def test_unterminated_string(self):
        with pytest.raises(LexError, match="unterminated string"):
            toks('"abc')

    def test_span_line_and_column(self):
        result = toks("a\n  b")
        b = result[1]
        assert (b.span.line, b.span.column) == (2, 3)

    def test_error_message_carries_location(self):
        with pytest.raises(LexError, match=":2:"):
            toks("ok\n   @")


class TestPaperExamples:
    def test_figure4_token_decl_tokenizes(self):
        text = "token instruction[32] fields op 24:31, rl 19:23;"
        result = texts(text)
        assert result[0] == "token"
        assert "24" in result and ":" in result

    def test_figure4_pattern(self):
        result = texts("pat add = op==0x00 && (i==1 || fill==0);")
        assert "==" in result and "&&" in result and "||" in result
