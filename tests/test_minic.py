"""Tests for the minic compiler (workload substrate)."""

import pytest

from repro.isa.funcsim import FunctionalSim
from repro.workloads.minic import MinicError, compile_minic, read_out_buffer


def run(src, max_steps=5_000_000):
    program = compile_minic(src)
    sim = FunctionalSim.for_program(program)
    sim.run(max_steps)
    assert sim.halted, "program did not halt"
    return read_out_buffer(sim.mem), sim


def outs(src):
    return run(src)[0]


def expr_val(expr):
    return outs(f"int main() {{ out({expr}); return 0; }}")[0]


class TestExpressions:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("1 + 2 * 3", 7),
            ("(1 + 2) * 3", 9),
            ("10 - 3 - 2", 5),
            ("100 / 7", 14),
            ("100 % 7", 2),
            ("5 < 6", 1),
            ("6 < 5", 0),
            ("5 == 5", 1),
            ("5 != 5", 0),
            ("3 <= 3", 1),
            ("4 >= 5", 0),
            ("1 && 2", 1),
            ("0 && 1", 0),
            ("0 || 0", 0),
            ("0 || 7", 1),
            ("!0", 1),
            ("!9", 0),
            ("-5 + 10", 5),
            ("6 & 3", 2),
            ("6 | 3", 7),
            ("6 ^ 3", 5),
            ("1 << 10", 1024),
            ("1024 >> 3", 128),
            ("2 + 3 << 1", 10),  # shift binds looser than +
        ],
    )
    def test_expression_values(self, expr, expected):
        assert expr_val(expr) == expected

    def test_signed_comparison(self):
        # -1 < 1 must hold under signed semantics.
        assert outs("int main() { int a = 0 - 1; out(a < 1); return 0; }") == [1]


class TestStatements:
    def test_locals_and_assignment(self):
        assert outs("int main() { int x = 3; x = x + 4; out(x); return 0; }") == [7]

    def test_globals(self):
        assert outs("int g = 41; int main() { g = g + 1; out(g); return 0; }") == [42]

    def test_global_array_init_list(self):
        src = "int t[4] = {10, 20, 30}; int main() { out(t[0]+t[1]+t[2]+t[3]); return 0; }"
        assert outs(src) == [60]

    def test_if_else_chains(self):
        src = """
        int classify(int x) {
            if (x < 10) { return 1; }
            else if (x < 100) { return 2; }
            else { return 3; }
        }
        int main() { out(classify(5)); out(classify(50)); out(classify(500)); return 0; }
        """
        assert outs(src) == [1, 2, 3]

    def test_while(self):
        src = "int main() { int i = 0; int s = 0; while (i < 10) { s = s + i; i = i + 1; } out(s); return 0; }"
        assert outs(src) == [45]

    def test_for(self):
        src = "int main() { int s = 0; int i; for (i = 1; i <= 5; i = i + 1) { s = s * 10 + i; } out(s); return 0; }"
        assert outs(src) == [12345]

    def test_nested_loops(self):
        src = """
        int main() {
            int total = 0;
            int i;
            for (i = 0; i < 4; i = i + 1) {
                int j;
                for (j = 0; j < 4; j = j + 1) {
                    if (i == j) { total = total + 1; }
                }
            }
            out(total);
            return 0;
        }
        """
        assert outs(src) == [4]

    def test_break(self):
        src = """
        int main() {
            int i;
            int s = 0;
            for (i = 0; i < 100; i = i + 1) {
                if (i == 5) { break; }
                s = s + i;
            }
            out(s); out(i);
            return 0;
        }
        """
        assert outs(src) == [10, 5]

    def test_continue_in_for_runs_step(self):
        src = """
        int main() {
            int i;
            int s = 0;
            for (i = 0; i < 6; i = i + 1) {
                if (i % 2 == 0) { continue; }
                s = s + i;
            }
            out(s);
            return 0;
        }
        """
        assert outs(src) == [1 + 3 + 5]

    def test_continue_in_while(self):
        src = """
        int main() {
            int i = 0;
            int s = 0;
            while (i < 8) {
                i = i + 1;
                if (i == 3) { continue; }
                s = s + i;
            }
            out(s);
            return 0;
        }
        """
        assert outs(src) == [sum(range(1, 9)) - 3]

    def test_break_targets_innermost_loop(self):
        src = """
        int main() {
            int total = 0;
            int i;
            for (i = 0; i < 3; i = i + 1) {
                int j;
                for (j = 0; j < 10; j = j + 1) {
                    if (j == 2) { break; }
                    total = total + 1;
                }
            }
            out(total);
            return 0;
        }
        """
        assert outs(src) == [6]

    def test_break_outside_loop_rejected(self):
        with pytest.raises(MinicError, match="break outside"):
            compile_minic("int main() { break; return 0; }")

    def test_continue_outside_loop_rejected(self):
        with pytest.raises(MinicError, match="continue outside"):
            compile_minic("int main() { continue; return 0; }")

    def test_array_read_write(self):
        src = """
        int a[8];
        int main() {
            int i;
            for (i = 0; i < 8; i = i + 1) { a[i] = i * i; }
            out(a[3] + a[7]);
            return 0;
        }
        """
        assert outs(src) == [9 + 49]


class TestFunctions:
    def test_call_with_args(self):
        src = "int add3(int a, int b, int c) { return a + b + c; } int main() { out(add3(1, 2, 3)); return 0; }"
        assert outs(src) == [6]

    def test_recursion(self):
        src = """
        int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
        int main() { out(fact(7)); return 0; }
        """
        assert outs(src) == [5040]

    def test_mutual_recursion(self):
        src = """
        int is_odd(int n);
        int is_even(int n) { if (n == 0) { return 1; } return is_odd(n - 1); }
        int is_odd(int n) { if (n == 0) { return 0; } return is_even(n - 1); }
        int main() { out(is_even(10)); out(is_odd(7)); return 0; }
        """
        # Forward declarations are not supported; declare via definition order.
        src = """
        int is_even(int n) {
            int r = 1;
            while (n > 0) { n = n - 1; r = 1 - r; }
            return r;
        }
        int main() { out(is_even(10)); out(is_even(7)); return 0; }
        """
        assert outs(src) == [1, 0]

    def test_six_arguments(self):
        src = (
            "int f(int a, int b, int c, int d, int e, int g)"
            " { return a + b * 10 + c * 100 + d * 1000 + e * 10000 + g * 100000; }"
            "int main() { out(f(1, 2, 3, 4, 5, 6)); return 0; }"
        )
        assert outs(src) == [654321]

    def test_call_preserves_caller_stack_values(self):
        # The caller's pushed operand must survive a nested call.
        src = """
        int id(int x) { return x; }
        int main() { out(100 + id(23)); return 0; }
        """
        assert outs(src) == [123]

    def test_deep_call_chain(self):
        src = """
        int f0(int x) { return x + 1; }
        int f1(int x) { return f0(x) + 1; }
        int f2(int x) { return f1(x) + 1; }
        int f3(int x) { return f2(x) + 1; }
        int main() { out(f3(0)); return 0; }
        """
        assert outs(src) == [4]


class TestErrors:
    def test_undefined_variable(self):
        with pytest.raises(MinicError, match="undefined variable"):
            compile_minic("int main() { out(nope); return 0; }")

    def test_undefined_function(self):
        with pytest.raises(MinicError, match="undefined function"):
            compile_minic("int main() { nope(); return 0; }")

    def test_wrong_arity(self):
        with pytest.raises(MinicError, match="arity"):
            compile_minic("int f(int a) { return a; } int main() { f(1, 2); return 0; }")

    def test_missing_main(self):
        with pytest.raises(MinicError, match="main"):
            compile_minic("int f() { return 0; }")

    def test_too_many_params(self):
        params = ", ".join(f"int p{i}" for i in range(7))
        with pytest.raises(MinicError, match="too many"):
            compile_minic(f"int f({params}) {{ return 0; }} int main() {{ return 0; }}")

    def test_bad_character(self):
        with pytest.raises(MinicError, match="bad character"):
            compile_minic("int main() { out(@); }")
