"""Unit and property tests for the fast-forwarding runtime."""

import pytest
from hypothesis import given, strategies as st

from repro.facile.runtime import (
    ActionCache,
    ActionRecord,
    EndRecord,
    Memoizer,
    Memory,
    SimulationError,
    VerifyRecord,
    freeze,
    thaw,
    value_bytes,
)


# -- freeze / thaw -------------------------------------------------------------


class TestFreezeThaw:
    def test_freeze_list(self):
        assert freeze([1, [2, 3]]) == (1, (2, 3))

    def test_freeze_is_hashable(self):
        hash(freeze([1, [2, [3, 4]], 5]))

    def test_thaw_inverts_freeze_for_lists(self):
        original = [1, [2, 3], [4, [5]]]
        assert thaw(freeze(original)) == original

    def test_scalars_pass_through(self):
        assert freeze(7) == 7
        assert thaw(7) == 7

    nested = st.recursive(
        st.integers(),
        lambda children: st.lists(children, max_size=4),
        max_leaves=16,
    )

    @given(nested)
    def test_property_roundtrip(self, value):
        assert thaw(freeze(value)) == value

    @given(nested)
    def test_property_frozen_hashable(self, value):
        hash(freeze(value))


class TestValueBytes:
    def test_scalar(self):
        assert value_bytes(5) == 8

    def test_tuple_counts_elements(self):
        assert value_bytes((1, 2, 3)) == 8 + 24

    def test_nested(self):
        assert value_bytes(((1, 2), 3)) == 8 + (8 + 16) + 8


# -- memory ---------------------------------------------------------------------


class TestMemory:
    def test_read_default_zero(self):
        assert Memory().read32(0x1234) == 0

    def test_write_read_roundtrip(self):
        m = Memory()
        m.write32(0x1000, 0xDEADBEEF)
        assert m.read32(0x1000) == 0xDEADBEEF

    def test_little_endian_bytes(self):
        m = Memory()
        m.write32(0, 0x11223344)
        assert [m.read8(i) for i in range(4)] == [0x44, 0x33, 0x22, 0x11]

    def test_cross_page_access(self):
        m = Memory()
        addr = Memory.PAGE_SIZE - 2
        m.write32(addr, 0xCAFEBABE)
        assert m.read32(addr) == 0xCAFEBABE

    def test_write8_masks(self):
        m = Memory()
        m.write8(0, 0x1FF)
        assert m.read8(0) == 0xFF

    def test_load_bytes(self):
        m = Memory()
        m.load_bytes(0x2000, b"\x01\x02\x03\x04")
        assert m.read32(0x2000) == 0x04030201

    def test_read16(self):
        m = Memory()
        m.write16(10, 0xABCD)
        assert m.read16(10) == 0xABCD

    @given(st.integers(min_value=0, max_value=1 << 20), st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_property_write_read32(self, addr, value):
        m = Memory()
        m.write32(addr, value)
        assert m.read32(addr) == value


# -- action cache -----------------------------------------------------------------


class TestActionCache:
    def test_lookup_missing(self):
        cache = ActionCache()
        assert cache.lookup((1,)) is None
        assert cache.stats.lookups == 1

    def test_incomplete_entry_not_returned(self):
        cache = ActionCache()
        cache.create_entry((1,))
        assert cache.lookup((1,)) is None

    def test_complete_entry_found(self):
        cache = ActionCache()
        entry = cache.create_entry((1,))
        entry.complete = True
        assert cache.lookup((1,)) is entry
        assert cache.stats.hits == 1

    def test_byte_accounting_grows(self):
        cache = ActionCache()
        before = cache.stats.bytes_current
        cache.create_entry((1, 2, 3))
        assert cache.stats.bytes_current > before

    def test_limit_clears_cache(self):
        cache = ActionCache(limit_bytes=50)
        entry = cache.create_entry((1,) * 32)
        entry.complete = True
        cleared, evicted = cache.maybe_reclaim()
        assert cleared and not evicted
        assert cache.lookup((1,) * 32) is None
        assert cache.stats.clears == 1
        assert cache.stats.bytes_current == 0

    def test_cumulative_bytes_survive_clear(self):
        cache = ActionCache(limit_bytes=50)
        cache.create_entry((1,) * 32)
        total = cache.stats.bytes_cumulative
        cache.maybe_reclaim()
        assert cache.stats.bytes_cumulative == total

    def test_no_limit_never_clears(self):
        cache = ActionCache()
        cache.create_entry((1,) * 1000)
        assert cache.maybe_reclaim() is None
        assert cache.stats.clears == 0


# -- memoizer recording protocol ----------------------------------------------------


def record_simple_chain(cache, key=(1,), nums=(0, 1, 2)):
    m = Memoizer(cache)
    m.begin_step(key)
    for num in nums:
        m.action(num, (num * 10,))
    m.end_step()
    return m


class TestMemoizerRecording:
    def test_records_linked_in_order(self):
        cache = ActionCache()
        record_simple_chain(cache)
        entry = cache.lookup((1,))
        rec = entry.first
        seen = []
        while not rec.is_end:
            seen.append(rec.num)
            rec = rec.next
        assert seen == [0, 1, 2]

    def test_entry_completed(self):
        cache = ActionCache()
        record_simple_chain(cache)
        assert cache.lookup((1,)).complete

    def test_verify_creates_successor_map(self):
        cache = ActionCache()
        m = Memoizer(cache)
        m.begin_step((2,))
        m.begin_verify(5, ())
        m.note_verify(1)
        m.action(6, ())
        m.end_step()
        entry = cache.lookup((2,))
        vrec = entry.first
        assert isinstance(vrec, VerifyRecord)
        assert 1 in vrec.succ
        assert vrec.succ[1].num == 6

    def test_end_while_recovering_is_error(self):
        cache = ActionCache()
        m = Memoizer(cache)
        entry = cache.create_entry((3,))
        entry.first = EndRecord()
        m.begin_recovery(entry, [0])
        with pytest.raises(SimulationError):
            m.end_step()


class TestMemoizerRecovery:
    def build_branchy_entry(self, cache):
        """Record: action 0; verify 1 (value 0); action 2; end."""
        m = Memoizer(cache)
        m.begin_step((9,))
        m.action(0, ())
        m.begin_verify(1, ())
        m.note_verify(0)
        m.action(2, ())
        m.end_step()
        return cache.lookup((9,))

    def test_recovery_replays_action_numbers(self):
        cache = ActionCache()
        entry = self.build_branchy_entry(cache)
        m = Memoizer(cache)
        # The fast engine saw verify 1 produce value 7 (a miss).
        m.begin_recovery(entry, [7])
        m.action(0, ())  # verified against recorded chain
        m.begin_verify(1, ())
        value = m.pop_verify()
        assert value == 7
        assert m.recover is False
        # Now recording resumes on the new successor branch.
        m.action(3, ())
        m.end_step()
        vrec = entry.first.next
        assert set(vrec.succ) == {0, 7}
        assert vrec.succ[7].num == 3

    def test_recovery_desync_detected(self):
        cache = ActionCache()
        entry = self.build_branchy_entry(cache)
        m = Memoizer(cache)
        m.begin_recovery(entry, [7])
        with pytest.raises(SimulationError, match="desync"):
            m.action(99, ())

    def test_recovery_through_known_verify(self):
        cache = ActionCache()
        entry = self.build_branchy_entry(cache)
        m = Memoizer(cache)
        # Two results: first follows the recorded 0-branch, second (the
        # miss) is a new value at a later verify... simulate by walking
        # the recorded 0-branch then missing at its end is not possible
        # here, so instead verify the first pop follows succ correctly.
        m.begin_recovery(entry, [0, 5])
        m.action(0, ())
        m.begin_verify(1, ())
        assert m.pop_verify() == 0
        assert m.recover is True  # still recovering (one more result)

    def test_pop_verify_underflow(self):
        cache = ActionCache()
        entry = self.build_branchy_entry(cache)
        m = Memoizer(cache)
        m.begin_recovery(entry, [])
        with pytest.raises(SimulationError, match="underflow"):
            m.pop_verify()


class TestRecordTypes:
    def test_action_record_flags(self):
        rec = ActionRecord(1, ())
        assert not rec.is_verify and not rec.is_end

    def test_verify_record_flags(self):
        rec = VerifyRecord(1, ())
        assert rec.is_verify and not rec.is_end

    def test_end_record_flags(self):
        rec = EndRecord()
        assert rec.is_end and not rec.is_verify
