"""Concurrent snapshot-store access: racing writers never tear a file.

The fleet runs many worker processes against one content-addressed
store, so the snapshot layer's atomicity claim (pid-suffixed tmp +
``os.replace``; see ``repro.facile.snapshot._atomic_write``) is load-
bearing: a reader racing any number of writers must observe either a
complete old file, a complete new file, or no file — never a torn mix
that shows up as a checksum/truncation rejection.

Two levels are exercised with real processes (``spawn``, like the
fleet): raw writers hammering ``_atomic_write`` with alternating valid
blobs while the parent loads continuously, and two full simulator runs
racing save/load through one shared ``--cache-dir`` store.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.facile.runtime import ActionCache
from repro.facile.snapshot import (
    _atomic_write,
    engine_fingerprint,
    load_action_cache,
)
from repro.isa.simulate import compiled_functional_sim, run_facile_functional
from repro.workloads.suite import build_cached

_CTX = multiprocessing.get_context("spawn")


def _writer_main(dest: str, blob_a: bytes, blob_b: bytes, rounds: int) -> None:
    """Alternate two complete snapshot blobs onto one store path."""
    for i in range(rounds):
        _atomic_write(dest, blob_a if i % 2 == 0 else blob_b)


def _race_run_main(cache_dir: str, out_path: str) -> None:
    """One full simulator run against a shared store; results to JSON."""
    program = build_cached("compress", 1)
    r = run_facile_functional(program, cache_dir=cache_dir)
    json.dump(
        {
            "retired": r.retired,
            "regs": list(r.regs),
            "rejected": r.engine.cache.stats.snapshot_rejected,
            "load_hit": r.engine.snapshot_load.hit
            if r.engine.snapshot_load is not None else None,
        },
        open(out_path, "w"),
    )


def _fresh_cache() -> ActionCache:
    return ActionCache(flat_pack=True)


@pytest.mark.slow
class TestAtomicWriteRace:
    def test_reader_never_sees_torn_file(self, tmp_path):
        program = build_cached("compress", 1)
        fp = engine_fingerprint(compiled_functional_sim().simulator, program)

        # Two complete, loadable blobs of the same fingerprint with
        # different content (the second run's cache is budget-bound).
        p_a, p_b = tmp_path / "a.facsnap", tmp_path / "b.facsnap"
        run_facile_functional(program, cache_save=str(p_a))
        run_facile_functional(
            program, cache_limit_bytes=1_000_000,
            cache_evict="generational", cache_save=str(p_b),
        )
        blob_a, blob_b = p_a.read_bytes(), p_b.read_bytes()
        entries_ok = set()
        for blob, path in ((blob_a, p_a), (blob_b, p_b)):
            info = load_action_cache(_fresh_cache(), path, fp)
            assert info.hit, info.reason
            entries_ok.add(info.entries)

        dest = str(tmp_path / "store" / "racy.facsnap")
        writers = [
            _CTX.Process(
                target=_writer_main, args=(dest, blob_a, blob_b, 30)
            )
            for _ in range(2)
        ]
        for w in writers:
            w.start()
        hits = 0
        outcomes = set()
        try:
            while any(w.is_alive() for w in writers) or hits == 0:
                cache = _fresh_cache()
                info = load_action_cache(cache, dest, fp)
                if info.hit:
                    hits += 1
                    assert cache.stats.snapshot_rejected == 0
                    # a complete old or complete new file, nothing else
                    assert info.entries in entries_ok, info.entries
                else:
                    # before the first rename lands the file is absent;
                    # it must never be present-but-torn
                    assert info.reason == "missing", info.reason
                outcomes.add(info.hit)
        finally:
            for w in writers:
                w.join(60)
                assert w.exitcode == 0
        assert hits > 0

    def test_failed_write_leaves_no_tmp(self, tmp_path, monkeypatch):
        dest = tmp_path / "x.facsnap"

        class Boom(Exception):
            pass

        def boom(fd):
            raise Boom()

        # Simulate a writer dying mid-write: fsync raises, the tmp file
        # must be cleaned up and the destination never appear.
        monkeypatch.setattr(os, "fsync", boom)
        with pytest.raises(Boom):
            _atomic_write(dest, b"payload")
        assert not dest.exists()
        assert list(tmp_path.iterdir()) == []  # tmp was cleaned up


@pytest.mark.slow
class TestSharedStoreRace:
    def test_two_processes_one_store(self, tmp_path):
        """Two full runs race save/load through one --cache-dir store:
        both must simulate identically and reject nothing."""
        store = tmp_path / "store"
        outs = [tmp_path / f"out{i}.json" for i in range(2)]
        procs = [
            _CTX.Process(
                target=_race_run_main, args=(str(store), str(out))
            )
            for out in outs
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(300)
            assert p.exitcode == 0
        results = [json.load(open(out)) for out in outs]
        assert results[0]["retired"] == results[1]["retired"]
        assert results[0]["regs"] == results[1]["regs"]
        for r in results:
            assert r["rejected"] == 0
        # The store holds complete snapshot(s); a fresh serial run
        # warm-starts from whoever won the race.
        follow = run_facile_functional(
            build_cached("compress", 1), cache_dir=str(store)
        )
        assert follow.engine.snapshot_load.hit
        assert follow.retired == results[0]["retired"]
        assert follow.engine.cache.stats.snapshot_rejected == 0
