"""Fleet tests: parallel grid runs, serial parity, and degraded cells.

The acceptance contract from the service PR: a fleet run always yields
a *complete* report — parallel cells bit-identical to serial goldens,
crashed cells requeued once, unrecoverable cells marked failed with the
rest of the grid intact.
"""

from __future__ import annotations

import json

import pytest

from repro.serve.fleet import FLEET_SIMULATORS, FleetCell, grid_cells, run_fleet


class TestGrid:
    def test_default_scales_from_suite(self):
        cells = grid_cells(workloads=["compress", "li"],
                           simulators=["facile"])
        from repro.workloads.suite import WORKLOADS

        scales = {c.workload: c.scale for c in cells}
        assert scales == {
            "compress": WORKLOADS["compress"].test_scale,
            "li": WORKLOADS["li"].test_scale,
        }

    def test_full_grid_shape(self):
        from repro.workloads.suite import WORKLOADS

        cells = grid_cells()
        assert len(cells) == len(WORKLOADS) * len(FLEET_SIMULATORS)

    def test_rejects_unknowns(self):
        with pytest.raises(ValueError):
            grid_cells(workloads=["spice"])
        with pytest.raises(ValueError):
            grid_cells(workloads=["compress"], simulators=["qemu"])


@pytest.mark.slow
class TestRunFleet:
    def test_parity_vs_serial_goldens(self, tmp_path):
        report = run_fleet(
            workloads=["compress", "go"],
            simulators=["facile", "fastsim"],
            workers=2,
            cache_dir=tmp_path,
            verify=True,
        )
        assert len(report.cells) == 4
        assert all(c.status == "ok" for c in report.cells)
        assert report.verified and report.parity_ok
        for cell in report.cells:
            assert cell.parity is True
            assert cell.cycles == cell.serial_cycles
        assert report.hmean_used == report.hmean_total == 4
        assert report.hmean_kips > 0
        assert report.serial_seconds > 0 and report.wall_seconds > 0

    def test_crashed_cell_requeued_and_completes(self, tmp_path):
        flag = tmp_path / "crash-once"
        flag.touch()
        report = run_fleet(
            workloads=["compress"],
            simulators=["facile", "fastsim"],
            workers=2,
            cache_dir=tmp_path,
            verify=True,
            _sabotage={("compress", "facile"): str(flag)},
        )
        cell = next(c for c in report.cells if c.simulator == "facile")
        assert cell.status == "ok"
        assert cell.requeues == 1
        assert cell.parity is True
        assert report.pool_stats["crashes"] == 1

    def test_dead_cell_marked_failed_report_complete(self, tmp_path):
        report = run_fleet(
            workloads=["compress"],
            simulators=["facile", "fastsim"],
            workers=2,
            cache_dir=tmp_path,
            verify=True,
            _sabotage={("compress", "fastsim"): "always"},
        )
        bad = next(c for c in report.cells if c.simulator == "fastsim")
        good = next(c for c in report.cells if c.simulator == "facile")
        assert bad.status == "failed"
        assert "crash" in bad.reason
        assert bad.parity is None  # nothing to verify
        assert good.status == "ok" and good.parity is True
        # the failed cell is counted out of the hmean, visibly
        assert report.hmean_used == 1 and report.hmean_total == 2
        assert f"hmean {1}/{2}" in report.render_text()

    def test_report_json_shape(self, tmp_path):
        report = run_fleet(
            workloads=["compress"],
            simulators=["facile"],
            workers=1,
            cache_dir=tmp_path,
            verify=False,
        )
        path = report.write(tmp_path / "out" / "BENCH_8.json")
        data = json.loads(path.read_text())
        assert data["bench"] == "fleet"
        assert data["issue"] == 8 and data["version"] == 1
        assert data["ok"] == 1 and data["failed"] == 0
        assert data["verified"] is False
        (cell,) = data["cells"]
        assert cell["workload"] == "compress"
        assert cell["cycles"] > 0


class TestRenderText:
    def test_renders_failed_cells(self):
        from repro.serve.fleet import FleetReport

        cells = [
            FleetCell("compress", "facile", 1, status="ok", attempts=1,
                      seconds=1.0, cycles=100, kips=50.0, parity=True),
            FleetCell("go", "facile", 1, status="failed", attempts=2,
                      requeues=1, reason="worker crashed"),
        ]
        report = FleetReport(cells=cells, workers=2)
        report.hmean_kips, report.hmean_used, report.hmean_total = 50.0, 1, 2
        text = report.render_text()
        assert "failed" in text
        assert "hmean 1/2" in text
        assert "dropped from the harmonic mean" in text
