"""Unit tests for the Facile parser."""

import pytest

from repro.facile import ParseError
from repro.facile import parser as P
from repro.facile import ast_nodes as A


def parse(text):
    return P.parse(text)


def parse_expr(text):
    prog = P.parse(f"fun f() {{ val x = {text}; }}")
    stmt = prog.functions()["f"].body.stmts[0]
    assert isinstance(stmt, A.ValStmt)
    return stmt.init


def parse_stmt(text):
    prog = P.parse(f"fun f() {{ {text} }}")
    return prog.functions()["f"].body.stmts[0]


class TestDeclarations:
    def test_token_decl(self):
        prog = parse("token instruction[32] fields op 24:31, imm 0:12;")
        decl = prog.decls[0]
        assert isinstance(decl, A.TokenDecl)
        assert decl.width == 32
        assert [f.name for f in decl.fields] == ["op", "imm"]
        assert decl.fields[0].width == 8

    def test_token_field_bounds_checked(self):
        with pytest.raises(ParseError, match="exceeds token width"):
            parse("token t[16] fields op 8:16;")
        with pytest.raises(ParseError, match="lo > hi"):
            parse("token t[16] fields op 9:8;")

    def test_pat_decl_dnf_operators(self):
        prog = parse(
            "token t[32] fields op 24:31, i 13:13, fill 5:12;"
            "pat add = op==0x00 && (i==1 || fill==0);"
        )
        decl = prog.decls[1]
        assert isinstance(decl, A.PatDecl)
        assert isinstance(decl.expr, A.PatAnd)
        assert isinstance(decl.expr.right, A.PatOr)

    def test_pat_ref(self):
        prog = parse(
            "token t[32] fields op 24:31;"
            "pat base = op==1; pat both = base || op==2;"
        )
        both = prog.decls[2]
        assert isinstance(both.expr.left, A.PatRef)

    def test_global_val_with_type(self):
        prog = parse("val PC : stream;")
        decl = prog.decls[0]
        assert decl.type_name == "stream"
        assert decl.init is None

    def test_global_val_with_init(self):
        prog = parse("val R = array(32){0};")
        assert isinstance(prog.decls[0].init, A.ArrayNew)

    def test_fun_decl_params(self):
        prog = parse("fun main(pc, iq) { }")
        assert prog.functions()["main"].params == ["pc", "iq"]

    def test_extern_decl(self):
        prog = parse("extern cache_access(3);")
        decl = prog.decls[0]
        assert isinstance(decl, A.ExternDecl)
        assert decl.arity == 3

    def test_sem_decl(self):
        prog = parse(
            "token t[32] fields op 24:31; pat add = op==0;"
            "sem add { };"
        )
        assert isinstance(prog.decls[2], A.SemDecl)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = parse_expr("1 + 2 * 3")
        assert isinstance(e, A.Binary) and e.op == "+"
        assert isinstance(e.right, A.Binary) and e.right.op == "*"

    def test_precedence_shift_vs_compare(self):
        e = parse_expr("a << 2 < b")
        assert e.op == "<"
        assert e.left.op == "<<"

    def test_precedence_logical(self):
        e = parse_expr("a && b || c && d")
        assert e.op == "||"
        assert e.left.op == "&&" and e.right.op == "&&"

    def test_left_associativity(self):
        e = parse_expr("a - b - c")
        assert e.op == "-" and e.left.op == "-"
        assert e.left.right.ident == "b"

    def test_unary_chain(self):
        e = parse_expr("-~!x")
        assert e.op == "-" and e.operand.op == "~" and e.operand.operand.op == "!"

    def test_attr_with_args(self):
        e = parse_expr("imm?sext(32)")
        assert isinstance(e, A.Attr)
        assert e.name == "sext"
        assert isinstance(e.args[0], A.IntLit)

    def test_attr_without_parens(self):
        e = parse_expr("x?verify")
        assert isinstance(e, A.Attr) and not e.has_parens

    def test_attr_chains(self):
        e = parse_expr("x?zext(8)?sext(16)")
        assert e.name == "sext"
        assert e.base.name == "zext"

    def test_index_chain(self):
        e = parse_expr("a[i][j]")
        assert isinstance(e, A.Index) and isinstance(e.base, A.Index)

    def test_call(self):
        e = parse_expr("min(a, b)")
        assert isinstance(e, A.Call) and len(e.args) == 2

    def test_tuple_literal(self):
        e = parse_expr("(a, b, 3)")
        assert isinstance(e, A.TupleLit) and len(e.items) == 3

    def test_parenthesized_is_not_tuple(self):
        e = parse_expr("(a)")
        assert isinstance(e, A.Name)

    def test_array_new(self):
        e = parse_expr("array(8){42}")
        assert isinstance(e, A.ArrayNew)
        assert e.size.value == 8 and e.init.value == 42

    def test_queue_new(self):
        assert isinstance(parse_expr("queue()"), A.QueueNew)

    def test_bool_literals(self):
        assert parse_expr("true").value is True
        assert parse_expr("false").value is False


class TestStatements:
    def test_if_else(self):
        s = parse_stmt("if (x) y = 1; else y = 2;")
        assert isinstance(s, A.If) and s.else_body is not None

    def test_dangling_else_binds_inner(self):
        s = parse_stmt("if (a) if (b) x = 1; else x = 2;")
        assert s.else_body is None
        assert s.then_body.else_body is not None

    def test_while(self):
        s = parse_stmt("while (x < 10) x = x + 1;")
        assert isinstance(s, A.While)

    def test_do_while(self):
        s = parse_stmt("do { x = x + 1; } while (x < 10);")
        assert isinstance(s, A.DoWhile)

    def test_for(self):
        s = parse_stmt("for (val i = 0; i < 8; i = i + 1) { }")
        assert isinstance(s, A.For)
        assert isinstance(s.init, A.ValStmt)

    def test_compound_assignment(self):
        s = parse_stmt("x += 2;")
        assert isinstance(s, A.Assign) and s.op == "+="

    def test_assignment_to_index(self):
        s = parse_stmt("R[rl] = 0;")
        assert isinstance(s.target, A.Index)

    def test_assignment_target_must_be_lvalue(self):
        with pytest.raises(ParseError, match="assignment target"):
            parse_stmt("x + 1 = 2;")

    def test_switch_with_pat_and_default(self):
        prog = parse(
            "token t[32] fields op 24:31; pat add = op==0;"
            "fun f(pc) { switch (pc) { pat add: x(); default: y(); } }"
        )
        sw = prog.functions()["f"].body.stmts[0]
        assert isinstance(sw, A.Switch)
        assert [c.kind for c in sw.cases] == ["pat", "default"]

    def test_switch_case_multiple_values(self):
        s = parse_stmt("switch (x) { case 1, 2: y = 1; case 3: y = 2; }")
        assert len(s.cases[0].values) == 2

    def test_break_continue_return(self):
        s = parse_stmt("while (1) { break; }")
        assert isinstance(s.body.stmts[0], A.Break)
        s = parse_stmt("while (1) { continue; }")
        assert isinstance(s.body.stmts[0], A.Continue)
        s = parse_stmt("return x + 1;")
        assert isinstance(s, A.Return) and s.value is not None

    def test_missing_semicolon_is_error(self):
        with pytest.raises(ParseError):
            parse_stmt("x = 1")

    def test_error_reports_position(self):
        with pytest.raises(ParseError, match="expected"):
            parse("fun f( { }")


class TestPaperFigures:
    def test_figure4_full(self):
        prog = parse(
            "token instruction[32] fields op 24:31, rl 19:23, r2 14:18,"
            " r3 0:4, i 13:13, imm 0:12, offset 0:18, fill 5:12;"
            "pat add = op==0x00 && (i==1 || fill==0);"
            "pat bz = op==0x01;"
        )
        assert len(prog.decls) == 3

    def test_figure6_main(self):
        prog = parse(
            "val PC : stream; val nPC : stream; val init : stream;"
            "fun main(pc) { PC = pc; nPC = PC + 4; PC?exec(); init = nPC; }"
        )
        main = prog.functions()["main"]
        assert len(main.body.stmts) == 4
