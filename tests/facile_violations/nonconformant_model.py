"""Seeded violation: a branch predictor that keeps its per-branch
history in a Python list.  The list is invisible to ``state_arrays()``,
so a native (in-kernel) run would update only the counter table while
the history silently goes stale.  Expected: FAC502.

Audited by ``repro check tests/facile_violations/nonconformant_model.py``.
"""

from array import array


class HistoryListPredictor:
    """Two-bit counters in a protocol buffer, history outside it."""

    def __init__(self, entries=64):
        self.entries = entries
        self.table = array("q", [1]) * entries
        self.history = []  # mutable state the protocol never sees

    def config_key(self):
        return ("historylist", self.entries)

    def state_arrays(self):
        return {"table": self.table}

    def predict(self, pc):
        return self.table[pc & (self.entries - 1)] >= 2

    def update(self, pc, taken):
        i = pc & (self.entries - 1)
        self.history.append((pc, taken))
        c = self.table[i]
        self.table[i] = min(3, c + 1) if taken else max(0, c - 1)
