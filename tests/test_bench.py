"""Tests for the benchmark harness and paper-style reporting."""

import pytest

from repro.bench.harness import (
    SIMULATORS,
    Measurement,
    harmonic_mean,
    harmonic_mean_coverage,
    measure,
)
from repro.bench.reporting import (
    render_generic,
    render_speed_figure,
    render_table1,
    render_table2,
)
from repro.workloads.suite import build_cached


class TestMeasurement:
    def test_kips(self):
        m = Measurement("w", "s", seconds=2.0, retired=100_000, cycles=50_000)
        assert m.kips == 50.0

    def test_fast_fraction(self):
        m = Measurement("w", "s", 1.0, retired=1000, cycles=1, retired_fast=990)
        assert m.fast_fraction == 0.99

    def test_zero_guards(self):
        m = Measurement("w", "s", 0.0, retired=0, cycles=0)
        assert m.kips == 0.0
        assert m.fast_fraction == 0.0


class TestHarmonicMean:
    def test_known_value(self):
        assert harmonic_mean([1.0, 1.0]) == 1.0
        assert abs(harmonic_mean([2.0, 6.0]) - 3.0) < 1e-12

    def test_ignores_nonpositive(self):
        assert harmonic_mean([2.0, 0.0]) == 2.0

    def test_empty(self):
        assert harmonic_mean([]) == 0.0

    def test_coverage_counts_dropped_cells(self):
        hmean, used, total = harmonic_mean_coverage([2.0, 0.0, 6.0, -1.0])
        assert abs(hmean - 3.0) < 1e-12
        assert used == 2
        assert total == 4

    def test_coverage_full(self):
        hmean, used, total = harmonic_mean_coverage([1.0, 1.0])
        assert (hmean, used, total) == (1.0, 2, 2)

    def test_coverage_all_dropped(self):
        assert harmonic_mean_coverage([0.0, 0.0]) == (0.0, 0, 2)


class TestMeasure:
    @pytest.fixture(scope="class")
    def program(self):
        return build_cached("li", 2)

    @pytest.mark.parametrize("simulator", SIMULATORS)
    def test_every_simulator_measures(self, program, simulator):
        m = measure(simulator, program, "li")
        assert m.retired > 0
        assert m.cycles > 0
        assert m.seconds > 0

    def test_all_simulators_agree_on_cycles(self, program):
        cycles = {measure(sim, program, "li").cycles for sim in SIMULATORS}
        assert len(cycles) == 1

    def test_memoizing_simulators_report_fast_work(self, program):
        for simulator in ("fastsim", "facile"):
            m = measure(simulator, program, "li")
            assert m.retired_fast > 0
            assert m.memo_bytes > 0

    def test_nonmemoizing_report_no_fast_work(self, program):
        for simulator in ("simplescalar", "fastsim-nomemo", "facile-nomemo"):
            m = measure(simulator, program, "li")
            assert m.retired_fast == 0

    def test_unknown_simulator_rejected(self, program):
        with pytest.raises(ValueError):
            measure("nope", program, "li")

    def test_cache_limit_forwarded(self, program):
        m = measure("facile", program, "li", cache_limit_bytes=50_000)
        assert m.memo_clears > 0

    def test_memo_bytes_is_cumulative_on_both_paths(self, program):
        """Both memoizing simulators report the same metric for
        ``memo_bytes``: cumulative recording volume, not the resident
        size at run end (the fastsim path used to report the latter)."""
        for simulator in ("fastsim", "facile"):
            m = measure(simulator, program, "li")
            assert m.memo_bytes == m.memo_bytes_cumulative
            assert m.memo_bytes_current > 0
            # With no eviction, resident never exceeds what was recorded.
            assert m.memo_bytes_cumulative >= m.memo_bytes_current

    def test_cumulative_survives_clears(self, program):
        """A budget-bound run clears its cache; the cumulative figure
        keeps counting recording volume while the resident figure drops,
        so the two must diverge — on both memoizing paths."""
        for simulator in ("fastsim", "facile"):
            m = measure(simulator, program, "li", cache_limit_bytes=50_000)
            assert m.memo_clears > 0
            assert m.memo_bytes_cumulative > m.memo_bytes_current
            assert m.memo_bytes == m.memo_bytes_cumulative


class TestRendering:
    def _rows(self):
        return [
            Measurement("alpha", "facile", 1.0, 100_000, 50_000, retired_fast=99_000,
                        steps_fast=900, steps_slow=100, memo_bytes=1024 * 100),
            Measurement("alpha", "facile-nomemo", 4.0, 100_000, 50_000),
            Measurement("alpha", "simplescalar", 2.0, 100_000, 50_000),
            Measurement("beta", "facile", 1.0, 200_000, 60_000, retired_fast=150_000,
                        steps_fast=500, steps_slow=500, memo_bytes=1024 * 900),
            Measurement("beta", "facile-nomemo", 5.0, 200_000, 60_000),
            Measurement("beta", "simplescalar", 2.0, 200_000, 60_000),
        ]

    def test_speed_figure_contains_ratios(self):
        text = render_speed_figure(self._rows(), "facile", "facile-nomemo", "Fig")
        assert "alpha" in text and "beta" in text
        assert "2.00x" in text  # alpha memo/base = 100/50
        assert "hmean" in text

    def test_table1_percentages(self):
        text = render_table1(self._rows(), "facile")
        assert "99.000%" in text
        assert "75.000%" in text

    def test_table2_kb(self):
        text = render_table2(self._rows(), "facile")
        assert "100.0" in text
        assert "900.0" in text

    def test_generic_alignment(self):
        text = render_generic("T", ["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "333" in text

    def test_generic_empty_rows(self):
        text = render_generic("T", ["col"], [])
        assert "col" in text

    def test_speed_figure_full_coverage_plain_hmean(self):
        text = render_speed_figure(self._rows(), "facile", "facile-nomemo", "Fig")
        assert "hmean" in text
        assert "hmean 2/2" not in text  # full coverage: plain label
        assert "dropped" not in text

    def test_speed_figure_surfaces_dropped_cells(self):
        """A missing cell must not silently inflate the hmean: the
        label becomes "hmean K/N" and a coverage note is appended."""
        rows = [m for m in self._rows()
                if not (m.workload == "beta" and m.simulator == "facile")]
        text = render_speed_figure(rows, "facile", "facile-nomemo", "Fig")
        assert "hmean 1/2" in text
        assert "1 failed or missing cells were dropped" in text
        assert "missing cell" in text

    def test_speed_figure_zero_cell_counted_as_dropped(self):
        rows = self._rows()
        for m in rows:
            if m.workload == "beta" and m.simulator == "simplescalar":
                m.seconds = 0.0  # kips == 0 → ratio 0 → dropped
        text = render_speed_figure(rows, "facile", "facile-nomemo", "Fig")
        assert "hmean 1/2" in text
