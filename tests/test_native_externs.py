"""Native extern registry: model-level and simulator-level parity.

The Python classes in :mod:`repro.uarch` are the executable spec; the C
kernel's native models (:mod:`repro.facile.cbackend`) must be
indistinguishable from them.  Two layers of enforcement:

* **Hypothesis twins** — identical randomized predict/update/access
  sequences drive a Python-owned model and its native counterpart
  (via ``ffc_nx_call`` on zero-copy-bound state); per-call outcomes,
  every state array, and drained statistics must match exactly.
* **Golden simulations** — cold and warm (snapshot) runs of the
  inorder, ooo, and fastsim simulators with native externs produce
  bit-identical cycles/stats vs. the Python backend, with zero Python
  extern callbacks on steady-state (warm) replay of the shipped models.
"""

from __future__ import annotations

import ctypes
from array import array
from dataclasses import asdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.facile import cbackend as cb
from repro.ooo.facile_inorder import run_facile_inorder
from repro.ooo.facile_ooo import run_facile_ooo
from repro.ooo.fastsim import run_fastsim
from repro.uarch.branch import (
    AlwaysNotTaken,
    AlwaysTaken,
    BimodalPredictor,
    BranchTargetBuffer,
    FrontEndPredictor,
    GSharePredictor,
    ReturnAddressStack,
    TournamentPredictor,
)
from repro.uarch.cache import CacheConfig, CacheHierarchy, HierarchyConfig
from repro.workloads.suite import build_cached

KERNEL = cb.load_kernel()
requires_cc = pytest.mark.skipif(
    not KERNEL.status.available,
    reason=f"C kernel unavailable: {KERNEL.status.reason}",
)


# ---------------------------------------------------------------------------
# Twin harness: one kernel St, models registered via the lowering path
# ---------------------------------------------------------------------------


class _NativeTwin:
    """Drives a uarch model through the kernel's native dispatch, using
    the same ``_nx_lower`` resolution the replay backends use."""

    def __init__(self):
        self.lib = KERNEL.lib
        self.st_p = ctypes.c_void_p(self.lib.ffc_new())
        assert self.st_p
        self.st = ctypes.cast(
            self.st_p, ctypes.POINTER(cb._StPrefix)
        ).contents
        self._keep = []

    def register(self, name: str, model) -> int:
        plan = cb._nx_lower(name, model)
        assert plan is not None, f"{name} did not lower natively"
        kind, params, arrays, _drain = plan
        pbuf = array("q", params) if params else None
        nxid = self.lib.ffc_nx_add(
            self.st_p, kind,
            cb._q_ptr(pbuf) if pbuf is not None else None, len(params),
        )
        assert nxid >= 0
        for slot, arr in arrays.items():
            addr, n = arr.buffer_info()
            self.lib.ffc_nx_set_arr(
                self.st_p, nxid, slot, ctypes.cast(addr, cb._PLL), n)
        self._keep.append((pbuf, list(arrays.values())))
        return nxid

    def call(self, nxid: int, *args) -> int:
        buf = (ctypes.c_longlong * max(len(args), 1))(*args)
        return self.lib.ffc_nx_call(self.st_p, nxid, len(args), buf)

    def close(self):
        if self.st_p:
            self.lib.ffc_free(self.st_p)
            self.st_p = ctypes.c_void_p(0)


def _predictor_pair(direction_factory):
    """Two identically-configured front ends: the Python-driven spec
    and the native-driven twin."""
    def build():
        return FrontEndPredictor(
            direction=direction_factory(),
            btb=BranchTargetBuffer(entries=32),
            ras=ReturnAddressStack(depth=4),
        )
    return build(), build()


DIRECTIONS = {
    "bimodal": lambda: BimodalPredictor(entries=64),
    "gshare": lambda: GSharePredictor(history_bits=6),
    "tournament": lambda: TournamentPredictor(entries=64, history_bits=6),
    "taken": AlwaysTaken,
    "nottaken": AlwaysNotTaken,
}

# One op per front-end entry point, mirroring the extern signatures.
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("branch"),
                  st.integers(0, 1 << 20).map(lambda x: x * 4),
                  st.booleans()),
        st.tuples(st.just("indirect"),
                  st.integers(0, 1 << 20).map(lambda x: x * 4),
                  st.integers(0, 1 << 20).map(lambda x: x * 4),
                  st.booleans()),
        st.tuples(st.just("call"),
                  st.integers(0, 1 << 20).map(lambda x: x * 4)),
    ),
    max_size=200,
)


@requires_cc
@pytest.mark.parametrize("direction", sorted(DIRECTIONS))
@given(ops=_ops)
@settings(max_examples=25, deadline=None)
def test_predictor_twin_parity(direction, ops):
    python, native = _predictor_pair(DIRECTIONS[direction])
    twin = _NativeTwin()
    try:
        nx_dir = twin.register("xbpred", native)
        nx_bind = twin.register("xbind", native)
        nx_call = twin.register("xbcall", native)
        for op in ops:
            if op[0] == "branch":
                _, pc, taken = op
                want = python.resolve_branch(pc, taken)
                got = twin.call(nx_dir, pc, 1 if taken else 0)
                assert bool(got) == want, op
            elif op[0] == "indirect":
                _, pc, target, is_ret = op
                want = python.resolve_indirect(pc, target, is_ret)
                got = twin.call(nx_bind, pc, target, 1 if is_ret else 0)
                assert bool(got) == want, op
            else:
                _, ra = op
                python.note_call(ra)
                twin.call(nx_call, ra)
        native.drain_stats()
        python.drain_stats()
        assert native.stats == python.stats
        py_arrays = python.state_arrays()
        for name, arr in native.state_arrays().items():
            assert list(arr) == list(py_arrays[name]), name
    finally:
        twin.close()


HIERARCHIES = {
    "default-small": lambda: HierarchyConfig(
        l1=CacheConfig("L1D", 1024, 32, 2, 1),
        l2=CacheConfig("L2", 4096, 64, 4, 8),
        memory_latency=40, mshr_entries=4,
    ),
    "tiny-mshr": lambda: HierarchyConfig(
        l1=CacheConfig("L1D", 512, 16, 1, 2),
        l2=CacheConfig("L2", 2048, 32, 2, 6),
        memory_latency=25, mshr_entries=2, store_latency=3,
    ),
    "prefetch": lambda: HierarchyConfig(
        l1=CacheConfig("L1D", 1024, 32, 2, 1),
        l2=CacheConfig("L2", 8192, 64, 4, 8),
        memory_latency=30, mshr_entries=4, prefetch_next_line=True,
    ),
}

_accesses = st.lists(
    st.tuples(
        st.integers(0, 1 << 14),  # address (small range → real reuse)
        st.integers(0, 8),        # cycle delta (repeats → MSHR overlap)
        st.booleans(),            # is_store
    ),
    max_size=200,
)


@requires_cc
@pytest.mark.parametrize("hierarchy", sorted(HIERARCHIES))
@given(accesses=_accesses)
@settings(max_examples=25, deadline=None)
def test_cache_twin_parity(hierarchy, accesses):
    python = CacheHierarchy(HIERARCHIES[hierarchy]())
    native = CacheHierarchy(HIERARCHIES[hierarchy]())
    twin = _NativeTwin()
    try:
        nxid = twin.register("xcache", native)
        cycle = 0
        for addr, dt, is_store in accesses:
            cycle += dt
            want = python.access(addr, cycle, is_store)
            # The 2-arg extern form probes at the kernel's cycle counter.
            twin.st.cycles = cycle
            got = twin.call(nxid, addr, 1 if is_store else 0)
            assert got == want, (addr, cycle, is_store)
        native.drain_stats()
        python.drain_stats()
        for level in ("l1", "l2"):
            assert asdict(native.stats[level]) == asdict(python.stats[level])
        py_arrays = python.state_arrays()
        for name, arr in native.state_arrays().items():
            assert list(arr) == list(py_arrays[name]), name
    finally:
        twin.close()


@requires_cc
def test_cache_twin_wait_argument():
    """The 3-arg inorder form (``xcache(addr, is_store, wait)``) probes
    at ``cycles + wait``, exactly as the Python extern closure does."""
    python = CacheHierarchy(HIERARCHIES["tiny-mshr"]())
    native = CacheHierarchy(HIERARCHIES["tiny-mshr"]())
    twin = _NativeTwin()
    try:
        nxid = twin.register("xcache", native)
        cycle = 0
        for i, (addr, wait) in enumerate(
            [(64, 0), (64, 3), (4096, 1), (128, 0), (64, 7), (4160, 2)] * 20
        ):
            cycle += i % 3
            want = python.access(addr, cycle + wait, bool(i % 2))
            twin.st.cycles = cycle
            got = twin.call(nxid, addr, i % 2, wait)
            assert got == want, (addr, cycle, wait)
        native.drain_stats()
        python.drain_stats()
        for level in ("l1", "l2"):
            assert asdict(native.stats[level]) == asdict(python.stats[level])
    finally:
        twin.close()


# ---------------------------------------------------------------------------
# Golden simulations: cold + warm parity, zero steady-state callbacks
# ---------------------------------------------------------------------------


def _run(sim_name, program, backend, load=None, save=None):
    """Returns (digest incl. uarch stats, holder, extern counts)."""
    kw = dict(replay_backend=backend, cache_load=load, cache_save=save)
    if sim_name == "inorder":
        r = run_facile_inorder(program, **kw)
        holder = r.engine
        stats = r.stats
    elif sim_name == "ooo":
        r = run_facile_ooo(program, **kw)
        holder = r.engine
        stats = r.stats
    else:
        r = run_fastsim(program, **kw)
        holder = r
        stats = r.stats
    digest = (stats.cycles, stats.retired, stats.branches,
              stats.mispredicts, stats.loads, stats.stores)
    native = getattr(holder, "_cnative", None)
    counts = native.extern_counts() if hasattr(native, "extern_counts") else {}
    return digest, holder, counts


@requires_cc
@pytest.mark.parametrize("workload,scale", [("compress", 1), ("go", 1)])
@pytest.mark.parametrize("sim_name", ("inorder", "ooo", "fastsim"))
def test_golden_cold_and_warm_parity(sim_name, workload, scale, tmp_path):
    program = build_cached(workload, scale)
    snap = str(tmp_path / f"{workload}-{sim_name}.facsnap")

    dig_p, _, _ = _run(sim_name, program, "python", save=snap)
    dig_c, holder_c, _ = _run(sim_name, program, "c")
    assert dig_c == dig_p, "cold parity"
    assert holder_c.backend_status["active"] == "c"

    dig_pw, _, _ = _run(sim_name, program, "python", load=snap)
    dig_cw, holder_cw, counts = _run(sim_name, program, "c", load=snap)
    assert dig_pw == dig_p, "python warm changed the simulation"
    assert dig_cw == dig_p, "warm parity"
    assert holder_cw.backend_status["active"] == "c"
    if sim_name != "fastsim":
        # Steady-state replay of the shipped models: every extern call
        # dispatches in-kernel, no Python transitions at all.
        assert sum(c["python"] for c in counts.values()) == 0, counts
        assert sum(c["native"] for c in counts.values()) > 0


@requires_cc
def test_unknown_extern_keeps_callback_path():
    """A model the registry doesn't recognise must not lower; the
    callback path stays per-extern, not all-or-nothing."""

    class OpaqueModel:
        def config_key(self):
            return ("mystery", 1)

    assert cb._nx_lower("xcache", OpaqueModel()) is None
    assert cb._nx_lower("xbpred", OpaqueModel()) is None
    # Recognised models still lower in the same process.
    plan = cb._nx_lower("xbpred", FrontEndPredictor())
    assert plan is not None
