"""Round-trip tests for the Facile pretty-printer."""

import pytest

from repro.facile import ast_nodes as A
from repro.facile.parser import parse
from repro.facile.pprint import format_expr, format_program, format_stmt
from repro.isa.facile_src import functional_sim_source
from repro.ooo.facile_ooo import ooo_sim_source

from .toyisa import TOY_SOURCE


def strip_spans(node):
    """Structural fingerprint of an AST, ignoring source positions and
    single-statement block wrappers (the printer braces all bodies,
    which is semantically transparent)."""
    if isinstance(node, A.Block) and len(node.stmts) == 1:
        return strip_spans(node.stmts[0])
    if isinstance(node, A.Node):
        fields = {
            k: strip_spans(v)
            for k, v in vars(node).items()
            if k != "span"
        }
        return (type(node).__name__, tuple(sorted(fields.items())))
    if isinstance(node, list):
        return tuple(strip_spans(v) for v in node)
    return node


def roundtrip(src: str) -> None:
    first = parse(src)
    printed = format_program(first)
    second = parse(printed)
    assert strip_spans(first) == strip_spans(second), printed


class TestRoundTrip:
    def test_toy_simulator(self):
        roundtrip(TOY_SOURCE)

    def test_functional_simulator(self):
        roundtrip(functional_sim_source())

    def test_ooo_simulator(self):
        roundtrip(ooo_sim_source())

    def test_all_statement_forms(self):
        roundtrip(
            """
            val g = 0;
            val init = 0;
            extern probe(1);
            fun helper(x) { return x + 1; }
            fun main(pc) {
                val a : stream = pc;
                val q = queue();
                q?push_back(1);
                a += 2;
                if (a > 3) { g = 1; } else { g = 2; }
                while (a < 10) { a = a + 1; if (a == 7) { break; } continue; }
                do { a = a - 1; } while (a > 5);
                for (val i = 0; i < 4; i = i + 1) { g = g + i; }
                switch (a) {
                    case 1, 2: g = 10;
                    default: g = helper(probe(a));
                }
                init = (a, g);
                return;
            }
            """
        )

    def test_precedence_preserved(self):
        roundtrip(
            "val init = 0;"
            "fun main(pc) {"
            "  init = (pc + 1) * 2 - pc * (3 + 4) / (pc - 1 | 2) % 5;"
            "  init = -(pc + 1)?sext(8) + !pc * ~pc;"
            "  init = (1 << pc) >> (pc & 3 ^ 2);"
            "  init = pc < 1 == (pc > 2) != (pc <= 3);"
            "}"
        )


class TestExprFormatting:
    @pytest.mark.parametrize(
        "src,expected",
        [
            ("1 + 2 * 3", "1 + 2 * 3"),
            ("(1 + 2) * 3", "(1 + 2) * 3"),
            ("a - b - c", "a - b - c"),
            ("a - (b - c)", "a - (b - c)"),
            ("a?sext(8)", "a?sext(8)"),
            ("x?verify", "x?verify"),
            ("q?pop_front()", "q?pop_front()"),
            ("a[i][j]", "a[i][j]"),
            ("min(a, b)", "min(a, b)"),
        ],
    )
    def test_formats(self, src, expected):
        prog = parse(f"fun f(a, b, c, i, j, q, x) {{ val y = {src}; }}")
        stmt = prog.functions()["f"].body.stmts[0]
        assert format_expr(stmt.init) == expected


class TestStmtFormatting:
    def test_if_renders_braces(self):
        prog = parse("fun f(x) { if (x) x = 1; else x = 2; }")
        text = format_stmt(prog.functions()["f"].body.stmts[0])
        assert text.startswith("if (x)")
        assert "else" in text

    def test_flattened_body_printable(self):
        """The printer must handle compiler-internal (flattened) trees."""
        from repro.facile.inline import flatten_program
        from repro.facile.sema import analyze

        info = analyze(parse(TOY_SOURCE))
        flat = flatten_program(info)
        text = format_stmt(flat.body)
        assert "while" in text or "if" in text
