"""Co-simulation tests for the in-order pipeline simulators (the
paper's third Facile artifact, §6.2: "an in-order pipeline with
reservation tables")."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.funcsim import FunctionalSim
from repro.ooo.common import MachineConfig
from repro.ooo.facile_inorder import run_facile_inorder
from repro.ooo.inorder import run_inorder
from repro.ooo.reference import run_reference
from repro.workloads.suite import WORKLOADS, build_cached

PROGRAMS = {
    "loop": """
        set 60, %o0
        clr %o1
        set buf, %o2
loop:   ld [%o2], %o3
        add %o1, %o3, %o1
        st %o1, [%o2 + 4]
        subcc %o0, 1, %o0
        bne loop
        nop
        halt
        .data
buf:    .word 3
        .space 12
""",
    "muldiv": """
        set 15, %o0
        clr %o1
loop:   umul %o0, 7, %o2
        udiv %o2, 3, %o3
        add %o1, %o3, %o1
        subcc %o0, 1, %o0
        bne loop
        nop
        halt
""",
    "calls": """
        set 8, %o0
        clr %o5
outer:  call helper
        nop
        subcc %o0, 1, %o0
        bne outer
        nop
        halt
helper: add %o5, 2, %o5
        ret
        nop
""",
    "annul": """
        set 12, %o0
        clr %o1
loop:   subcc %o0, 1, %o0
        bne,a loop
        add %o1, 5, %o1
        halt
""",
}


def sig(stats):
    return (stats.cycles, stats.retired, stats.branches, stats.mispredicts,
            stats.loads, stats.stores)


@pytest.mark.parametrize("name", list(PROGRAMS))
class TestInOrderCosim:
    def test_facile_matches_reference(self, name):
        program = assemble(PROGRAMS[name])
        ref = run_inorder(program)
        fac = run_facile_inorder(program, memoized=True)
        assert sig(ref.stats) == sig(fac.stats)

    def test_plain_matches_memoized(self, name):
        program = assemble(PROGRAMS[name])
        memo = run_facile_inorder(program, memoized=True)
        plain = run_facile_inorder(program, memoized=False)
        assert sig(memo.stats) == sig(plain.stats)
        assert list(memo.ctx.read_global("R")) == list(plain.ctx.read_global("R"))

    def test_architectural_state_matches_golden(self, name):
        program = assemble(PROGRAMS[name])
        golden = FunctionalSim.for_program(program)
        golden.run()
        fac = run_facile_inorder(program, memoized=True)
        assert list(fac.ctx.read_global("R")) == golden.regs
        assert fac.stats.retired == golden.instret


class TestInOrderTiming:
    def test_single_issue_ipc_bounded(self):
        program = assemble(PROGRAMS["loop"])
        sim = run_inorder(program)
        assert sim.stats.ipc <= 1.0

    def test_inorder_slower_than_ooo(self):
        """The whole point of the out-of-order model: same program,
        fewer cycles."""
        program = assemble(PROGRAMS["loop"])
        inorder = run_inorder(program)
        ooo = run_reference(program)
        assert ooo.stats.cycles < inorder.stats.cycles
        assert ooo.stats.retired == inorder.stats.retired

    def test_muldiv_structural_hazard(self):
        """Non-pipelined muldiv: back-to-back multiplies serialize."""
        dep = assemble(
            "        set 1, %o1\n"
            + "".join("        umul %o1, 3, %o1\n" for _ in range(10))
            + "        halt\n"
        )
        indep = assemble(
            "        set 1, %o1\n"
            + "".join(f"        umul %g0, 3, %l{i % 8}\n" for i in range(10))
            + "        halt\n"
        )
        dep_sim = run_inorder(dep)
        indep_sim = run_inorder(indep)
        # Structural hazard on the single muldiv unit serializes even
        # the independent multiplies: both take ~latency per multiply.
        assert dep_sim.stats.cycles >= 10 * 3
        assert indep_sim.stats.cycles >= 10 * 3

    def test_mispredict_penalty_visible(self):
        cheap = MachineConfig(mispredict_penalty=0)
        dear = MachineConfig(mispredict_penalty=12)
        program = assemble(PROGRAMS["loop"])
        a = run_inorder(program, cheap)
        b = run_inorder(program, dear)
        assert b.stats.cycles > a.stats.cycles

    def test_fast_forwarding_effective(self):
        program = assemble(PROGRAMS["loop"])
        fac = run_facile_inorder(program, memoized=True)
        assert fac.run_stats.steps_fast > 3 * fac.run_stats.steps_slow


class TestInOrderWorkload:
    def test_minic_workload_cosim(self):
        program = build_cached("li", WORKLOADS["li"].test_scale)
        ref = run_inorder(program)
        fac = run_facile_inorder(program, memoized=True)
        assert sig(ref.stats) == sig(fac.stats)
