"""End-to-end tests: compile the paper's toy simulator and run programs
through both engines, checking behavioural equivalence and the
fast-forwarding machinery (recording, replay, miss recovery)."""

import pytest

from repro.facile import FastForwardEngine, compile_source

from .toyisa import (
    HALT_WORD,
    add_imm,
    add_reg,
    bz,
    compile_toy,
    countdown_program,
    run_memoized,
    run_plain,
)


@pytest.fixture(scope="module")
def toy():
    return compile_toy()


def registers(ctx):
    return list(ctx.read_global("R"))


class TestCompilation:
    def test_division_summary(self, toy):
        summary = toy.simulator.division_summary
        assert summary["n_verify_actions"] >= 1
        assert "R" in summary["dynamic_vars"]
        assert set(summary["flush_globals"]) >= {"PC", "nPC", "init"}

    def test_sources_are_nonempty_python(self, toy):
        sim = toy.simulator
        compile(sim.source_slow, "<slow>", "exec")
        compile(sim.source_fast, "<fast>", "exec")
        compile(sim.source_plain, "<plain>", "exec")

    def test_one_verify_test_inserted(self, toy):
        # The single dynamic branch is bz's register test.
        assert toy.n_dynamic_result_tests == 1


class TestStraightLine:
    def test_add_immediate(self, toy):
        ctx, _, _ = run_memoized(toy.simulator, [add_imm(1, 0, 42), HALT_WORD])
        assert registers(ctx)[1] == 42

    def test_add_register(self, toy):
        prog = [add_imm(1, 0, 10), add_imm(2, 0, 5), add_reg(3, 1, 2), HALT_WORD]
        ctx, _, _ = run_memoized(toy.simulator, prog)
        assert registers(ctx)[3] == 15

    def test_negative_immediate_wraps_u32(self, toy):
        ctx, _, _ = run_memoized(toy.simulator, [add_imm(1, 0, 0x1FFF), HALT_WORD])
        assert registers(ctx)[1] == 0xFFFFFFFF

    def test_halt_stops_run(self, toy):
        ctx, _, stats = run_memoized(toy.simulator, [HALT_WORD])
        assert ctx.halted
        assert stats.steps_total == 1

    def test_retired_instruction_count(self, toy):
        ctx, _, _ = run_memoized(toy.simulator, [add_imm(1, 0, 1)] * 5 + [HALT_WORD])
        assert ctx.retired_total == 6


class TestBranching:
    def test_branch_taken_when_zero(self, toy):
        prog = [
            bz(0, 12),           # r0 == 0, skip next two
            add_imm(1, 0, 99),   # skipped
            add_imm(2, 0, 99),   # skipped
            add_imm(3, 0, 7),
            HALT_WORD,
        ]
        ctx, _, _ = run_memoized(toy.simulator, prog)
        regs = registers(ctx)
        assert regs[1] == 0 and regs[2] == 0 and regs[3] == 7

    def test_branch_not_taken_when_nonzero(self, toy):
        prog = [
            add_imm(1, 0, 1),
            bz(1, 8),            # not taken
            add_imm(2, 0, 5),
            HALT_WORD,
        ]
        ctx, _, _ = run_memoized(toy.simulator, prog)
        assert registers(ctx)[2] == 5

    def test_countdown_loop(self, toy):
        ctx, engine, stats = run_memoized(toy.simulator, countdown_program(20))
        assert registers(ctx)[1] == 0
        assert ctx.retired_total == 1 + 3 * 20


class TestFastForwarding:
    def test_loop_replayed_by_fast_engine(self, toy):
        _, engine, stats = run_memoized(toy.simulator, countdown_program(50))
        # After the first iteration records actions, the rest replays.
        assert stats.steps_fast > stats.steps_slow
        assert engine.fast_forward_fraction() > 0.9

    def test_exit_branch_causes_exactly_one_verify_miss(self, toy):
        _, engine, stats = run_memoized(toy.simulator, countdown_program(30))
        assert engine.cache.stats.misses_verify == 1
        assert stats.steps_recovered == 1

    def test_memoized_and_plain_agree_on_countdown(self, toy):
        for n in (1, 2, 3, 17):
            ctx_m, _, _ = run_memoized(toy.simulator, countdown_program(n))
            ctx_p, _, _ = run_plain(toy.simulator, countdown_program(n))
            assert registers(ctx_m) == registers(ctx_p)
            assert ctx_m.retired_total == ctx_p.retired_total

    def test_recovery_resumes_recording_new_path(self, toy):
        # Run the loop twice with different counts in one program space:
        # second run replays the loop and the exit path is already known.
        prog = countdown_program(10)
        ctx, engine, _ = run_memoized(toy.simulator, prog)
        assert engine.cache.stats.misses_verify == 1
        # Re-running in a fresh context against the same engine cache
        # requires no further misses.
        ctx2 = toy.simulator.make_context()
        from .toyisa import load_program

        load_program(ctx2, prog)
        engine2 = FastForwardEngine(toy.simulator, ctx2)
        engine2.cache = engine.cache
        engine2.memoizer = type(engine.memoizer)(engine.cache)
        stats2 = engine2.run(max_steps=10_000)
        assert engine.cache.stats.misses_verify == 1  # unchanged
        assert stats2.steps_slow == 0

    def test_action_cache_grows_with_new_code_paths(self, toy):
        _, engine, _ = run_memoized(toy.simulator, countdown_program(5))
        entries_loop = engine.cache.stats.entries_created
        straight = [add_imm(i % 30 + 1, 0, i) for i in range(1, 12)] + [HALT_WORD]
        _, engine2, _ = run_memoized(toy.simulator, straight)
        assert engine2.cache.stats.entries_created == 12
        assert entries_loop < 12

    def test_cache_limit_forces_clears_but_preserves_results(self, toy):
        prog = countdown_program(40)
        ctx_small, engine_small, _ = run_memoized(
            toy.simulator, prog, cache_limit_bytes=600
        )
        ctx_big, engine_big, _ = run_memoized(toy.simulator, prog)
        assert engine_small.cache.stats.clears > 0
        assert engine_big.cache.stats.clears == 0
        assert registers(ctx_small) == registers(ctx_big)

    def test_replay_fraction_grows_with_iteration_count(self, toy):
        fractions = []
        for n in (5, 50, 500):
            _, engine, _ = run_memoized(toy.simulator, countdown_program(n))
            fractions.append(engine.fast_forward_fraction())
        assert fractions[0] < fractions[1] < fractions[2]
        assert fractions[2] > 0.99  # Table 1 territory


class TestStateIsolation:
    def test_contexts_do_not_share_state(self, toy):
        ctx1, _, _ = run_memoized(toy.simulator, [add_imm(1, 0, 1), HALT_WORD])
        ctx2, _, _ = run_memoized(toy.simulator, [add_imm(1, 0, 2), HALT_WORD])
        assert registers(ctx1)[1] == 1
        assert registers(ctx2)[1] == 2

    def test_flushed_globals_visible_after_run(self, toy):
        ctx, _, _ = run_memoized(toy.simulator, [add_imm(1, 0, 1), HALT_WORD])
        # PC of the last executed step is flushed to its slot.
        assert ctx.read_global("PC") == 0x1004
