"""A variable-width ISA described in Facile.

The paper credits the NJ Machine-Code Toolkit's description style with
being "flexible enough to describe instruction sets ranging from RISC
to Intel x86" (§3.1).  This test defines a byte-granular ISA with one-
and three-byte instructions — the step function advances the PC by the
decoded instruction's width, and multi-byte immediates are assembled
from successive token fetches.
"""

import pytest

from repro.facile import FastForwardEngine, PlainEngine, compile_source

VARWIDTH = """
// One 8-bit token; wide instructions read further bytes explicitly.
token byte[8] fields opc 4:7, reg 0:3;

pat inc  = opc==1;   // 1 byte:  R[reg] += 1
pat dec  = opc==2;   // 1 byte:  R[reg] -= 1
pat limm = opc==3;   // 3 bytes: R[reg] = imm16 (little endian)
pat addr = opc==4;   // 2 bytes: R[reg] += R[second byte & 0xF]
pat bnz  = opc==5;   // 3 bytes: if (R[reg] != 0) PC = imm16
pat stop = opc==15;  // 1 byte

val R = array(16){0};
val PC : stream;
val NEXT : stream;
val init : stream;

sem inc  { R[reg] = (R[reg] + 1)?u32; };
sem dec  { R[reg] = (R[reg] - 1)?u32; };
sem limm {
  val imm = (PC + 1)?word() | ((PC + 2)?word() << 8);
  R[reg] = imm;
  NEXT = PC + 3;
};
sem addr {
  val other = (PC + 1)?word()?zext(4);
  R[reg] = (R[reg] + R[other])?u32;
  NEXT = PC + 2;
};
sem bnz {
  val target = (PC + 1)?word() | ((PC + 2)?word() << 8);
  NEXT = PC + 3;
  if (R[reg] != 0) NEXT = target;
};
sem stop { halt(); };

fun main(pc) {
  PC = pc;
  NEXT = PC + 1;          // default width: one byte
  PC?exec();
  init = NEXT;
  stat_retire(1);
}
"""


def asm(items):
    """items: list of (mnemonic, *operands) -> bytes."""
    out = bytearray()
    for item in items:
        op, *args = item
        if op == "inc":
            out.append(0x10 | args[0])
        elif op == "dec":
            out.append(0x20 | args[0])
        elif op == "limm":
            out.append(0x30 | args[0])
            out += args[1].to_bytes(2, "little")
        elif op == "addr":
            out.append(0x40 | args[0])
            out.append(args[1])
        elif op == "bnz":
            out.append(0x50 | args[0])
            out += args[1].to_bytes(2, "little")
        elif op == "stop":
            out.append(0xF0)
        else:
            raise ValueError(op)
    return bytes(out)


@pytest.fixture(scope="module")
def sim():
    return compile_source(VARWIDTH, name="varwidth").simulator


def run(sim, code: bytes, base=0x200, engine_cls=FastForwardEngine, max_steps=10_000):
    ctx = sim.make_context()
    ctx.mem.load_bytes(base, code)
    ctx.write_global("init", base)
    engine = engine_cls(sim, ctx)
    stats = engine.run(max_steps=max_steps)
    return ctx, engine, stats


class TestVariableWidth:
    def test_mixed_width_straight_line(self, sim):
        code = asm([
            ("limm", 1, 500),
            ("inc", 1),
            ("inc", 1),
            ("limm", 2, 7),
            ("addr", 1, 2),
            ("dec", 1),
            ("stop",),
        ])
        ctx, _, _ = run(sim, code)
        assert ctx.read_global("R")[1] == 500 + 2 + 7 - 1
        assert ctx.retired_total == 7

    def test_loop_with_16bit_target(self, sim):
        base = 0x200
        # limm r1, 5; loop: dec r1; bnz r1, loop; stop
        loop_addr = base + 3
        code = asm([
            ("limm", 1, 5),
            ("dec", 1),
            ("bnz", 1, loop_addr),
            ("stop",),
        ])
        ctx, engine, stats = run(sim, code)
        assert ctx.read_global("R")[1] == 0
        assert ctx.retired_total == 1 + 2 * 5 + 1
        assert stats.steps_fast > 0  # the loop replays

    def test_memoized_equals_plain(self, sim):
        code = asm([
            ("limm", 3, 12),
            ("limm", 4, 3),
            ("addr", 3, 4),
            ("dec", 3),
            ("bnz", 3, 0x200 + 8),  # jump back to addr instruction? forward-safe:
            ("stop",),
        ])
        # Note: target 0x208 is the dec instruction; the loop terminates
        # because r3 counts down.
        memo, _, _ = run(sim, code)
        plain, _, _ = run(sim, code, engine_cls=PlainEngine)
        assert memo.read_global("R") == plain.read_global("R")
        assert memo.retired_total == plain.retired_total

    def test_loop_exit_recovers(self, sim):
        base = 0x200
        code = asm([
            ("limm", 1, 8),
            ("dec", 1),
            ("bnz", 1, base + 3),
            ("stop",),
        ])
        _, engine, stats = run(sim, code)
        assert engine.cache.stats.misses_verify == 1
        assert stats.steps_recovered == 1
