"""Unit tests for binding-time analysis (paper §4.1)."""

from repro.facile.bta import (
    DYNAMIC,
    RT_STATIC,
    SHAPE_ARRAY,
    SHAPE_QUEUE,
    analyze_binding_times,
    insert_dynamic_result_tests,
)
from repro.facile.inline import flatten_program
from repro.facile.parser import parse
from repro.facile.sema import analyze

HEADER = (
    "token instruction[32] fields op 24:31, rl 19:23, imm 0:12;"
    "pat add = op==0; pat bz = op==1;"
    "val init = 0;"
)


def division_for(src, header=HEADER):
    info = analyze(parse(header + src))
    flat = flatten_program(info)
    return flat, analyze_binding_times(flat)


def bt_of(division, base_name):
    """Binding time of the (unique) flattened local derived from base_name."""
    matches = [
        name
        for name in division.bt
        if name == base_name or name.startswith(base_name + "__")
    ]
    assert matches, f"no variable named {base_name}"
    return max(division.bt[m] for m in matches)


class TestInitialDivision:
    def test_params_are_rt_static(self):
        flat, d = division_for("fun main(pc) { init = pc; }")
        assert all(d.bt[p] == RT_STATIC for p in flat.params)

    def test_literal_derived_locals_are_rt_static(self):
        _, d = division_for("fun main(pc) { val x = pc + 4; init = x; }")
        assert bt_of(d, "x") == RT_STATIC

    def test_unwritten_global_is_program_constant(self):
        _, d = division_for(
            "val table = array(4){7}; fun main(pc) { init = table[1]; }",
        )
        assert d.var_bt("table") == RT_STATIC

    def test_read_before_write_global_is_dynamic(self):
        _, d = division_for(
            "val g = 0; fun main(pc) { val x = g; g = pc; init = x; }"
        )
        assert d.var_bt("g") == DYNAMIC

    def test_write_before_read_global_is_local_like(self):
        _, d = division_for(
            "val PC = 0; fun main(pc) { PC = pc; init = PC + 4; }"
        )
        assert "PC" in d.local_like_globals
        assert d.var_bt("PC") == RT_STATIC

    def test_conditionally_written_global_not_local_like(self):
        _, d = division_for(
            "val g = 0; fun main(pc) { if (pc) { g = pc; } init = g; }"
        )
        assert "g" not in d.local_like_globals
        assert d.var_bt("g") == DYNAMIC


class TestPropagation:
    def test_extern_result_is_dynamic(self):
        _, d = division_for(
            "extern cache(1); fun main(pc) { val lat = cache(pc); init = pc; }"
        )
        assert bt_of(d, "lat") == DYNAMIC

    def test_mem_read_is_dynamic(self):
        _, d = division_for("fun main(pc) { val v = mem_read(pc); init = pc; }")
        assert bt_of(d, "v") == DYNAMIC

    def test_dynamic_taints_through_arithmetic(self):
        _, d = division_for(
            "fun main(pc) { val v = mem_read(pc); val w = v + 1; init = pc; }"
        )
        assert bt_of(d, "w") == DYNAMIC

    def test_verify_pins_dynamic_value(self):
        _, d = division_for(
            "extern cache(1);"
            "fun main(pc) { val lat = cache(pc)?verify; init = pc + lat; }"
        )
        # The lifted call temp is dynamic, but the verified value is
        # rt-static and may flow into the key computation.
        assert bt_of(d, "lat") == RT_STATIC

    def test_array_poisoned_by_dynamic_store(self):
        _, d = division_for(
            "val R = array(8){0};"
            "fun main(pc) { R[0] = mem_read(pc); init = pc; }"
        )
        assert d.var_bt("R") == DYNAMIC

    def test_array_poisoned_by_dynamic_index(self):
        _, d = division_for(
            "val A = array(8){0};"
            "fun main(pc) { val v = mem_read(pc); A[v] = 1; init = pc; }"
        )
        assert d.var_bt("A") == DYNAMIC

    def test_rt_static_array_stays_static(self):
        _, d = division_for(
            "fun main(pc) { val a = array(4){0}; a[1] = pc; init = a[1]; }"
        )
        assert bt_of(d, "a") == RT_STATIC

    def test_queue_poisoned_by_dynamic_push(self):
        _, d = division_for(
            "fun main(pc) { val q = queue(); q?push_back(mem_read(pc)); init = pc; }"
        )
        assert bt_of(d, "q") == DYNAMIC

    def test_rt_static_queue_ops_stay_static(self):
        _, d = division_for(
            "fun main(pc) { val q = queue(); q?push_back(pc);"
            " val x = q?pop_front(); init = x; }"
        )
        assert bt_of(d, "q") == RT_STATIC
        assert bt_of(d, "x") == RT_STATIC

    def test_variable_level_join_one_dynamic_assignment_poisons(self):
        # Paper merge rule: rt-static from one predecessor + dynamic from
        # another => dynamic after the merge.
        _, d = division_for(
            "fun main(pc) { val x = 1; if (pc) { x = mem_read(pc); } init = pc; }"
        )
        assert bt_of(d, "x") == DYNAMIC

    def test_figure7_division(self):
        # The paper's Figure 7: register ops dynamic, pc/npc rt-static.
        src = (
            "val R = array(32){0};"
            "fun main(pc) {"
            "  val npc = pc + 4;"
            "  switch (pc) {"
            "    pat add: R[rl] = R[rl] + imm?sext(13);"
            "    pat bz:  if (R[rl] == 0) npc = pc + imm?sext(13);"
            "  }"
            "  init = npc;"
            "}"
        )
        _, d = division_for(src)
        assert d.var_bt("R") == DYNAMIC
        assert bt_of(d, "npc") == RT_STATIC


class TestShapes:
    def test_array_shape(self):
        _, d = division_for("val R = array(4){0}; fun main(pc) { R[0] = pc; init = pc; }")
        assert d.var_shape("R") == SHAPE_ARRAY

    def test_queue_shape(self):
        _, d = division_for(
            "fun main(pc) { val q = queue(); q?push_back(pc); init = pc; }"
        )
        names = [n for n in d.shape if n.startswith("q__")]
        assert any(d.shape[n] == SHAPE_QUEUE for n in names)

    def test_param_indexed_gets_array_shape(self):
        flat, d = division_for("fun main(iq) { init = iq[0]; }")
        assert d.var_shape(flat.params[0]) == SHAPE_ARRAY


class TestDynamicResultInsertion:
    def test_dynamic_if_gets_verify(self):
        flat, d = division_for(
            "val R = array(4){0};"
            "fun main(pc) { R[1] = mem_read(pc); val npc = pc + 4;"
            " if (R[0] == 0) npc = pc + 8; init = npc; }"
        )
        n = insert_dynamic_result_tests(flat, d)
        assert n == 1

    def test_unwritten_array_condition_needs_no_verify(self):
        # R is never written in the step function, so it is a program
        # constant and branching on it is rt-static.
        flat, d = division_for(
            "val R = array(4){0};"
            "fun main(pc) { val npc = pc + 4;"
            " if (R[0] == 0) npc = pc + 8; init = npc; }"
        )
        assert insert_dynamic_result_tests(flat, d) == 0

    def test_static_if_untouched(self):
        flat, d = division_for(
            "fun main(pc) { val npc = pc + 4; if (pc == 0) npc = 8; init = npc; }"
        )
        assert insert_dynamic_result_tests(flat, d) == 0

    def test_dynamic_while_rewritten(self):
        flat, d = division_for(
            "val R = array(4){0};"
            "fun main(pc) { while (R[0] != 0) { R[0] = R[0] - 1; } init = pc; }"
        )
        n = insert_dynamic_result_tests(flat, d)
        assert n == 1

    def test_dynamic_switch_scrutinee_pinned(self):
        flat, d = division_for(
            "val R = array(4){0};"
            "fun main(pc) { val x = 0; R[1] = mem_read(pc);"
            " switch (R[0]) { case 0: x = 1; default: x = 2; } init = pc + x; }"
        )
        n = insert_dynamic_result_tests(flat, d)
        assert n == 1

    def test_flush_globals_lists_rt_static_assigned(self):
        _, d = division_for(
            "val PC = 0; val nPC = 0;"
            "fun main(pc) { PC = pc; nPC = PC + 4; init = nPC; }"
        )
        assert set(d.flush_globals) == {"PC", "nPC", "init"}
