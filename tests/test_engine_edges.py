"""Edge-case and error-path tests for the fast-forwarding engines."""

import pytest

from repro.facile import (
    FastForwardEngine,
    PlainEngine,
    SimulationError,
    compile_source,
)

from .toyisa import compile_toy, countdown_program, load_program


@pytest.fixture(scope="module")
def toy():
    return compile_toy().simulator


class TestKeyHandling:
    def test_wrong_key_arity_rejected(self):
        result = compile_source(
            "val init = 0; val t = 0;"
            "fun main(a, b) { t = a + b; init = (a, b); halt(); }"
        )
        sim = result.simulator
        ctx = sim.make_context()
        ctx.write_global("init", 5)  # scalar where a 2-tuple is required
        with pytest.raises(SimulationError, match="2-tuple"):
            FastForwardEngine(sim, ctx).run(max_steps=1)

    def test_single_param_scalar_key_ok(self, toy):
        ctx = toy.make_context()
        load_program(ctx, countdown_program(1))
        FastForwardEngine(toy, ctx).run(max_steps=10)
        assert ctx.halted

    def test_plain_engine_requires_plain_build(self):
        result = compile_source(
            "val init = 0; fun main(pc) { init = pc; halt(); }",
            with_plain=False,
        )
        ctx = result.simulator.make_context()
        with pytest.raises(SimulationError, match="plain build"):
            PlainEngine(result.simulator, ctx)


class TestExternHandling:
    def test_unbound_extern_fails_cleanly(self):
        result = compile_source(
            "extern f(1); val init = 0; val t = 0;"
            "fun main(pc) { t = f(pc); init = pc; halt(); }"
        )
        ctx = result.simulator.make_context()  # no externs bound
        with pytest.raises(SimulationError, match="not bound"):
            FastForwardEngine(result.simulator, ctx).run(max_steps=1)

    def test_extern_bound_later_is_used(self):
        result = compile_source(
            "extern f(1); val init = 0; val t = 0;"
            "fun main(pc) { t = f(pc); init = pc; halt(); }"
        )
        ctx = result.simulator.make_context()
        ctx.externs["f"] = lambda x: x * 2
        FastForwardEngine(result.simulator, ctx).run(max_steps=1)
        assert ctx.read_global("t") == 0  # pc=0 -> 0


class TestHaltSemantics:
    def test_halt_mid_step_finishes_step(self, toy):
        """halt() stops the engine at the step boundary; the rest of
        the step's actions still execute (consistent in both engines)."""
        result = compile_source(
            "val init = 0; val before = 0; val after = 0;"
            "fun main(pc) { before = before + 1; halt(); after = after + 1; init = pc; }"
        )
        for engine_cls in (FastForwardEngine, PlainEngine):
            ctx = result.simulator.make_context()
            engine_cls(result.simulator, ctx).run(max_steps=10)
            assert ctx.read_global("before") == 1
            assert ctx.read_global("after") == 1

    def test_halt_detected_after_replayed_step(self, toy):
        """A halt replayed by the fast engine stops the run too."""
        result = compile_source(
            "val init = 0; val n = 0;"
            "fun main(pc) { n = n + 1; if (n == 5) { halt(); } init = pc; }"
        )
        sim = result.simulator
        ctx = sim.make_context()
        engine = FastForwardEngine(sim, ctx)
        engine.run(max_steps=100)
        assert ctx.read_global("n") == 5
        assert engine.stats.steps_total == 5
        assert engine.stats.steps_fast > 0  # steps 2-4 replayed


class TestIndexLinkInvalidation:
    def test_cache_clear_invalidates_links(self, toy):
        """After a clear-on-full, stale likely-next links must not be
        followed (generation check)."""
        ctx = toy.make_context()
        load_program(ctx, countdown_program(60))
        engine = FastForwardEngine(toy, ctx, cache_limit_bytes=700)
        engine.run(max_steps=100_000)
        assert engine.cache.stats.clears > 0
        assert ctx.read_global("R")[1] == 0  # still correct

    def test_index_links_actually_skip_lookups(self, toy):
        ctx1 = toy.make_context()
        load_program(ctx1, countdown_program(200))
        with_links = FastForwardEngine(toy, ctx1, index_links=True)
        with_links.run(max_steps=100_000)

        ctx2 = toy.make_context()
        load_program(ctx2, countdown_program(200))
        without = FastForwardEngine(toy, ctx2, index_links=False)
        without.run(max_steps=100_000)

        assert ctx1.read_global("R") == ctx2.read_global("R")
        # Both count a lookup per step; the linked run reports hits via
        # the identity fast path, the other via dict lookups; behaviour
        # identical, stats equal.
        assert with_links.cache.stats.lookups == without.cache.stats.lookups


class TestMaxSteps:
    def test_run_respects_budget(self, toy):
        ctx = toy.make_context()
        load_program(ctx, countdown_program(10_000))
        engine = FastForwardEngine(toy, ctx)
        stats = engine.run(max_steps=100)
        assert stats.steps_total == 100
        assert not ctx.halted

    def test_run_resumable(self, toy):
        ctx = toy.make_context()
        load_program(ctx, countdown_program(50))
        engine = FastForwardEngine(toy, ctx)
        engine.run(max_steps=10)
        engine.run(max_steps=100_000)
        assert ctx.halted
        assert ctx.read_global("R")[1] == 0
