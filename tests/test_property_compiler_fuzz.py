"""Compiler fuzzing: random Facile step functions must behave
identically under the fast-forwarding and plain engines.

The generator builds structurally random (but always terminating)
simulator bodies mixing rt-static locals, dynamic globals, dynamic
arrays, target memory, rt-static and dynamic control flow — precisely
the combinations binding-time analysis and action extraction must get
right.  Each program runs several steps with a cycling key so entries
are recorded, replayed, and forced through verify misses.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.facile import FastForwardEngine, PlainEngine, compile_source

_BINOPS = ["+", "-", "*", "&", "|", "^"]
_CMPS = ["==", "!=", "<", "<=", ">", ">="]


@st.composite
def _expr(draw, names: list[str], depth: int = 0):
    """A pure expression over the given readable names."""
    choices = ["lit", "name"]
    if depth < 3:
        choices += ["bin", "bin", "cmp", "attr", "select"]
    kind = draw(st.sampled_from(choices))
    if kind == "lit" or not names:
        return str(draw(st.integers(min_value=0, max_value=255)))
    if kind == "name":
        return draw(st.sampled_from(names))
    if kind == "bin":
        op = draw(st.sampled_from(_BINOPS))
        left = draw(_expr(names, depth + 1))
        right = draw(_expr(names, depth + 1))
        return f"({left} {op} {right})"
    if kind == "cmp":
        op = draw(st.sampled_from(_CMPS))
        left = draw(_expr(names, depth + 1))
        right = draw(_expr(names, depth + 1))
        return f"({left} {op} {right})"
    if kind == "select":
        c = draw(_expr(names, depth + 1))
        a = draw(_expr(names, depth + 1))
        b = draw(_expr(names, depth + 1))
        return f"select({c}, {a}, {b})"
    # attr
    base = draw(_expr(names, depth + 1))
    attr = draw(st.sampled_from(["?u32", "?s32", "?zext(8)", "?sext(8)", "?bit(3)"]))
    return f"({base}){attr}"


@st.composite
def _stmts(draw, rt_names: list[str], all_names: list[str], depth: int = 0):
    """A list of statement lines.  rt_names are rt-static-only reads;
    all_names adds the dynamic state (D, A[...], mem)."""
    n = draw(st.integers(min_value=1, max_value=4 if depth else 6))
    lines: list[str] = []
    local_rt = list(rt_names)
    local_all = list(all_names)
    for _ in range(n):
        kind = draw(
            st.sampled_from(
                ["rt_local", "dyn_write", "arr_write", "if_rt", "if_dyn", "loop_rt", "mem_write"]
                if depth < 2
                else ["rt_local", "dyn_write", "arr_write", "mem_write"]
            )
        )
        if kind == "rt_local":
            name = f"t{len(local_rt)}_{depth}_{draw(st.integers(0, 999))}"
            lines.append(f"val {name} = {draw(_expr(local_rt))};")
            local_rt.append(name)
            local_all.append(name)
        elif kind == "dyn_write":
            lines.append(f"D = ({draw(_expr(local_all))})?u32;")
        elif kind == "arr_write":
            idx = draw(_expr(local_rt))
            lines.append(f"A[({idx}) & 7] = ({draw(_expr(local_all))})?u32;")
        elif kind == "mem_write":
            addr = draw(_expr(local_rt))
            lines.append(f"mem_write((({addr}) & 255) * 4 + 4096, {draw(_expr(local_all))});")
        elif kind == "if_rt":
            cond = draw(_expr(local_rt))
            then = draw(_stmts(local_rt, local_all, depth + 1))
            els = draw(_stmts(local_rt, local_all, depth + 1))
            lines.append(f"if ({cond}) {{ {' '.join(then)} }} else {{ {' '.join(els)} }}")
        elif kind == "if_dyn":
            cond = draw(_expr(local_all))
            then = draw(_stmts(local_rt, local_all, depth + 1))
            lines.append(f"if ({cond}) {{ {' '.join(then)} }}")
        else:  # loop_rt: bounded rt-static loop
            bound = draw(st.integers(1, 4))
            var = f"i{depth}_{draw(st.integers(0, 999))}"
            body = draw(_stmts(local_rt + [var], local_all + [var], depth + 1))
            lines.append(
                f"val {var} = 0; while ({var} < {bound}) {{ "
                f"{' '.join(body)} {var} = {var} + 1; }}"
            )
    return lines


@st.composite
def fuzz_programs(draw):
    body = draw(_stmts(["pc"], ["pc", "D", "A[D & 7]", "mem_read(4096)"]))
    return (
        "val init = 0;\n"
        "val D = 0;\n"
        "val A = array(8){0};\n"
        "fun main(pc) {\n"
        + "\n".join(body)
        + "\ninit = (pc + 1) % 3;\n}\n"
    )


def _run(sim, engine_cls, steps):
    ctx = sim.make_context()
    ctx.mem.write32(4096, 17)
    ctx.write_global("init", 0)
    engine_cls(sim, ctx).run(max_steps=steps)
    return ctx


class TestCompilerFuzz:
    @settings(max_examples=60, deadline=None)
    @given(fuzz_programs(), st.integers(min_value=3, max_value=12))
    def test_memoized_equals_plain(self, source, steps):
        result = compile_source(source, name="fuzz")
        sim = result.simulator
        memo = _run(sim, FastForwardEngine, steps)
        plain = _run(sim, PlainEngine, steps)
        assert memo.read_global("D") == plain.read_global("D")
        assert memo.read_global("A") == plain.read_global("A")
        for addr in range(4096, 4096 + 4 * 260, 4):
            assert memo.mem.read32(addr) == plain.mem.read32(addr), hex(addr)

    @settings(max_examples=30, deadline=None)
    @given(fuzz_programs())
    def test_folding_never_changes_behaviour(self, source):
        folded = compile_source(source, name="fuzz-f", fold=True).simulator
        unfolded = compile_source(source, name="fuzz-u", fold=False).simulator
        a = _run(folded, FastForwardEngine, 9)
        b = _run(unfolded, FastForwardEngine, 9)
        assert a.read_global("D") == b.read_global("D")
        assert a.read_global("A") == b.read_global("A")

    @settings(max_examples=30, deadline=None)
    @given(fuzz_programs())
    def test_coalescing_never_changes_behaviour(self, source):
        merged = compile_source(source, name="fuzz-c", coalesce=True).simulator
        split = compile_source(source, name="fuzz-s", coalesce=False).simulator
        a = _run(merged, FastForwardEngine, 9)
        b = _run(split, FastForwardEngine, 9)
        assert a.read_global("D") == b.read_global("D")
        assert a.read_global("A") == b.read_global("A")
