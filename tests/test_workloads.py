"""Validation of the full SPEC95-analogue workload suite.

Every workload must halt, produce its expected checksum on the golden
model, and produce the *same* checksum through the Facile-compiled
functional simulator — both memoized and plain."""

import pytest

from repro.isa.funcsim import FunctionalSim
from repro.isa.simulate import run_facile_functional
from repro.workloads.minic import read_out_buffer
from repro.workloads.suite import (
    FP_WORKLOADS,
    INTEGER_WORKLOADS,
    WORKLOADS,
    build_cached,
    expected_out,
)

ALL_NAMES = sorted(WORKLOADS)


class TestSuiteShape:
    def test_paper_benchmark_lineup(self):
        """All 18 SPEC95 names from the paper's Tables 1/2 are present."""
        expected = {
            "go", "m88ksim", "gcc", "compress", "li", "ijpeg", "perl", "vortex",
            "tomcatv", "swim", "su2cor", "hydro2d", "mgrid", "applu", "turb3d",
            "apsi", "fpppp", "wave5",
        }
        assert set(WORKLOADS) == expected

    def test_categories(self):
        assert len(INTEGER_WORKLOADS) == 8
        assert len(FP_WORKLOADS) == 10

    def test_descriptions_nonempty(self):
        for w in WORKLOADS.values():
            assert w.description

    def test_build_caching_returns_same_object(self):
        assert build_cached("li", 1) is build_cached("li", 1)

    def test_scales_change_work(self):
        small = FunctionalSim.for_program(build_cached("compress", 1))
        big = FunctionalSim.for_program(build_cached("compress", 3))
        small.run()
        big.run()
        assert big.instret > small.instret


@pytest.mark.parametrize("name", ALL_NAMES)
class TestWorkloadCorrectness:
    def test_halts_and_produces_output(self, name):
        scale = WORKLOADS[name].test_scale
        sim = FunctionalSim.for_program(build_cached(name, scale))
        sim.run(50_000_000)
        assert sim.halted
        assert read_out_buffer(sim.mem), "workload must write a checksum"

    def test_deterministic(self, name):
        scale = WORKLOADS[name].test_scale
        assert expected_out(name, scale) == expected_out(name, scale)

    def test_facile_functional_matches_golden(self, name):
        scale = WORKLOADS[name].test_scale
        program = build_cached(name, scale)
        golden = FunctionalSim.for_program(program)
        golden.run(50_000_000)
        run = run_facile_functional(program, memoized=True, max_steps=50_000_000)
        assert run.halted
        assert run.retired == golden.instret
        assert read_out_buffer(run.ctx.mem) == list(expected_out(name, scale))

    def test_facile_plain_matches_golden(self, name):
        scale = WORKLOADS[name].test_scale
        program = build_cached(name, scale)
        run = run_facile_functional(program, memoized=False, max_steps=50_000_000)
        assert run.halted
        assert read_out_buffer(run.ctx.mem) == list(expected_out(name, scale))


@pytest.mark.parametrize(
    "name,scale",
    [("go", 1), ("gcc", 1), ("mgrid", 1), ("fpppp", 20)],
)
class TestMemoizationProfiles:
    """The behavioural axes the suite was designed around.

    fpppp needs several passes of its enormous straight-line block
    before replay dominates warm-up — the paper's SPEC runs are long
    enough that this is invisible, ours are not.
    """

    def test_functional_sim_fast_forwards(self, name, scale):
        run = run_facile_functional(build_cached(name, scale), memoized=True)
        assert run.engine.fast_forward_fraction() > 0.9


class TestFootprintOrdering:
    def test_go_has_biggest_cache_per_instruction(self):
        """go's irregular control gives it the worst memoized-data
        footprint (paper Table 2: go = 889 MB, the suite's maximum)."""
        from repro.ooo.facile_ooo import run_facile_ooo

        per_instr = {}
        for name in ("go", "mgrid"):
            run = run_facile_ooo(build_cached(name, WORKLOADS[name].test_scale))
            per_instr[name] = (
                run.engine.cache.stats.bytes_cumulative / max(1, run.stats.retired)
            )
        assert per_instr["go"] > per_instr["mgrid"]
