"""Stress tests for the hand-coded memoizing simulator's recovery
machinery — the part the paper calls "complicated" (§2.1).

Each scenario is engineered to hit a different dynamic-result-test
fork repeatedly (branch directions flipping against the predictor,
indirect targets alternating, cache latencies drifting), and asserts
cycle-exactness against the conventional reference simulator, which has
no memoization machinery to get wrong."""

import pytest

from repro.isa.assembler import assemble
from repro.ooo.facile_ooo import run_facile_ooo
from repro.ooo.fastsim import run_fastsim
from repro.ooo.reference import run_reference


def sig(stats):
    return (stats.cycles, stats.retired, stats.branches, stats.mispredicts,
            stats.loads, stats.stores)


def assert_all_agree(src):
    program = assemble(src)
    ref = run_reference(program)
    fast = run_fastsim(program, memoize=True)
    facile = run_facile_ooo(program, memoized=True)
    assert sig(ref.stats) == sig(fast.stats), "fastsim diverged"
    assert sig(ref.stats) == sig(facile.stats), "facile diverged"
    assert ref.func.regs == fast.func.regs
    return ref, fast, facile


class TestAlternatingBranch:
    """A data-dependent branch that alternates every iteration keeps
    flipping against the 2-bit predictor, so the BPRED result test sees
    both (taken, correct) combinations at the same key."""

    SRC = """
        set 64, %o0
        clr %o1
    loop:
        and %o0, 1, %o2
        cmp %o2, 0
        be even
        nop
        add %o1, 3, %o1
        b join
        nop
    even:
        add %o1, 5, %o1
    join:
        subcc %o0, 1, %o0
        bne loop
        nop
        halt
    """

    def test_agreement(self):
        ref, fast, _ = assert_all_agree(self.SRC)
        assert ref.stats.mispredicts > 5  # the pattern defeats bimodal

    def test_both_paths_recorded_then_replayed(self):
        program = assemble(self.SRC)
        fast = run_fastsim(program, memoize=True)
        # After warm-up the alternation replays without further misses,
        # because both successor chains exist.
        assert fast.mstats.cycles_fast > fast.mstats.cycles_slow
        assert fast.mstats.misses_check >= 1


class TestAlternatingIndirect:
    """jmpl through a register that alternates between two targets:
    the BIND (target, correct) result test forks."""

    SRC = """
        set 40, %o0
        clr %o1
        set t_a, %o2
        set t_b, %o3
    loop:
        and %o0, 1, %o4
        cmp %o4, 0
        be pick_b
        nop
        jmpl %o2, %g0
        nop
    pick_b:
        jmpl %o3, %g0
        nop
    t_a:
        add %o1, 1, %o1
        b join
        nop
    t_b:
        add %o1, 100, %o1
    join:
        subcc %o0, 1, %o0
        bne loop
        nop
        halt
    """

    def test_agreement(self):
        ref, fast, _ = assert_all_agree(self.SRC)
        assert ref.func.regs[9] == 20 * 1 + 20 * 100

    def test_indirect_forks_replayed(self):
        program = assemble(self.SRC)
        fast = run_fastsim(program, memoize=True)
        assert fast.mstats.cycles_fast > 0
        assert fast.mstats.misses_check >= 1


class TestCacheLatencyDrift:
    """A pointer walking a large array: each new line misses, warm
    lines hit — the CACHE latency result test keeps forking until the
    pattern stabilizes."""

    SRC = """
        set 300, %o0
        set buf, %o2
        clr %o1
    loop:
        and %o0, 63, %o3
        sll %o3, 2, %o3
        add %o2, %o3, %o4
        ld [%o4], %o5
        add %o1, %o5, %o1
        subcc %o0, 1, %o0
        bne loop
        nop
        halt
        .data
    buf:
        .space 4096
    """

    def test_agreement(self):
        ref, fast, _ = assert_all_agree(self.SRC)
        assert ref.stats.loads == 300

    def test_recoveries_happen_and_converge(self):
        program = assemble(self.SRC)
        fast = run_fastsim(program, memoize=True)
        assert fast.mstats.misses_check >= 1
        # Once the cache is warm, the hit-latency paths replay cleanly.
        assert fast.mstats.cycles_fast > fast.mstats.cycles_recovered


class TestRecoveryMidGroup:
    """Misses that occur on the second or third instruction of a fetch
    group exercise recovery's resequencing of already-applied EXEC
    events (the _peek_value lookahead)."""

    SRC = """
        set 48, %o0
        clr %o1
        set buf, %o2
    loop:
        add %o1, 1, %o1
        and %o0, 3, %o3
        cmp %o3, 0
        be skip
        nop
        add %o1, 1, %o1
    skip:
        subcc %o0, 1, %o0
        bne loop
        nop
        halt
        .data
    buf:
        .word 0
    """

    def test_agreement(self):
        assert_all_agree(self.SRC)


class TestMemoLimitUnderChurn:
    """Clearing the memo table mid-run (tight limit) while forks keep
    happening must never change results."""

    SRC = TestAlternatingBranch.SRC

    @pytest.mark.parametrize("evict", ["clear", "generational"])
    @pytest.mark.parametrize("limit", [4_000, 20_000, 100_000])
    def test_limited_matches_reference(self, limit, evict):
        program = assemble(self.SRC)
        ref = run_reference(program)
        fast = run_fastsim(
            program, memoize=True, memo_limit_bytes=limit, memo_evict=evict
        )
        assert sig(ref.stats) == sig(fast.stats)

    def test_clears_observed(self):
        program = assemble(self.SRC)
        fast = run_fastsim(program, memoize=True, memo_limit_bytes=4_000)
        assert fast.mstats.clears > 0

    def test_generational_evicts_without_clearing(self):
        program = assemble(self.SRC)
        fast = run_fastsim(
            program, memoize=True, memo_limit_bytes=4_000,
            memo_evict="generational",
        )
        assert fast.mstats.evictions > 0
        assert fast.mstats.clears == 0
        assert fast.mstats.bytes_refunded > 0

    @pytest.mark.parametrize("evict", ["clear", "generational"])
    def test_accounting_leak_free(self, evict):
        program = assemble(self.SRC)
        fast = run_fastsim(
            program, memoize=True, memo_limit_bytes=4_000, memo_evict=evict
        )
        assert fast.mstats.bytes_estimate == fast.recount_bytes()
