"""End-to-end tests for the ``repro check`` subcommand."""

import json
import pathlib

from repro.cli import main

FIXTURES = pathlib.Path(__file__).parent / "facile_violations"

CLEAN = "val init;\nfun main(pc) { init = pc; }\n"


def test_clean_file_exits_zero(tmp_path, capsys):
    path = tmp_path / "ok.fac"
    path.write_text(CLEAN)
    assert main(["check", str(path)]) == 0
    out = capsys.readouterr().out
    assert "0 error(s), 0 warning(s)" in out


def test_warning_exits_zero_without_werror(capsys):
    assert main(["check", str(FIXTURES / "unbounded_cache_key.fac")]) == 0
    out = capsys.readouterr().out
    assert "FAC301" in out
    assert "warning" in out


def test_werror_turns_warnings_into_failure(capsys):
    assert main(["check", "--werror", str(FIXTURES / "unbounded_cache_key.fac")]) == 1


def test_parse_error_exits_one(tmp_path, capsys):
    path = tmp_path / "bad.fac"
    path.write_text("fun main( { }\n")
    assert main(["check", str(path)]) == 1
    assert "FAC002" in capsys.readouterr().out


def test_unreadable_file_exits_two(tmp_path, capsys):
    assert main(["check", str(tmp_path / "nope.fac")]) == 2


def test_no_inputs_exits_two(capsys):
    assert main(["check"]) == 2
    assert "no inputs" in capsys.readouterr().err


def test_exit_code_is_max_over_files(tmp_path, capsys):
    ok = tmp_path / "ok.fac"
    ok.write_text(CLEAN)
    bad = tmp_path / "bad.fac"
    bad.write_text("fun main( { }\n")
    assert main(["check", str(ok), str(bad)]) == 1


def test_json_format_schema(tmp_path, capsys):
    path = tmp_path / "warn.fac"
    path.write_text("val init;\nfun main(pc) { init = pc + 4; }\n")
    assert main(["check", "--format", "json", str(path)]) == 0
    blob = json.loads(capsys.readouterr().out)
    assert blob["version"] == 1
    (report,) = blob["files"]
    assert report["file"] == str(path)
    assert report["clean"] is False
    assert report["counts"]["warning"] == 1
    (diag,) = report["diagnostics"]
    assert diag["code"] == "FAC301"
    assert diag["line"] == 2


def test_builtin_functional_is_clean(capsys):
    assert main(["check", "--builtin", "functional", "--werror"]) == 0
    assert "<builtin:functional>" in capsys.readouterr().out


def test_only_flag_filters_passes(tmp_path, capsys):
    path = tmp_path / "warn.fac"
    # Would fire both FAC101 and FAC301 under a full run.
    path.write_text(
        "val init;\n"
        "fun main(pc) { val x; if (pc) { x = 1; } val y = x; init = pc + 4; }\n"
    )
    assert main(["check", "--only", "cache-blowup", str(path)]) == 0
    out = capsys.readouterr().out
    assert "FAC301" in out
    assert "FAC101" not in out
