"""Disassembler tests: encode/decode/print round trips."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import sparclite as S
from repro.isa.assembler import assemble
from repro.isa.disasm import disassemble, disassemble_program

BASE = 0x1000


def reassemble(text: str, pc: int = BASE) -> int:
    """Assemble one instruction at `pc` and return its word."""
    pad = (pc - BASE) // 4
    source = "        nop\n" * pad + f"        {text}\n"
    program = assemble(source)
    return program.text_words[pad]


class TestKnownForms:
    @pytest.mark.parametrize(
        "text",
        [
            "add %o0, %o1, %o2",
            "add %o0, 42, %o2",
            "sub %g1, -5, %g2",
            "subcc %l0, %l1, %g0",
            "sll %o0, 3, %o1",
            "umul %i0, %i1, %i2",
            "udiv %i0, 7, %i2",
            "ld [%sp + 8], %o0",
            "ld [%o0 + %o1], %o2",
            "st %o0, [%sp - 4]",
            "ldub [%o3], %o4",
            "sth %l2, [%fp - 12]",
            "sethi 0x12345, %o0",
            "halt",
            "nop",
            "ret",
        ],
    )
    def test_roundtrip_text_word_text(self, text):
        word = reassemble(text)
        printed = disassemble(word, BASE)
        assert reassemble(printed) == word

    @pytest.mark.parametrize("branch", ["ba", "bne", "be", "bg", "bleu", "bcs"])
    @pytest.mark.parametrize("annul", [False, True])
    def test_branch_roundtrip(self, branch, annul):
        text = f"{branch}{',a' if annul else ''} {BASE + 64:#x}"
        word = reassemble(text)
        printed = disassemble(word, BASE)
        assert reassemble(printed) == word

    def test_call_target(self):
        word = reassemble(f"call {BASE + 400:#x}")
        assert disassemble(word, BASE) == f"call {BASE + 400:#x}"

    def test_ret_recognized(self):
        assert disassemble(reassemble("ret"), BASE) == "ret"

    def test_illegal_rendered_as_word(self):
        assert disassemble(0x00000001).startswith(".word")


class TestPropertyRoundTrip:
    @given(
        op3=st.sampled_from([spec.op3 for spec in S.ARITH_OPS if spec.kind == "alu"]),
        rd=st.integers(0, 31),
        rs1=st.integers(0, 31),
        rs2=st.integers(0, 31),
    )
    def test_arith_reg_roundtrip(self, op3, rd, rs1, rs2):
        word = S.enc_arith_reg(op3, rd, rs1, rs2)
        assert reassemble(disassemble(word, BASE)) == word

    @given(
        op3=st.sampled_from([spec.op3 for spec in S.ARITH_OPS if spec.kind == "alu"]),
        rd=st.integers(0, 31),
        rs1=st.integers(0, 31),
        imm=st.integers(-4096, 4095),
    )
    def test_arith_imm_roundtrip(self, op3, rd, rs1, imm):
        word = S.enc_arith_imm(op3, rd, rs1, imm)
        assert reassemble(disassemble(word, BASE)) == word

    @given(
        op3=st.sampled_from([spec.op3 for spec in S.MEM_OPS]),
        rd=st.integers(0, 31),
        rs1=st.integers(0, 31),
        imm=st.integers(-4096, 4095),
    )
    def test_mem_imm_roundtrip(self, op3, rd, rs1, imm):
        word = S.enc_mem_imm(op3, rd, rs1, imm)
        assert reassemble(disassemble(word, BASE)) == word

    @given(
        cond=st.integers(0, 15),
        annul=st.booleans(),
        disp=st.integers(-500, 500),
    )
    def test_branch_roundtrip(self, cond, annul, disp):
        word = S.enc_branch(cond, disp, annul)
        assert reassemble(disassemble(word, BASE)) == word


class TestProgramListing:
    def test_labels_and_text(self):
        program = assemble(
            """
            set 3, %o0
        loop:
            subcc %o0, 1, %o0
            bne loop
            nop
            halt
        """
        )
        listing = disassemble_program(program)
        assert "loop:" in listing
        assert "subcc %o0, 1, %o0" in listing
        assert "halt" in listing

    def test_full_workload_disassembles(self):
        from repro.workloads.suite import build_cached

        program = build_cached("li", 1)
        listing = disassemble_program(program)
        assert listing.count("\n") >= len(program.text_words) - 1
        assert ".word" not in listing  # every word decodes
