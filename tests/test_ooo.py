"""Co-simulation tests for the three out-of-order simulator
implementations: reference (conventional), FastSim (hand-coded
memoizing), and the Facile-compiled simulator must be **cycle-exact**
with each other and architecturally exact with the golden functional
simulator."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.funcsim import FunctionalSim
from repro.ooo.common import MachineConfig
from repro.ooo.facile_ooo import run_facile_ooo
from repro.ooo.fastsim import run_fastsim
from repro.ooo.reference import run_reference
from repro.workloads.suite import WORKLOADS, build_cached

LOOP_SRC = """
        set 40, %o0
        clr %o1
        set buf, %o2
loop:   ld [%o2], %o3
        add %o1, %o3, %o1
        st %o1, [%o2 + 4]
        subcc %o0, 1, %o0
        bne loop
        nop
        halt
        .data
buf:    .word 3
        .space 12
"""

CALL_SRC = """
        set 5, %o0
        clr %o5
outer:  call work
        nop
        add %o5, %o0, %o5
        subcc %o0, 1, %o0
        bne outer
        nop
        halt
work:   set 3, %o1
inner:  subcc %o1, 1, %o1
        bne inner
        nop
        ret
        nop
"""

ANNUL_SRC = """
        set 10, %o0
        clr %o1
loop:   subcc %o0, 1, %o0
        bne,a loop
        add %o1, 2, %o1   ! annulled when fall-through
        halt
"""

MUL_DIV_SRC = """
        set 12, %o0
        set 240, %o1
        clr %o2
loop:   umul %o0, 3, %o3
        udiv %o1, %o0, %o4
        add %o2, %o3, %o2
        add %o2, %o4, %o2
        subcc %o0, 1, %o0
        bne loop
        nop
        halt
"""


def stat_sig(stats):
    return (
        stats.cycles,
        stats.retired,
        stats.branches,
        stats.mispredicts,
        stats.loads,
        stats.stores,
    )


def run_all_three(program, config=None):
    ref = run_reference(program, config)
    fast = run_fastsim(program, config, memoize=True)
    facile = run_facile_ooo(program, config, memoized=True)
    return ref, fast, facile


@pytest.mark.parametrize(
    "src", [LOOP_SRC, CALL_SRC, ANNUL_SRC, MUL_DIV_SRC], ids=["loop", "call", "annul", "muldiv"]
)
class TestCycleExactAgreement:
    def test_all_simulators_agree(self, src):
        program = assemble(src)
        ref, fast, facile = run_all_three(program)
        assert stat_sig(ref.stats) == stat_sig(fast.stats)
        assert stat_sig(ref.stats) == stat_sig(facile.stats)

    def test_architectural_state_matches_golden(self, src):
        program = assemble(src)
        golden = FunctionalSim.for_program(program)
        golden.run()
        ref, fast, facile = run_all_three(program)
        assert ref.func.regs == golden.regs
        assert fast.func.regs == golden.regs
        assert list(facile.ctx.read_global("R")) == golden.regs
        assert ref.stats.retired == golden.instret

    def test_memoized_equals_nonmemoized(self, src):
        program = assemble(src)
        memo = run_fastsim(program, memoize=True)
        plain = run_fastsim(program, memoize=False)
        assert stat_sig(memo.stats) == stat_sig(plain.stats)
        facile_m = run_facile_ooo(program, memoized=True)
        facile_p = run_facile_ooo(program, memoized=False)
        assert stat_sig(facile_m.stats) == stat_sig(facile_p.stats)


class TestTimingBehaviour:
    def test_ooo_faster_than_sequential(self):
        program = assemble(LOOP_SRC)
        sim = run_reference(program)
        assert sim.stats.ipc > 1.0  # out-of-orderness visible

    def test_dependence_chain_limits_ipc(self):
        chain = "\n".join(["        add %o0, 1, %o0"] * 40)
        src = f"        clr %o0\n{chain}\n        halt\n"
        sim = run_reference(assemble(src))
        # A pure dependence chain cannot exceed 1 instruction per cycle
        # (plus pipeline fill).
        assert sim.stats.ipc < 1.3

    def test_independent_ops_reach_high_ipc(self):
        body = []
        for i in range(10):
            for r in range(4):
                body.append(f"        add %l{r}, 1, %l{r}")
        src = "\n".join(body) + "\n        halt\n"
        sim = run_reference(assemble(src))
        assert sim.stats.ipc > 2.0

    def test_mispredict_costs_cycles(self):
        cfg_cheap = MachineConfig(mispredict_penalty=0)
        cfg_dear = MachineConfig(mispredict_penalty=10)
        # Alternating branch the bimodal predictor cannot learn.
        src = """
            set 40, %o0
            clr %o1
        loop:
            and %o0, 1, %o2
            cmp %o2, 0
            be skip
            nop
            add %o1, 1, %o1
        skip:
            subcc %o0, 1, %o0
            bne loop
            nop
            halt
        """
        cheap = run_reference(assemble(src), cfg_cheap)
        dear = run_reference(assemble(src), cfg_dear)
        assert dear.stats.cycles > cheap.stats.cycles
        assert dear.stats.mispredicts == cheap.stats.mispredicts > 0

    def test_cache_misses_slow_down_loads(self):
        # Stride through a large range (every line misses) vs hitting
        # one line repeatedly.
        def src(stride):
            return f"""
            set 200, %o0
            set buf, %o2
        loop:
            ld [%o2], %o3
            add %o2, {stride}, %o2
            subcc %o0, 1, %o0
            bne loop
            nop
            halt
            .data
        buf:    .space 16384
        """

        hot = run_reference(assemble(src(0)))
        cold = run_reference(assemble(src(64)))
        assert cold.stats.cycles > hot.stats.cycles

    def test_window_fills_under_long_latency(self):
        cfg = MachineConfig(window_size=4)
        big = MachineConfig(window_size=32)
        src = """
            set 30, %o0
        loop:
            udiv %o0, 3, %o1
            add %o1, 1, %o2
            add %o2, 1, %o3
            add %o3, 1, %o4
            subcc %o0, 1, %o0
            bne loop
            nop
            halt
        """
        small_sim = run_reference(assemble(src), cfg)
        big_sim = run_reference(assemble(src), big)
        assert small_sim.stats.cycles >= big_sim.stats.cycles


class TestFastForwardingBehaviour:
    LONG_LOOP = LOOP_SRC.replace("set 40, %o0", "set 500, %o0")

    def test_fastsim_replays_most_cycles(self):
        program = assemble(self.LONG_LOOP)
        sim = run_fastsim(program, memoize=True)
        assert sim.mstats.cycles_fast > 5 * sim.mstats.cycles_slow

    def test_facile_replays_most_cycles(self):
        program = assemble(self.LONG_LOOP)
        run = run_facile_ooo(program, memoized=True)
        assert run.run_stats.steps_fast > 5 * run.run_stats.steps_slow

    def test_fastsim_memo_limit_preserves_results(self):
        program = assemble(LOOP_SRC)
        limited = run_fastsim(program, memoize=True, memo_limit_bytes=4000)
        unlimited = run_fastsim(program, memoize=True)
        assert limited.mstats.clears > 0
        assert stat_sig(limited.stats) == stat_sig(unlimited.stats)

    def test_facile_cache_limit_preserves_results(self):
        program = assemble(LOOP_SRC)
        limited = run_facile_ooo(program, memoized=True, cache_limit_bytes=30_000)
        unlimited = run_facile_ooo(program, memoized=True)
        assert limited.engine.cache.stats.clears > 0
        assert stat_sig(limited.stats) == stat_sig(unlimited.stats)

    def test_ablation_flags_do_not_change_results(self):
        program = assemble(LOOP_SRC)
        base = run_facile_ooo(program, memoized=True)
        no_coalesce = run_facile_ooo(program, memoized=True, coalesce=False)
        no_links = run_facile_ooo(program, memoized=True, index_links=False)
        flush_all = run_facile_ooo(program, memoized=True, flush_policy="all")
        for variant in (no_coalesce, no_links, flush_all):
            assert stat_sig(variant.stats) == stat_sig(base.stats)


@pytest.mark.parametrize("name", ["compress", "li", "vortex", "mgrid"])
class TestWorkloadAgreement:
    """Cross-simulator agreement on real (minic-compiled) workloads."""

    def test_three_way_cycle_exact(self, name):
        program = build_cached(name, WORKLOADS[name].test_scale)
        ref = run_reference(program)
        fast = run_fastsim(program, memoize=True)
        facile = run_facile_ooo(program, memoized=True)
        assert stat_sig(ref.stats) == stat_sig(fast.stats) == stat_sig(facile.stats)


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(WORKLOADS))
class TestFullMatrixAgreement:
    """The full 18-workload three-way cycle-exactness matrix."""

    def test_three_way_cycle_exact(self, name):
        program = build_cached(name, WORKLOADS[name].test_scale)
        ref = run_reference(program)
        fast = run_fastsim(program, memoize=True)
        facile = run_facile_ooo(program, memoized=True)
        assert stat_sig(ref.stats) == stat_sig(fast.stats) == stat_sig(facile.stats)
