"""Unit tests for Facile semantic analysis."""

import pytest

from repro.facile import SemanticError
from repro.facile.diagnostics import DiagnosticSink
from repro.facile.parser import parse
from repro.facile.sema import analyze

HEADER = (
    "token instruction[32] fields op 24:31, rl 19:23, imm 0:12;"
    "pat add = op==0; pat bz = op==1;"
)


def check(src, require_main=False):
    return analyze(parse(src), require_main=require_main)


class TestSymbolResolution:
    def test_undefined_name_rejected(self):
        with pytest.raises(SemanticError, match="undefined name"):
            check("fun f() { val x = y + 1; }")

    def test_local_scoping(self):
        check("fun f() { val x = 1; if (x) { val y = x; x = y; } }")

    def test_block_scope_does_not_leak(self):
        with pytest.raises(SemanticError, match="undefined name"):
            check("fun f() { if (1) { val y = 1; } val z = y; }")

    def test_globals_visible_everywhere(self):
        check("val g = 0; fun f() { g = g + 1; }")

    def test_params_visible(self):
        check("fun f(a, b) { val c = a + b; }")

    def test_fields_visible_only_in_pattern_context(self):
        check(HEADER + "sem add { val x = imm; };")
        with pytest.raises(SemanticError, match="undefined name"):
            check(HEADER + "fun f() { val x = imm; }")

    def test_fields_visible_in_pat_switch_arm(self):
        check(HEADER + "fun f(pc) { switch (pc) { pat add: val x = imm; } }")

    def test_cannot_assign_to_field(self):
        with pytest.raises(SemanticError, match="token field"):
            check(HEADER + "sem add { imm = 1; };")

    def test_assignment_to_undefined_rejected(self):
        with pytest.raises(SemanticError, match="undefined"):
            check("fun f() { nothere = 1; }")

    def test_duplicate_global_rejected(self):
        with pytest.raises(SemanticError, match="duplicate"):
            check("val g = 0; val g = 1;")

    def test_global_shadowing_builtin_rejected(self):
        with pytest.raises(SemanticError, match="built-in"):
            check("val mem_read = 0;")

    def test_fun_shadowing_field_rejected(self):
        with pytest.raises(SemanticError, match="shadows a token field"):
            check(HEADER + "fun imm() { }")


class TestCalls:
    def test_call_unknown_function(self):
        with pytest.raises(SemanticError, match="undefined function"):
            check("fun f() { nosuch(); }")

    def test_fun_arity_checked(self):
        with pytest.raises(SemanticError, match="expects 2"):
            check("fun g(a, b) { } fun f() { g(1); }")

    def test_extern_arity_checked(self):
        with pytest.raises(SemanticError, match="expects 3"):
            check("extern cache(3); fun f() { cache(1); }")

    def test_builtin_arity_checked(self):
        with pytest.raises(SemanticError, match="expects 1"):
            check("fun f() { mem_read(1, 2); }")

    def test_attr_arity_checked(self):
        with pytest.raises(SemanticError, match=r"\?sext expects 1"):
            check("fun f(x) { val y = x?sext(1, 2); }")

    def test_unknown_attr_rejected(self):
        with pytest.raises(SemanticError, match="unknown attribute"):
            check("fun f(x) { val y = x?frobnicate(); }")


class TestRecursionBan:
    def test_direct_recursion_rejected(self):
        with pytest.raises(SemanticError, match="recursion"):
            check("fun f() { f(); }")

    def test_mutual_recursion_rejected(self):
        with pytest.raises(SemanticError, match="recursion"):
            check("fun f() { g(); } fun g() { f(); }")

    def test_long_cycle_rejected(self):
        with pytest.raises(SemanticError, match="recursion"):
            check("fun a() { b(); } fun b() { c(); } fun c() { a(); }")

    def test_diamond_call_graph_allowed(self):
        check("fun d() { } fun b() { d(); } fun c() { d(); } fun a() { b(); c(); }")

    def test_call_order_is_reverse_topological(self):
        info = check("fun leaf() { } fun mid() { leaf(); } fun top() { mid(); }")
        order = info.call_order
        assert order.index("leaf") < order.index("mid") < order.index("top")


class TestStructure:
    def test_break_outside_loop_rejected(self):
        with pytest.raises(SemanticError, match="break outside"):
            check("fun f() { break; }")

    def test_continue_outside_loop_rejected(self):
        with pytest.raises(SemanticError, match="continue outside"):
            check("fun f() { continue; }")

    def test_break_inside_loop_ok(self):
        check("fun f() { while (1) { break; } }")

    def test_sem_for_unknown_pattern(self):
        with pytest.raises(SemanticError, match="unknown pattern"):
            check(HEADER + "sem nosuch { };")

    def test_duplicate_sem(self):
        with pytest.raises(SemanticError, match="duplicate sem"):
            check(HEADER + "sem add { }; sem add { };")

    def test_switch_multiple_defaults(self):
        with pytest.raises(SemanticError, match="multiple default"):
            check("fun f(x) { switch (x) { default: x = 1; default: x = 2; } }")

    def test_main_required_for_simulators(self):
        with pytest.raises(SemanticError, match="'main'"):
            check("fun notmain() { }", require_main=True)

    def test_main_present(self):
        info = check("val init = 0; fun main(pc) { init = pc; }", require_main=True)
        assert "main" in info.functions

    def test_switch_unknown_pattern_in_case(self):
        with pytest.raises(SemanticError, match="unknown pattern"):
            check(HEADER + "fun f(pc) { switch (pc) { pat nosuch: pc = 0; } }")


class TestBatchedDiagnostics:
    def test_recursion_reports_full_cycle_path(self):
        with pytest.raises(SemanticError, match="cycle: f -> g -> f"):
            check("fun f() { g(); } fun g() { f(); }")

    def test_long_cycle_path(self):
        with pytest.raises(SemanticError, match="cycle: a -> b -> c -> a"):
            check("fun a() { b(); } fun b() { c(); } fun c() { a(); }")

    def test_multiple_errors_batched_into_one_raise(self):
        with pytest.raises(SemanticError) as exc:
            check("fun f() { val x = nope1; } fun g() { val y = nope2; }")
        text = str(exc.value)
        assert "nope1" in text and "nope2" in text
        assert text.startswith("2 errors:")

    def test_missing_main_carries_code_and_span(self):
        with pytest.raises(SemanticError) as exc:
            check("fun notmain() { }", require_main=True)
        assert exc.value.code == "FAC019"

    def test_external_sink_collects_without_raising(self):
        sink = DiagnosticSink()
        analyze(parse("fun f() { val x = nope; }"), require_main=False, sink=sink)
        assert [d.code for d in sink.errors] == ["FAC010"]

    def test_undefined_name_does_not_cascade(self):
        # One bad name, used three times: one diagnostic, not three.
        sink = DiagnosticSink()
        analyze(
            parse("fun f() { val x = nope; val y = nope; nope = 1; }"),
            require_main=False,
            sink=sink,
        )
        assert len(sink.errors) == 1
