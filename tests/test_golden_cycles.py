"""Golden regression values: exact cycle counts for every workload.

These pins protect the *timing model* itself.  The co-simulation tests
catch the three implementations drifting apart; this file catches all
of them drifting **together** (an accidental change to issue rules,
latencies, the cache, or the predictor would silently alter every
reproduction table).  If a model change is intentional, regenerate with:

    python -c "import tests.test_golden_cycles as g; g.regenerate()"
"""

import pytest

from repro.ooo.inorder import run_inorder
from repro.ooo.reference import run_reference
from repro.workloads.suite import WORKLOADS, build_cached

# (ooo cycles, retired, branches, mispredicts, loads, stores, inorder cycles)
GOLDEN = {
    "applu": (13710, 50106, 2117, 12, 10317, 6696, 50485),
    "apsi": (19365, 55664, 2381, 78, 11582, 7644, 64310),
    "compress": (22502, 70052, 6197, 804, 15531, 9520, 73544),
    "fpppp": (2436, 7890, 11, 3, 1747, 1458, 8270),
    "gcc": (70598, 225378, 37899, 1056, 33293, 18958, 237018),
    "go": (43553, 104956, 11829, 1887, 16900, 11214, 122167),
    "hydro2d": (20032, 76024, 1850, 42, 16497, 10899, 77186),
    "ijpeg": (88559, 234508, 7927, 598, 55325, 37621, 270633),
    "li": (2182, 6164, 581, 122, 1171, 840, 6715),
    "m88ksim": (3552, 10973, 960, 134, 2111, 1530, 11513),
    "mgrid": (41397, 154314, 6166, 20, 32743, 20990, 156291),
    "perl": (10063, 30224, 1547, 103, 7371, 4921, 32057),
    "su2cor": (9520, 35810, 776, 9, 8365, 5333, 36432),
    "swim": (19347, 73655, 1454, 38, 16339, 10594, 74865),
    "tomcatv": (21907, 80251, 3377, 86, 17446, 11424, 81657),
    "turb3d": (40619, 147867, 5432, 665, 38460, 22837, 150234),
    "vortex": (9228, 29058, 3535, 41, 5454, 2553, 29941),
    "wave5": (12267, 38829, 2176, 159, 7689, 5126, 41093),
}


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_golden_cycle_counts(name):
    program = build_cached(name, WORKLOADS[name].test_scale)
    ooo = run_reference(program)
    expected = GOLDEN[name]
    actual = (
        ooo.stats.cycles,
        ooo.stats.retired,
        ooo.stats.branches,
        ooo.stats.mispredicts,
        ooo.stats.loads,
        ooo.stats.stores,
    )
    assert actual == expected[:6], (
        f"{name}: OOO timing model changed — got {actual}, pinned {expected[:6]}. "
        "If intentional, regenerate the GOLDEN table."
    )


@pytest.mark.parametrize("name", ["li", "go", "mgrid", "fpppp"])
def test_golden_inorder_cycles(name):
    program = build_cached(name, WORKLOADS[name].test_scale)
    inorder = run_inorder(program)
    assert inorder.stats.cycles == GOLDEN[name][6]


def test_ooo_always_beats_inorder():
    for name, row in GOLDEN.items():
        assert row[0] < row[6], f"{name}: OOO should need fewer cycles than in-order"


def regenerate() -> None:  # pragma: no cover - maintenance helper
    print("GOLDEN = {")
    for name in sorted(WORKLOADS):
        program = build_cached(name, WORKLOADS[name].test_scale)
        ooo = run_reference(program)
        inorder = run_inorder(program)
        s = ooo.stats
        print(
            f'    "{name}": ({s.cycles}, {s.retired}, {s.branches}, '
            f"{s.mispredicts}, {s.loads}, {s.stores}, {inorder.stats.cycles}),"
        )
    print("}")
