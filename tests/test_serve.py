"""Simulation service tests: protocol, worker pool, and socket server.

The pool tests exercise the fleet-safety contract end to end with real
spawned worker processes: shard affinity, warm-snapshot reuse, the
requeue-once crash budget, timeout kill-and-continue, and worker-side
error reporting.  The server tests drive the asyncio front end through
the blocking client over a real localhost socket.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import measure
from repro.serve.client import ServeClient
from repro.serve.protocol import (
    JobSpec,
    ProtocolError,
    decode_msg,
    encode_msg,
    shard_index,
)
from repro.serve.server import ServerThread
from repro.serve.worker import WorkerPool
from repro.workloads.suite import build_cached


def drain(pool, want, timeout=120.0, events=None):
    """Pump pool events until ``want`` jobs resolve; returns
    {job_id: terminal event}."""
    done = {}
    while len(done) < want:
        ev = pool.next_event(timeout=timeout)
        assert ev is not None, f"pool went quiet; resolved only {done}"
        if events is not None and ev["event"] != "progress":
            events.append(ev)
        if ev["event"] in ("result", "failed"):
            done[ev["job"]] = ev
    return done


class TestProtocol:
    def test_roundtrip(self):
        spec = JobSpec(workload="compress", scale=1, simulator="fastsim")
        again = JobSpec.from_json(spec.to_json())
        assert again == spec

    def test_exactly_one_program_source(self):
        with pytest.raises(ProtocolError):
            JobSpec().validate()
        with pytest.raises(ProtocolError):
            JobSpec(workload="compress", asm="nop").validate()

    def test_rejects_unknowns(self):
        with pytest.raises(ProtocolError, match="unknown job fields"):
            JobSpec.from_json({"workload": "compress", "bogus": 1})
        with pytest.raises(ProtocolError, match="unknown simulator"):
            JobSpec(workload="compress", simulator="qemu").validate()
        with pytest.raises(ProtocolError, match="unknown workload"):
            JobSpec(workload="spice").validate()

    def test_shard_key_groups_same_cell(self):
        a = JobSpec(workload="compress", scale=1)
        b = JobSpec(workload="compress", scale=1, timeout_s=9.0, job_id=7)
        c = JobSpec(workload="compress", scale=2)
        # Identity excludes timeouts/ids; includes anything that moves
        # the snapshot address.
        assert a.shard_key() == b.shard_key()
        assert a.shard_key() != c.shard_key()
        assert shard_index(a, 5) == shard_index(b, 5)

    def test_shard_index_spreads(self):
        sims = ("facile", "fastsim", "simplescalar")
        idx = {
            shard_index(JobSpec(workload=w, scale=1, simulator=s), 8)
            for w in ("compress", "go", "li", "gcc", "perl")
            for s in sims
        }
        assert len(idx) > 1  # not everything on one shard

    def test_framing(self):
        raw = encode_msg({"op": "ping"})
        assert raw.endswith(b"\n")
        assert decode_msg(raw[:-1]) == {"op": "ping"}
        with pytest.raises(ProtocolError):
            decode_msg(b"not json")
        with pytest.raises(ProtocolError):
            decode_msg(b"[1,2]")
        with pytest.raises(ProtocolError):
            encode_msg({"x": "y" * (1 << 21)})


@pytest.mark.slow
class TestWorkerPool:
    def test_results_match_serial_and_warm_reuse(self, tmp_path):
        with WorkerPool(workers=2, cache_dir=tmp_path) as pool:
            j1 = pool.submit(JobSpec(workload="compress", scale=1))
            j2 = pool.submit(JobSpec(workload="compress", scale=1))
            done = drain(pool, 2)
        golden = measure(
            "facile", build_cached("compress", 1), workload_name="compress"
        )
        assert done[j1]["event"] == done[j2]["event"] == "result"
        assert done[j1]["cycles"] == golden.cycles == done[j2]["cycles"]
        assert done[j1]["retired"] == golden.retired
        # Same cell → same shard → the second run replays the first's
        # snapshot warm.
        assert done[j2]["snapshot_hit"] or done[j1]["snapshot_hit"]

    def test_crash_once_requeues_and_completes(self, tmp_path):
        flag = tmp_path / "crash-flag"
        flag.touch()
        events = []
        with WorkerPool(workers=2, cache_dir=tmp_path) as pool:
            j = pool.submit(
                JobSpec(workload="compress", scale=1, crash=str(flag))
            )
            done = drain(pool, 1, events=events)
        assert done[j]["event"] == "result"
        kinds = [e["event"] for e in events]
        assert "requeued" in kinds
        assert not flag.exists()  # the hook consumed its flag
        assert pool.stats.crashes == 1 and pool.stats.requeued == 1

    def test_crash_always_fails_after_requeue_budget(self, tmp_path):
        with WorkerPool(workers=2, cache_dir=tmp_path) as pool:
            j = pool.submit(
                JobSpec(workload="compress", scale=1, crash="always")
            )
            done = drain(pool, 1)
            assert done[j]["event"] == "failed"
            assert done[j]["kind"] == "crash"
            assert "requeue" in done[j]["reason"]
            # budget = 1 requeue → exactly two attempts, two crashes
            assert pool.stats.crashes == 2
            # ...and the respawned worker is healthy afterwards.
            j2 = pool.submit(JobSpec(workload="compress", scale=1))
            done = drain(pool, 1)
        assert done[j2]["event"] == "result"

    def test_timeout_kills_and_pool_survives(self, tmp_path):
        with WorkerPool(workers=1, cache_dir=tmp_path) as pool:
            j1 = pool.submit(
                JobSpec(workload="li", scale=4, timeout_s=0.05)
            )
            j2 = pool.submit(JobSpec(workload="compress", scale=1))
            done = drain(pool, 2)
        assert done[j1]["event"] == "failed"
        assert done[j1]["kind"] == "timeout"
        assert done[j2]["event"] == "result"
        assert pool.stats.timeouts == 1

    def test_worker_error_reported_not_retried(self, tmp_path):
        with WorkerPool(workers=1, cache_dir=tmp_path) as pool:
            j = pool.submit(JobSpec(asm="definitely not sparc"))
            done = drain(pool, 1)
        assert done[j]["event"] == "failed"
        assert done[j]["kind"] == "error"
        assert pool.stats.errors == 1 and pool.stats.crashes == 0


@pytest.mark.slow
class TestServer:
    def test_socket_roundtrip(self, tmp_path):
        with ServerThread(workers=2, cache_dir=str(tmp_path)) as srv:
            with ServeClient(port=srv.port, timeout=180.0) as client:
                assert client.ping()["event"] == "pong"
                job = client.submit(JobSpec(workload="compress", scale=1))
                seen = []
                final = client.wait(
                    job, on_event=lambda e: seen.append(e["event"])
                )
                assert final["event"] == "result"
                assert final["cycles"] > 0
                assert "started" in seen
                stats = client.stats()
                assert stats["event"] == "stats"
                assert stats["done"] == 1
                assert client.shutdown()["event"] == "bye"

    def test_rejects_bad_submissions(self, tmp_path):
        with ServerThread(workers=1, cache_dir=str(tmp_path)) as srv:
            with ServeClient(port=srv.port, timeout=60.0) as client:
                client.send({"op": "submit", "job": {"workload": "nope"}})
                ev = client.recv_event()
                assert ev["event"] == "error"
                assert "unknown workload" in ev["reason"]
                client.send({"op": "frobnicate"})
                assert "unknown op" in client.recv_event()["reason"]
                client.send({"op": "shutdown"})
                assert client.recv_event()["event"] == "bye"
