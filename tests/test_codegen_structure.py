"""Structural assertions on the generated engine source code —
the properties that make fast-forwarding actually fast."""

import pytest

from repro.facile import compile_source

HEADER = "val init = 0;\n"


def build(src, **kwargs):
    return compile_source(HEADER + src, **kwargs)


class TestSlowEngineStructure:
    def test_recovery_guards_on_dynamic_statements(self):
        result = build("val g = 0; fun main(pc) { g = mem_read(pc); init = pc; }")
        assert "if not _M.recover:" in result.simulator.source_slow

    def test_verify_protocol_emitted(self):
        result = build(
            "extern f(1); val g = 0;"
            "fun main(pc) { val v = f(pc)?verify; g = v; init = pc; }"
        )
        slow = result.simulator.source_slow
        assert "_M.begin_verify(" in slow
        assert "_M.pop_verify()" in slow
        assert "_M.note_verify(" in slow

    def test_rt_static_locals_are_python_locals(self):
        result = build("fun main(pc) { val x = pc * 2; init = x; }")
        slow = result.simulator.source_slow
        # x lives as a renamed Python local, not a ctx slot.
        assert "x__" in slow

    def test_local_like_global_becomes_local_with_flush(self):
        result = build("val PC = 0; fun main(pc) { PC = pc; init = PC; }")
        slow = result.simulator.source_slow
        assert "g_PC = " in slow
        assert "PC" in result.simulator.division_summary["flush_globals"]

    def test_constant_global_read_from_slot(self):
        result = build(
            "val table = array(4){9}; val g = 0;"
            "fun main(pc) { g = mem_read(pc) + table[1]; init = pc; }"
        )
        # The constant element read appears as a placeholder computed
        # from the slot, never re-recorded per step as dynamic.
        assert "table" not in result.simulator.division_summary["dynamic_vars"]


class TestFastEngineStructure:
    def test_only_dynamic_code_in_fast_engine(self):
        result = build(
            "val g = 0;"
            "fun main(pc) {"
            "  val a = pc * 1234567;"  # rt-static busywork
            "  g = mem_read(a);"
            "  init = pc + 4;"
            "}"
        )
        fast = result.simulator.source_fast
        assert "1234567" not in fast  # computed once, recorded as data
        assert "read32" in fast

    def test_action_functions_signature(self):
        result = build("val g = 0; fun main(pc) { g = mem_read(pc); init = pc; }")
        assert "def _a0(_ctx, _S, _data):" in result.simulator.source_fast
        assert "fast_actions = [" in result.simulator.source_fast

    def test_verify_action_returns_value(self):
        result = build(
            "extern f(0); val g = 0;"
            "fun main(pc) { val v = f()?verify; g = v; init = pc; }"
        )
        fast = result.simulator.source_fast
        assert "return" in fast

    def test_container_placeholders_frozen(self):
        # An rt-static array flowing whole into a dynamic expression must
        # be frozen before being recorded.
        result = build(
            "val g = 0;"
            "fun main(pc) {"
            "  val a = array(4){pc};"
            "  g = a[mem_read(pc) & 3];"  # dynamic index into rt-static array
            "  init = pc;"
            "}"
        )
        assert "_freeze(" in result.simulator.source_slow

    def test_coalescing_merges_adjacent_actions(self):
        src = (
            "val g = 0; val h = 0;"
            "fun main(pc) { g = mem_read(pc); h = mem_read(pc + 4); init = pc; }"
        )
        merged = build(src, coalesce=True)
        split = build(src, coalesce=False)
        assert (
            merged.simulator.division_summary["n_actions"]
            < split.simulator.division_summary["n_actions"]
        )

    def test_dispatch_table_dense_and_aligned(self):
        result = build(
            "val g = 0;"
            "fun main(pc) {"
            "  if (pc == 0) { g = mem_read(0); } else { g = mem_read(4); }"
            "  init = pc;"
            "}"
        )
        sim = result.simulator
        assert len(sim.fast_actions) == sim.division_summary["n_actions"]
        for fn, is_verify in sim.fast_actions:
            assert callable(fn)
            assert isinstance(is_verify, bool)


class TestPlainEngineStructure:
    def test_no_memoization_artifacts(self):
        result = build(
            "extern f(1); val g = 0;"
            "fun main(pc) { val v = f(pc)?verify; g = v + mem_read(pc); init = pc; }"
        )
        plain = result.simulator.source_plain
        assert "_M." not in plain
        assert "_ph" not in plain
        assert "recover" not in plain

    def test_verify_degenerates_to_value(self):
        result = build(
            "extern f(1); val g = 0;"
            "fun main(pc) { g = f(pc)?verify; init = pc; }"
        )
        assert "call_extern" in result.simulator.source_plain


class TestSetupStructure:
    def test_initializers_in_declaration_order(self):
        result = build(
            "val a = 5; val b = a + 1;"
            "fun main(pc) { init = pc + b; halt(); }"
        )
        ctx = result.simulator.make_context()
        assert ctx.read_global("a") == 5
        assert ctx.read_global("b") == 6

    def test_array_initializer(self):
        result = build("val t = array(6){7}; fun main(pc) { init = t[0]; halt(); }")
        ctx = result.simulator.make_context()
        assert ctx.read_global("t") == [7] * 6
