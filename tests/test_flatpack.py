"""Flat-packed action cache tests (the perf-opt tentpole).

Covers the contracts the packed layout must keep:

* pack -> unpack is a lossless round trip — identical record-tree
  structure, identical ``EndRecord`` objects (so ``likely_next``
  identity links survive), and byte-exact accounting in both
  directions;
* packed replay produces the same simulation and the same ``RunStats``
  as the object-tree interpreter, including through verify-miss
  recovery (which lazily unpacks, grows the tree, and repacks);
* eviction refunds stay exact under interning — every release path
  (generational eviction, full clears, stale-entry overwrite) leaves
  ``bytes_current`` equal to a from-scratch recount;
* the interning pool itself: refcounts, free-list recycling, and a
  randomized intern/release audit;
* the iterative ``freeze``/``thaw``/``value_bytes`` survive structures
  far deeper than the recursion limit (the depth-torture satellite);
* the same guarantees for the hand-coded FastSim port.
"""

import pytest
from hypothesis import given, strategies as st

from repro.facile.runtime import (
    DICT_TAG,
    ENDMARK,
    ActionCache,
    InternPool,
    Memoizer,
    PackedChain,
    _pack_records,
    _packed_to_records,
    entry_first_record,
    freeze,
    thaw,
    value_bytes,
)

from .toyisa import (
    HALT_WORD,
    add_imm,
    bz,
    compile_toy,
    countdown_program,
    run_memoized,
)


@pytest.fixture(scope="module")
def toy():
    return compile_toy().simulator


def registers(ctx):
    return list(ctx.read_global("R"))


def multi_loop_program(n_loops: int, iters: int) -> list[int]:
    """Sequential countdown loops with varied preambles (distinct hot
    working sets over time — the eviction stress shape)."""
    words: list[int] = []
    for k in range(n_loops):
        words += [add_imm(2, 2, j + 1) for j in range(k % 3)]
        words += [
            add_imm(1, 0, iters),
            add_imm(1, 1, 0x1FFF),
            bz(1, 8),
            bz(0, -8),
        ]
    return words + [HALT_WORD]


def tree_signature(rec):
    """Canonical structural form of a record tree (identity-free)."""
    if rec.is_end:
        return ("E",)
    if rec.is_verify:
        return (
            "V",
            rec.num,
            rec.data,
            tuple(sorted(
                (repr(val), tree_signature(s)) for val, s in rec.succ.items()
            )),
        )
    return ("A", rec.num, rec.data, tree_signature(rec.next))


def end_record_ids(rec):
    out = []
    stack = [rec]
    while stack:
        r = stack.pop()
        if r.is_end:
            out.append(id(r))
        elif r.is_verify:
            stack.extend(r.succ.values())
        else:
            stack.append(r.next)
    return out


def run_stats_tuple(stats):
    return (
        stats.steps_total,
        stats.steps_fast,
        stats.steps_slow,
        stats.steps_recovered,
        stats.actions_replayed,
    )


# -- pack/unpack round trip -----------------------------------------------------


class TestPackUnpackRoundTrip:
    def recorded_cache(self, toy, words):
        ctx, engine, _ = run_memoized(
            toy, words, trace_jit=False, flat_pack=False
        )
        return engine.cache

    def test_round_trip_preserves_structure_and_bytes(self, toy):
        cache = self.recorded_cache(toy, countdown_program(30))
        entries = [e for e in cache.entries.values() if e.complete]
        assert entries
        for entry in entries:
            before_bytes = cache.stats.bytes_current
            before_sig = tree_signature(entry.first)
            before_ends = sorted(end_record_ids(entry.first))

            cache.pack_entry(entry)
            assert entry.packed is not None and entry.first is None
            assert cache.stats.bytes_current == cache.recount_bytes()

            cache.unpack_entry(entry)
            assert entry.packed is None and entry.first is not None
            assert tree_signature(entry.first) == before_sig
            # EndRecord objects come back by identity, so likely_next
            # links into this entry's step boundaries stay valid.
            assert sorted(end_record_ids(entry.first)) == before_ends
            assert cache.stats.bytes_current == before_bytes
            assert cache.stats.bytes_current == cache.recount_bytes()
        assert cache.stats.packs == len(entries)
        assert cache.stats.unpacks == len(entries)
        # Every reference was released on unpack.
        assert cache.pool.live_values() == 0
        assert cache.pool.bytes_live == 0

    def test_packed_form_is_smaller(self, toy):
        cache = self.recorded_cache(toy, multi_loop_program(4, 40))
        unpacked = cache.stats.bytes_current
        for entry in list(cache.entries.values()):
            if entry.complete:
                cache.pack_entry(entry)
        assert cache.stats.bytes_current < unpacked
        assert cache.stats.bytes_current == cache.recount_bytes()

    def test_entry_first_record_reads_packed_without_accounting(self, toy):
        cache = self.recorded_cache(toy, countdown_program(10))
        entry = next(e for e in cache.entries.values() if e.complete)
        sig = tree_signature(entry.first)
        cache.pack_entry(entry)
        before = cache.stats.bytes_current
        assert tree_signature(entry_first_record(entry)) == sig
        # Inspection must not disturb the accounting or the layout.
        assert cache.stats.bytes_current == before
        assert entry.packed is not None

    def test_pack_records_interns_repeated_data(self):
        pool = InternPool()
        cache = ActionCache()
        m = Memoizer(cache)
        data = (0x1000, 0x1000, 7)
        for key in ((1,), (2,)):
            m.begin_step(key)
            m.action(0, data)
            m.action(1, data)
            m.end_step()
        chains = []
        for entry in cache.entries.values():
            chain, _ = _pack_records(entry.first, pool)
            chains.append(chain)
        # Four records, one pooled value.
        assert pool.live_values() == 1
        assert pool.hits == 3
        first = _packed_to_records(chains[0])
        assert first.data == data and first.next.data == data

    def test_incomplete_chain_refuses_to_pack(self):
        cache = ActionCache()
        m = Memoizer(cache)
        m.begin_step((1,))
        m.action(0, (1,))
        # No end_step: the chain has no end marker.
        entry = cache.entries[(1,)]
        from repro.facile.runtime import SimulationError
        with pytest.raises(SimulationError):
            _pack_records(entry.first, InternPool())


# -- packed replay equivalence --------------------------------------------------


class TestPackedReplayEquivalence:
    def run_both(self, toy, words, **kw):
        packed = run_memoized(toy, words, trace_jit=False, flat_pack=True, **kw)
        plain = run_memoized(toy, words, trace_jit=False, flat_pack=False, **kw)
        return packed, plain

    def test_identical_simulation_and_run_stats(self, toy):
        (pc, pe, ps), (cc, ce, cs) = self.run_both(toy, countdown_program(200))
        assert pc.halted and cc.halted
        assert registers(pc) == registers(cc)
        assert pc.retired_total == cc.retired_total
        assert run_stats_tuple(ps) == run_stats_tuple(cs)
        assert pe.cache.stats.packs > 0
        # Steady-state loop replays come from the packed form.
        assert ps.steps_fast > ps.steps_slow

    def test_recovery_unpacks_and_repacks(self, toy):
        # The countdown's bz verify forks (not-taken on the back edge,
        # taken at exit), so the packed entry must unpack for recovery
        # and repack with the grown tree.
        (pc, pe, ps), (cc, ce, cs) = self.run_both(toy, countdown_program(50))
        assert ps.steps_recovered == cs.steps_recovered > 0
        stats = pe.cache.stats
        assert stats.unpacks >= 1
        assert stats.packs > stats.unpacks  # repacked after recovery
        for entry in pe.cache.entries.values():
            if entry.complete:
                assert entry.packed is not None
        assert stats.bytes_current == pe.cache.recount_bytes()

    def test_accounting_exact_after_run(self, toy):
        (pc, pe, _), (cc, ce, _) = self.run_both(
            toy, multi_loop_program(4, 40)
        )
        for engine in (pe, ce):
            assert (
                engine.cache.stats.bytes_current
                == engine.cache.recount_bytes()
            )
        assert (
            pe.cache.stats.bytes_current < ce.cache.stats.bytes_current
        )

    def test_packed_replay_with_profile(self, toy):
        ctx, engine, _ = run_memoized(
            toy, countdown_program(5), max_steps=0, flat_pack=True,
            trace_jit=False,
        )
        engine.profile()
        stats = engine.run(max_steps=10_000)
        assert ctx.halted
        assert stats.steps_fast > 0
        # The profiled packed path attributes every replayed action.
        assert sum(engine.action_profile.values()) == stats.actions_replayed

    def test_chunked_run_matches_single_run(self, toy):
        # The chained packed loop must respect max_steps budgets.
        words = countdown_program(120)
        one_ctx, _, one_stats = run_memoized(
            toy, words, trace_jit=False, flat_pack=True
        )
        ctx, engine, _ = run_memoized(
            toy, words, max_steps=0, trace_jit=False, flat_pack=True
        )
        while not ctx.halted:
            engine.run(max_steps=7)
        assert registers(ctx) == registers(one_ctx)
        # run() returns cumulative stats; the chained packed loop must
        # have respected every 7-step budget yet covered the same run.
        assert engine.stats.steps_total == one_stats.steps_total

    def test_trace_jit_compiles_from_packed_entries(self, toy):
        words = countdown_program(400)
        packed_ctx, packed_engine, _ = run_memoized(
            toy, words, trace_jit=True, trace_threshold=8, flat_pack=True
        )
        plain_ctx, plain_engine, _ = run_memoized(
            toy, words, trace_jit=True, trace_threshold=8, flat_pack=False
        )
        assert packed_engine.traces.stats.traces_compiled > 0
        assert (
            packed_engine.traces.stats.traces_compiled
            == plain_engine.traces.stats.traces_compiled
        )
        assert registers(packed_ctx) == registers(plain_ctx)
        assert packed_ctx.retired_total == plain_ctx.retired_total


# -- eviction under interning ---------------------------------------------------


class TestPackedEviction:
    @pytest.mark.parametrize("policy", ["clear", "generational"])
    def test_limited_run_matches_unlimited(self, toy, policy):
        words = multi_loop_program(5, 30)
        base_ctx, base_engine, _ = run_memoized(
            toy, words, trace_jit=False, flat_pack=True
        )
        limit = base_engine.cache.stats.bytes_current // 3
        ctx, engine, _ = run_memoized(
            toy, words, trace_jit=False, flat_pack=True,
            cache_limit_bytes=limit, cache_evict=policy,
        )
        assert registers(ctx) == registers(base_ctx)
        assert ctx.retired_total == base_ctx.retired_total
        stats = engine.cache.stats
        if policy == "clear":
            assert stats.clears > 0
        else:
            assert stats.evictions > 0 and stats.clears == 0
        assert stats.bytes_current == engine.cache.recount_bytes()

    def test_generational_refunds_are_exact_per_round(self, toy):
        words = multi_loop_program(5, 30)
        ctx, engine, _ = run_memoized(
            toy, words, max_steps=0, trace_jit=False, flat_pack=True,
            cache_limit_bytes=1_200, cache_evict="generational",
        )
        cache = engine.cache
        rounds = 0
        while not ctx.halted:
            before = cache.stats.evictions
            engine.run(max_steps=50)
            if cache.stats.evictions > before:
                rounds += 1
                # Audit immediately after each eviction round: every
                # refund (entry-local bytes + last-reference pool
                # releases) must balance the incremental ledger.
                assert cache.stats.bytes_current == cache.recount_bytes()
        assert rounds >= 2

    def test_full_clear_empties_pool(self, toy):
        ctx, engine, _ = run_memoized(
            toy, multi_loop_program(4, 30), trace_jit=False, flat_pack=True,
            cache_limit_bytes=1_200, cache_evict="clear",
        )
        cache = engine.cache
        assert cache.stats.clears > 0
        cache.reclaim()
        assert cache.pool.bytes_live == 0
        assert cache.pool.live_values() == 0
        assert cache.stats.bytes_current == 0 == cache.recount_bytes()

    def test_stale_overwrite_releases_pool_refs(self):
        cache = ActionCache(flat_pack=True)
        m = Memoizer(cache)
        m.begin_step((1,))
        m.action(0, (42, 42))
        m.end_step()
        assert cache.entries[(1,)].packed is not None
        live = cache.pool.live_values()
        assert live > 0
        # Re-recording the same key must refund the packed entry,
        # pool references included.
        cache.create_entry((1,))
        assert cache.pool.live_values() < live
        assert cache.stats.bytes_current == cache.recount_bytes()


# -- the interning pool ---------------------------------------------------------


class TestInternPool:
    def test_second_reference_is_free(self):
        pool = InternPool()
        idx1, charged1 = pool.intern((1, 2, 3))
        idx2, charged2 = pool.intern((1, 2, 3))
        assert idx1 == idx2
        assert charged1 > 0 and charged2 == 0
        assert pool.hits == 1 and pool.misses == 1
        assert pool.bytes_saved == charged1

    def test_release_refunds_only_last_reference(self):
        pool = InternPool()
        idx, charged = pool.intern(("x", 9))
        pool.intern(("x", 9))
        assert pool.release(idx) == 0
        assert pool.bytes_live == charged
        assert pool.release(idx) == charged
        assert pool.bytes_live == 0
        assert pool.live_values() == 0

    def test_free_list_recycles_slots(self):
        pool = InternPool()
        idx, _ = pool.intern((1,))
        pool.release(idx)
        idx2, _ = pool.intern((2,))
        assert idx2 == idx  # the freed slot is reused
        assert pool.values[idx2] == (2,)

    def test_equality_keying_conflates_equal_values(self):
        # True == 1: the pool keys by equality, same as the verify
        # successor dicts downstream, so both map to one slot.
        pool = InternPool()
        a, _ = pool.intern(True)
        b, _ = pool.intern(1)
        assert a == b

    def test_clear_keeps_cumulative_counters(self):
        pool = InternPool()
        pool.intern((1,))
        pool.intern((1,))
        saved = pool.bytes_saved
        pool.clear()
        assert pool.bytes_live == 0 and pool.live_values() == 0
        assert pool.bytes_saved == saved and pool.hits == 1
        idx, _ = pool.intern((3,))
        assert pool.values[idx] == (3,)

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["intern", "release"]),
                st.integers(min_value=0, max_value=7),
            ),
            max_size=60,
        )
    )
    def test_randomized_audit(self, ops):
        """Any intern/release sequence keeps the incremental ledger
        equal to a from-scratch recount, and refunds sum exactly."""
        pool = InternPool()
        live_refs: dict[int, int] = {}
        charged = freed = 0
        for op, v in ops:
            if op == "intern":
                idx, c = pool.intern((v, v * 2))
                charged += c
                live_refs[idx] = live_refs.get(idx, 0) + 1
            else:
                held = [i for i, n in live_refs.items() if n > 0]
                if not held:
                    continue
                idx = held[v % len(held)]
                freed += pool.release(idx)
                live_refs[idx] -= 1
            assert pool.bytes_live == pool.recount()
            assert pool.bytes_live == charged - freed


# -- dict placeholder data ------------------------------------------------------


class TestDictPlaceholderData:
    def test_dict_data_survives_pack_round_trip(self):
        cache = ActionCache(flat_pack=False)
        m = Memoizer(cache)
        data = freeze({"pc": 0x1000, "regs": [1, 2]})
        assert data[0] is DICT_TAG
        m.begin_step((1,))
        m.action(0, data)
        m.begin_verify(1, data)
        m.note_verify(freeze({"taken": True}))
        m.action(2, ())
        m.end_step()
        entry = cache.entries[(1,)]
        sig = tree_signature(entry.first)
        cache.pack_entry(entry)
        cache.unpack_entry(entry)
        assert tree_signature(entry.first) == sig
        assert thaw(entry.first.data) == {"pc": 0x1000, "regs": [1, 2]}

    def test_frozen_values_are_never_dicts(self):
        # The packed replay loop discriminates a single-successor
        # expected value from a jump table by class, which is only
        # sound because freeze never emits a dict.
        for v in ({}, {"a": 1}, {"a": {"b": [1, {"c": 2}]}}, [1, {2: 3}]):
            assert not isinstance(freeze(v), dict)

    def test_thaw_inverts_freeze_on_nested_dicts(self):
        v = {"a": [1, {"b": (2, 3)}], "c": {"d": [4]}}
        assert thaw(freeze(v)) == {"a": [1, {"b": [2, 3]}], "c": {"d": [4]}}


# -- depth torture --------------------------------------------------------------


class TestDepthTorture:
    DEPTH = 50_000

    def nested_list(self):
        v = 7
        for _ in range(self.DEPTH):
            v = [v]
        return v

    def test_freeze_thaw_beyond_recursion_limit(self):
        frozen = freeze(self.nested_list())
        depth = 0
        while isinstance(frozen, tuple):
            frozen = frozen[0]
            depth += 1
        assert depth == self.DEPTH and frozen == 7

    def test_value_bytes_beyond_recursion_limit(self):
        frozen = freeze(self.nested_list())
        # 8 for the root, 8 per nested element (scalar included).
        assert value_bytes(frozen) == 8 * (self.DEPTH + 1)

    def test_thaw_beyond_recursion_limit(self):
        thawed = thaw(freeze(self.nested_list()))
        depth = 0
        while isinstance(thawed, list):
            thawed = thawed[0]
            depth += 1
        assert depth == self.DEPTH and thawed == 7

    def test_deep_dict_nesting(self):
        v = 1
        for _ in range(5_000):
            v = {"k": v}
        frozen = freeze(v)
        assert value_bytes(frozen) > 0
        thawed = thaw(frozen)
        depth = 0
        while isinstance(thawed, dict):
            thawed = thawed["k"]
            depth += 1
        assert depth == 5_000 and thawed == 1


# -- the FastSim port -----------------------------------------------------------


class TestFastSimFlatPack:
    SRC = """
        set 48, %o0
        clr %o1
    loop:
        and %o0, 1, %o2
        cmp %o2, 0
        be even
        nop
        add %o1, 3, %o1
        b join
        nop
    even:
        add %o1, 5, %o1
    join:
        subcc %o0, 1, %o0
        bne loop
        nop
        halt
    """

    def run_pair(self, **kw):
        from repro.isa.assembler import assemble
        from repro.ooo.fastsim import run_fastsim

        program = assemble(self.SRC)
        packed = run_fastsim(program, memoize=True, flat_pack=True, **kw)
        plain = run_fastsim(program, memoize=True, flat_pack=False, **kw)
        return packed, plain

    @staticmethod
    def sig(stats):
        return (stats.cycles, stats.retired, stats.branches,
                stats.mispredicts, stats.loads, stats.stores)

    def test_identical_cycles_and_exact_accounting(self):
        packed, plain = self.run_pair()
        assert self.sig(packed.stats) == self.sig(plain.stats)
        assert packed.func.regs == plain.func.regs
        assert packed.mstats.packs > 0
        assert packed.mstats.bytes_estimate == packed.recount_bytes()
        assert plain.mstats.bytes_estimate == plain.recount_bytes()
        assert packed.mstats.bytes_estimate < plain.mstats.bytes_estimate

    def test_check_miss_unpacks_and_repacks(self):
        # The alternating branch defeats the predictor, so packed
        # cycles hit check misses -> unpack, recover, repack.
        packed, plain = self.run_pair()
        assert packed.mstats.misses_check == plain.mstats.misses_check > 0
        assert packed.mstats.unpacks > 0
        assert packed.mstats.packs > packed.mstats.unpacks
        for root in packed.memo.values():
            assert root.packed is not None
        assert packed.pool.live_values() > 0

    @pytest.mark.parametrize("evict", ["clear", "generational"])
    def test_limited_matches_unlimited(self, evict):
        base, _ = self.run_pair()
        limit = base.mstats.bytes_estimate // 3
        packed, plain = self.run_pair(
            memo_limit_bytes=limit, memo_evict=evict
        )
        assert self.sig(packed.stats) == self.sig(base.stats)
        assert self.sig(packed.stats) == self.sig(plain.stats)
        if evict == "clear":
            assert packed.mstats.clears > 0
        else:
            assert packed.mstats.evictions > 0
        assert packed.mstats.bytes_estimate == packed.recount_bytes()
        assert plain.mstats.bytes_estimate == plain.recount_bytes()


# -- the packed stream encoding itself ------------------------------------------


class TestStreamEncoding:
    def pack_one(self, build):
        cache = ActionCache()
        m = Memoizer(cache)
        build(m)
        pool = InternPool()
        chain, charged = _pack_records(cache.entries[(1,)].first, pool)
        return chain, pool, charged

    def test_straight_line_layout(self):
        def build(m):
            m.begin_step((1,))
            m.action(3, (10,))
            m.action(4, (11,))
            m.end_step()

        chain, pool, charged = self.pack_one(build)
        assert list(chain.nums) == [3, 4, ENDMARK]
        assert chain.nums.tolist() == chain.knums
        assert chain.data[-1] == -1 and chain.datavals[-1] is None
        assert chain.sux[0] is None and chain.sux[1] is None
        assert chain.sux[2] is chain.ends[0]
        assert chain.n_records == 2 and chain.depth == 0
        assert charged == pool.bytes_live

    def test_single_successor_verify_falls_through(self):
        def build(m):
            m.begin_step((1,))
            m.begin_verify(2, (5,))
            m.note_verify((7, 7))
            m.action(0, ())
            m.end_step()

        chain, pool, _ = self.pack_one(build)
        assert chain.nums[0] == ~2  # verify slots store ~num
        # Canonical lane: pool index of the expected value; replay
        # view: the pooled value itself (== fall-through, no dict).
        assert pool.values[chain.succ[0]] == (7, 7)
        assert chain.sux[0] == (7, 7)
        assert not isinstance(chain.sux[0], dict)
        assert len(chain.tables) == 0

    def test_multi_successor_verify_builds_jump_table(self):
        def build(m):
            m.begin_step((1,))
            m.begin_verify(2, ())
            m.note_verify(0)
            m.action(0, ())
            m.end_step()

        cache = ActionCache()
        m = Memoizer(cache)
        build(m)
        entry = cache.entries[(1,)]
        # Grow a second successor at the verify fork, the way miss
        # recovery does: replay to the forking verify, feed back the
        # missed value, then record the new arm.
        m.begin_recovery(entry, [1])
        m.begin_verify(2, ())
        assert m.pop_verify() == 1
        m.action(1, ())
        m.end_step()
        pool = InternPool()
        chain, _ = _pack_records(entry.first, pool)
        assert len(chain.tables) == 1
        table = chain.tables[0]
        assert set(table) == {0, 1}
        assert chain.sux[0] is table  # the replay view shares the dict
        assert chain.succ[0] == ~0
        assert chain.depth == 1
        # Round trip restores both arms.
        rebuilt = _packed_to_records(chain)
        assert set(rebuilt.succ) == {0, 1}
