"""Tests for the command-line interface."""

import pytest

from repro.cli import main

ASM = """
        set 5, %o0
        clr %o1
loop:   add %o1, %o0, %o1
        subcc %o0, 1, %o0
        bne loop
        nop
        halt
"""

MINIC = "int main() { out(6 * 7); return 0; }"

FACILE = """
val init = 0;
fun main(pc) {
    val v = mem_read(pc)?verify;
    init = pc + v;
    halt();
}
"""


@pytest.fixture
def asm_file(tmp_path):
    path = tmp_path / "prog.s"
    path.write_text(ASM)
    return str(path)


@pytest.fixture
def minic_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(MINIC)
    return str(path)


@pytest.fixture
def facile_file(tmp_path):
    path = tmp_path / "sim.fac"
    path.write_text(FACILE)
    return str(path)


class TestAsm:
    def test_summary(self, asm_file, capsys):
        assert main(["asm", asm_file]) == 0
        out = capsys.readouterr().out
        assert "7 words" in out
        assert "entry 0x1000" in out

    def test_listing_shows_labels(self, asm_file, capsys):
        main(["asm", asm_file, "--listing"])
        out = capsys.readouterr().out
        assert "<loop>" in out

    def test_symbols(self, asm_file, capsys):
        main(["asm", asm_file, "--symbols"])
        assert "loop" in capsys.readouterr().out

    def test_disasm(self, asm_file, capsys):
        main(["asm", asm_file, "--disasm"])
        out = capsys.readouterr().out
        assert "subcc %o0, 1, %o0" in out
        assert "loop:" in out


class TestRun:
    @pytest.mark.parametrize(
        "sim", ["golden", "functional", "inorder", "inorder-ref", "ooo", "ooo-ref", "ooo-fastsim"]
    )
    def test_every_simulator_runs(self, asm_file, capsys, sim):
        assert main(["run", asm_file, "--sim", sim]) == 0
        out = capsys.readouterr().out
        assert "kips" in out

    def test_plain_mode(self, asm_file, capsys):
        assert main(["run", asm_file, "--sim", "ooo", "--plain"]) == 0

    def test_timing_simulators_report_ipc(self, asm_file, capsys):
        main(["run", asm_file, "--sim", "ooo"])
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "mispredicted" in out


class TestMinic:
    def test_compile_and_run(self, minic_file, capsys):
        assert main(["minic", minic_file]) == 0
        out = capsys.readouterr().out
        assert "out(): 42" in out

    def test_emit_asm(self, minic_file, capsys):
        assert main(["minic", minic_file, "--emit-asm"]) == 0
        out = capsys.readouterr().out
        assert "mc_main:" in out
        assert ".text" in out


class TestCompile:
    def test_division_summary(self, facile_file, capsys):
        assert main(["compile", facile_file]) == 0
        out = capsys.readouterr().out
        assert "dynamic result tests: 1" in out

    @pytest.mark.parametrize("engine", ["slow", "fast", "plain"])
    def test_dump_engines(self, facile_file, capsys, engine):
        assert main(["compile", facile_file, "--dump", engine]) == 0
        out = capsys.readouterr().out
        assert f"generated {engine} engine" in out

    def test_no_fold_flag(self, facile_file, capsys):
        assert main(["compile", facile_file, "--no-fold"]) == 0
        assert "constant folds:       0" in capsys.readouterr().out


class TestWorkloads:
    def test_list(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("go", "gcc", "fpppp", "wave5"):
            assert name in out

    def test_run_one(self, capsys):
        assert main(["workloads", "li", "--scale", "2", "--sim", "ooo"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out
