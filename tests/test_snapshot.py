"""Persistent action-cache snapshots: golden parity, robustness, and
shared-byte accounting.

The contract under test (see ``repro.facile.snapshot``): a warm-start
run loaded from a snapshot is *bit-identical* to a cold run on every
simulator; a stale, truncated, or corrupt snapshot degrades to a cold
start with a counted ``snapshot_rejected`` stat and never raises; and
the exact byte accounting — including the mmap-shared split — still
reconciles after a load, a copy-on-miss unpack, and eviction.
"""

from __future__ import annotations

import pytest

from repro.facile.snapshot import (
    SnapshotError,
    engine_fingerprint,
    fastsim_fingerprint,
    program_fingerprint,
    store_path,
    warm_start,
)
from repro.isa.simulate import run_facile_functional
from repro.ooo.facile_inorder import run_facile_inorder
from repro.ooo.facile_ooo import run_facile_ooo
from repro.ooo.fastsim import run_fastsim
from repro.workloads.suite import build_cached


def _run(sim_name, program, **snap):
    """One full run; returns (digest-of-everything, holder, result).

    The digest covers cycle counts and the architectural/statistical
    outputs the golden check compares bit-for-bit."""
    if sim_name == "functional":
        r = run_facile_functional(program, **snap)
        return (r.retired, tuple(r.regs), r.halted), r.engine, r
    if sim_name == "inorder":
        r = run_facile_inorder(program, **snap)
        return (r.stats, r.halted), r.engine, r
    if sim_name == "ooo":
        r = run_facile_ooo(program, **snap)
        return (r.stats, r.halted), r.engine, r
    r = run_fastsim(program, **snap)
    return (r.stats, r.func.halted), r, r


SIMS = ("functional", "inorder", "ooo", "fastsim")


@pytest.mark.parametrize("workload", ("compress", "go"))
@pytest.mark.parametrize("sim_name", SIMS)
def test_warm_start_bit_identical(tmp_path, workload, sim_name):
    """Golden check: warm-start runs produce bit-identical cycle counts
    and stats to cold runs on all three Facile simulators plus the
    hand-coded FastSim."""
    program = build_cached(workload, 1)
    snap = tmp_path / "cache.facsnap"
    cold_digest, cold_holder, _ = _run(sim_name, program, cache_save=str(snap))
    assert cold_holder.snapshot_save.hit
    assert snap.exists()

    warm_digest, warm_holder, warm_result = _run(
        sim_name, program, cache_load=str(snap)
    )
    load = warm_holder.snapshot_load
    assert load.hit, load.reason
    assert load.entries > 0
    assert warm_digest == cold_digest

    # The whole run must replay on the fast path: the snapshot held the
    # complete warmed cache.
    if sim_name == "fastsim":
        assert warm_holder.mstats.cycles_slow == 0
        assert warm_holder.mstats.cycles_recovered == 0
    else:
        assert warm_result.run_stats.steps_slow == 0 if hasattr(
            warm_result, "run_stats") else warm_result.stats.steps_slow == 0


@pytest.mark.parametrize("sim_name", ("functional", "ooo"))
def test_accounting_reconciles_after_load(tmp_path, sim_name):
    program = build_cached("compress", 1)
    snap = tmp_path / "cache.facsnap"
    _run(sim_name, program, cache_save=str(snap))
    _, holder, _ = _run(sim_name, program, cache_load=str(snap))
    cache = holder.cache if sim_name != "fastsim" else holder
    assert cache.recount_bytes() == cache.stats.bytes_current
    assert cache.recount_shared_bytes() == cache.stats.bytes_shared
    assert cache.stats.bytes_shared > 0
    assert cache.stats.snapshot_entries > 0


def test_fastsim_accounting_reconciles_after_load(tmp_path):
    program = build_cached("compress", 1)
    snap = tmp_path / "cache.facsnap"
    run_fastsim(program, cache_save=str(snap))
    sim = run_fastsim(program, cache_load=str(snap))
    assert sim.recount_bytes() == sim.mstats.bytes_estimate
    assert sim.recount_shared_bytes() == sim.mstats.bytes_shared
    assert sim.mstats.bytes_shared > 0


def _functional_engine_with_snapshot(tmp_path, program):
    """A fresh functional engine plus the snapshot path for it."""
    from repro.isa.simulate import _prepare_context, compiled_functional_sim
    from repro.facile.runtime import FastForwardEngine

    compiled = compiled_functional_sim().simulator
    ctx = _prepare_context(compiled, program)
    engine = FastForwardEngine(compiled, ctx)
    return engine, engine_fingerprint(compiled, program)


def test_loaded_entries_are_mmap_backed_and_lazy(tmp_path):
    """Loaded chains alias the mapped file (no stream copies) and build
    their replay view only on first use."""
    program = build_cached("compress", 1)
    snap = tmp_path / "cache.facsnap"
    run_facile_functional(program, cache_save=str(snap))

    engine, fp = _functional_engine_with_snapshot(tmp_path, program)
    info = engine.load_snapshot(str(snap), fp)
    assert info.hit
    cache = engine.cache
    entry = next(iter(cache.entries.values()))
    chain = entry.packed
    assert chain.shared
    assert isinstance(chain.nums, memoryview)
    assert chain.knums is None  # replay view not built until first use

    engine.run(max_steps=1_000_000)
    assert any(
        e.packed is not None and e.packed.knums is not None
        for e in cache.entries.values()
    )


def test_copy_on_miss_unpack_updates_shared_bytes(tmp_path):
    program = build_cached("compress", 1)
    snap = tmp_path / "cache.facsnap"
    run_facile_functional(program, cache_save=str(snap))

    engine, fp = _functional_engine_with_snapshot(tmp_path, program)
    engine.load_snapshot(str(snap), fp)
    cache = engine.cache
    before = cache.stats.bytes_shared
    entry = next(iter(cache.entries.values()))
    local = entry.packed.local_bytes
    cache.unpack_entry(entry)
    assert entry.packed is None
    assert cache.stats.bytes_shared == before - local
    assert cache.recount_shared_bytes() == cache.stats.bytes_shared
    assert cache.recount_bytes() == cache.stats.bytes_current


def test_eviction_after_load_keeps_exact_accounting(tmp_path):
    """Generational eviction over a mix of shared and private entries
    refunds exact bytes and keeps both audits reconciled."""
    from repro.isa.simulate import _prepare_context, compiled_functional_sim
    from repro.facile.runtime import FastForwardEngine

    program = build_cached("compress", 1)
    snap = tmp_path / "cache.facsnap"
    run_facile_functional(program, cache_save=str(snap))

    compiled = compiled_functional_sim().simulator
    ctx = _prepare_context(compiled, program)
    engine = FastForwardEngine(
        compiled, ctx, cache_limit_bytes=64 * 1024, cache_evict="generational"
    )
    engine.load_snapshot(str(snap), engine_fingerprint(compiled, program))
    cache = engine.cache
    engine.run(max_steps=1_000_000)
    assert ctx.halted
    assert cache.stats.evictions > 0
    assert cache.recount_bytes() == cache.stats.bytes_current
    assert cache.recount_shared_bytes() == cache.stats.bytes_shared


# ---------------------------------------------------------------------------
# Robustness: every bad snapshot falls back to a cold start
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def snapshot_blob(tmp_path_factory):
    """One good functional-sim snapshot (path, program) reused by the
    corruption tests."""
    tmp = tmp_path_factory.mktemp("snap")
    program = build_cached("compress", 1)
    path = tmp / "good.facsnap"
    run_facile_functional(program, cache_save=str(path))
    return path, program


def _load_rejected(tmp_path, program, blob: bytes, reason_part: str):
    """Write ``blob`` as a snapshot, load it into a fresh engine, and
    assert the graceful-rejection contract."""
    bad = tmp_path / "bad.facsnap"
    bad.write_bytes(blob)
    engine, fp = _functional_engine_with_snapshot(tmp_path, program)
    info = engine.load_snapshot(str(bad), fp)
    assert not info.hit
    assert reason_part in info.reason
    assert engine.cache.stats.snapshot_rejected == 1
    assert not engine.cache.entries  # still cold
    # ... and the cold start still simulates correctly.
    stats = engine.run(max_steps=1_000_000)
    assert stats.steps_total > 0
    return info


def test_truncated_header_rejected(tmp_path, snapshot_blob):
    path, program = snapshot_blob
    _load_rejected(tmp_path, program, path.read_bytes()[:50], "truncated header")


def test_truncated_payload_rejected(tmp_path, snapshot_blob):
    path, program = snapshot_blob
    blob = path.read_bytes()
    _load_rejected(tmp_path, program, blob[: len(blob) // 2], "truncated payload")


def test_flipped_checksum_byte_rejected(tmp_path, snapshot_blob):
    path, program = snapshot_blob
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0xFF  # flip a payload byte; the sha-256 must catch it
    _load_rejected(tmp_path, program, bytes(blob), "checksum mismatch")


def test_bad_magic_rejected(tmp_path, snapshot_blob):
    path, program = snapshot_blob
    blob = bytearray(path.read_bytes())
    blob[0] ^= 0xFF
    _load_rejected(tmp_path, program, bytes(blob), "bad magic")


def test_version_mismatch_rejected(tmp_path, snapshot_blob):
    path, program = snapshot_blob
    blob = bytearray(path.read_bytes())
    blob[8] = 99  # format-version field
    _load_rejected(tmp_path, program, bytes(blob), "version mismatch")


def test_fingerprint_mismatch_rejected(tmp_path, snapshot_blob):
    """A snapshot for a different (simulator × workload) pair is stale:
    rejected by fingerprint before any payload is trusted."""
    path, program = snapshot_blob
    engine, _fp = _functional_engine_with_snapshot(tmp_path, program)
    other = "ab" * 32
    info = engine.load_snapshot(str(path), other)
    assert not info.hit
    assert "fingerprint mismatch" in info.reason
    assert engine.cache.stats.snapshot_rejected == 1


def test_kind_mismatch_rejected(tmp_path, snapshot_blob):
    """An action-cache snapshot fed to the fastsim memoizer (same
    framing, different kind) is rejected, not misinterpreted."""
    path, program = snapshot_blob
    from repro.ooo.fastsim import FastSimOoo

    sim = FastSimOoo(program)
    info = sim.load_snapshot(str(path))
    assert not info.hit
    # Fingerprints differ between kinds, so either rejection reason is
    # a correct refusal; kind is checked when fingerprints collide.
    assert ("kind mismatch" in info.reason
            or "fingerprint mismatch" in info.reason)
    assert sim.mstats.snapshot_rejected == 1


def test_empty_snapshot_rejected(tmp_path):
    """Saving an empty cache produces a snapshot that loads as a
    rejection (nothing to warm-start from), not a crash."""
    program = build_cached("compress", 1)
    engine, fp = _functional_engine_with_snapshot(tmp_path, program)
    path = tmp_path / "empty.facsnap"
    engine.save_snapshot(str(path), fp)

    engine2, _ = _functional_engine_with_snapshot(tmp_path, program)
    info = engine2.load_snapshot(str(path), fp)
    assert not info.hit
    assert info.reason == "empty"
    assert engine2.cache.stats.snapshot_rejected == 1


def test_missing_snapshot_is_a_plain_miss(tmp_path):
    """A missing file is the normal first-run case — a miss, not a
    rejection."""
    program = build_cached("compress", 1)
    engine, fp = _functional_engine_with_snapshot(tmp_path, program)
    info = engine.load_snapshot(str(tmp_path / "nope.facsnap"), fp)
    assert not info.hit
    assert info.reason == "missing"
    assert engine.cache.stats.snapshot_rejected == 0


def test_load_into_nonempty_cache_refused(tmp_path, snapshot_blob):
    path, program = snapshot_blob
    engine, fp = _functional_engine_with_snapshot(tmp_path, program)
    engine.run(max_steps=100)  # warm it a little
    with pytest.raises(SnapshotError):
        engine.load_snapshot(str(path), fp)


def test_no_exception_escapes_from_garbage(tmp_path, snapshot_blob):
    """Random-ish structured garbage inside a valid frame must be
    caught by the decode phase, not escape to the caller."""
    import hashlib
    import struct
    from repro.facile.snapshot import MAGIC, _BOM, _HEADER, KIND_ACTION_CACHE

    path, program = snapshot_blob
    engine, fp = _functional_engine_with_snapshot(tmp_path, program)
    meta = b"\xff" * 64  # nonsense varints
    payload = meta + b"\0" * ((-len(meta)) % 8)
    header = _HEADER.pack(
        MAGIC, 1, KIND_ACTION_CACHE, bytes.fromhex(fp),
        len(meta), 0, hashlib.sha256(payload).digest(), _BOM,
    )
    bad = tmp_path / "garbage.facsnap"
    bad.write_bytes(header + payload)
    info = engine.load_snapshot(str(bad), fp)
    assert not info.hit
    assert engine.cache.stats.snapshot_rejected == 1


# ---------------------------------------------------------------------------
# Warm-start orchestration + CLI
# ---------------------------------------------------------------------------


def test_store_path_is_content_addressed(tmp_path):
    program = build_cached("compress", 1)
    fp = program_fingerprint(program)
    p = store_path(tmp_path, fp)
    assert p.parent == tmp_path
    assert p.name.endswith(".facsnap")
    assert fp.startswith(p.name[: -len(".facsnap")])


def test_warm_start_roundtrip_via_cache_dir(tmp_path):
    """Two runs against one --cache-dir: the first misses and saves,
    the second hits with identical simulation."""
    program = build_cached("compress", 1)
    first = run_facile_functional(program, cache_dir=str(tmp_path))
    assert first.engine.snapshot_load.reason == "missing"
    assert first.engine.snapshot_save.hit

    second = run_facile_functional(program, cache_dir=str(tmp_path))
    assert second.engine.snapshot_load.hit
    assert second.retired == first.retired
    assert second.regs == first.regs
    assert second.stats.steps_slow == 0


def test_warm_start_none_when_unrequested():
    program = build_cached("compress", 1)
    r = run_facile_functional(program)
    assert r.engine.snapshot_load is None
    assert r.engine.snapshot_save is None


def test_fastsim_fingerprint_separates_configs():
    from repro.ooo.common import MachineConfig

    program = build_cached("compress", 1)
    a = fastsim_fingerprint(program, MachineConfig())
    b = fastsim_fingerprint(program, MachineConfig(issue_width=2))
    assert a != b


def test_cli_warm_start_smoke(tmp_path, capsys):
    """The CI smoke contract: second --cache-dir run reports a snapshot
    hit and identical cycles."""
    from repro.cli import main

    cache_dir = str(tmp_path / "store")
    argv = ["workloads", "compress", "--scale", "1", "--sim", "ooo",
            "--cache-dir", cache_dir]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert "snapshot: miss (missing) — cold start" in first
    assert "snapshot: saved" in first

    assert main(argv) == 0
    second = capsys.readouterr().out
    assert "snapshot: hit" in second

    def cycles_line(text):
        return next(l for l in text.splitlines() if l.startswith("cycles"))

    assert cycles_line(first) == cycles_line(second)


def test_cache_summary_reports_shared_split(tmp_path):
    from repro.facile.inspect import cache_summary

    program = build_cached("compress", 1)
    snap = tmp_path / "cache.facsnap"
    run_facile_functional(program, cache_save=str(snap))
    _, holder, _ = _run("functional", program, cache_load=str(snap))
    text = cache_summary(holder.cache)
    assert "mmap-shared" in text
    assert "snapshot:" in text
    assert "rejected" in text
