"""Unit tests for the batched diagnostics layer."""

import json

import pytest

from repro.facile.diagnostics import (
    ERROR,
    INFO,
    WARNING,
    CODES,
    Diagnostic,
    DiagnosticError,
    DiagnosticSink,
    Note,
    scan_suppressions,
)
from repro.facile.source import SourceBuffer, UNKNOWN_SPAN


def _buf(text, filename="demo.fac"):
    return SourceBuffer(text, filename)


def _span(buf, start, end):
    return buf.span(start, end)


class TestRegistry:
    def test_codes_are_unique_and_well_formed(self):
        for code, info in CODES.items():
            assert code == info.code
            assert code.startswith("FAC") and len(code) == 6
            assert info.severity in (ERROR, WARNING, INFO)

    def test_front_end_codes_are_errors(self):
        for code, info in CODES.items():
            if code < "FAC100":
                assert info.severity == ERROR, code

    def test_emit_unknown_code_rejected(self):
        with pytest.raises(KeyError, match="FAC999"):
            DiagnosticSink().emit("FAC999", "nope")


class TestSuppressionScanner:
    def test_same_line_disable(self):
        _, by_line = scan_suppressions("x = 1; // fac: disable=FAC105\ny = 2;\n")
        assert by_line == {1: {"FAC105"}}

    def test_comment_only_line_guards_next_line(self):
        _, by_line = scan_suppressions("// fac: disable=FAC101\nval y = x;\n")
        assert by_line == {2: {"FAC101"}}

    def test_disable_next_line(self):
        _, by_line = scan_suppressions("a;\n// fac: disable-next-line=FAC110\nb;\n")
        assert by_line == {3: {"FAC110"}}

    def test_disable_file_with_code_list(self):
        file_wide, _ = scan_suppressions("// fac: disable-file=FAC105, fac110\n")
        assert file_wide == {"FAC105", "FAC110"}

    def test_all_keyword(self):
        file_wide, _ = scan_suppressions("/* fac: disable-file=all */\n")
        assert file_wide == {"ALL"}

    def test_directive_outside_comment_is_inert(self):
        file_wide, by_line = scan_suppressions('x = "fac: disable=FAC105";\n')
        assert not file_wide and not by_line


class TestSinkSuppression:
    def test_warning_suppressed_by_line(self):
        buf = _buf("val x = 1; // fac: disable=FAC101\n")
        sink = DiagnosticSink(buf)
        assert sink.emit("FAC101", "maybe unset", _span(buf, 4, 5)) is None
        assert not sink.diagnostics and len(sink.suppressed) == 1

    def test_error_never_suppressed(self):
        buf = _buf("bad; // fac: disable=FAC010\n")
        sink = DiagnosticSink(buf)
        assert sink.emit("FAC010", "undefined name", _span(buf, 0, 3)) is not None
        assert sink.has_errors

    def test_file_wide_suppression(self):
        buf = _buf("// fac: disable-file=FAC105\nval g = 0;\n")
        sink = DiagnosticSink(buf)
        assert sink.emit("FAC105", "write-only", _span(buf, 32, 33)) is None

    def test_unrelated_code_not_suppressed(self):
        buf = _buf("val x = 1; // fac: disable=FAC105\n")
        sink = DiagnosticSink(buf)
        assert sink.emit("FAC101", "maybe unset", _span(buf, 4, 5)) is not None


class TestRendering:
    def test_render_includes_caret_block(self):
        buf = _buf("val x = missing;\n")
        span = _span(buf, 8, 15)
        text = Diagnostic("FAC010", ERROR, "undefined name 'missing'", span).render(buf)
        assert "demo.fac:1:9: error: undefined name 'missing' [FAC010]" in text
        assert "1 | val x = missing;" in text
        assert "^^^^^^^" in text

    def test_render_notes(self):
        buf = _buf("val x = 1;\n")
        diag = Diagnostic(
            "FAC101", WARNING, "maybe unset", _span(buf, 4, 5),
            notes=(Note("declared here", _span(buf, 0, 3)), Note("no span")),
        )
        text = diag.render(buf)
        assert "demo.fac:1:1: note: declared here" in text
        assert "note: no span" in text

    def test_unknown_span_renders_without_caret(self):
        text = Diagnostic("FAC030", ERROR, "oops", UNKNOWN_SPAN).render(None)
        assert "oops [FAC030]" in text

    def test_to_json_round_trips(self):
        buf = _buf("val x = 1;\n")
        diag = Diagnostic(
            "FAC104", WARNING, "never used", _span(buf, 4, 5),
            notes=(Note("hint", _span(buf, 0, 3)),),
        )
        blob = json.loads(json.dumps(diag.to_json()))
        assert blob["code"] == "FAC104"
        assert blob["severity"] == WARNING
        assert blob["file"] == "demo.fac"
        assert blob["line"] == 1 and blob["column"] == 5
        assert blob["notes"][0]["message"] == "hint"


class TestBatching:
    def test_single_error_message_is_span_prefixed(self):
        buf = _buf("bad;\n")
        sink = DiagnosticSink(buf)
        sink.emit("FAC010", "undefined name 'bad'", _span(buf, 0, 3))
        with pytest.raises(DiagnosticError, match="demo.fac:1:1: undefined name 'bad'"):
            sink.checkpoint()

    def test_multiple_errors_all_in_message(self):
        sink = DiagnosticSink()
        sink.emit("FAC010", "undefined name 'a'")
        sink.emit("FAC011", "duplicate 'b'")
        with pytest.raises(DiagnosticError) as exc:
            sink.checkpoint()
        text = str(exc.value)
        assert text.startswith("2 errors:")
        assert "undefined name 'a' [FAC010]" in text
        assert "duplicate 'b' [FAC011]" in text
        assert exc.value.code == "FAC010"
        assert len(exc.value.diagnostics) == 2

    def test_checkpoint_quiet_without_errors(self):
        sink = DiagnosticSink()
        sink.emit("FAC104", "never used")
        sink.checkpoint()  # warnings alone never raise

    def test_sorted_orders_by_position_then_severity(self):
        buf = _buf("aaaa;\nbbbb;\n")
        sink = DiagnosticSink(buf)
        sink.emit("FAC104", "later", _span(buf, 6, 10))
        sink.emit("FAC105", "early info", _span(buf, 0, 4))
        sink.emit("FAC010", "early error", _span(buf, 0, 4))
        codes = [d.code for d in sink.sorted()]
        assert codes == ["FAC010", "FAC105", "FAC104"]

    def test_max_diagnostics_caps_collection(self):
        sink = DiagnosticSink(max_diagnostics=3)
        for _ in range(10):
            sink.emit("FAC104", "never used")
        assert len(sink.diagnostics) == 3
