"""Unit and property tests for pattern normalization and decoder generation."""

import pytest
from hypothesis import given, strategies as st

from repro.facile import SemanticError
from repro.facile.parser import parse
from repro.facile.patterns import (
    build_pattern_table,
    choose_dispatch_field,
    compile_decoder,
    generate_decoder_source,
)

HEADER = (
    "token instruction[32] fields op 24:31, rl 19:23, r2 14:18,"
    " r3 0:4, i 13:13, imm 0:12, offset 0:18, fill 5:12;"
)


def table_for(pat_decls: str):
    return build_pattern_table(parse(HEADER + pat_decls))


class TestFieldInfo:
    def test_extract(self):
        table = table_for("pat p = op==1;")
        op = table.fields["op"]
        assert op.extract(0xAB000000) == 0xAB
        assert op.width == 8
        assert op.mask == 0xFF

    def test_extract_src_low_field(self):
        table = table_for("pat p = op==1;")
        imm = table.fields["imm"]
        assert imm.extract_src("w") == "(w & 0x1fff)"


class TestNormalization:
    def test_simple_equality(self):
        table = table_for("pat add = op==0;")
        assert len(table.patterns[0].conjuncts) == 1

    def test_or_gives_two_conjuncts(self):
        table = table_for("pat p = op==0 || op==1;")
        assert len(table.patterns[0].conjuncts) == 2

    def test_and_over_or_distributes(self):
        table = table_for("pat p = op==0 && (i==1 || fill==0);")
        assert len(table.patterns[0].conjuncts) == 2
        assert all(len(c) == 2 for c in table.patterns[0].conjuncts)

    def test_pattern_reference_inlines(self):
        table = table_for("pat base = op==3; pat ext = base && i==1;")
        ext = table.by_name["ext"]
        assert len(ext.conjuncts) == 1
        assert {c.fld.name for c in ext.conjuncts[0]} == {"op", "i"}

    def test_unsatisfiable_conjunct_pruned(self):
        table = table_for("pat p = (op==1 && op==2) || op==3;")
        assert len(table.patterns[0].conjuncts) == 1

    def test_fully_unsatisfiable_pattern_rejected(self):
        with pytest.raises(SemanticError, match="unsatisfiable"):
            table_for("pat p = op==1 && op==2;")

    def test_range_contradiction_detected(self):
        with pytest.raises(SemanticError, match="unsatisfiable"):
            table_for("pat p = op>=10 && op<5;")

    def test_ne_excluding_pinned_value(self):
        with pytest.raises(SemanticError, match="unsatisfiable"):
            table_for("pat p = op==5 && op!=5;")

    def test_value_too_wide_for_field(self):
        with pytest.raises(SemanticError, match="does not fit"):
            table_for("pat p = i==2;")

    def test_unknown_field_rejected(self):
        with pytest.raises(SemanticError, match="unknown field"):
            table_for("pat p = nosuch==1;")

    def test_duplicate_pattern_rejected(self):
        with pytest.raises(SemanticError, match="duplicate pattern"):
            table_for("pat p = op==1; pat p = op==2;")


class TestReferenceDecode:
    def test_first_match_wins(self):
        table = table_for("pat a = op==1; pat b = op==1 && i==1;")
        word = (1 << 24) | (1 << 13)
        assert table.decode(word) == 0  # 'a' declared first

    def test_no_match(self):
        table = table_for("pat a = op==1;")
        assert table.decode(0xFF000000) == -1

    def test_relational_constraints(self):
        table = table_for("pat small = op<16; pat big = op>=16;")
        assert table.decode(5 << 24) == 0
        assert table.decode(200 << 24) == 1


class TestGeneratedDecoder:
    def test_dispatch_field_chosen_for_opcode_style(self):
        table = table_for("pat a = op==1; pat b = op==2; pat c = op==3;")
        assert choose_dispatch_field(table).name == "op"

    def test_no_dispatch_for_single_pattern(self):
        table = table_for("pat a = op==1;")
        assert choose_dispatch_field(table) is None

    def test_generated_matches_reference(self):
        table = table_for(
            "pat add = op==0 && (i==1 || fill==0);"
            "pat bz = op==1;"
            "pat wide = op>=128;"
        )
        decode, _ = compile_decoder(table)
        for word in [0, 1 << 13, 1 << 24, 0x80000000, 0xFFFFFFFF, (1 << 24) | 5]:
            assert decode(word) == table.decode(word), hex(word)

    def test_source_is_valid_python(self):
        table = table_for("pat a = op==1; pat b = op==2;")
        src = generate_decoder_source(table)
        compile(src, "<t>", "exec")

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_property_generated_equals_reference(self, word):
        table = table_for(
            "pat add = op==0 && (i==1 || fill==0);"
            "pat bz = op==1;"
            "pat neq = op==2 && imm!=0;"
            "pat rng = op>=3 && op<=9;"
            "pat mix = bz || (op==10 && i==1);"
        )
        decode, _ = compile_decoder(table)
        assert decode(word) == table.decode(word)


class TestMultiToken:
    def test_mixed_token_pattern_rejected(self):
        src = (
            "token a[16] fields x 0:7;"
            "token b[16] fields y 8:15;"
            "pat bad = x==1 && y==2;"
        )
        with pytest.raises(SemanticError, match="mixes fields"):
            build_pattern_table(parse(src))

    def test_duplicate_field_across_tokens_rejected(self):
        src = "token a[16] fields x 0:7; token b[16] fields x 0:7;"
        with pytest.raises(SemanticError, match="duplicate field"):
            build_pattern_table(parse(src))
