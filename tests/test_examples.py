"""Smoke tests: every example script must run to completion.

Examples rot silently otherwise; each is executed in-process with its
module-level main() so failures point at real lines.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str] | None = None, capsys=None):
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "instructions fast-forwarded" in out
        assert "final r1 = 0" in out

    def test_custom_isa(self, capsys):
        run_example("custom_isa.py")
        out = capsys.readouterr().out
        assert "mem[0x800] = 91" in out

    def test_functional_simulation(self, capsys):
        run_example("functional_simulation.py")
        out = capsys.readouterr().out
        assert "'dlrow olleh'" in out
        assert "All three simulators agree" in out

    def test_compiler_tour(self, capsys):
        run_example("compiler_tour.py")
        out = capsys.readouterr().out
        assert "binding-time division" in out
        assert "hot actions" in out

    @pytest.mark.slow
    def test_ooo_pipeline_study(self, capsys):
        run_example("ooo_pipeline_study.py", ["li", "8"])
        out = capsys.readouterr().out
        assert "cycle-exact" in out
        assert "vs baseline" in out

    @pytest.mark.slow
    def test_branch_prediction_study(self, capsys):
        run_example("branch_prediction_study.py")
        out = capsys.readouterr().out
        assert "tournament" in out
        assert "accuracy" in out
