"""Tests for the introspection helpers."""

import pytest

from repro.facile.inspect import cache_summary, dump_entry, explain_division, hot_actions

from .toyisa import compile_toy, countdown_program, load_program, run_memoized


@pytest.fixture(scope="module")
def toy_run():
    result = compile_toy()
    ctx, engine, stats = run_memoized(result.simulator, countdown_program(10))
    return result, ctx, engine


class TestExplainDivision:
    def test_reports_dynamic_globals(self, toy_run):
        result, _, _ = toy_run
        text = explain_division(result)
        assert "dynamic globals:   R" in text

    def test_reports_local_like(self, toy_run):
        result, _, _ = toy_run
        text = explain_division(result)
        assert "PC" in text and "nPC" in text

    def test_reports_test_count(self, toy_run):
        result, _, _ = toy_run
        assert "dynamic result tests inserted: 1" in explain_division(result)


class TestDumpEntry:
    def test_entry_tree_has_actions_and_end(self, toy_run):
        _, _, engine = toy_run
        entry = next(iter(engine.cache.entries.values()))
        text = dump_entry(entry)
        assert "action" in text
        assert "END" in text

    def test_verify_fork_rendered(self, toy_run):
        _, _, engine = toy_run
        # The bz step's entry has a verify record with two outcomes
        # (taken/untaken) after the loop exit was recovered.
        forked = [
            e
            for e in engine.cache.entries.values()
            if "result" in dump_entry(e)
        ]
        assert forked, "at least one entry should contain a dynamic result test"
        both_ways = [e for e in forked if dump_entry(e).count("result ") >= 2]
        assert both_ways, "the loop branch should have two recorded outcomes"

    def test_truncation(self, toy_run):
        _, _, engine = toy_run
        entry = next(iter(engine.cache.entries.values()))
        text = dump_entry(entry, max_depth=1)
        assert "truncated" in text


class TestCacheSummary:
    def test_counts_consistent(self, toy_run):
        _, _, engine = toy_run
        text = cache_summary(engine.cache)
        assert "entries:" in text
        assert "dynamic result tests" in text
        assert f"{engine.cache.stats.lookups:,} " in text

    def test_widest_fork_at_least_two(self, toy_run):
        _, _, engine = toy_run
        assert "widest fork 2" in cache_summary(engine.cache)


class TestHotActions:
    def test_profile_counts_replays(self):
        from repro.facile import FastForwardEngine

        result = compile_toy()
        ctx = result.simulator.make_context()
        load_program(ctx, countdown_program(30))
        engine = FastForwardEngine(result.simulator, ctx)
        engine.profile()
        engine.run(max_steps=10_000)
        text = hot_actions(engine, result)
        assert "hot actions" in text
        assert "%" in text
        total = sum(engine.action_profile.values())
        assert total == engine.stats.actions_replayed

    def test_disabled_profile_reports_hint(self, toy_run):
        result, _, engine = toy_run
        assert "profiling was not enabled" in hot_actions(engine, result)
