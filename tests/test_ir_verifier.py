"""Replay-IR verifier, lowering lint, and uarch protocol audit tests.

The contract under test (ISSUE: repro check below the AST): every body
the C emitter accepts passes the verifier; verifier-rejected bytecode
never reaches the emitter (``assert_lowerable`` raises); verifier-clean
bodies execute under ``interpret_body`` without stack/local/slot
faults and agree bit-for-bit with the Python source they were compiled
from.  All verdicts are pure Python — identical with or without a C
toolchain.
"""

from __future__ import annotations

import json
import pathlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main
from repro.facile.analysis import check_model_file, run_check
from repro.facile.diagnostics import CODES, CODE_EXAMPLES, render_code_index
from repro.facile.ir_verify import (
    KERNEL_MAX_SLOTS,
    NATIVE_EXTERN_NAMES,
    assert_lowerable,
    audit_builtin_models,
    audit_config_key,
    audit_model,
    builtin_model_suite,
    verify_body,
    verify_plan,
    wrap_census,
)
from repro.facile.replay_ir import (
    K_ACTION,
    K_END,
    K_VERIFY_EQ,
    BodyProgram,
    ChainPlan,
    ExternTable,
    OP_ADD,
    OP_CONST,
    OP_END,
    OP_EXTERN,
    OP_IDIV,
    OP_JMP,
    OP_JZ,
    OP_LOCAL,
    OP_PH,
    OP_RETURN,
    OP_SHL,
    OP_SLOT,
    OP_STAT_COUNT,
    OP_STORE_LOCAL,
    OP_STORE_SLOT,
    OP_STORE_SLOT_OBJ,
    Unlowerable,
    compile_body,
    interpret_body,
)

FIXTURES = pathlib.Path(__file__).parent / "facile_violations"


def _body(lines, shapes="", is_verify=False, externs=None):
    return compile_body(
        0, list(lines), shapes, is_verify, externs or ExternTable()
    )


def _raw(code, n_locals=0, max_stack=8, shapes="", is_verify=False):
    """Hand-built (possibly corrupt) bytecode, bypassing compile_body."""
    return BodyProgram(0, code, n_locals, max_stack, shapes, is_verify,
                       False, "")


def _codes(findings):
    return sorted(f.code for f in findings)


class _NullCtx:
    mem = None


# ---------------------------------------------------------------------------
# Verifier accepts everything the body compiler emits
# ---------------------------------------------------------------------------


class TestVerifierAcceptsCompiled:
    @pytest.mark.parametrize("lines,shapes,is_verify", [
        (["_S[0] = (_ph0 + 7) * 3 - (_ph0 >> 2)"], "i", False),
        (["_S[0] = idiv(_S[1], _ph0) if _ph0 != 0 else -1"], "i", False),
        (["return 1 if _S[0] < _ph0 else 0"], "i", True),
        (["_t = _ph0 * 3", "_S[1] = _t if _t > 10 else -_t"], "i", False),
        (["_S[2] = min(max(_ph0, 3), 60) + popcount(_ph1)"], "ii", False),
        (["_S[0] = _ph0"], "o", False),  # object store via STORE_SLOT_OBJ
    ])
    def test_compiled_bodies_verify_clean(self, lines, shapes, is_verify):
        prog = _body(lines, shapes, is_verify)
        errors = [f for f in verify_body(prog, n_slots=8) if f.is_error]
        assert errors == []

    def test_extern_call_verifies_with_its_table(self):
        externs = ExternTable()
        prog = compile_body(
            0, ["_S[0] = _ctx.call_extern('probe', _ph0)"], "i", False,
            externs)
        assert prog.uses_extern
        errors = [
            f for f in verify_body(prog, n_slots=4, externs=externs)
            if f.is_error
        ]
        assert errors == []

    def test_every_builtin_sim_body_verifies(self):
        from repro.cli import _BUILTIN_SIMS, _builtin_sim_source
        from repro.facile.compiler import compile_source

        for name in _BUILTIN_SIMS:
            sim = compile_source(_builtin_sim_source(name)).simulator
            externs = ExternTable()
            for num, (lines, n_ph, is_verify) in enumerate(sim.action_bodies):
                prog = compile_body(num, lines, "i" * n_ph, is_verify,
                                    externs)
                findings = verify_body(
                    prog, n_slots=sim.slot_count, externs=externs)
                assert [f for f in findings if f.is_error] == [], (
                    name, num, findings)


# ---------------------------------------------------------------------------
# Verifier rejects corrupted bytecode — each code fires
# ---------------------------------------------------------------------------


class TestVerifierRejectsCorrupted:
    def test_stack_underflow_fac401(self):
        fs = verify_body(_raw([OP_ADD, 0, OP_END, 0]))
        assert "FAC401" in _codes(fs)

    def test_unbalanced_end_fac401(self):
        fs = verify_body(_raw([OP_CONST, 1, OP_END, 0]))
        assert "FAC401" in _codes(fs)

    def test_understated_max_stack_fac401(self):
        prog = _raw(
            [OP_CONST, 1, OP_CONST, 2, OP_ADD, 0, OP_STORE_SLOT, 0,
             OP_END, 0],
            max_stack=1,
        )
        assert "FAC401" in _codes(verify_body(prog, n_slots=4))

    def test_backward_jump_fac402(self):
        assert "FAC402" in _codes(verify_body(_raw([OP_JMP, 0, OP_END, 0])))

    def test_odd_length_code_fac402(self):
        assert "FAC402" in _codes(verify_body(_raw([OP_CONST, 1, OP_END])))

    def test_missing_end_fac402(self):
        assert "FAC402" in _codes(
            verify_body(_raw([OP_CONST, 1, OP_STORE_SLOT, 0]))
        )

    def test_return_outside_verify_fac402(self):
        fs = verify_body(_raw([OP_CONST, 1, OP_RETURN, 0, OP_END, 0]))
        assert "FAC402" in _codes(fs)

    def test_verify_body_that_cannot_return_fac402(self):
        fs = verify_body(_raw([OP_END, 0], is_verify=True))
        assert "FAC402" in _codes(fs)

    def test_uninitialized_local_fac403(self):
        prog = _raw([OP_LOCAL, 0, OP_STORE_SLOT, 0, OP_END, 0], n_locals=1)
        assert "FAC403" in _codes(verify_body(prog, n_slots=4))

    def test_object_into_arithmetic_fac403(self):
        prog = _raw(
            [OP_PH, 0, OP_CONST, 1, OP_ADD, 0, OP_STORE_SLOT, 0, OP_END, 0],
            shapes="o",
        )
        assert "FAC403" in _codes(verify_body(prog, n_slots=4))

    def test_int_into_object_store_fac403(self):
        prog = _raw([OP_CONST, 5, OP_STORE_SLOT_OBJ, 0, OP_END, 0])
        assert "FAC403" in _codes(verify_body(prog, n_slots=4))

    def test_slot_out_of_range_fac404(self):
        prog = _raw([OP_CONST, 1, OP_STORE_SLOT, 99, OP_END, 0])
        assert "FAC404" in _codes(verify_body(prog, n_slots=8))

    def test_slot_beyond_kernel_limit_fac404(self):
        prog = _raw(
            [OP_CONST, 1, OP_STORE_SLOT, KERNEL_MAX_SLOTS, OP_END, 0])
        # No n_slots hint: the kernel's own array bound still applies.
        assert "FAC404" in _codes(verify_body(prog))

    def test_placeholder_out_of_range_fac404(self):
        prog = _raw([OP_PH, 2, OP_STORE_SLOT, 0, OP_END, 0], shapes="i")
        assert "FAC404" in _codes(verify_body(prog, n_slots=4))

    def test_uninterned_extern_fac404(self):
        prog = _raw(
            [OP_CONST, 1, OP_EXTERN, 7 * 256 + 1, OP_STORE_SLOT, 0,
             OP_END, 0])
        assert "FAC404" in _codes(verify_body(prog, externs=ExternTable()))

    def test_jump_target_out_of_range_fac402(self):
        prog = _raw([OP_CONST, 1, OP_JZ, 99, OP_END, 0])
        assert "FAC402" in _codes(verify_body(prog))


class TestWrapAudit:
    def test_constant_overshift_fac405(self):
        prog = _raw(
            [OP_CONST, 1, OP_CONST, 70, OP_SHL, 0, OP_STORE_SLOT, 0,
             OP_END, 0])
        fs = verify_body(prog, n_slots=4)
        assert _codes(fs) == ["FAC405"]
        assert all(not f.is_error for f in fs)

    def test_constant_zero_divisor_fac405(self):
        prog = _raw(
            [OP_CONST, 1, OP_CONST, 0, OP_IDIV, 0, OP_STORE_SLOT, 0,
             OP_END, 0])
        assert "FAC405" in _codes(verify_body(prog, n_slots=4))

    def test_constant_counter_key_out_of_table_fac405(self):
        prog = _raw(
            [OP_CONST, 999, OP_CONST, 1, OP_STAT_COUNT, 0, OP_END, 0])
        assert "FAC405" in _codes(verify_body(prog))

    def test_in_range_constants_are_silent(self):
        prog = _body(["_S[0] = (_ph0 << 3) + idiv(_ph0, 5)"], "i")
        assert verify_body(prog, n_slots=4) == []

    def test_census_counts_guarded_and_wrapping_ops(self):
        prog = _body(["_S[0] = (_ph0 << 2) + _ph0 * 3 - idiv(_ph0, 7)"], "i")
        census = wrap_census(prog)
        assert census["SHL"] == 1
        assert census["IDIV"] == 1
        assert census["ADD"] == 1
        assert census["SUB"] == 1


# ---------------------------------------------------------------------------
# Chain-plan verifier and the emitter gate
# ---------------------------------------------------------------------------


def _plan(progs, kinds, doffs=None, aux=None, data=(), tables=(),
          end_records=(object(),)):
    plan = ChainPlan()
    plan.n = len(kinds)
    plan.kinds = bytearray(kinds)
    plan.progs = list(progs)
    plan.doffs = list(doffs or [0] * len(kinds))
    plan.aux = list(aux or [0] * len(kinds))
    plan.data = list(data)
    plan.tables = list(tables)
    plan.end_records = list(end_records)
    return plan


GOOD_BODY = [OP_PH, 0, OP_STORE_SLOT, 0, OP_END, 0]
BAD_BODY = [OP_ADD, 0, OP_END, 0]  # stack underflow


class TestPlanVerifier:
    def test_well_formed_plan_is_clean(self):
        prog = _raw(GOOD_BODY, shapes="i")
        plan = _plan([prog, None], [K_ACTION, K_END], data=[5])
        assert verify_plan(plan, n_slots=4) == []
        assert_lowerable(plan, n_slots=4, externs=None)

    def test_end_slot_with_body_fac402(self):
        prog = _raw(GOOD_BODY, shapes="i")
        plan = _plan([prog, prog], [K_ACTION, K_END], data=[5])
        assert "FAC402" in _codes(verify_plan(plan))

    def test_data_arena_overrun_fac404(self):
        prog = _raw(GOOD_BODY, shapes="i")
        plan = _plan([prog, None], [K_ACTION, K_END], doffs=[3, 0],
                     data=[5])
        assert "FAC404" in _codes(verify_plan(plan))

    def test_verify_slot_with_action_body_fac402(self):
        prog = _raw(GOOD_BODY, shapes="i")
        plan = _plan([prog, None], [K_VERIFY_EQ, K_END], data=[5],
                     tables=[{0: 1}])
        assert "FAC402" in _codes(verify_plan(plan))

    def test_successor_out_of_range_fac404(self):
        prog = _raw([OP_PH, 0, OP_RETURN, 0, OP_END, 0], shapes="i",
                    is_verify=True)
        plan = _plan([prog, None], [K_VERIFY_EQ, K_END], data=[5],
                     tables=[{0: 99}])
        assert "FAC404" in _codes(verify_plan(plan))

    def test_gate_raises_on_rejected_body(self):
        plan = _plan([_raw(BAD_BODY), None], [K_ACTION, K_END])
        with pytest.raises(Unlowerable, match="verifier"):
            assert_lowerable(plan, n_slots=4, externs=None)

    def test_gate_memoizes_verified_programs(self):
        prog = _raw(GOOD_BODY, shapes="i")
        plan = _plan([prog, None], [K_ACTION, K_END], data=[5])
        seen: set[int] = set()
        assert_lowerable(plan, n_slots=4, externs=None, verified=seen)
        assert id(prog) in seen
        # Second pass must not re-verify (and must still succeed).
        assert_lowerable(plan, n_slots=4, externs=None, verified=seen)


# ---------------------------------------------------------------------------
# Differential fuzz: random bodies through verifier + interpreter
# ---------------------------------------------------------------------------


@st.composite
def rand_exprs(draw, depth=0):
    """A random body expression over ``_ph0``/``_ph1``/``_S[1]`` that
    compile_body accepts; rendered as Python source text."""
    if depth >= 3 or draw(st.booleans()) and depth > 1:
        return draw(st.sampled_from([
            "_ph0", "_ph1", "_S[1]",
            str(draw(st.integers(-1000, 1000))),
        ]))
    kind = draw(st.sampled_from(
        ["bin", "shift", "cmp", "ternary", "call", "unary"]))
    a = draw(rand_exprs(depth=depth + 1))
    if kind == "bin":
        op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
        b = draw(rand_exprs(depth=depth + 1))
        return f"({a} {op} {b})"
    if kind == "shift":
        op = draw(st.sampled_from(["<<", ">>"]))
        return f"({a} {op} {draw(st.integers(0, 7))})"
    if kind == "cmp":
        op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
        b = draw(rand_exprs(depth=depth + 1))
        return f"(1 if {a} {op} {b} else 0)"
    if kind == "ternary":
        b = draw(rand_exprs(depth=depth + 1))
        c = draw(rand_exprs(depth=depth + 1))
        return f"({b} if {a} != 0 else {c})"
    if kind == "unary":
        return f"(-{a})"  # the body IR has NEG but no bitwise invert
    fn = draw(st.sampled_from(
        ["abs", "popcount", "s32", "idiv2", "imod2", "minmax"]))
    if fn == "idiv2":
        return f"idiv({a}, {draw(st.integers(1, 9))})"
    if fn == "imod2":
        return f"imod({a}, {draw(st.integers(1, 9))})"
    if fn == "minmax":
        b = draw(rand_exprs(depth=depth + 1))
        f = draw(st.sampled_from(["min", "max"]))
        return f"{f}({a}, {b})"
    return f"{fn}({a})"


def _eval_reference(lines, S, data):
    """Execute the body source with plain Python semantics — the same
    namespace trick the generated fast-action functions use."""
    from repro.facile.builtins import popcount, s32
    from repro.facile.codegen import idiv, imod

    ns = {
        "_S": S, "idiv": idiv, "imod": imod, "popcount": popcount,
        "s32": s32, "abs": abs, "min": min, "max": max,
    }
    for k, v in enumerate(data):
        ns[f"_ph{k}"] = v
    for line in lines:
        exec(line, ns)


class TestDifferentialFuzz:
    @settings(max_examples=120, deadline=None)
    @given(rand_exprs(), st.integers(-2**40, 2**40), st.integers(-2**40, 2**40))
    def test_clean_bodies_agree_with_python(self, expr, v0, v1):
        lines = [f"_S[0] = {expr}"]
        prog = _body(lines, "ii")
        findings = verify_body(prog, n_slots=4)
        assert [f for f in findings if f.is_error] == []
        S_ir = [0, 17, 0, 0]
        interpret_body(prog, _NullCtx(), S_ir, (v0, v1))
        S_py = [0, 17, 0, 0]
        _eval_reference(lines, S_py, (v0, v1))
        assert S_ir == S_py

    @settings(max_examples=120, deadline=None)
    @given(
        rand_exprs(),
        st.integers(0, 2**32),
        st.lists(
            st.tuples(st.integers(0, 63), st.integers(0, 255)),
            min_size=1, max_size=4,
        ),
    )
    def test_mutated_bytecode_never_reaches_emitter_unchecked(
            self, expr, seed, mutations):
        """Corrupt a compiled body at random positions: either the
        verifier rejects it (and the emitter gate raises), or the body
        still executes without stack/local/slot faults."""
        prog = _body([f"_S[0] = {expr}"], "ii")
        code = list(prog.code)
        for pos, val in mutations:
            code[pos % len(code)] = val
        bad = BodyProgram(0, code, prog.n_locals, prog.max_stack,
                          prog.shapes, prog.is_verify, prog.uses_extern,
                          prog.source)
        findings = verify_body(bad, n_slots=4, externs=ExternTable())
        if any(f.is_error for f in findings):
            plan = _plan([bad, None], [K_ACTION, K_END], data=[1, 2])
            with pytest.raises(Unlowerable):
                assert_lowerable(plan, n_slots=4, externs=ExternTable())
            return
        try:
            interpret_body(bad, _NullCtx(), [0, 17, 0, 0], (seed, 3))
        except IndexError as exc:  # pragma: no cover - verifier hole
            pytest.fail(
                f"verifier-clean body faulted on stack/locals: {exc}")
        except Exception:
            # Value-dependent runtime errors (div0, None memory, …) are
            # the kernel's guarded-op territory, not stack discipline.
            pass


# ---------------------------------------------------------------------------
# End-to-end: C backend parity on fuzz-generated dynamic bodies
# ---------------------------------------------------------------------------


from repro.facile.cbackend import load_kernel  # noqa: E402

KERNEL = load_kernel()
requires_cc = pytest.mark.skipif(
    not KERNEL.status.available,
    reason=f"C kernel unavailable: {KERNEL.status.reason}",
)


@st.composite
def fac_exprs(draw, depth=0):
    """Random Facile expression over dynamic x, y (extern results)."""
    if depth >= 3 or (depth > 1 and draw(st.booleans())):
        return draw(st.sampled_from(
            ["x", "y", str(draw(st.integers(-99, 99)))]))
    a = draw(fac_exprs(depth=depth + 1))
    b = draw(fac_exprs(depth=depth + 1))
    kind = draw(st.sampled_from(["bin", "shift", "div", "cmp"]))
    if kind == "bin":
        op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
        return f"({a} {op} {b})"
    if kind == "shift":
        op = draw(st.sampled_from(["<<", ">>"]))
        return f"({a} {op} {draw(st.integers(0, 7))})"
    if kind == "div":
        op = draw(st.sampled_from(["/", "%"]))
        return f"({a} {op} (({b} & 7) + 1))"
    op = draw(st.sampled_from(["<", "<=", "==", "!="]))
    return f"(({a} {op} {b}) * 3)"


@requires_cc
class TestKernelFuzzParity:
    @settings(max_examples=25, deadline=None)
    @given(fac_exprs())
    def test_c_and_python_replay_agree(self, expr):
        from repro.facile import FastForwardEngine
        from repro.facile.compiler import compile_source

        src = f"""
        val init = 0;
        val out = 0;
        extern srcv(1);
        fun main(pc) {{
          val x = srcv(pc);
          val y = srcv(pc + 17);
          out = out + {expr};
          init = (pc + 1) % 4;
        }}
        """
        sim = compile_source(src).simulator

        def srcv(v):
            return ((v * 2654435761) & 0xFFFFFFFF) - (v & 1) * 1000

        outs = []
        for backend in ("c", "python"):
            ctx = sim.make_context({"srcv": srcv})
            ctx.write_global("init", 0)
            engine = FastForwardEngine(
                sim, ctx, replay_backend=backend, trace_jit=False)
            engine.run(max_steps=24)
            if backend == "c":
                # Keys cycle mod 4, so warm steps really replay — and
                # the gate verified every body the kernel ran.
                assert engine.backend_status["active"] == "c", (
                    engine.backend_status)
                native = engine._cnative
                assert native is not None
                assert native.chains_unlowerable == 0, native.summary()
            outs.append(ctx.read_global("out"))
        assert outs[0] == outs[1]


# ---------------------------------------------------------------------------
# Uarch module-protocol audit (FAC5xx)
# ---------------------------------------------------------------------------


class TestProtocolAudit:
    def test_shipped_suite_is_conformant(self):
        assert audit_builtin_models() == []

    def test_suite_covers_the_native_registry(self):
        labels = {label for label, _, _ in builtin_model_suite()}
        assert {"FrontEndPredictor", "CacheHierarchy"} <= labels
        assert len(labels) >= 9

    def test_undeclared_array_fac501(self):
        from array import array

        class M:
            def __init__(self):
                self.table = array("q", [0] * 8)

            def config_key(self):
                return ("m",)

            def state_arrays(self):
                return {}

        assert "FAC501" in _codes(audit_model(M()))

    def test_mutable_container_fac502(self):
        class M:
            def __init__(self):
                self.history = []

            def config_key(self):
                return ("m",)

            def state_arrays(self):
                return {}

        assert "FAC502" in _codes(audit_model(M()))

    def test_underkeyed_config_fac503(self):
        class M:
            def __init__(self, entries=64):
                self.entries = entries

            def config_key(self):
                return ("m",)

            def state_arrays(self):
                return {}

        assert "FAC503" in _codes(audit_config_key(M))

    def test_malformed_surface_fac504(self):
        class M:
            def __init__(self):
                pass

            def config_key(self):
                return ("m",)

            def state_arrays(self):
                return ["not", "a", "dict"]

        assert _codes(audit_model(M())) == ["FAC504"]

    def test_stats_dataclasses_are_exempt(self):
        from repro.uarch.cache import CacheHierarchy

        # CacheHierarchy carries dataclass stats mirrors and a frozen
        # config; none of those may be flagged.
        assert audit_model(CacheHierarchy()) == []


# ---------------------------------------------------------------------------
# Analysis-stage integration: repro check below the AST
# ---------------------------------------------------------------------------


class TestCheckIntegration:
    def test_builtin_sims_run_ir_stage_clean(self):
        from repro.cli import _BUILTIN_SIMS, _builtin_sim_source

        for name in _BUILTIN_SIMS:
            rep = run_check(_builtin_sim_source(name), f"<builtin:{name}>")
            assert {"ir-verify", "ir-lowerability", "uarch-protocol"} <= set(
                rep.passes)
            assert rep.clean, rep.render_text()
            assert rep.ir["bodies_rejected"] == 0
            assert rep.ir["bodies_python"] == 0
            assert rep.ir["bodies_lowerable"] > 0

    def test_builtin_externs_are_all_native(self):
        from repro.cli import _builtin_sim_source

        rep = run_check(_builtin_sim_source("inorder"), "<builtin:inorder>")
        assert set(rep.ir["externs"]) <= NATIVE_EXTERN_NAMES

    def test_unlowerable_extern_fixture_yields_exactly_fac410(self):
        path = FIXTURES / "unlowerable_extern.fac"
        rep = run_check(path.read_text(), str(path))
        assert [d.code for d in rep.sink.sorted()] == ["FAC410"]
        # INFO severity: never affects the exit code, even under -Werror.
        assert rep.exit_code() == 0 and rep.exit_code(werror=True) == 0
        diag = rep.sink.sorted()[0]
        assert diag.span.is_known  # span hygiene: caret, not UNKNOWN_SPAN
        assert any("declined" in n.message for n in diag.notes)

    def test_non_native_extern_yields_fac411_with_provenance(self):
        rep = run_check(
            "val init;\nextern trace(1);\n"
            "fun main(pc) { trace(pc); init = pc; }\n"
        )
        codes = [d.code for d in rep.sink.sorted()]
        assert codes == ["FAC411"]
        note_text = " ".join(
            n.message for n in rep.sink.sorted()[0].notes)
        assert "native dispatch" in note_text

    def test_nonconformant_model_fixture_yields_exactly_fac502(self):
        rep = check_model_file(str(FIXTURES / "nonconformant_model.py"))
        assert [d.code for d in rep.sink.sorted()] == ["FAC502"]
        assert rep.exit_code() == 0 and rep.exit_code(werror=True) == 1
        assert rep.ir["model_classes_audited"] == 1

    def test_check_cli_routes_py_files(self, capsys):
        rc = main(["check", "--format", "json",
                   str(FIXTURES / "nonconformant_model.py")])
        assert rc == 0
        blob = json.loads(capsys.readouterr().out)
        assert [d["code"] for d in blob["files"][0]["diagnostics"]] == [
            "FAC502"]

    def test_ir_summary_in_json_schema(self):
        rep = run_check("val init; fun main(pc) { init = pc; }")
        blob = rep.to_json()
        assert "ir" in blob
        assert blob["ir"]["bodies_rejected"] == 0

    def test_only_filter_skips_codegen(self):
        rep = run_check(
            "val init; fun main(pc) { init = pc; }",
            only={"cache-blowup"},
        )
        assert rep.passes == ["cache-blowup"]
        assert rep.ir == {}

    def test_wrap_census_reported_not_diagnosed(self):
        from repro.cli import _builtin_sim_source

        rep = run_check(_builtin_sim_source("inorder"), "<builtin:inorder>")
        assert rep.ir["wrap_census"]  # ops present…
        assert "FAC405" not in [d.code for d in rep.sink.sorted()]  # …silent

    def test_explain_check_renders_ir_tier(self):
        from repro.facile.inspect import explain_check

        rep = run_check("val init; fun main(pc) { init = pc; }")
        text = explain_check(rep)
        assert "ir tier:" in text


# ---------------------------------------------------------------------------
# Diagnostics index: registry-generated docs stay fresh
# ---------------------------------------------------------------------------


class TestDiagnosticsIndex:
    def test_every_code_has_an_example(self):
        assert set(CODE_EXAMPLES) == set(CODES)

    def test_index_lists_every_code(self):
        text = render_code_index()
        for code in CODES:
            assert code in text

    def test_docs_file_is_fresh(self):
        path = pathlib.Path(__file__).parent.parent / "docs" / "DIAGNOSTICS.md"
        assert path.exists(), (
            "regenerate with: python -m repro.facile.diagnostics "
            "--write docs/DIAGNOSTICS.md")
        assert path.read_text() == render_code_index() + "\n", (
            "docs/DIAGNOSTICS.md is stale; regenerate with: "
            "python -m repro.facile.diagnostics --write docs/DIAGNOSTICS.md")
