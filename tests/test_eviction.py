"""Generational partial eviction and byte-accounting tests.

Covers the facile-engine side of the cache-limit machinery: eviction
triggered by the byte budget, exact refunds (``bytes_current`` always
equals a from-scratch walk of the surviving record trees), trace
invalidation on partial eviction, and result identity across the
``clear`` / ``generational`` policies and an unlimited baseline.  Also
the satellite regressions: stale-entry refunds in ``create_entry``,
dict freezing, the ``pop_verify`` desync guard, and the mutable-init
``likely_next`` identity-check soundness fix.
"""

import pytest

from repro.facile import FastForwardEngine, SimulationError
from repro.facile.runtime import (
    DICT_TAG,
    ActionCache,
    CompiledSimulator,
    Memoizer,
    freeze,
    thaw,
)

from .toyisa import (
    HALT_WORD,
    add_imm,
    bz,
    compile_toy,
    run_memoized,
)


@pytest.fixture(scope="module")
def toy():
    return compile_toy().simulator


def straight_line(n: int) -> list[int]:
    """n add instructions at distinct pcs (one cache entry each)."""
    return [add_imm(1, 1, 1) for _ in range(n)] + [HALT_WORD]


def multi_loop_program(n_loops: int, iters: int) -> list[int]:
    """n_loops sequential countdown loops.  While loop k runs, its
    entries are the hot working set; earlier loops are dead cold code —
    the access pattern where partial eviction beats a full clear.

    The straight-line preamble varies per loop so loops do not all have
    the same cache footprint: with uniform footprints the byte limit is
    crossed at the same intra-loop phase every time, and a full clear
    can degenerately land only at loop boundaries (where it wipes
    nothing that will ever be revisited), hiding the policy difference
    this program exists to expose."""
    words: list[int] = []
    for k in range(n_loops):
        words += [add_imm(2, 2, j + 1) for j in range(k % 3)]
        words += [
            add_imm(1, 0, iters),   # r1 = iters
            add_imm(1, 1, 0x1FFF),  # r1 -= 1
            bz(1, 8),               # exit to next loop
            bz(0, -8),              # back edge
        ]
    return words + [HALT_WORD]


def registers(ctx):
    return list(ctx.read_global("R"))


# -- ActionCache unit behavior --------------------------------------------------


class TestGenerationalCache:
    def fill(self, cache, keys):
        for key in keys:
            m = Memoizer(cache)
            m.begin_step((key,))
            m.action(0, (key, key))
            m.end_step()

    def test_evicts_coldest_until_watermark(self):
        cache = ActionCache(limit_bytes=200, evict_policy="generational")
        self.fill(cache, [(1, 1), (2, 2), (3, 3), (4, 4)])
        assert cache.stats.bytes_current > 200
        cleared, evicted = cache.maybe_reclaim()
        assert not cleared and evicted
        assert cache.stats.clears == 0
        assert cache.stats.evictions == 1
        assert cache.stats.bytes_current <= 100  # low watermark = 0.5
        # Evicted entries are unreachable and marked stale for links.
        for entry in evicted:
            assert entry.generation == -1
            assert cache.lookup((entry.key[0],)) is None

    def test_refund_is_exact(self):
        cache = ActionCache(limit_bytes=200, evict_policy="generational")
        self.fill(cache, [(i, i) for i in range(8)])
        cache.maybe_reclaim()
        assert cache.stats.bytes_current == cache.recount_bytes()
        assert cache.stats.bytes_refunded > 0

    def test_age_orders_eviction(self):
        cache = ActionCache(limit_bytes=10_000, evict_policy="generational")
        self.fill(cache, [(1, 1)])
        cache.gen += 1
        self.fill(cache, [(2, 2)])
        cache.gen += 1
        # Touching the old entry makes it hotter than (2, 2).
        assert cache.lookup(((1, 1),)) is not None
        cache.limit_bytes = cache.stats.bytes_current - 1
        cache.low_watermark = 0.6  # target forces exactly one eviction
        _, evicted = cache.reclaim()
        assert [e.key for e in evicted] == [((2, 2),)]
        assert cache.lookup(((1, 1),)) is not None

    def test_pinned_entries_evicted_last(self):
        cache = ActionCache(limit_bytes=10_000, evict_policy="generational")
        self.fill(cache, [(1, 1)])
        cache.gen += 1
        self.fill(cache, [(2, 2)])
        pinned_entry = cache.entries[((1, 1),)]  # colder of the two
        cache.limit_bytes = cache.stats.bytes_current - 1
        cache.low_watermark = 0.6
        # (1, 1) is colder but pinned (covered by a live trace), so the
        # hotter unpinned entry goes first.
        _, evicted = cache.reclaim(pinned={id(pinned_entry): None})
        assert [e.key for e in evicted] == [((2, 2),)]

    def test_clear_policy_unchanged(self):
        cache = ActionCache(limit_bytes=50, evict_policy="clear")
        self.fill(cache, [(1, 1), (2, 2)])
        cleared, evicted = cache.maybe_reclaim()
        assert cleared and not evicted
        assert cache.stats.clears == 1
        assert not cache.entries and cache.stats.bytes_current == 0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="eviction policy"):
            ActionCache(evict_policy="lru")


class TestCreateEntryRefund:
    def test_overwrite_refunds_stale_entry(self):
        cache = ActionCache()
        m = Memoizer(cache)
        m.begin_step((1, 2, 3))
        m.action(0, (5, 6))  # interrupted: no end_step
        baseline = None
        for _ in range(5):
            m2 = Memoizer(cache)
            m2.begin_step((1, 2, 3))
            m2.action(0, (5, 6))
            m2.end_step()
            if baseline is None:
                baseline = cache.stats.bytes_current
        # Re-recording the same key must not drift the accounting.
        assert cache.stats.bytes_current == baseline
        assert cache.stats.bytes_current == cache.recount_bytes()

    def test_stale_entry_rejected_by_links(self):
        cache = ActionCache()
        stale = cache.create_entry((7,))
        cache.create_entry((7,))
        assert stale.generation == -1  # likely_next guard fails on it


# -- engine-level eviction ------------------------------------------------------


class TestEngineEviction:
    def test_limit_triggers_eviction_not_clear(self, toy):
        _, engine, _ = run_memoized(
            toy, straight_line(120),
            cache_limit_bytes=2_000, cache_evict="generational",
        )
        stats = engine.cache.stats
        assert stats.evictions > 0
        assert stats.clears == 0
        assert stats.bytes_current <= 2_000

    def test_byte_refund_exact_after_eviction(self, toy):
        _, engine, _ = run_memoized(
            toy, straight_line(120),
            cache_limit_bytes=2_000, cache_evict="generational",
        )
        assert engine.cache.stats.evictions > 0
        assert engine.cache.stats.bytes_current == engine.cache.recount_bytes()

    def test_results_identical_across_policies(self, toy):
        prog = straight_line(150)
        ctx_unlimited, _, _ = run_memoized(toy, prog)
        ctx_clear, engine_clear, _ = run_memoized(
            toy, prog, cache_limit_bytes=2_000, cache_evict="clear"
        )
        ctx_gen, engine_gen, _ = run_memoized(
            toy, prog, cache_limit_bytes=2_000, cache_evict="generational"
        )
        assert engine_clear.cache.stats.clears > 0
        assert engine_gen.cache.stats.evictions > 0
        assert registers(ctx_unlimited) == registers(ctx_clear) == registers(ctx_gen)
        assert (
            ctx_unlimited.retired_total
            == ctx_clear.retired_total
            == ctx_gen.retired_total
        )

    def test_eviction_invalidates_covering_traces(self, toy):
        # Each loop gets traced while hot; once execution moves on, its
        # entries go cold and are evicted, which must kill the covering
        # trace rather than leave it replaying stale chains.
        prog = multi_loop_program(20, 50)
        ctx, engine, _ = run_memoized(
            toy, prog, max_steps=100_000,
            cache_limit_bytes=2_000, cache_evict="generational",
            trace_jit=True, trace_threshold=8,
        )
        assert ctx.halted
        assert engine.traces is not None
        assert engine.traces.stats.traces_compiled > 0
        assert engine.traces.stats.traces_invalidated > 0
        assert engine.cache.stats.evictions > 0
        assert engine.cache.stats.clears == 0
        assert engine.cache.stats.bytes_current == engine.cache.recount_bytes()

    def test_hot_loop_survives_eviction(self, toy):
        # A full clear wipes the running loop's entries at every trip;
        # generational eviction drops only the dead previous loops, so
        # it re-records strictly fewer steps.
        prog = multi_loop_program(20, 50)
        ctx_gen, engine_gen, stats_gen = run_memoized(
            toy, prog, max_steps=100_000,
            cache_limit_bytes=2_000, cache_evict="generational",
            trace_jit=False,
        )
        ctx_clear, engine_clear, stats_clear = run_memoized(
            toy, prog, max_steps=100_000,
            cache_limit_bytes=2_000, cache_evict="clear",
            trace_jit=False,
        )
        assert engine_gen.cache.stats.evictions > 0
        assert engine_clear.cache.stats.clears >= 3
        assert registers(ctx_gen) == registers(ctx_clear)
        assert ctx_gen.retired_total == ctx_clear.retired_total
        assert stats_gen.steps_slow < stats_clear.steps_slow


# -- freeze() on dicts ----------------------------------------------------------


class TestFreezeDict:
    def test_dict_frozen_to_tagged_sorted_items(self):
        assert freeze({"b": 1, "a": [2]}) == (DICT_TAG, ("a", (2,)), ("b", 1))

    def test_frozen_dict_hashable(self):
        hash(freeze({"x": {"y": [1, 2]}, "w": 3}))

    def test_thaw_restores_dict(self):
        original = {"b": 1, "a": [2, {"c": 3}]}
        assert thaw(freeze(original)) == original

    def test_unorderable_keys_raise_simulation_error(self):
        with pytest.raises(SimulationError, match="freeze"):
            freeze({1: "a", "b": 2})


# -- pop_verify desync guard ----------------------------------------------------


class TestPopVerifyGuard:
    def build_plain_chain(self, cache):
        m = Memoizer(cache)
        m.begin_step((1,))
        m.action(0, ())
        m.end_step()
        return cache.lookup((1,))

    def test_desync_at_action_record(self):
        cache = ActionCache()
        entry = self.build_plain_chain(cache)
        m = Memoizer(cache)
        m.begin_recovery(entry, [5])
        with pytest.raises(SimulationError, match="recovery desync"):
            m.pop_verify()

    def test_desync_at_end_record(self):
        cache = ActionCache()
        entry = self.build_plain_chain(cache)
        m = Memoizer(cache)
        m.begin_recovery(entry, [5])
        m.action(0, ())  # cursor now at the end record
        with pytest.raises(SimulationError, match="end of the recorded chain"):
            m.pop_verify()


# -- likely_next identity soundness with mutable init ---------------------------


def _mutable_init_sim() -> CompiledSimulator:
    """A hand-built simulator whose init slot holds a *mutable* list
    mutated in place, with a transition that depends on a counter that
    is outside the cache key.  The object's identity is then a lie:
    trusting ``likely_next`` by ``is`` replays a stale entry."""

    def do(ctx, v):
        ctx.log.append(v)
        n = ctx.counters.get("n", 0)
        ctx.counters["n"] = n + 1
        if n % 3 != 2:
            ctx.S[0][0] = 1 - v  # in-place: same object, new contents

    def slow_main(ctx, M, box):
        v = box[0]
        M.action(0, (v,))
        if not M.recover:
            do(ctx, v)

    def setup(ctx):
        ctx.S[0] = [0]

    return CompiledSimulator(
        name="mutable-init",
        slow_main=slow_main,
        fast_actions=[(lambda ctx, S, data: do(ctx, data[0]), False)],
        slot_count=1,
        global_slots={"init": 0},
        init_slot=0,
        param_count=1,
        setup=setup,
        init_flushed=False,
    )


class TestMutableInitLinks:
    def expected_log(self, steps):
        v, out = 0, []
        for n in range(steps):
            out.append(v)
            if n % 3 != 2:
                v = 1 - v
        return out

    @pytest.mark.parametrize("index_links", [True, False])
    def test_identity_links_not_trusted_without_flushed_init(self, index_links):
        sim = _mutable_init_sim()
        ctx = sim.make_context()
        engine = FastForwardEngine(sim, ctx, index_links=index_links)
        engine.run(max_steps=12)
        assert ctx.log == self.expected_log(12)
