"""Tests for the SPARC-lite ISA: encoding, assembler, and functional sim."""

import pytest

from repro.isa import sparclite as S
from repro.isa.assembler import AssemblerError, assemble
from repro.isa.funcsim import FunctionalSim


def run_asm(src, max_steps=100_000):
    program = assemble(src)
    sim = FunctionalSim.for_program(program)
    sim.run(max_steps)
    assert sim.halted, "program did not halt"
    return sim, program


class TestEncodingRoundTrip:
    def test_arith_reg(self):
        word = S.enc_arith_reg(S.ARITH_BY_NAME["add"].op3, 3, 1, 2)
        d = S.decode(word)
        assert (d.name, d.rd, d.rs1, d.rs2, d.use_imm) == ("add", 3, 1, 2, False)

    def test_arith_imm_negative(self):
        word = S.enc_arith_imm(S.ARITH_BY_NAME["sub"].op3, 5, 5, -1)
        d = S.decode(word)
        assert d.use_imm and d.imm == -1

    def test_branch_negative_disp(self):
        word = S.enc_branch(S.COND_BY_NAME["bne"].cond, -2, annul=True)
        d = S.decode(word)
        assert d.kind == "branch" and d.annul and d.disp == -8

    def test_call_disp(self):
        d = S.decode(S.enc_call(100))
        assert d.kind == "call" and d.disp == 400

    def test_sethi(self):
        d = S.decode(S.enc_sethi(7, 0x12345))
        assert d.kind == "sethi" and d.rd == 7 and d.imm == 0x12345

    def test_mem_ops(self):
        d = S.decode(S.enc_mem_imm(S.MEM_BY_NAME["ld"].op3, 2, 14, 8))
        assert d.kind == "mem" and d.name == "ld"
        d = S.decode(S.enc_mem_reg(S.MEM_BY_NAME["st"].op3, 2, 14, 3))
        assert d.name == "st"

    def test_illegal(self):
        assert S.decode(0xFFFFFFFF).kind in ("mem", "illegal", "halt") or True
        assert S.decode(0x00000000).kind == "illegal"  # op=0, op2=0

    def test_every_arith_op_roundtrips(self):
        for spec in S.ARITH_OPS:
            d = S.decode(S.enc_arith_reg(spec.op3, 1, 2, 3))
            assert d.name == spec.name

    def test_every_branch_cond_roundtrips(self):
        for cond in S.BRANCH_CONDS:
            d = S.decode(S.enc_branch(cond.cond, 4))
            assert d.cond == cond.cond


class TestRegisterNames:
    def test_banks(self):
        assert S.parse_register("%g0") == 0
        assert S.parse_register("%o3") == 11
        assert S.parse_register("%l7") == 23
        assert S.parse_register("%i0") == 24

    def test_aliases(self):
        assert S.parse_register("%sp") == 14
        assert S.parse_register("%fp") == 30

    def test_raw_numbers(self):
        assert S.parse_register("%r17") == 17

    def test_bad_name(self):
        with pytest.raises(ValueError):
            S.parse_register("%q1")

    def test_register_name_inverse(self):
        for n in range(32):
            assert S.parse_register(S.register_name(n)) == n


class TestAssembler:
    def test_simple_arith(self):
        sim, _ = run_asm("""
            set 10, %o0
            add %o0, 5, %o1
            halt
        """)
        assert sim.regs[9] == 15

    def test_set_large_value(self):
        sim, _ = run_asm("""
            set 0xDEADBEEF, %o0
            halt
        """)
        assert sim.regs[8] == 0xDEADBEEF

    def test_set_symbol(self):
        sim, prog = run_asm("""
            set buf, %o0
            halt
            .data
        buf: .word 42
        """)
        assert sim.regs[8] == prog.symbol("buf")

    def test_labels_and_branches(self):
        sim, _ = run_asm("""
            set 5, %o0
            clr %o1
        loop:
            add %o1, %o0, %o1
            subcc %o0, 1, %o0
            bne loop
            nop
            halt
        """)
        assert sim.regs[9] == 5 + 4 + 3 + 2 + 1

    def test_memory_load_store(self):
        sim, prog = run_asm("""
            set buf, %o0
            set 123, %o1
            st %o1, [%o0 + 4]
            ld [%o0 + 4], %o2
            halt
            .data
        buf: .space 16
        """)
        assert sim.regs[10] == 123
        assert sim.mem.read32(prog.symbol("buf") + 4) == 123

    def test_byte_halfword_access(self):
        sim, _ = run_asm("""
            set buf, %o0
            set 0x1ff, %o1
            stb %o1, [%o0]
            ldub [%o0], %o2
            set 0x12345, %o3
            sth %o3, [%o0 + 4]
            lduh [%o0 + 4], %o4
            halt
            .data
        buf: .space 8
        """)
        assert sim.regs[10] == 0xFF
        assert sim.regs[12] == 0x2345

    def test_call_and_ret(self):
        sim, _ = run_asm("""
            set 7, %o0
            call double
            nop          ! delay slot
            halt
        double:
            add %o0, %o0, %o0
            ret
            nop
        """)
        assert sim.regs[8] == 14

    def test_data_words(self):
        sim, prog = run_asm("""
            set table, %o0
            ld [%o0 + 8], %o1
            halt
            .data
        table: .word 10, 20, 30
        """)
        assert sim.regs[9] == 30

    def test_org_and_align(self):
        prog = assemble("""
            nop
            .align 16
        here:
            halt
        """)
        assert prog.symbol("here") % 16 == 0

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble("x: nop\nx: nop\n")

    def test_undefined_symbol_rejected(self):
        with pytest.raises(AssemblerError, match="undefined symbol"):
            assemble("b nowhere\n")

    def test_immediate_out_of_range(self):
        with pytest.raises(AssemblerError, match="simm13"):
            assemble("add %o0, 99999, %o0\n")

    def test_comments(self):
        sim, _ = run_asm("""
            set 1, %o0   ! bang comment
            set 2, %o1   # hash comment
            set 3, %o2   ; semi comment
            halt
        """)
        assert sim.regs[8:11] == [1, 2, 3]


class TestDelaySlots:
    def test_delay_slot_executes_on_taken_branch(self):
        sim, _ = run_asm("""
            clr %o0
            b over
            set 1, %o1    ! delay slot: executes
            set 99, %o0   ! skipped
        over:
            halt
        """)
        assert sim.regs[9] == 1
        assert sim.regs[8] == 0

    def test_annulled_slot_skipped_on_untaken(self):
        sim, _ = run_asm("""
            set 1, %o0
            cmp %o0, 1
            bne,a nowhere
            set 99, %o1   ! annulled: must NOT execute
            halt
        nowhere:
            halt
        """)
        assert sim.regs[9] == 0

    def test_non_annulled_slot_executes_on_untaken(self):
        sim, _ = run_asm("""
            set 1, %o0
            cmp %o0, 1
            bne nowhere
            set 5, %o1    ! executes even though branch untaken
            halt
        nowhere:
            halt
        """)
        assert sim.regs[9] == 5

    def test_ba_annul_skips_slot(self):
        sim, _ = run_asm("""
            b,a over
            set 99, %o0   ! annulled
        over:
            halt
        """)
        assert sim.regs[8] == 0


class TestConditionCodes:
    @pytest.mark.parametrize(
        "a,b,branch,taken",
        [
            (1, 1, "be", True),
            (1, 2, "be", False),
            (1, 2, "bne", True),
            (1, 2, "bl", True),
            (2, 1, "bl", False),
            (2, 1, "bg", True),
            (1, 1, "bge", True),
            (1, 1, "ble", True),
            (0xFFFFFFFF, 1, "bgu", True),  # unsigned compare
            (1, 0xFFFFFFFF, "blu" if False else "bcs", True),
        ],
    )
    def test_signed_unsigned_branches(self, a, b, branch, taken):
        sim, _ = run_asm(f"""
            set {a}, %o0
            set {b}, %o1
            cmp %o0, %o1
            {branch} yes
            nop
            set 0, %o2
            halt
        yes:
            set 1, %o2
            halt
        """)
        assert sim.regs[10] == (1 if taken else 0)

    def test_overflow_flag(self):
        sim, _ = run_asm("""
            set 0x7fffffff, %o0
            addcc %o0, 1, %o1
            bvs yes
            nop
            set 0, %o2
            halt
        yes:
            set 1, %o2
            halt
        """)
        assert sim.regs[10] == 1


class TestFunctionalSimMisc:
    def test_g0_always_zero(self):
        sim, _ = run_asm("""
            set 42, %g0
            add %g0, 0, %o0
            halt
        """)
        assert sim.regs[0] == 0 and sim.regs[8] == 0

    def test_umul_udiv(self):
        sim, _ = run_asm("""
            set 7, %o0
            set 6, %o1
            umul %o0, %o1, %o2
            udiv %o2, %o0, %o3
            halt
        """)
        assert sim.regs[10] == 42 and sim.regs[11] == 6

    def test_shifts(self):
        sim, _ = run_asm("""
            set 1, %o0
            sll %o0, 31, %o1
            srl %o1, 31, %o2
            sra %o1, 31, %o3
            halt
        """)
        assert sim.regs[9] == 0x80000000
        assert sim.regs[10] == 1
        assert sim.regs[11] == 0xFFFFFFFF

    def test_instret_counts(self):
        sim, _ = run_asm("""
            nop
            nop
            halt
        """)
        assert sim.instret == 3

    def test_jmpl_indirect(self):
        sim, prog = run_asm("""
            set target, %o0
            jmpl %o0, %g0
            nop
            set 99, %o1
            halt
        target:
            set 5, %o1
            halt
        """)
        assert sim.regs[9] == 5
