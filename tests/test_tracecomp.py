"""Tests for the trace-compilation tier (repro.facile.tracecomp).

Three properties matter:

1. **Equivalence** — a run with compiled traces produces bit-identical
   architectural and microarchitectural results to the interpreter
   replay path and to the non-memoized PlainEngine.
2. **Side exits** — when a verify value diverges mid-trace, the trace
   side-exits and the driver recovers through the slow engine exactly
   like an interpreted miss.
3. **Invalidation** — traces die when the cache is cleared and when
   recovery grows a new verify successor under them, and the engine
   never executes a stale trace.
"""

import pytest

from repro.facile import FastForwardEngine, compile_source, trace_summary
from repro.facile.tracecomp import NO_TRACE, compile_trace
from repro.isa.assembler import assemble
from repro.ooo.facile_ooo import FacileOooSim, run_facile_ooo
from repro.workloads.suite import build_cached


def sig(stats):
    return (stats.cycles, stats.retired, stats.branches, stats.mispredicts,
            stats.loads, stats.stores)


def jit_run(program, threshold=4, **kw):
    """An OOO run with eager trace promotion (tiny threshold, no
    compile-budget rationing, so even short tests execute traces)."""
    sim = FacileOooSim(program, trace_jit=True, trace_threshold=threshold, **kw)
    sim.engine.traces.compile_step_budget = 1
    return sim.run()


class TestEquivalence:
    """Trace-JIT vs interpreter vs PlainEngine across workloads."""

    @pytest.mark.parametrize("name,scale", [
        ("compress", 2),
        ("mgrid", 1),
        ("li", 2),
    ])
    def test_three_engines_agree(self, name, scale):
        program = build_cached(name, scale)
        jit = jit_run(program)
        interp = run_facile_ooo(program, trace_jit=False)
        plain = run_facile_ooo(program, memoized=False)
        assert sig(jit.stats) == sig(interp.stats)
        assert sig(jit.stats) == sig(plain.stats)
        assert list(jit.ctx.read_global("R")) == list(interp.ctx.read_global("R"))
        assert list(jit.ctx.read_global("R")) == list(plain.ctx.read_global("R"))

    @pytest.mark.parametrize("name,scale", [("tomcatv", 4), ("go", 1)])
    def test_trace_vs_interpreter_on_verify_heavy_runs(self, name, scale):
        program = build_cached(name, scale)
        jit = jit_run(program)
        interp = run_facile_ooo(program, trace_jit=False)
        assert sig(jit.stats) == sig(interp.stats)
        # The point of the low threshold: replay really went through
        # compiled superblocks, not the interpreter.
        agg = jit.engine.traces.aggregate()
        assert agg["steps"] > 1000
        assert jit.run_stats.steps_fast >= agg["steps"]

    def test_step_accounting_matches_interpreter(self):
        program = build_cached("compress", 2)
        jit = jit_run(program)
        interp = run_facile_ooo(program, trace_jit=False)
        a, b = jit.run_stats, interp.run_stats
        assert (a.steps_total, a.steps_fast, a.steps_slow, a.steps_recovered) \
            == (b.steps_total, b.steps_fast, b.steps_slow, b.steps_recovered)
        assert a.actions_replayed == b.actions_replayed


DRIFT_SRC = """
extern probe(1);
val init = 0;
val acc = 0;
fun main(i) {
  acc = acc + probe(i)?verify;
  if (acc >= 500) halt();
  init = (i + 1) % 4;
}
"""


def drift_engine(drift_after=200, threshold=4):
    """Four-entry cycle whose verify value flips after ``drift_after``
    probes — long after every entry has been promoted to a trace."""
    sim = compile_source(DRIFT_SRC).simulator
    calls = {"n": 0}

    def probe(i):
        calls["n"] += 1
        return 1 if calls["n"] > drift_after else 0

    ctx = sim.make_context({"probe": probe})
    ctx.write_global("init", 0)
    engine = FastForwardEngine(sim, ctx, trace_jit=True,
                               trace_threshold=threshold)
    engine.traces.compile_step_budget = 1
    return engine, ctx


class TestSideExits:
    def test_divergence_mid_trace_recovers(self):
        engine, ctx = drift_engine()
        engine.run(max_steps=100_000)
        assert ctx.halted
        assert ctx.read_global("acc") == 500
        agg = engine.traces.aggregate()
        assert agg["side_exits"] >= 1
        # Each side exit recovers through the slow engine, appending
        # the new successor — visible as recovered steps.
        assert engine.stats.steps_recovered >= 1

    def test_drift_result_matches_interpreter(self):
        jit_engine, jit_ctx = drift_engine()
        jit_engine.run(max_steps=100_000)

        sim = compile_source(DRIFT_SRC).simulator
        calls = {"n": 0}

        def probe(i):
            calls["n"] += 1
            return 1 if calls["n"] > 200 else 0

        ctx = sim.make_context({"probe": probe})
        ctx.write_global("init", 0)
        interp = FastForwardEngine(sim, ctx, trace_jit=False)
        interp.run(max_steps=100_000)

        assert ctx.read_global("acc") == jit_ctx.read_global("acc")
        a, b = jit_engine.stats, interp.stats
        assert a.steps_total == b.steps_total
        assert a.steps_recovered == b.steps_recovered

    def test_asm_latency_drift_agrees(self):
        # Cache-latency drift in a real pipeline model: warm lines hit,
        # new lines miss, so CACHE verifies diverge under live traces.
        src = """
            set 300, %o0
            set buf, %o2
            clr %o1
        loop:
            and %o0, 63, %o3
            sll %o3, 2, %o3
            add %o2, %o3, %o4
            ld [%o4], %o5
            add %o1, %o5, %o1
            subcc %o0, 1, %o0
            bne loop
            nop
            halt
            .data
        buf:
            .space 4096
        """
        program = assemble(src)
        jit = jit_run(program)
        interp = run_facile_ooo(program, trace_jit=False)
        assert sig(jit.stats) == sig(interp.stats)


class TestInvalidation:
    def test_new_successor_kills_covering_traces(self):
        engine, ctx = drift_engine()
        engine.run(max_steps=100_000)
        st = engine.traces.stats
        assert st.traces_invalidated >= 1
        # The hot loop re-promotes after the kill: some root was
        # compiled more than once.  (No trace survives to the end —
        # the final ``acc >= 500`` check is itself a fresh verify
        # successor, so the halt step kills the last generation too.)
        roots = {id(t.root) for t in engine.traces.traces}
        assert st.traces_compiled > len(roots) >= 1

    def test_cache_clear_invalidates_traces(self):
        program = build_cached("compress", 2)
        limited = jit_run(program, cache_limit_bytes=40_000)
        unlimited = run_facile_ooo(program, trace_jit=False)
        assert limited.engine.cache.stats.clears >= 1
        assert limited.engine.traces.stats.traces_invalidated >= 1
        # No stale trace ever executed: results stay exact.
        assert sig(limited.stats) == sig(unlimited.stats)
        # Every surviving trace belongs to the current generation.
        generation = limited.engine.cache.generation
        for t in limited.engine.traces.live_traces():
            assert t.generation == generation

    def test_failed_promotion_is_pinned(self):
        # An incomplete entry cannot be compiled; promote() pins it so
        # the attempt is not repeated every replay.
        engine, ctx = drift_engine()
        engine.run(max_steps=10)

        class FakeEntry:
            complete = False
            first = None
            hot = 0
            trace = None

        entry = FakeEntry()
        assert engine.traces.promote(entry) is None
        assert entry.trace is NO_TRACE
        assert compile_trace(entry, engine.compiled,
                             engine.cache.generation) is None


class TestProfilingComposition:
    def test_profile_suspends_trace_execution(self):
        program = build_cached("compress", 2)
        sim = FacileOooSim(program, trace_jit=True, trace_threshold=4)
        sim.engine.profile()
        sim.run()
        # Profiling needs per-action attribution, so nothing may run
        # through (or be promoted to) compiled traces.
        assert sim.engine.traces.aggregate()["calls"] == 0
        assert sim.engine.traces.stats.traces_compiled == 0
        assert sum(sim.engine.action_profile.values()) > 0


class TestReporting:
    def test_trace_summary_renders(self):
        program = build_cached("compress", 2)
        run = jit_run(program)
        text = trace_summary(run.engine)
        assert "traces:" in text and "side exits:" in text
        assert "compiled" in text

    def test_summary_when_disabled(self):
        program = build_cached("li", 2)
        run = run_facile_ooo(program, trace_jit=False)
        assert "disabled" in trace_summary(run.engine)
