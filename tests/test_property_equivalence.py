"""Property-based tests: the memoized (fast-forwarding) engine must be
observationally equivalent to the plain engine on arbitrary programs.

This is the core correctness claim of the paper — FastSim "computes
exactly the same simulated cycle counts" with and without memoization —
exercised here over randomly generated toy-ISA programs.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.facile import FastForwardEngine

from .toyisa import (
    HALT_WORD,
    add_imm,
    add_reg,
    bz,
    compile_toy,
    countdown_program,
    load_program,
    run_memoized,
    run_plain,
)


@pytest.fixture(scope="module")
def toy():
    return compile_toy()


# Straight-line-with-forward-branches programs always terminate.
@st.composite
def forward_programs(draw):
    n = draw(st.integers(min_value=1, max_value=24))
    words = []
    for i in range(n):
        kind = draw(st.sampled_from(["addi", "addr", "bz"]))
        if kind == "addi":
            words.append(
                add_imm(
                    draw(st.integers(1, 31)),
                    draw(st.integers(0, 31)),
                    draw(st.integers(0, 0x1FFF)),
                )
            )
        elif kind == "addr":
            words.append(
                add_reg(
                    draw(st.integers(1, 31)),
                    draw(st.integers(0, 31)),
                    draw(st.integers(0, 31)),
                )
            )
        else:
            remaining = n - i
            skip = draw(st.integers(1, max(1, remaining)))
            words.append(bz(draw(st.integers(0, 31)), 4 * skip))
    words.append(HALT_WORD)
    return words


class TestEquivalenceProperties:
    @settings(max_examples=60, deadline=None)
    @given(forward_programs())
    def test_memoized_equals_plain(self, toy, program):
        ctx_m, _, _ = run_memoized(toy.simulator, program)
        ctx_p, _, _ = run_plain(toy.simulator, program)
        assert ctx_m.halted and ctx_p.halted
        assert list(ctx_m.read_global("R")) == list(ctx_p.read_global("R"))
        assert ctx_m.retired_total == ctx_p.retired_total

    @settings(max_examples=60, deadline=None)
    @given(forward_programs())
    def test_warm_cache_replay_equals_cold(self, toy, program):
        """Running the same program twice over one shared action cache
        must produce identical architectural state; the second run should
        be (almost) entirely fast steps."""
        ctx1, engine1, _ = run_memoized(toy.simulator, program)
        ctx2 = toy.simulator.make_context()
        load_program(ctx2, program)
        engine2 = FastForwardEngine(toy.simulator, ctx2)
        engine2.cache = engine1.cache
        engine2.memoizer = type(engine1.memoizer)(engine1.cache)
        stats2 = engine2.run(max_steps=10_000)
        assert list(ctx1.read_global("R")) == list(ctx2.read_global("R"))
        assert stats2.steps_slow == 0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=60))
    def test_countdown_equivalence_all_lengths(self, toy, n):
        ctx_m, _, _ = run_memoized(toy.simulator, countdown_program(n))
        ctx_p, _, _ = run_plain(toy.simulator, countdown_program(n))
        assert list(ctx_m.read_global("R")) == list(ctx_p.read_global("R"))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=40), st.integers(min_value=100, max_value=2000))
    def test_cache_limit_never_changes_results(self, toy, n, limit):
        ctx_small, engine, _ = run_memoized(
            toy.simulator, countdown_program(n), cache_limit_bytes=limit
        )
        ctx_ref, _, _ = run_plain(toy.simulator, countdown_program(n))
        assert list(ctx_small.read_global("R")) == list(ctx_ref.read_global("R"))
        assert ctx_small.retired_total == ctx_ref.retired_total

    @settings(max_examples=30, deadline=None)
    @given(forward_programs())
    def test_fast_fraction_bounded(self, toy, program):
        _, engine, _ = run_memoized(toy.simulator, program)
        fraction = engine.fast_forward_fraction()
        assert 0.0 <= fraction <= 1.0
