"""Golden parity, degradation, and IR tests for the C replay backend.

The contract under test (docs/INTERNALS.md "Replay IR & C backend"):
running any workload with ``replay_backend="c"`` must produce
bit-identical simulated results to the Python packed loop — same
cycles, same architectural state, same cache statistics (vs the
no-trace Python tiers, which the kernel subsumes) — and environments
without a C compiler must degrade to Python with a reported,
non-fatal status.
"""

from __future__ import annotations

import pytest

from repro.facile.cbackend import _reset_kernel_for_tests, load_kernel
from repro.facile.replay_ir import (
    K_ACTION,
    K_END,
    K_VERIFY_EQ,
    K_VERIFY_TAB,
    ExternTable,
    Unlowerable,
    compile_body,
    interpret_body,
)
from repro.isa.simulate import run_facile_functional
from repro.ooo.facile_inorder import run_facile_inorder
from repro.ooo.facile_ooo import run_facile_ooo
from repro.ooo.fastsim import cycle_ir, run_fastsim
from repro.workloads.suite import build_cached

KERNEL = load_kernel()
requires_cc = pytest.mark.skipif(
    not KERNEL.status.available,
    reason=f"C kernel unavailable: {KERNEL.status.reason}",
)


# ---------------------------------------------------------------------------
# Body IR: compile_body / interpret_body (no compiler needed)
# ---------------------------------------------------------------------------


def _body(lines, shapes="", is_verify=False):
    return compile_body(0, list(lines), shapes, is_verify, ExternTable())


class _NullCtx:
    """Just enough context for bodies that never touch memory/stats."""

    mem = None


def _interp(prog, S, data):
    return interpret_body(prog, _NullCtx(), S, data)


def test_body_arithmetic_roundtrip():
    prog = _body(["_S[0] = (_ph0 + 7) * 3 - (_ph0 >> 2)"], "i")
    S = [0]
    _interp(prog, S, (20,))
    assert S[0] == (20 + 7) * 3 - (20 >> 2)


def test_body_conditional_is_lazy():
    # Only the chosen arm executes; the other may divide by zero.
    prog = _body(["_S[0] = idiv(_S[1], _ph0) if _ph0 != 0 else -1"], "i")
    S = [0, 42]
    _interp(prog, S, (0,))
    assert S[0] == -1
    _interp(prog, S, (6,))
    assert S[0] == 7


def test_body_verify_returns_value():
    prog = _body(["return 1 if _S[0] < _ph0 else 0"], "i", is_verify=True)
    assert _interp(prog, [3], (5,)) == 1
    assert _interp(prog, [9], (5,)) == 0


@pytest.mark.parametrize(
    "lines, shapes, is_verify",
    [
        (["_S[0] = _ph0 ** 2"], "i", False),  # Pow is outside the IR
        (["_S[0] = frobnicate(1)"], "", False),  # unknown call
        (["_S[0] = mystery"], "", False),  # unknown name
        (["for i in [1]: _S[0] = i"], "", False),  # loop statement
        (["_S[0] = _ph0 + 1"], "o", False),  # object in arithmetic
        (["return 5"], "", False),  # return outside a verify body
        (["_S[0] = 1"], "", True),  # verify body missing return
    ],
)
def test_body_unlowerable(lines, shapes, is_verify):
    with pytest.raises(Unlowerable):
        _body(lines, shapes, is_verify)


# ---------------------------------------------------------------------------
# Kernel status reporting
# ---------------------------------------------------------------------------


def test_kernel_status_shape():
    st = KERNEL.status
    assert st.available in (True, False)
    if st.available:
        assert st.compile_ms >= 0.0
        assert st.path
    else:
        assert st.reason


# ---------------------------------------------------------------------------
# Golden parity: C vs Python, cold and warm
# ---------------------------------------------------------------------------

ENGINE_SIMS = ("functional", "inorder", "ooo")


def _run(sim_name, program, backend, **kw):
    """Returns (architectural digest, engine-or-sim, result)."""
    if sim_name == "functional":
        r = run_facile_functional(program, replay_backend=backend, **kw)
        return (r.retired, tuple(r.regs), r.halted), r.engine, r
    if sim_name == "inorder":
        r = run_facile_inorder(program, replay_backend=backend, **kw)
        return (r.stats, r.halted), r.engine, r
    if sim_name == "ooo":
        r = run_facile_ooo(program, replay_backend=backend, **kw)
        return (r.stats, r.halted), r.engine, r
    r = run_fastsim(program, replay_backend=backend, **kw)
    return (r.stats, r.func.halted), r, r


def _cache_digest(engine):
    """Every cache statistic the two backends must agree on (the trace
    tier is off for these runs: the kernel subsumes it)."""
    cs = engine.cache.stats
    return (
        cs.lookups, cs.hits, cs.misses_new_key, cs.misses_verify,
        cs.bytes_current, cs.entries_created,
    )


@requires_cc
@pytest.mark.parametrize("sim_name", ENGINE_SIMS)
def test_cold_parity_exact_stats(sim_name):
    """Cold runs (cache warming → verify-miss side exits, recoveries)
    are bit-identical between backends, down to every cache statistic,
    with the trace tier disabled on both sides."""
    program = build_cached("compress", 2)
    dig_p, eng_p, res_p = _run(sim_name, program, "python", trace_jit=False)
    dig_c, eng_c, res_c = _run(sim_name, program, "c", trace_jit=False)
    assert dig_c == dig_p
    assert _cache_digest(eng_c) == _cache_digest(eng_p)
    rs_p = res_p.run_stats if hasattr(res_p, "run_stats") else res_p.stats
    rs_c = res_c.run_stats if hasattr(res_c, "run_stats") else res_c.stats
    for f in ("steps_total", "steps_fast", "steps_slow", "steps_recovered",
              "actions_replayed"):
        assert getattr(rs_c, f) == getattr(rs_p, f), f
    # The cold run must actually exercise the side-exit path.
    assert eng_c.cache.stats.misses_verify > 0
    assert eng_c.backend_status["active"] == "c"
    assert eng_c._cnative.runs > 0
    assert eng_c._cnative.chains_unlowerable == 0


@requires_cc
@pytest.mark.parametrize("sim_name", ENGINE_SIMS)
def test_cold_parity_default_config(sim_name):
    """With default settings (trace JIT on for the Python side) the
    simulated results still match bit-for-bit."""
    program = build_cached("compress", 2)
    dig_p, _, _ = _run(sim_name, program, "python")
    dig_c, eng_c, _ = _run(sim_name, program, "c")
    assert dig_c == dig_p
    assert eng_c.backend_status["active"] == "c"


@requires_cc
def test_fastsim_runs_native():
    """The fastsim twin lowers its per-cycle walker into the kernel
    (native uarch checks, EXEC/ANNUL callbacks) — no blanket
    degradation — and stays bit-identical to the Python loop."""
    program = build_cached("compress", 1)
    dig_p, _, _ = _run("fastsim", program, "python")
    dig_c, sim, _ = _run("fastsim", program, "c")
    assert dig_c == dig_p
    assert sim.backend_status["active"] == "c"
    assert sim._cnative.runs > 0
    assert sim._cnative.chains_unlowerable == 0


@requires_cc
@pytest.mark.parametrize("sim_name", ("functional", "ooo"))
def test_eviction_mid_run_parity_and_audit(sim_name):
    """Generational eviction under a tight budget drops lowered chains
    mid-run; results and byte accounting stay exact."""
    program = build_cached("compress", 2)
    kw = dict(cache_limit_bytes=48_000, cache_evict="generational",
              trace_jit=False)
    dig_p, eng_p, _ = _run(sim_name, program, "python", **kw)
    dig_c, eng_c, _ = _run(sim_name, program, "c", **kw)
    assert dig_c == dig_p
    assert eng_c.cache.stats.evictions > 0
    assert eng_c.cache.recount_bytes() == eng_c.cache.stats.bytes_current
    assert eng_c.cache.stats.evictions == eng_p.cache.stats.evictions
    assert eng_c.cache.stats.entries_evicted == eng_p.cache.stats.entries_evicted


# ---------------------------------------------------------------------------
# Snapshots: warm parity and cross-backend loads
# ---------------------------------------------------------------------------


@requires_cc
@pytest.mark.parametrize("sim_name", ENGINE_SIMS)
@pytest.mark.parametrize("save_backend, load_backend",
                         [("python", "c"), ("c", "python"), ("c", "c")])
def test_snapshot_cross_backend(tmp_path, sim_name, save_backend,
                                load_backend):
    """A .facsnap saved under one backend loads under the other: same
    simulated results, mmap-shared chains replayed, byte audits exact."""
    program = build_cached("compress", 1)
    snap = tmp_path / "cache.facsnap"
    cold_dig, cold_eng, _ = _run(
        sim_name, program, save_backend, cache_save=str(snap))
    assert cold_eng.snapshot_save.hit
    warm_dig, warm_eng, warm_res = _run(
        sim_name, program, load_backend, cache_load=str(snap))
    assert warm_eng.snapshot_load.hit, warm_eng.snapshot_load.reason
    assert warm_dig == cold_dig
    rs = (warm_res.run_stats if hasattr(warm_res, "run_stats")
          else warm_res.stats)
    assert rs.steps_slow == 0
    cache = warm_eng.cache
    assert cache.stats.bytes_shared > 0
    assert cache.recount_bytes() == cache.stats.bytes_current
    assert cache.recount_shared_bytes() == cache.stats.bytes_shared
    if load_backend == "c":
        assert warm_eng.backend_status["active"] == "c"
        assert warm_eng._cnative.runs > 0


# ---------------------------------------------------------------------------
# Graceful degradation
# ---------------------------------------------------------------------------


@pytest.fixture
def fresh_kernel_singleton():
    _reset_kernel_for_tests()
    yield
    _reset_kernel_for_tests()


def test_masked_compiler_degrades(monkeypatch, fresh_kernel_singleton):
    monkeypatch.setenv("FACILE_NO_CC", "1")
    program = build_cached("compress", 1)
    r = run_facile_functional(program, replay_backend="c")
    bs = r.engine.backend_status
    assert bs["requested"] == "c"
    assert bs["active"] == "python"
    assert "masked" in bs["reason"]
    assert r.halted
    # And the same run finishes identically to an explicit python run.
    rp = run_facile_functional(program, replay_backend="python")
    assert (r.retired, r.regs, r.halted) == (rp.retired, rp.regs, rp.halted)


def test_no_flat_pack_degrades_with_reason():
    program = build_cached("compress", 1)
    r = run_facile_functional(program, replay_backend="c", flat_pack=False)
    bs = r.engine.backend_status
    assert bs["active"] == "python"
    assert "flat pack" in bs["reason"]
    assert r.halted


def test_unknown_backend_rejected():
    program = build_cached("compress", 1)
    with pytest.raises(ValueError):
        run_facile_functional(program, replay_backend="rust")
    with pytest.raises(ValueError):
        run_fastsim(program, replay_backend="rust")


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------


@requires_cc
def test_cache_summary_reports_backend():
    from repro.facile.inspect import cache_summary

    program = build_cached("compress", 1)
    r = run_facile_functional(program, replay_backend="c", trace_jit=False)
    text = cache_summary(r.engine.cache, engine=r.engine)
    assert "replay backend:   c" in text
    assert "native replay:" in text
    rp = run_facile_functional(program, replay_backend="python")
    text_p = cache_summary(rp.engine.cache, engine=rp.engine)
    assert "replay backend:   python" in text_p
    # Legacy one-argument form keeps working.
    assert "replay backend" not in cache_summary(rp.engine.cache)


# ---------------------------------------------------------------------------
# The fastsim twin's IR view
# ---------------------------------------------------------------------------


def test_fastsim_cycle_ir_vocabulary():
    """cycle_ir maps every packed fastsim cycle into the shared replay
    IR kinds with consistent successors."""
    program = build_cached("compress", 1)
    sim = run_fastsim(program)
    pool_values = sim.pool.values
    checked = 0
    for node in sim.memo.values():
        chain = node.packed
        if chain is None:
            continue
        kinds, payloads, succ = cycle_ir(chain, pool_values)
        assert len(kinds) == len(chain.kinds)
        assert kinds.count(K_END) >= 1
        for k, p, s in zip(kinds, payloads, succ):
            if k == K_END:
                assert isinstance(p, int) and s is None
            elif k == K_ACTION:
                assert isinstance(p, tuple) and s is None
            elif k == K_VERIFY_EQ:
                assert s is not None and not isinstance(s, dict)
            else:
                assert k == K_VERIFY_TAB and isinstance(s, dict)
        checked += 1
    assert checked > 0


# ---------------------------------------------------------------------------
# Disk-cache build lock (fleet cold-start herd)
# ---------------------------------------------------------------------------


def _herd_build_main(cache_dir: str, out_path: str) -> None:
    """Spawn target: build the kernel into an overridden cache dir."""
    import json
    import os

    os.environ["FACILE_CKERNEL_DIR"] = cache_dir
    from repro.facile.cbackend import _reset_kernel_for_tests, load_kernel

    _reset_kernel_for_tests()
    kernel = load_kernel()
    json.dump(
        {
            "available": kernel.status.available,
            "reason": kernel.status.reason,
            "path": kernel.status.path,
        },
        open(out_path, "w"),
    )


@requires_cc
@pytest.mark.slow
def test_concurrent_cold_start_builds_one_kernel(tmp_path):
    """N processes cold-starting on an empty kernel cache must all end
    up with a working kernel and exactly one installed .so — the flock
    serializes the compile; losers wait then dlopen the winner's file.
    """
    import json
    import multiprocessing

    ctx = multiprocessing.get_context("spawn")
    cache_dir = tmp_path / "kcache"
    outs = [tmp_path / f"out{i}.json" for i in range(3)]
    procs = [
        ctx.Process(target=_herd_build_main, args=(str(cache_dir), str(out)))
        for out in outs
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(300)
        assert p.exitcode == 0
    results = [json.load(open(out)) for out in outs]
    for r in results:
        assert r["available"], r["reason"]
    sos = list(cache_dir.glob("kernel-*.so"))
    assert len(sos) == 1
    assert {r["path"] for r in results} == {str(sos[0])}
    # no orphaned compile tmp files from losing racers
    assert not list(cache_dir.glob("*.so.tmp*"))
