"""Unit tests for the static-analysis passes and ``run_check``."""

import pathlib

import pytest

from repro.facile.analysis import (
    AnalysisContext,
    run_check,
    run_passes,
    why_dynamic,
)
from repro.facile.bta import analyze_binding_times
from repro.facile.compiler import compile_source
from repro.facile.diagnostics import DiagnosticSink
from repro.facile.inline import flatten_program
from repro.facile.parser import parse
from repro.facile.sema import analyze
from repro.facile.source import SourceBuffer
from repro.isa.facile_src import functional_sim_source
from repro.ooo.facile_inorder import inorder_sim_source
from repro.ooo.facile_ooo import ooo_sim_source

FIXTURES = pathlib.Path(__file__).parent / "facile_violations"

HEADER = (
    "token instruction[32] fields op 24:31, rl 19:23, imm 0:12;"
    "pat add = op==0; pat bz = op==1;"
)


def codes_of(report):
    return sorted({d.code for d in report.sink.diagnostics})


class TestUseBeforeInit:
    def test_one_armed_branch_flagged(self):
        rep = run_check(
            "val init; fun main(pc) {"
            " val x; if (pc) { x = 1; } val y = x + 1; init = pc; }"
        )
        assert "FAC101" in codes_of(rep)

    def test_both_branches_assign_is_clean(self):
        rep = run_check(
            "val init; fun main(pc) {"
            " val x; if (pc) { x = 1; } else { x = 2; } val y = x + 1; init = pc; }"
        )
        assert "FAC101" not in codes_of(rep)

    def test_zero_trip_loop_flagged(self):
        rep = run_check(
            "val init; fun main(pc) {"
            " val x; while (pc) { x = 1; break; } val y = x; init = pc; }"
        )
        assert "FAC101" in codes_of(rep)

    def test_switch_with_default_covering_all_arms_is_clean(self):
        rep = run_check(
            "val init; fun main(pc) { val x;"
            " switch (pc) { case 1: x = 1; default: x = 2; }"
            " val y = x; init = pc; }"
        )
        assert "FAC101" not in codes_of(rep)


class TestDeadCode:
    def test_uncalled_function_flagged(self):
        rep = run_check("val init; fun helper() { } fun main(pc) { init = pc; }")
        assert "FAC102" in codes_of(rep)
        (diag,) = [d for d in rep.sink.diagnostics if d.code == "FAC102"]
        assert "helper" in diag.message

    def test_called_function_is_clean(self):
        rep = run_check(
            "val init; fun helper() { } fun main(pc) { helper(); init = pc; }"
        )
        assert "FAC102" not in codes_of(rep)

    def test_undispatched_sem_flagged(self):
        rep = run_check(
            HEADER + "val init; sem add { }; fun main(pc) { init = pc; }"
        )
        assert "FAC103" in codes_of(rep)

    def test_exec_reaches_all_sems(self):
        rep = run_check(
            HEADER + "val init; sem add { }; sem bz { };"
            "fun main(pc) { pc?exec(); init = pc; }"
        )
        assert "FAC103" not in codes_of(rep)

    def test_unused_global_flagged(self):
        rep = run_check("val init; val nobody = 0; fun main(pc) { init = pc; }")
        assert "FAC104" in codes_of(rep)

    def test_write_only_global_is_info(self):
        rep = run_check("val init; val evt = 0; fun main(pc) { evt = 1; init = pc; }")
        assert "FAC105" in codes_of(rep)
        assert rep.exit_code(werror=True) == 0  # infos never fail the build

    def test_write_only_suppressible_from_source(self):
        rep = run_check(
            "// fac: disable-file=FAC105\n"
            "val init; val evt = 0; fun main(pc) { evt = 1; init = pc; }"
        )
        assert "FAC105" not in codes_of(rep)
        assert len(rep.sink.suppressed) == 1


class TestPatternArms:
    SHADOW = (
        "token instruction[32] fields op 24:31, rl 19:23, imm 0:12;"
        "pat add = op==0; pat addtoo = op==0;"
        "val init; val CNT = 0;"
        "fun main(pc) {"
        " switch (pc) { pat add: CNT = CNT + 1; pat addtoo: CNT = CNT + 2; }"
        " init = pc; }"
    )

    def test_duplicate_pattern_shadowed_and_overlapping(self):
        rep = run_check(self.SHADOW)
        assert "FAC110" in codes_of(rep)
        assert "FAC111" in codes_of(rep)

    def test_disjoint_arms_are_clean(self):
        rep = run_check(
            HEADER + "val init; val CNT = 0;"
            "fun main(pc) {"
            " switch (pc) { pat add: CNT = CNT + 1; pat bz: CNT = CNT + 2; }"
            " init = pc; }"
        )
        assert "FAC110" not in codes_of(rep)
        assert "FAC111" not in codes_of(rep)


class TestBtaAudit:
    def test_dynamic_key_is_an_error(self):
        rep = run_check("val init; fun main(pc) { init = mem_read(pc); }")
        assert "FAC201" in codes_of(rep)
        assert rep.exit_code() == 1
        (diag,) = [d for d in rep.sink.diagnostics if d.code == "FAC201"]
        assert diag.notes, "FAC201 should carry a provenance chain"

    def test_dynamic_branch_without_verify_warns(self):
        rep = run_check(
            "val init; fun main(pc) { val v = mem_read(pc);"
            " if (v) { init = pc; } else { init = pc; } }"
        )
        assert "FAC202" in codes_of(rep)
        assert rep.exit_code() == 0  # warning, not error
        assert rep.n_dynamic_result_tests == 1

    def test_explicit_verify_is_clean(self):
        rep = run_check(
            "val init; fun main(pc) { val v = mem_read(pc)?verify;"
            " if (v) { init = pc; } else { init = pc; } }"
        )
        assert "FAC202" not in codes_of(rep)

    def test_unpinned_dynamic_branch_post_insertion_is_fac203(self):
        # Drive the post-insertion invariant pass directly against a
        # tree where insert_dynamic_result_tests was (deliberately)
        # never run: the surviving dynamic condition must be an error.
        src = (
            "val init; fun main(pc) { val v = mem_read(pc);"
            " if (v) { init = pc; } else { init = pc; } }"
        )
        info = analyze(parse(src, "<t>"))
        flat = flatten_program(info)
        division = analyze_binding_times(flat)
        sink = DiagnosticSink(SourceBuffer(src, "<t>"))
        ctx = AnalysisContext(info, sink.buffer, flat, division, n_inserted=0)
        run_passes("post", ctx, sink)
        assert any(d.code == "FAC203" for d in sink.diagnostics)


class TestCacheBlowup:
    def test_advancing_key_flagged(self):
        rep = run_check("val init; fun main(pc) { init = pc + 4; }")
        assert "FAC301" in codes_of(rep)

    def test_identity_key_is_clean(self):
        rep = run_check("val init; fun main(pc) { init = pc; }")
        assert "FAC301" not in codes_of(rep)

    def test_key_resolved_through_local_flagged(self):
        rep = run_check(
            "val init; fun main(pc) { val nxt = pc + 4; init = nxt; }"
        )
        assert "FAC301" in codes_of(rep)

    def test_key_dependent_loop_flagged(self):
        rep = run_check(
            "val init; fun main(pc) {"
            " val i = 0; while (i < pc) { i = i + 1; } init = 0; }"
        )
        assert "FAC302" in codes_of(rep)

    def test_literal_bounded_loop_is_clean(self):
        rep = run_check(
            "val init; fun main(pc) {"
            " val i = 0; while (i < 16) { i = i + 1; } init = pc; }"
        )
        assert "FAC302" not in codes_of(rep)


class TestViolationCorpus:
    EXPECTED = {
        "use_before_init.fac": "FAC101",
        "overlapping_arms.fac": "FAC111",
        "missing_result_test.fac": "FAC202",
        "unbounded_cache_key.fac": "FAC301",
        "key_dependent_loop.fac": "FAC302",
    }

    @pytest.mark.parametrize("name,code", sorted(EXPECTED.items()))
    def test_fixture_yields_exactly_its_code(self, name, code):
        rep = run_check((FIXTURES / name).read_text(), str(FIXTURES / name))
        assert codes_of(rep) == [code]
        assert code in rep.render_text()
        blob = rep.to_json()
        assert [d["code"] for d in blob["diagnostics"]] == [code]
        assert rep.exit_code() == 0 and rep.exit_code(werror=True) == 1


class TestRunCheckPipeline:
    def test_parse_error_reported_not_raised(self):
        rep = run_check("fun main( { }")
        assert rep.exit_code() == 1
        assert "FAC002" in codes_of(rep)

    def test_semantic_errors_batched_into_report(self):
        rep = run_check("fun main(pc) { val x = nope1; val y = nope2; }")
        assert rep.exit_code() == 1
        assert codes_of(rep).count("FAC010") == 1
        assert len([d for d in rep.sink.diagnostics if d.code == "FAC010"]) == 2

    def test_only_filter_limits_passes(self):
        rep = run_check(
            "val init; fun main(pc) { init = pc + 4; }",
            only={"cache-blowup"},
        )
        assert rep.passes == ["cache-blowup"]
        assert codes_of(rep) == ["FAC301"]

    def test_report_json_schema(self):
        rep = run_check("val init; fun main(pc) { init = pc; }")
        blob = rep.to_json()
        for key in ("file", "clean", "fatal", "counts", "suppressed",
                    "passes", "n_dynamic_result_tests", "diagnostics"):
            assert key in blob
        assert blob["clean"] is True
        assert blob["counts"] == {"error": 0, "warning": 0, "info": 0}


class TestShippedSimulatorsClean:
    @pytest.mark.parametrize(
        "builder", [functional_sim_source, inorder_sim_source, ooo_sim_source]
    )
    def test_builtin_sim_is_clean_even_with_werror(self, builder):
        rep = run_check(builder(), f"<{builder.__name__}>")
        assert rep.sink.diagnostics == []
        assert rep.exit_code(werror=True) == 0
        assert rep.n_dynamic_result_tests == 0


class TestWhyDynamic:
    def test_rt_static_variable(self):
        result = compile_source("val init; fun main(pc) { init = pc; }")
        assert why_dynamic(result.flat, result.division, "init") == [
            "'init' is run-time static"
        ]

    def test_dynamic_chain_names_the_root(self):
        result = compile_source(
            "val init; val OUT = 0;"
            "fun main(pc) { val v = mem_read(pc); OUT = v + 1; init = pc; }"
        )
        lines = why_dynamic(result.flat, result.division, "OUT")
        assert any("mem_read" in line for line in lines)

    def test_compile_source_check_collects_warnings(self):
        result = compile_source(
            "val init; fun main(pc) { init = pc + 4; }", check=True
        )
        assert [d.code for d in result.diagnostics] == ["FAC301"]
