"""Shared infrastructure for the paper-reproduction benchmarks.

Measurements are cached per pytest session so that e.g. the baseline
(SimpleScalar-like) runs that Figure 11, Figure 12, and Table 1 all
need are executed once.  Rendered tables are written to
``bench_results/`` as durable artifacts.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.harness import Measurement, measure
from repro.workloads.suite import WORKLOADS, build_cached

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "bench_results"

#: Order used by every table, mirroring the paper's Table 1/2 layout
#: (integer benchmarks first, then floating-point analogues).
BENCH_ORDER = [
    "go",
    "m88ksim",
    "gcc",
    "compress",
    "li",
    "ijpeg",
    "perl",
    "vortex",
    "tomcatv",
    "swim",
    "su2cor",
    "hydro2d",
    "mgrid",
    "applu",
    "turb3d",
    "apsi",
    "fpppp",
    "wave5",
]


class MeasurementCache:
    def __init__(self) -> None:
        self._cache: dict[tuple, Measurement] = {}

    def get(
        self,
        workload: str,
        simulator: str,
        cache_limit_bytes: int | None = None,
        scale: int | None = None,
    ) -> Measurement:
        key = (workload, simulator, cache_limit_bytes, scale)
        if key not in self._cache:
            program = build_cached(workload, scale)
            self._cache[key] = measure(
                simulator,
                program,
                workload_name=workload,
                cache_limit_bytes=cache_limit_bytes,
            )
        return self._cache[key]


@pytest.fixture(scope="session")
def mcache() -> MeasurementCache:
    return MeasurementCache()


def write_result(filename: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / filename).write_text(text + "\n")
    print("\n" + text)


def all_workloads() -> list[str]:
    assert set(BENCH_ORDER) == set(WORKLOADS)
    return BENCH_ORDER
