"""Trace-compilation ablation: compiled superblocks vs record replay.

The fast engine's second tier promotes hot action chains to
straight-line compiled traces (``repro.facile.tracecomp``).  This
benchmark quantifies the tier on memoization-friendly workloads — long
runs dominated by replay, where the per-record dispatch the traces
remove is the bottleneck — and checks the contract that matters: the
trace tier changes host speed only, never simulated results.

Workload scales are larger than the correctness suite's: a trace costs
a few milliseconds of ``compile()`` up front, so the tier needs enough
replay volume to amortize (the same warm-up economics as any JIT).
"""

import time

import pytest

from repro.bench.harness import Measurement
from repro.bench.reporting import render_generic
from repro.ooo.facile_ooo import run_facile_ooo
from repro.workloads.suite import build_cached

from conftest import write_result

#: (workload, scale): memo-heavy runs, a few hundred thousand steps.
SCENARIOS = [
    ("compress", 30),
    ("mgrid", 6),
    ("tomcatv", 12),
]

_cache: dict = {}


def _run(name: str, scale: int, trace_jit: bool) -> tuple[Measurement, object]:
    key = (name, scale, trace_jit)
    if key not in _cache:
        # Measure the two variants interleaved, best-of-3 each: host
        # load drifts on shared machines, and measuring one variant
        # minutes after the other would bias the ratio.
        program = build_cached(name, scale)
        best: dict = {True: None, False: None}
        for _ in range(3):
            for jit in (False, True):
                start = time.perf_counter()
                run = run_facile_ooo(program, trace_jit=jit)
                elapsed = time.perf_counter() - start
                if best[jit] is None or elapsed < best[jit][0]:
                    best[jit] = (elapsed, run)
        for jit in (False, True):
            label = "trace-jit" if jit else "interpreter"
            m = Measurement(
                name,
                f"facile[{label}]",
                best[jit][0],
                best[jit][1].stats.retired,
                best[jit][1].stats.cycles,
                retired_fast=best[jit][1].retired_fast,
            )
            _cache[(name, scale, jit)] = (m, best[jit][1])
    return _cache[key]


@pytest.mark.parametrize("name,scale", SCENARIOS)
def test_trace_variant(benchmark, name, scale):
    m, _ = _run(name, scale, True)
    benchmark.extra_info.update({"workload": name, "kips": round(m.kips, 1)})
    benchmark.pedantic(lambda: _run(name, scale, True), rounds=1, iterations=1)


def test_trace_report(benchmark):
    rows = []
    speedups = []
    for name, scale in SCENARIOS:
        base, base_run = _run(name, scale, False)
        jit, jit_run = _run(name, scale, True)

        # The tier must be invisible in simulated results.
        assert jit.cycles == base.cycles
        assert jit.retired == base.retired
        assert jit_run.stats.mispredicts == base_run.stats.mispredicts

        st = jit_run.engine.traces.stats
        agg = jit_run.engine.traces.aggregate()
        coverage = 100 * agg["steps"] / max(1, jit_run.run_stats.steps_fast)
        speedup = jit.kips / base.kips
        speedups.append(speedup)
        rows.append([
            name,
            f"{base.kips:.1f}k",
            f"{jit.kips:.1f}k",
            f"{speedup:.2f}x",
            f"{st.traces_compiled}",
            f"{coverage:.0f}%",
            f"{agg['side_exits']}",
        ])
    text = render_generic(
        "Trace-compilation ablation: replay interpreter vs compiled "
        "superblocks (identical simulated cycles asserted)",
        ["workload", "interp kips", "trace kips", "speedup",
         "traces", "coverage", "side exits"],
        rows,
    )
    benchmark.pedantic(lambda: text, rounds=1, iterations=1)
    write_result("ablation_trace.txt", text)

    # The tier must pay for itself on at least one memo-heavy workload.
    # (TRACE_BENCH_LAX=1 downgrades this on shared/throttled CI
    # runners, where host-speed ratios are not reproducible.)
    import os
    if os.environ.get("TRACE_BENCH_LAX") != "1":
        assert max(speedups) >= 1.3
