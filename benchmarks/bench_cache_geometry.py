"""Substrate study: data-cache geometry.

The paper's simulators model "non-blocking data caches" as an external
component.  This benchmark sweeps the L1 size on a memory-heavy
workload and reports miss rate plus simulated cycles for the same
(cycle-exact) machine otherwise — the kind of architecture study the
whole toolchain exists to support.  It also demonstrates that the
memoized simulator tracks the conventional one through every
configuration.
"""

import pytest

from repro.bench.reporting import render_generic
from repro.ooo.common import MachineConfig
from repro.ooo.facile_ooo import FacileOooSim
from repro.ooo.reference import ReferenceOooSim
from repro.uarch.cache import CacheConfig, HierarchyConfig
from repro.workloads.minic import compile_minic

from conftest import write_result

WORKLOAD = "stream32k"
L1_SIZES = [1, 4, 16, 64]  # KB

# A dedicated cache stressor: repeated passes over a 32 KB array, one
# access per 32-byte line.  Small L1s capacity-miss on every pass;
# a 64 KB L1 holds the whole set after the first pass.
_STRESSOR = """
int data[8192];

int main() {
    int pass;
    int check = 0;
    for (pass = 0; pass < 6; pass = pass + 1) {
        int i;
        for (i = 0; i < 8192; i = i + 8) {
            check = check + data[i];
            data[i] = check & 255;
        }
    }
    out(check & 65535);
    return 0;
}
"""

_program_cache = {}


def build_cached(_name):
    if "p" not in _program_cache:
        _program_cache["p"] = compile_minic(_STRESSOR)
    return _program_cache["p"]


_rows: dict[int, tuple] = {}


def _config(l1_kb: int) -> MachineConfig:
    return MachineConfig(
        cache=HierarchyConfig(
            l1=CacheConfig("L1D", l1_kb * 1024, 32, 2, 1),
            l2=CacheConfig("L2", 256 * 1024, 64, 8, 8),
        )
    )


def _sweep(l1_kb: int) -> tuple:
    if l1_kb in _rows:
        return _rows[l1_kb]
    program = build_cached(WORKLOAD)
    config = _config(l1_kb)
    ref = ReferenceOooSim(program, config)
    ref.run()
    facile = FacileOooSim(program, config)
    run = facile.run()
    assert run.stats.cycles == ref.stats.cycles
    miss_rate = facile.dcache.l1.stats.miss_rate
    _rows[l1_kb] = (l1_kb, ref.stats.cycles, ref.stats.ipc, miss_rate)
    return _rows[l1_kb]


@pytest.mark.parametrize("l1_kb", L1_SIZES)
def test_cache_geometry(benchmark, l1_kb):
    row = _sweep(l1_kb)
    benchmark.extra_info.update(
        {"l1_kb": l1_kb, "miss_rate": round(row[3], 4), "cycles": row[1]}
    )
    benchmark.pedantic(lambda: _sweep(l1_kb), rounds=1, iterations=1)


def test_cache_geometry_report(benchmark):
    rows = []
    for kb in L1_SIZES:
        l1_kb, cycles, ipc, miss = _sweep(kb)
        rows.append([f"{l1_kb} KB", f"{cycles:,}", f"{ipc:.2f}", f"{100 * miss:.2f}%"])
    text = render_generic(
        f"L1 data-cache geometry sweep on '{WORKLOAD}' "
        "(memoized and conventional simulators cycle-exact at every point)",
        ["L1 size", "cycles", "IPC", "L1 miss rate"],
        rows,
    )
    benchmark.pedantic(lambda: text, rounds=1, iterations=1)
    write_result("cache_geometry.txt", text)

    # Bigger caches can't miss more, and must help cycles somewhere.
    misses = [_sweep(kb)[3] for kb in L1_SIZES]
    assert misses == sorted(misses, reverse=True)
    cycles = [_sweep(kb)[1] for kb in L1_SIZES]
    assert cycles[-1] <= cycles[0]
