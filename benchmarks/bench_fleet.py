"""Parallel fleet vs. serial grid: throughput, parity, and resilience.

Runs the (workload × simulator) benchmark grid through the sharded
simulation service pool (``repro.serve``), with the serial golden pass
doubling as the baseline wall clock.  Three claims are checked:

* **parity** — every parallel cell's simulated cycles and retired
  counts are bit-identical to its in-process serial golden (the fleet
  changes *where* a simulation runs, never *what* it computes);
* **completeness** — the report covers every cell, with failures (if
  any) marked and counted out of the harmonic mean visibly;
* **throughput** — on a host with >= 4 cores the parallel grid beats
  the serial grid by at least ``SPEEDUP_FLOOR`` wall-clock (skipped on
  smaller hosts and under ``--quick``, where the grid is too small to
  amortize worker startup).

Writes ``bench_results/fleet.txt`` (human table) and
``bench_results/BENCH_8.json`` (machine-readable per-cell record).

Run directly (not via pytest)::

    python benchmarks/bench_fleet.py          # full grid
    python benchmarks/bench_fleet.py --quick  # small grid, CI gate
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.serve.fleet import run_fleet

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "bench_results"

#: Acceptance floor: parallel grid wall clock vs. serial grid, only
#: enforced where the hardware can plausibly deliver it.
SPEEDUP_FLOOR = 2.0
SPEEDUP_MIN_CORES = 4

QUICK_WORKLOADS = ["compress", "go"]
QUICK_SIMULATORS = ["facile", "fastsim"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small grid (CI): 2 workloads x 2 simulators")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker shards (default: min(4, cpu count))")
    parser.add_argument("--report", default=None,
                        help="report path (default bench_results/BENCH_8.json)")
    args = parser.parse_args(argv)

    cpus = os.cpu_count() or 1
    workers = args.workers if args.workers is not None else max(2, min(4, cpus))
    workloads = QUICK_WORKLOADS if args.quick else None
    simulators = QUICK_SIMULATORS if args.quick else None

    report = run_fleet(
        workloads=workloads,
        simulators=simulators,
        workers=workers,
        verify=True,
    )

    failures: list[str] = []
    for cell in report.failed_cells:
        failures.append(
            f"cell {cell.workload}/{cell.simulator} failed: {cell.reason}"
        )
    for cell in report.cells:
        if cell.parity is False:
            failures.append(
                f"cell {cell.workload}/{cell.simulator}: {cell.reason}"
            )
    gate_speedup = not args.quick and cpus >= SPEEDUP_MIN_CORES
    report.speedup_gated = gate_speedup
    if gate_speedup and report.speedup < SPEEDUP_FLOOR:
        failures.append(
            f"parallel grid only {report.speedup:.2f}x serial on "
            f"{cpus} cores (need >= {SPEEDUP_FLOOR}x with "
            f"{workers} workers)"
        )

    text = report.render_text()
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "fleet.txt").write_text(text + "\n")
    report_path = report.write(
        args.report if args.report else RESULTS_DIR / "BENCH_8.json"
    )
    print(text)
    print(f"\nreport written to {report_path}")

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    note = (
        f"{report.speedup:.2f}x serial"
        if gate_speedup
        else f"{report.speedup:.2f}x serial (floor not enforced: "
        + ("--quick)" if args.quick else f"only {cpus} cores)")
    )
    print(
        f"OK: {len(report.ok_cells)}/{len(report.cells)} cells, "
        f"all bit-identical to serial goldens, {note}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
