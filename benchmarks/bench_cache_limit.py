"""§6.1 ablation: action-cache size limit sweep.

The paper: "Memory utilization can be limited by fixing a maximum cache
size and clearing the cache when it fills ... cache size can be reduced
by a factor of ten, with little impact on memoized simulator
performance."

The reproduction sweeps the byte limit over a regular workload (mgrid,
high reuse) and the irregular worst case (go): mgrid should tolerate a
10x smaller cache nearly for free; go should degrade once the limit
forces repeated clearing.
"""

import time

import pytest

from repro.bench.harness import measure
from repro.bench.reporting import render_generic
from repro.workloads.suite import build_cached

from conftest import write_result

# Limits as fractions of the unlimited footprint measured on the fly.
FRACTIONS = [None, 1.0, 0.5, 0.1, 0.02]

_results: dict = {}


def _sweep(workload: str) -> list[tuple[str, float, int]]:
    if workload in _results:
        return _results[workload]
    program = build_cached(workload)
    base = measure("facile", program, workload)
    rows = [("unlimited", base.kips, 0)]
    footprint = base.memo_bytes
    for fraction in FRACTIONS[1:]:
        limit = max(int(footprint * fraction), 64 * 1024)
        m = measure("facile", program, workload, cache_limit_bytes=limit)
        rows.append((f"{fraction:.2f}x", m.kips, m.memo_clears))
    _results[workload] = rows
    return rows


@pytest.mark.parametrize("workload", ["mgrid", "go"])
def test_cache_limit_sweep(benchmark, workload):
    start = time.perf_counter()
    rows = _sweep(workload)
    benchmark.extra_info.update({"workload": workload, "rows": rows})
    benchmark.pedantic(lambda: _sweep(workload), rounds=1, iterations=1)
    del start


def test_cache_limit_report(benchmark):
    table_rows = []
    for workload in ["mgrid", "go"]:
        for label, kips, clears in _sweep(workload):
            table_rows.append([workload, label, f"{kips:.1f}k", str(clears)])
    text = render_generic(
        "Cache-limit sweep (paper 6.1: '10x smaller cache, little impact')",
        ["workload", "limit", "kips", "clears"],
        table_rows,
    )
    benchmark.pedantic(lambda: text, rounds=1, iterations=1)
    write_result("cache_limit.txt", text)

    # Shape: the regular workload keeps most of its performance at a
    # 10x-reduced cache.
    mgrid = {label: kips for label, kips, _ in _sweep("mgrid")}
    assert mgrid["0.10x"] > 0.5 * mgrid["unlimited"]
