"""Micro-architecture study: window size and fast-forwarding.

The paper's simulator models a 32-instruction out-of-order window
"similar in complexity to the R10000 pipeline" (§6.2).  This benchmark
sweeps the window size to show (a) the IPC the window buys — the
reason detailed OOO simulation is slow in the first place — and (b)
how the action-cache key (which embeds the window state) scales:
larger windows mean larger keys and a bigger memoized footprint, the
trade-off behind the paper's instruction-queue compression discussion
(§2.2).
"""

import time

import pytest

from repro.bench.reporting import render_generic
from repro.ooo.common import MachineConfig
from repro.ooo.facile_ooo import run_facile_ooo
from repro.ooo.reference import run_reference
from repro.workloads.suite import build_cached

from conftest import write_result

WORKLOAD = "swim"
SIZES = [4, 8, 16, 32, 64]

_rows: dict[int, tuple] = {}


def _sweep(size: int) -> tuple:
    if size in _rows:
        return _rows[size]
    program = build_cached(WORKLOAD)
    config = MachineConfig(window_size=size)
    ref = run_reference(program, config)
    start = time.perf_counter()
    facile = run_facile_ooo(program, config)
    elapsed = time.perf_counter() - start
    assert facile.stats.cycles == ref.stats.cycles  # cycle-exact at any size
    row = (
        size,
        ref.stats.cycles,
        ref.stats.ipc,
        facile.stats.retired / elapsed / 1000,
        facile.engine.cache.stats.bytes_cumulative / 1024,
    )
    _rows[size] = row
    return row


@pytest.mark.parametrize("size", SIZES)
def test_window_size(benchmark, size):
    row = _sweep(size)
    benchmark.extra_info.update(
        {"window": size, "ipc": round(row[2], 3), "memo_kb": round(row[4], 1)}
    )
    benchmark.pedantic(lambda: _sweep(size), rounds=1, iterations=1)


def test_window_report(benchmark):
    rows = []
    for size in SIZES:
        window, cycles, ipc, kips, memo_kb = _sweep(size)
        rows.append(
            [str(window), f"{cycles:,}", f"{ipc:.2f}", f"{kips:.1f}k", f"{memo_kb:.0f}"]
        )
    text = render_generic(
        f"Window-size study on '{WORKLOAD}' (paper models a 32-entry "
        "R10000-like window)",
        ["window", "cycles", "IPC", "memoized kips", "memo KB"],
        rows,
    )
    benchmark.pedantic(lambda: text, rounds=1, iterations=1)
    write_result("window_study.txt", text)

    ipc = {s: _sweep(s)[2] for s in SIZES}
    # Bigger windows must never hurt, and must help somewhere.
    assert ipc[32] >= ipc[4]
    assert ipc[32] > 1.1 * ipc[4] or ipc[8] > 1.1 * ipc[4]
