"""Figure 11: FastSim (hand-coded memoizing simulator) performance,
with and without memoization, vs. the SimpleScalar-like baseline.

Paper's result (167 MHz UltraSPARC, SPEC95):

* FastSim without memoization ran 1.1-2.1x faster than SimpleScalar;
* FastSim with memoization ran 8.5-14.7x faster than SimpleScalar and
  4.9-11.9x faster than itself without memoization.

The reproduction measures simulated instructions per host second for
the same three configurations over the workload suite; the expected
*shape* is FastSim-memo > FastSim-nomemo >= baseline, with an
order-of-magnitude-scale self-speedup on loopy workloads.
"""

import pytest

from repro.bench.reporting import render_speed_figure

from conftest import all_workloads, write_result

_SIMS = ["fastsim", "fastsim-nomemo", "simplescalar"]


@pytest.mark.parametrize("workload", all_workloads())
@pytest.mark.parametrize("sim", _SIMS)
def test_figure11_measure(benchmark, mcache, workload, sim):
    m = mcache.get(workload, sim)
    benchmark.extra_info.update(
        {
            "workload": workload,
            "simulator": sim,
            "kips": round(m.kips, 1),
            "retired": m.retired,
            "cycles": m.cycles,
        }
    )
    # The measurement above is cached; benchmark a replayable chunk so
    # pytest-benchmark reports a stable per-run time for this config.
    benchmark.pedantic(lambda: mcache.get(workload, sim), rounds=1, iterations=1)


def test_figure11_report(benchmark, mcache):
    measurements = [
        mcache.get(w, sim) for w in all_workloads() for sim in _SIMS
    ]
    text = render_speed_figure(
        measurements,
        memo_sim="fastsim",
        nomemo_sim="fastsim-nomemo",
        title="Figure 11: FastSim (hand-coded) with/without memoization vs SimpleScalar-like baseline (kips = 1000 simulated instrs / host second)",
    )
    benchmark.pedantic(lambda: text, rounds=1, iterations=1)
    write_result("figure11.txt", text)

    # Shape assertions from the paper.
    by = {(m.workload, m.simulator): m for m in measurements}
    wins = sum(
        1
        for w in all_workloads()
        if by[(w, "fastsim")].kips > by[(w, "simplescalar")].kips
    )
    assert wins >= len(all_workloads()) - 2, "memoized FastSim should beat the baseline nearly everywhere"
    self_speedups = [
        by[(w, "fastsim")].kips / by[(w, "fastsim-nomemo")].kips
        for w in all_workloads()
    ]
    assert max(self_speedups) > 2.0, "memoization should give multi-x speedups somewhere"
