"""Table 2: quantity of memoized data.

Paper's result: most SPEC95 benchmarks memoized a few MB to a few tens
of MB; the outliers were go (889.4 MB), gcc (296.0 MB), ijpeg
(199.5 MB), and perl (142.9 MB) — the benchmarks with the most
irregular control behaviour.

The reproduction reports the byte-accounted specialized-action-cache
footprint (unlimited cache) per workload, plus a normalized
bytes-per-1000-instructions column so footprints are comparable across
workloads of different lengths.  Expected shape: the irregular
workloads (go, gcc) dominate; the regular loops (mgrid, fpppp,
compress) stay small.
"""

import pytest

from repro.bench.reporting import render_table2

from conftest import all_workloads, write_result


@pytest.mark.parametrize("workload", all_workloads())
def test_table2_measure(benchmark, mcache, workload):
    m = mcache.get(workload, "facile")
    benchmark.extra_info.update(
        {
            "workload": workload,
            "memo_kb": round(m.memo_bytes / 1024, 1),
            "memo_bytes_per_kinstr": round(m.memo_bytes / max(1, m.retired) * 1000, 1),
        }
    )
    benchmark.pedantic(lambda: mcache.get(workload, "facile"), rounds=1, iterations=1)


def test_table2_report(benchmark, mcache):
    facile = [mcache.get(w, "facile") for w in all_workloads()]
    fastsim = [mcache.get(w, "fastsim") for w in all_workloads()]
    text = (
        render_table2(facile, "facile")
        + "\n\n(compiled Facile simulator; hand-coded FastSim below)\n\n"
        + render_table2(fastsim, "fastsim")
    )
    benchmark.pedantic(lambda: text, rounds=1, iterations=1)
    write_result("table2.txt", text)

    by_name = {m.workload: m for m in facile}

    def per_instr(name: str) -> float:
        m = by_name[name]
        return m.memo_bytes / max(1, m.retired)

    # Shape: irregular-control workloads memoize far more per
    # instruction than regular loops (paper: go 889 MB vs mgrid 9.5 MB).
    assert per_instr("go") > 2 * per_instr("mgrid")
    assert per_instr("gcc") > per_instr("compress")
