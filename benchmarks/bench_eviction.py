"""Full-clear vs. generational eviction under a tight cache limit.

The paper's §6.2 policy ("clear the whole cache and start recording
over") turns the byte limit into a periodic re-record storm: every
clear throws away the hot working set along with the cold entries.
Generational partial eviction reclaims only the coldest entries, so a
long-running workload keeps replaying its working set while memory
stays bounded.

This benchmark runs one workload three ways — unlimited, limited with
``clear``, limited with ``generational`` — using a limit tight enough
to force several full clears, and reports steady-state simulation rate
and worst-chunk latency (the stall a clear inflicts) for each.  It
asserts the contract from the issue: identical simulated cycles across
all three runs, strictly fewer re-recorded steps and no full clears
under generational eviction, and leak-free byte accounting.

Run directly (not via pytest)::

    python benchmarks/bench_eviction.py          # full run
    python benchmarks/bench_eviction.py --smoke  # quick CI gate
"""

from __future__ import annotations

import argparse
import pathlib
import statistics
import sys
import time

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.bench.reporting import render_generic
from repro.ooo.facile_ooo import FacileOooSim
from repro.workloads.suite import build_cached

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "bench_results"


def run_chunked(program, limit, evict, chunk):
    """Run to completion in fixed-step chunks, timing each chunk.

    Chunked timing exposes what an aggregate wall-clock hides: a full
    clear makes the *next* chunk slow (it re-records everything), which
    is exactly the latency spike long campaigns care about.
    """
    sim = FacileOooSim(
        program, memoized=True,
        cache_limit_bytes=limit, cache_evict=evict,
    )
    chunk_seconds = []
    run = None
    while not sim.ctx.halted:
        t0 = time.perf_counter()
        run = sim.run(max_steps=chunk)
        chunk_seconds.append(time.perf_counter() - t0)
    return run, chunk_seconds


def summarize(label, run, chunk_seconds, chunk):
    stats = run.engine.cache.stats
    total = sum(chunk_seconds)
    # Steady state: skip the first quarter of chunks (cold cache, trace
    # compilation); the median steps-per-second of the rest.
    steady = chunk_seconds[len(chunk_seconds) // 4:] or chunk_seconds
    steady_ksps = chunk / max(statistics.median(steady), 1e-9) / 1000
    return {
        "label": label,
        "cycles": run.stats.cycles,
        "retired": run.stats.retired,
        "kips": run.stats.retired / max(total, 1e-9) / 1000,
        "steady_ksps": steady_ksps,
        "worst_ms": max(steady) * 1000,
        "steps_slow": run.run_stats.steps_slow,
        "clears": stats.clears,
        "evictions": stats.evictions,
        "bytes_current": stats.bytes_current,
        "recount": run.engine.cache.recount_bytes(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", default="compress")
    parser.add_argument("--scale", type=int, default=None)
    parser.add_argument(
        "--limit-frac", type=float, default=0.25,
        help="cache limit as a fraction of the unlimited footprint",
    )
    parser.add_argument("--chunk", type=int, default=2_000, help="steps per timed chunk")
    parser.add_argument(
        "--smoke", action="store_true",
        help="small scale, skip wall-clock assertions (CI gate: the "
        "cycle/steps_slow/accounting contracts still fail hard)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="alias for --smoke",
    )
    args = parser.parse_args(argv)
    args.smoke = args.smoke or args.quick

    scale = args.scale if args.scale is not None else (2 if args.smoke else None)
    program = build_cached(args.workload, scale)

    base_run, base_chunks = run_chunked(program, None, "clear", args.chunk)
    footprint = base_run.engine.cache.stats.bytes_current
    limit = max(int(footprint * args.limit_frac), 4_096)

    clear_run, clear_chunks = run_chunked(program, limit, "clear", args.chunk)
    gen_run, gen_chunks = run_chunked(program, limit, "generational", args.chunk)

    rows = [
        summarize("unlimited", base_run, base_chunks, args.chunk),
        summarize("clear", clear_run, clear_chunks, args.chunk),
        summarize("generational", gen_run, gen_chunks, args.chunk),
    ]

    table = render_generic(
        f"Eviction policy under a tight limit "
        f"({args.workload}, limit={limit:,}B = "
        f"{args.limit_frac:.2f}x footprint, chunk={args.chunk})",
        ["policy", "cycles", "kips", "steady ksps", "worst chunk",
         "slow steps", "clears", "evictions", "live bytes"],
        [
            [
                r["label"],
                f"{r['cycles']:,}",
                f"{r['kips']:.1f}k",
                f"{r['steady_ksps']:.1f}k",
                f"{r['worst_ms']:.1f}ms",
                f"{r['steps_slow']:,}",
                str(r["clears"]),
                str(r["evictions"]),
                f"{r['bytes_current']:,}",
            ]
            for r in rows
        ],
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "eviction.txt").write_text(table + "\n")
    print(table)

    base, clear, gen = rows
    failures = []
    if not (base["cycles"] == clear["cycles"] == gen["cycles"]):
        failures.append(
            f"simulated cycles diverge: unlimited={base['cycles']} "
            f"clear={clear['cycles']} generational={gen['cycles']}"
        )
    if clear["clears"] < 3:
        failures.append(
            f"limit too loose: only {clear['clears']} full clears (need >= 3)"
        )
    if gen["clears"] != 0:
        failures.append(f"generational run fell back to {gen['clears']} full clears")
    if gen["evictions"] == 0:
        failures.append("generational run never evicted")
    if not gen["steps_slow"] < clear["steps_slow"]:
        failures.append(
            f"generational re-recorded no fewer steps "
            f"({gen['steps_slow']} vs {clear['steps_slow']})"
        )
    for r in rows:
        if r["bytes_current"] != r["recount"]:
            failures.append(
                f"{r['label']}: accounting leak — bytes_current="
                f"{r['bytes_current']} but record-tree walk={r['recount']}"
            )
    if not args.smoke and not gen["steady_ksps"] > clear["steady_ksps"]:
        failures.append(
            f"generational steady-state rate not higher "
            f"({gen['steady_ksps']:.1f}k vs {clear['steady_ksps']:.1f}k)"
        )

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print(
        f"OK: generational re-recorded "
        f"{clear['steps_slow'] - gen['steps_slow']:,} fewer steps "
        f"({clear['steps_slow']:,} -> {gen['steps_slow']:,}) "
        f"with identical simulated cycles"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
