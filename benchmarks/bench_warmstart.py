"""Cold vs. warm-start first-run time with persistent action caches.

A snapshot (see :mod:`repro.facile.snapshot`) makes the memoized action
cache durable: the slow-path warmup a cold process pays on every run of
the same (simulator × workload) pair is paid once, saved, and mmap-ed
back by later runs.  This benchmark measures the claimed win directly:

* **cold** — a fresh process-state run with an empty cache;
* **warm** — the same run loading the snapshot first (load time counts
  against the warm wall clock), which must replay every step on the
  fast path (zero slow steps) and produce bit-identical simulated
  cycles.

The OOO facile simulator is the headline: its slow path (record +
pipeline bookkeeping) dominates a cold run, so a warm start is where
fast-forwarding's economics change.  The functional simulator is
replay-dominated even when cold and the hand-coded FastSim's load is
meta-heavy relative to its tiny runs, so both are informational
parity checks rather than speedup gates.

Writes ``bench_results/warmstart.txt`` (human table) and
``bench_results/BENCH_6.json`` (machine-readable per-benchmark
cold/warm ksps, cycles, and cache bytes).

Run directly (not via pytest)::

    python benchmarks/bench_warmstart.py          # full run, asserts speedup
    python benchmarks/bench_warmstart.py --quick  # small scale, CI gate
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import time

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.bench.reporting import render_generic
from repro.isa.simulate import run_facile_functional
from repro.ooo.facile_ooo import run_facile_ooo
from repro.ooo.fastsim import run_fastsim
from repro.workloads.suite import build_cached

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "bench_results"

#: Acceptance floor: warm first-run wall time vs. cold, on the OOO
#: facile simulator, for at least one builtin workload.
SPEEDUP_FLOOR = 1.5

SCALES = {"compress": 2, "go": 1}
QUICK_SCALES = {"compress": 1, "go": 1}


def _one_run(sim_name, program, load=None, save=None):
    """One complete simulation; returns (seconds, dict of outcomes)."""
    t0 = time.perf_counter()
    if sim_name == "functional":
        r = run_facile_functional(program, cache_load=load, cache_save=save)
        elapsed = time.perf_counter() - t0
        holder = r.engine
        cstats = holder.cache.stats
        out = {
            "simulated": r.retired, "retired": r.retired,
            "slow": r.stats.steps_slow, "recovered": r.stats.steps_recovered,
            "digest": (r.retired, tuple(r.regs)),
        }
    elif sim_name == "ooo":
        r = run_facile_ooo(program, cache_load=load, cache_save=save)
        elapsed = time.perf_counter() - t0
        holder = r.engine
        cstats = holder.cache.stats
        out = {
            "simulated": r.stats.cycles, "retired": r.stats.retired,
            "slow": r.run_stats.steps_slow,
            "recovered": r.run_stats.steps_recovered,
            "digest": (r.stats.cycles, r.stats.retired, r.stats.mispredicts),
        }
    else:  # fastsim
        r = run_fastsim(program, cache_load=load, cache_save=save)
        elapsed = time.perf_counter() - t0
        holder = r
        cstats = r.mstats
        out = {
            "simulated": r.stats.cycles, "retired": r.stats.retired,
            "slow": r.mstats.cycles_slow,
            "recovered": r.mstats.cycles_recovered,
            "digest": (r.stats.cycles, r.stats.retired, r.stats.mispredicts),
        }
    out["seconds"] = elapsed
    out["bytes_shared"] = cstats.bytes_shared
    out["snapshot_load"] = holder.snapshot_load
    out["snapshot_save"] = holder.snapshot_save
    return out


def bench_pair(sim_name, program, snap_path, repeat):
    """Best-of-``repeat`` cold and warm timings for one (sim × workload).

    The snapshot is produced by a separate untimed run, so the cold
    number pays no save cost and the warm number pays the full load."""
    cold = min((_one_run(sim_name, program) for _ in range(repeat)),
               key=lambda r: r["seconds"])
    saver = _one_run(sim_name, program, save=str(snap_path))
    warm = min((_one_run(sim_name, program, load=str(snap_path))
                for _ in range(repeat)),
               key=lambda r: r["seconds"])
    return cold, saver, warm


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workloads", default="compress,go",
        help="comma-separated workload names (default: compress,go)",
    )
    parser.add_argument(
        "--sims", default="functional,ooo,fastsim",
        help="simulators to measure (default: functional,ooo,fastsim)",
    )
    parser.add_argument("--scale", type=int, default=None)
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="cold/warm passes; best wall time wins (suppresses host noise)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small scale, one pass, skip the wall-clock speedup "
        "assertion (CI gate: parity, snapshot-hit, and zero-slow-step "
        "contracts still fail hard)",
    )
    args = parser.parse_args(argv)

    scales = QUICK_SCALES if args.quick else SCALES
    repeat = 1 if args.quick else args.repeat
    sims = args.sims.split(",")
    rows = []
    results = []
    failures = []
    best_ooo_speedup = 0.0
    with tempfile.TemporaryDirectory(prefix="warmstart-") as tmp:
        for name in args.workloads.split(","):
            scale = args.scale if args.scale is not None else scales.get(name)
            program = build_cached(name, scale)
            for sim_name in sims:
                snap = pathlib.Path(tmp) / f"{name}-{sim_name}.facsnap"
                cold, saver, warm = bench_pair(sim_name, program, snap, repeat)
                speedup = cold["seconds"] / max(warm["seconds"], 1e-9)
                load = warm["snapshot_load"]
                save = saver["snapshot_save"]
                row = {
                    "workload": name,
                    "simulator": sim_name,
                    "cold_seconds": cold["seconds"],
                    "warm_seconds": warm["seconds"],
                    "speedup": speedup,
                    "cold_ksps": cold["retired"] / cold["seconds"] / 1000,
                    "warm_ksps": warm["retired"] / max(warm["seconds"], 1e-9) / 1000,
                    "cycles": warm["simulated"],
                    "cycles_equal": cold["digest"] == warm["digest"],
                    "warm_slow_steps": warm["slow"],
                    "warm_recovered": warm["recovered"],
                    "snapshot_entries": load.entries if load else 0,
                    "snapshot_file_bytes": save.file_bytes if save else 0,
                    "bytes_shared": warm["bytes_shared"],
                    "snapshot_hit": bool(load and load.hit),
                }
                rows.append(row)
                results.append(row)

                if not row["cycles_equal"]:
                    failures.append(
                        f"{name}/{sim_name}: warm simulation diverges — "
                        f"cold {cold['digest']} vs warm {warm['digest']}"
                    )
                if not row["snapshot_hit"]:
                    reason = load.reason if load else "no load info"
                    failures.append(
                        f"{name}/{sim_name}: snapshot not hit ({reason})"
                    )
                if warm["slow"] or warm["recovered"]:
                    failures.append(
                        f"{name}/{sim_name}: warm run fell off the fast path "
                        f"({warm['slow']} slow, {warm['recovered']} recovered)"
                    )
                if sim_name == "ooo":
                    best_ooo_speedup = max(best_ooo_speedup, speedup)

    if not args.quick and "ooo" in sims and best_ooo_speedup < SPEEDUP_FLOOR:
        failures.append(
            f"warm start only {best_ooo_speedup:.2f}x cold on the ooo "
            f"simulator (need >= {SPEEDUP_FLOOR}x on compress or go)"
        )

    table = render_generic(
        "Cold vs. warm-start first-run wall time (snapshot load counted "
        "against warm)",
        ["workload", "simulator", "cold s", "warm s", "speedup",
         "cold ksps", "warm ksps", "simulated", "equal", "warm slow",
         "snap KB", "shared KB"],
        [
            [
                r["workload"],
                r["simulator"],
                f"{r['cold_seconds']:.3f}",
                f"{r['warm_seconds']:.3f}",
                f"{r['speedup']:.2f}x",
                f"{r['cold_ksps']:.1f}k",
                f"{r['warm_ksps']:.1f}k",
                f"{r['cycles']:,}",
                "yes" if r["cycles_equal"] else "NO",
                f"{r['warm_slow_steps']:,}",
                f"{r['snapshot_file_bytes'] / 1024:.1f}",
                f"{r['bytes_shared'] / 1024:.1f}",
            ]
            for r in rows
        ],
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "warmstart.txt").write_text(table + "\n")
    (RESULTS_DIR / "BENCH_6.json").write_text(json.dumps(
        {
            "bench": "warmstart",
            "issue": 6,
            "version": 1,
            "quick": args.quick,
            "speedup_floor": SPEEDUP_FLOOR,
            "results": results,
        },
        indent=2,
    ) + "\n")
    print(table)

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    for r in rows:
        if r["simulator"] == "ooo":
            print(
                f"OK: {r['workload']} warm start {r['speedup']:.2f}x cold "
                f"({r['snapshot_entries']} entries mapped, identical "
                f"simulation, 0 slow steps)"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
