"""§6.3 ablations: the compiler optimizations the paper proposes.

The paper lists (1) cheaper fast-engine dispatch, (2) splitting the
slow simulator's recovery mode out, (3) liveness-based elision of dead
global flushes, and notes the unoptimized compiler left the compiled
simulator ~6x slower than hand-coded FastSim.  This repo *implements*
analogues of (1)-(3); this benchmark turns each off to quantify its
contribution:

* ``coalesce``     — one action per dynamic basic block vs one per
  dynamic statement (Figure 8 granularity);
* ``index-links``  — the INDEX_ACTION entry chaining vs a full cache
  lookup every step;
* ``flush-live``   — liveness-elided global flushes vs flushing every
  rt-static global (§6.3 item 3).
"""

import pytest

from repro.bench.harness import Measurement, measure
from repro.bench.reporting import render_generic
from repro.ooo.facile_ooo import run_facile_ooo
from repro.workloads.suite import build_cached

from conftest import write_result

WORKLOAD = "compress"

VARIANTS = {
    "optimized": dict(),
    "no-coalesce": dict(coalesce=False),
    "no-index-links": dict(index_links=False),
    "flush-all": dict(flush_policy="all"),
    "none (paper's base compiler)": dict(
        coalesce=False, index_links=False, flush_policy="all"
    ),
}

_cache: dict = {}


def _run(variant: str) -> Measurement:
    if variant in _cache:
        return _cache[variant]
    import time

    program = build_cached(WORKLOAD)
    start = time.perf_counter()
    run = run_facile_ooo(program, memoized=True, **VARIANTS[variant])
    elapsed = time.perf_counter() - start
    m = Measurement(
        WORKLOAD,
        f"facile[{variant}]",
        elapsed,
        run.stats.retired,
        run.stats.cycles,
        retired_fast=run.retired_fast,
    )
    _cache[variant] = m
    return m


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_dispatch_variant(benchmark, variant):
    m = _run(variant)
    benchmark.extra_info.update({"variant": variant, "kips": round(m.kips, 1)})
    benchmark.pedantic(lambda: _run(variant), rounds=1, iterations=1)


def test_dispatch_report(benchmark):
    baseline = _run("optimized")
    rows = []
    for variant in VARIANTS:
        m = _run(variant)
        rows.append(
            [variant, f"{m.kips:.1f}k", f"{m.kips / baseline.kips:.2f}x"]
        )
    text = render_generic(
        "Compiler-optimization ablation (paper 6.3) on workload "
        f"'{WORKLOAD}': compiled-simulator speed per variant",
        ["variant", "kips", "vs optimized"],
        rows,
    )
    benchmark.pedantic(lambda: text, rounds=1, iterations=1)
    write_result("ablation_dispatch.txt", text)

    # All variants simulate identically.
    cycles = {m.cycles for m in _cache.values()}
    assert len(cycles) == 1
    # The fully de-optimized compiler must be measurably slower.
    assert _run("none (paper's base compiler)").kips < baseline.kips
