"""Figure 12: the Facile-written out-of-order simulator, compiled with
and without fast-forwarding, vs. the SimpleScalar-like baseline.

Paper's result: fast-forwarding improved the compiled simulator
2.8-23.8x (gcc-fpppp) over itself without memoization, harmonic mean
8.3; the memoized Facile simulator ran 1.5x faster than SimpleScalar
(harmonic mean) despite the compiler's inefficiencies, and lost only on
gcc, whose working set overflowed the 256 MB action-cache limit.

The reproduction runs the compiled simulator with a scaled-down
action-cache limit chosen so that exactly the biggest-footprint
workload overflows (our Table 2 worst case is ``go``, matching the
paper's Table 2 where go's 889 MB dwarfs the rest).
"""

import pytest

from repro.bench.reporting import render_speed_figure

from conftest import all_workloads, write_result

# Scaled-down analogue of the paper's 256 MB limit: big enough for every
# steady-state workload, small enough that the worst-case workload
# (go, whose footprint tops our Table 2 just as it tops the paper's)
# overflows and pays recording costs repeatedly.
CACHE_LIMIT_BYTES = 6 * 1024 * 1024

_SIMS = ["facile", "facile-nomemo", "simplescalar"]


def _get(mcache, workload, sim):
    limit = CACHE_LIMIT_BYTES if sim == "facile" else None
    return mcache.get(workload, sim, cache_limit_bytes=limit)


@pytest.mark.parametrize("workload", all_workloads())
@pytest.mark.parametrize("sim", _SIMS)
def test_figure12_measure(benchmark, mcache, workload, sim):
    m = _get(mcache, workload, sim)
    benchmark.extra_info.update(
        {
            "workload": workload,
            "simulator": sim,
            "kips": round(m.kips, 1),
            "cache_clears": m.memo_clears,
        }
    )
    benchmark.pedantic(lambda: _get(mcache, workload, sim), rounds=1, iterations=1)


def test_figure12_report(benchmark, mcache):
    measurements = [_get(mcache, w, sim) for w in all_workloads() for sim in _SIMS]
    text = render_speed_figure(
        measurements,
        memo_sim="facile",
        nomemo_sim="facile-nomemo",
        title=(
            "Figure 12: Facile-compiled OOO simulator with/without fast-forwarding "
            f"vs SimpleScalar-like baseline (action cache limited to {CACHE_LIMIT_BYTES // (1024 * 1024)} MB)"
        ),
    )
    benchmark.pedantic(lambda: text, rounds=1, iterations=1)
    write_result("figure12.txt", text)

    by = {(m.workload, m.simulator): m for m in measurements}
    # Shape: fast-forwarding must give a multi-x self-speedup overall.
    self_speedups = [
        by[(w, "facile")].kips / by[(w, "facile-nomemo")].kips for w in all_workloads()
    ]
    assert max(self_speedups) > 2.0
    # Shape: the memoized compiled simulator beats the conventional
    # baseline on most workloads (paper: all but gcc).
    wins = sum(
        1
        for w in all_workloads()
        if by[(w, "facile")].kips > by[(w, "simplescalar")].kips
    )
    assert wins >= len(all_workloads()) // 2
