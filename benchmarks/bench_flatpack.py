"""Flat-packed vs. object-tree action cache: replay rate and footprint.

Completed cache entries are flat-packed into contiguous parallel
streams (action numbers, interned placeholder-data indices, threaded
successor indices) and replayed by an index-threaded loop that chains
steps through likely-next links without returning to the driver.  This
benchmark quantifies both claimed wins on the paper's workloads:

* **steady-state replay rate** — chunked timing of the functional
  fast-forwarding simulator with the trace JIT off (so the interpreted
  replay loop is what's measured), packed vs. unpacked, asserting an
  identical simulated instruction stream and a >= 1.2x steady-state
  speedup.  The functional engine is where the record-walk overhead
  dominates (a few actions per step); it is the paper's Figure 11
  configuration.
* **Table 2 accounted footprint** — live accounted bytes at
  completion, packed (slots + jump tables + shared intern pool) vs.
  unpacked (per-record objects), asserting a reduction on every
  simulator measured.

The OOO facile rows and the hand-coded FastSim rows are informational
ablations: their step bodies are dominated by the action/event work
itself (dozens of events per cycle), so packing is a footprint win
there rather than a rate win.

Run directly (not via pytest)::

    python benchmarks/bench_flatpack.py          # full run
    python benchmarks/bench_flatpack.py --quick  # small scale, CI gate
"""

from __future__ import annotations

import argparse
import pathlib
import statistics
import sys
import time

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.bench.reporting import render_generic
from repro.facile.runtime import FastForwardEngine
from repro.isa.simulate import _prepare_context, compiled_functional_sim
from repro.ooo.facile_ooo import FacileOooSim
from repro.ooo.fastsim import FastSimOoo
from repro.workloads.suite import build_cached

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "bench_results"

SPEEDUP_FLOOR = 1.2


def run_functional(program, flat_pack, chunk):
    """Run the functional engine to completion in fixed-step chunks.

    The trace JIT is off so the measured loop is the cache replay
    itself — with it on, hot chains leave the interpreter and the
    packed/unpacked distinction mostly disappears behind compiled
    superblocks.
    """
    compiled = compiled_functional_sim().simulator
    ctx = _prepare_context(compiled, program)
    engine = FastForwardEngine(
        compiled, ctx, trace_jit=False, flat_pack=flat_pack,
    )
    chunk_seconds = []
    while not ctx.halted:
        t0 = time.perf_counter()
        engine.run(max_steps=chunk)
        chunk_seconds.append(time.perf_counter() - t0)
    return engine, ctx, chunk_seconds


def run_facile_ooo_chunked(program, flat_pack, chunk):
    sim = FacileOooSim(
        program, memoized=True, trace_jit=False, flat_pack=flat_pack,
    )
    chunk_seconds = []
    run = None
    while not sim.ctx.halted:
        t0 = time.perf_counter()
        run = sim.run(max_steps=chunk)
        chunk_seconds.append(time.perf_counter() - t0)
    return run, chunk_seconds


def run_fastsim_chunked(program, flat_pack, chunk):
    sim = FastSimOoo(program, memoize=True, flat_pack=flat_pack)
    chunk_seconds = []
    while not sim.done:
        t0 = time.perf_counter()
        sim.run(max_cycles=sim.stats.cycles + chunk)
        chunk_seconds.append(time.perf_counter() - t0)
    return sim, chunk_seconds


def steady_ksps(chunk_seconds, chunk):
    # Steady state: skip the first quarter of chunks (cold cache,
    # recording); the median steps-per-second of the rest.
    steady = chunk_seconds[len(chunk_seconds) // 4:] or chunk_seconds
    return chunk / max(statistics.median(steady), 1e-9) / 1000


def cache_cols(cache):
    stats = cache.stats
    return {
        "kb_live": stats.bytes_current / 1024,
        "bytes_current": stats.bytes_current,
        "recount": cache.recount_bytes(),
        "packs": stats.packs,
        "pool_saved_kb": cache.pool.bytes_saved / 1024,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workloads", default="compress,go",
        help="comma-separated workload names (default: compress,go)",
    )
    parser.add_argument("--scale", type=int, default=None)
    parser.add_argument(
        "--chunk", type=int, default=2_000, help="steps per timed chunk",
    )
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="functional-engine passes per form; best steady-state "
        "rate wins (suppresses host noise)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small scale, one pass, skip wall-clock assertions (CI "
        "gate: the stream/footprint/accounting contracts still fail "
        "hard)",
    )
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None else (2 if args.quick else None)
    repeat = 1 if args.quick else args.repeat
    rows = []
    failures = []
    for name in args.workloads.split(","):
        program = build_cached(name, scale)

        by_form = {}
        for flat_pack in (True, False):
            best = None
            for _ in range(repeat):
                engine, ctx, chunks = run_functional(program, flat_pack, args.chunk)
                rate = steady_ksps(chunks, args.chunk)
                if best is None or rate > best["steady_ksps"]:
                    best = {
                        "workload": name,
                        "label": "functional " + ("packed" if flat_pack else "unpacked"),
                        "simulated": ctx.retired_total,
                        "steady_ksps": rate,
                        **cache_cols(engine.cache),
                    }
                    best["regs"] = list(ctx.read_global("R"))
            by_form[flat_pack] = best
        packed, plain = by_form[True], by_form[False]
        ratio = packed["steady_ksps"] / max(plain["steady_ksps"], 1e-9)
        packed["ratio"] = ratio
        plain["ratio"] = 1.0
        rows += [packed, plain]

        if (packed["simulated"], packed["regs"]) != (plain["simulated"], plain["regs"]):
            failures.append(
                f"{name}: functional simulation diverges — packed retired "
                f"{packed['simulated']} vs unpacked {plain['simulated']}"
            )
        if not args.quick and ratio < SPEEDUP_FLOOR:
            failures.append(
                f"{name}: packed steady-state replay only {ratio:.2f}x unpacked "
                f"(need >= {SPEEDUP_FLOOR}x)"
            )

        ooo_packed_run, ooo_packed_chunks = run_facile_ooo_chunked(
            program, True, args.chunk)
        ooo_plain_run, ooo_plain_chunks = run_facile_ooo_chunked(
            program, False, args.chunk)
        ooo_rows = [
            {
                "workload": name,
                "label": f"ooo facile {tag}",
                "simulated": run.stats.cycles,
                "steady_ksps": steady_ksps(chunks, args.chunk),
                **cache_cols(run.engine.cache),
            }
            for tag, run, chunks in (
                ("packed", ooo_packed_run, ooo_packed_chunks),
                ("unpacked", ooo_plain_run, ooo_plain_chunks),
            )
        ]
        rows += ooo_rows
        if ooo_packed_run.stats.cycles != ooo_plain_run.stats.cycles:
            failures.append(
                f"{name}: ooo cycles diverge — packed={ooo_packed_run.stats.cycles} "
                f"unpacked={ooo_plain_run.stats.cycles}"
            )

        fs_packed, fs_packed_chunks = run_fastsim_chunked(program, True, args.chunk)
        fs_plain, fs_plain_chunks = run_fastsim_chunked(program, False, args.chunk)
        rows += [
            {
                "workload": name,
                "label": f"fastsim {tag}",
                "simulated": sim.stats.cycles,
                "steady_ksps": steady_ksps(chunks, args.chunk),
                "kb_live": sim.mstats.bytes_estimate / 1024,
                "bytes_current": sim.mstats.bytes_estimate,
                "recount": sim.recount_bytes(),
                "packs": sim.mstats.packs,
                "pool_saved_kb": sim.pool.bytes_saved / 1024,
            }
            for tag, sim, chunks in (
                ("packed", fs_packed, fs_packed_chunks),
                ("unpacked", fs_plain, fs_plain_chunks),
            )
        ]
        if fs_packed.stats.cycles != fs_plain.stats.cycles:
            failures.append(
                f"{name}: fastsim cycles diverge — packed={fs_packed.stats.cycles} "
                f"unpacked={fs_plain.stats.cycles}"
            )

        # Table 2 contract: the packed live footprint must be smaller
        # on every simulator, and both accountings must be exact.
        for packed_row, plain_row in (
            (packed, plain), tuple(ooo_rows), tuple(rows[-2:]),
        ):
            if not packed_row["kb_live"] < plain_row["kb_live"]:
                failures.append(
                    f"{name} {packed_row['label']}: footprint not reduced "
                    f"({packed_row['kb_live']:.1f}KB vs {plain_row['kb_live']:.1f}KB)"
                )
            for r in (packed_row, plain_row):
                if r["bytes_current"] != r["recount"]:
                    failures.append(
                        f"{name} {r['label']}: accounting leak — bytes_current="
                        f"{r['bytes_current']} but recount={r['recount']}"
                    )

    table = render_generic(
        f"Flat-packed vs. object-tree action cache "
        f"(trace JIT off, chunk={args.chunk})",
        ["workload", "simulator / cache form", "simulated", "steady ksps",
         "vs unpacked", "live KB", "packs", "pool saved KB"],
        [
            [
                r["workload"],
                r["label"],
                f"{r['simulated']:,}",
                f"{r['steady_ksps']:.1f}k",
                f"{r['ratio']:.2f}x" if "ratio" in r else "-",
                f"{r['kb_live']:.1f}",
                f"{r['packs']:,}",
                f"{r['pool_saved_kb']:.1f}",
            ]
            for r in rows
        ],
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "flatpack.txt").write_text(table + "\n")
    print(table)

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    for r in rows:
        if r["label"] == "functional packed":
            print(
                f"OK: {r['workload']} packed replay {r['ratio']:.2f}x unpacked "
                f"steady-state, footprint {r['kb_live']:.1f}KB, identical "
                f"simulation"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
