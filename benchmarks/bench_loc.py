"""§6.2 code-size comparison: lines of Facile vs the paper's counts.

The paper reports its simulators' sizes: the out-of-order simulator is
1,959 non-comment non-blank lines of Facile plus 992 lines of C; a
functional simulator needed 703 lines of Facile; an in-order pipeline
with reservation tables needed 965 lines (+11 of C).  The point is that
a detailed fast-forwarding simulator fits in ~2k lines of DSL.

This benchmark counts the same metric for this repo's generated Facile
sources and the Python extern/substrate code that plays the role of the
paper's C.
"""

import inspect

from repro.isa.facile_src import functional_sim_source
from repro.ooo.facile_inorder import inorder_sim_source
from repro.ooo.facile_ooo import ooo_sim_source
from repro.bench.reporting import render_generic

from conftest import write_result


def _loc(text: str) -> int:
    """Non-comment, non-blank lines (the paper's metric)."""
    count = 0
    for line in text.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("//"):
            count += 1
    return count


def _python_loc(module) -> int:
    count = 0
    for line in inspect.getsource(module).splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("#"):
            count += 1
    return count


def test_loc_report(benchmark):
    from repro.uarch import branch, cache

    facile_ooo = _loc(ooo_sim_source())
    facile_functional = _loc(functional_sim_source())
    facile_inorder = _loc(inorder_sim_source())
    extern_loc = _python_loc(cache) + _python_loc(branch)

    rows = [
        ["out-of-order simulator (Facile)", str(facile_ooo), "1,959"],
        ["in-order pipeline simulator (Facile)", str(facile_inorder), "965"],
        ["functional simulator (Facile)", str(facile_functional), "703"],
        ["extern substrates (Python vs C)", str(extern_loc), "992"],
    ]
    text = render_generic(
        "Simulator source sizes, non-comment non-blank lines "
        "(paper 6.2 reports the original Facile line counts)",
        ["artifact", "this repo", "paper"],
        rows,
    )
    benchmark.pedantic(lambda: _loc(ooo_sim_source()), rounds=1, iterations=1)
    write_result("loc.txt", text)

    # The OOO description stays in the paper's "couple thousand lines"
    # regime and is larger than the functional one.
    assert 200 < facile_functional < facile_ooo < 3000
