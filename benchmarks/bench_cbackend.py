"""Python vs. C replay-backend steady-state throughput.

The C backend (:mod:`repro.facile.cbackend`) lowers packed action
chains to a kernel compiled once per process and drives whole
fast-forward stretches without re-entering Python.  This benchmark
measures the claimed win on the paper's steady state: a warm run that
replays everything from a snapshot, timed under each backend.

Protocol per (simulator × workload):

* one untimed run saves a ``.facsnap`` snapshot (under the *python*
  backend, so every timed C run also exercises the cross-backend
  snapshot-load path);
* best-of-``repeat`` timed warm runs load that snapshot under each
  backend; simulated results must be bit-identical and warm runs must
  stay entirely on the fast path.

The fastsim rows run the per-cycle kernel walker: checks hit the
native uarch models in-kernel and only EV_EXEC/EV_ANNUL events call
back into the functional simulator, so its speedup sits between the
pure-replay functional rows and 1.0x.

Writes ``bench_results/cbackend.txt`` (human table) and
``bench_results/BENCH_7.json`` (machine-readable trajectory record).

Run directly (not via pytest)::

    python benchmarks/bench_cbackend.py          # full run, asserts speedup
    python benchmarks/bench_cbackend.py --quick  # small scale, CI gate
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import time

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.bench.reporting import render_generic
from repro.facile.cbackend import load_kernel
from repro.isa.simulate import run_facile_functional
from repro.ooo.facile_inorder import run_facile_inorder
from repro.ooo.facile_ooo import run_facile_ooo
from repro.ooo.fastsim import run_fastsim
from repro.workloads.suite import build_cached

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "bench_results"

#: Acceptance floor (ISSUE 7): C steady-state replay vs. the Python
#: packed loop on compress, on the replay-dominated functional
#: simulator.  The pipeline models also win but spend part of each
#: step in host-Python timing externs, so they are reported, not gated.
SPEEDUP_FLOOR = 2.0

SIMS = ("functional", "inorder", "ooo", "fastsim")
SCALES = {"compress": 2, "go": 1}
QUICK_SCALES = {"compress": 1, "go": 1}


def _one_run(sim_name, program, backend, load=None, save=None):
    """One complete simulation; returns a dict of outcomes."""
    t0 = time.perf_counter()
    if sim_name == "functional":
        r = run_facile_functional(
            program, replay_backend=backend, cache_load=load, cache_save=save)
        elapsed = time.perf_counter() - t0
        holder = r.engine
        out = {
            "retired": r.retired,
            "slow": r.stats.steps_slow, "recovered": r.stats.steps_recovered,
            "simulated": r.retired,
            "digest": (r.retired, tuple(r.regs), r.halted),
        }
    elif sim_name in ("inorder", "ooo"):
        runner = run_facile_inorder if sim_name == "inorder" else run_facile_ooo
        r = runner(
            program, replay_backend=backend, cache_load=load, cache_save=save)
        elapsed = time.perf_counter() - t0
        holder = r.engine
        out = {
            "retired": r.stats.retired,
            "slow": r.run_stats.steps_slow,
            "recovered": r.run_stats.steps_recovered,
            "simulated": r.stats.cycles,
            "digest": (r.stats.cycles, r.stats.retired, r.stats.mispredicts,
                       r.stats.loads, r.stats.stores),
        }
    else:  # fastsim
        r = run_fastsim(
            program, replay_backend=backend, cache_load=load, cache_save=save)
        elapsed = time.perf_counter() - t0
        holder = r
        out = {
            "retired": r.stats.retired,
            "slow": r.mstats.cycles_slow,
            "recovered": r.mstats.cycles_recovered,
            "simulated": r.stats.cycles,
            "digest": (r.stats.cycles, r.stats.retired, r.stats.mispredicts),
        }
    out["seconds"] = elapsed
    out["snapshot_load"] = holder.snapshot_load
    bstat = getattr(holder, "backend_status", None)
    out["backend"] = bstat["active"] if bstat else "python"
    out["backend_reason"] = bstat["reason"] if bstat else ""
    return out


def bench_pair(sim_name, program, snap_path, repeat):
    """Best-of-``repeat`` warm timings for each backend, from one
    python-saved snapshot (the C runs load cross-backend)."""
    _one_run(sim_name, program, "python", save=str(snap_path))
    py = min((_one_run(sim_name, program, "python", load=str(snap_path))
              for _ in range(repeat)), key=lambda r: r["seconds"])
    cc = min((_one_run(sim_name, program, "c", load=str(snap_path))
              for _ in range(repeat)), key=lambda r: r["seconds"])
    return py, cc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workloads", default="compress,go",
        help="comma-separated workload names (default: compress,go)",
    )
    parser.add_argument(
        "--sims", default=",".join(SIMS),
        help=f"simulators to measure (default: {','.join(SIMS)})",
    )
    parser.add_argument("--scale", type=int, default=None)
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="timed passes per backend; best wall time wins",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small scale, one pass, skip the wall-clock speedup "
        "assertion (CI gate: parity, fast-path, and degradation "
        "contracts still fail hard)",
    )
    args = parser.parse_args(argv)

    kernel = load_kernel()
    if not kernel.status.available:
        # Graceful-degradation environments still run the parity half.
        print(f"note: C kernel unavailable ({kernel.status.reason}); "
              "measuring the degradation path", file=sys.stderr)

    scales = QUICK_SCALES if args.quick else SCALES
    repeat = 1 if args.quick else args.repeat
    sims = args.sims.split(",")
    rows = []
    failures = []
    compress_functional_speedup = 0.0
    with tempfile.TemporaryDirectory(prefix="cbackend-") as tmp:
        for name in args.workloads.split(","):
            scale = args.scale if args.scale is not None else scales.get(name)
            program = build_cached(name, scale)
            for sim_name in sims:
                snap = pathlib.Path(tmp) / f"{name}-{sim_name}.facsnap"
                py, cc = bench_pair(sim_name, program, snap, repeat)
                speedup = py["seconds"] / max(cc["seconds"], 1e-9)
                row = {
                    "workload": name,
                    "simulator": sim_name,
                    "python_seconds": py["seconds"],
                    "c_seconds": cc["seconds"],
                    "speedup": speedup,
                    "python_ksps": py["retired"] / max(py["seconds"], 1e-9) / 1000,
                    "c_ksps": cc["retired"] / max(cc["seconds"], 1e-9) / 1000,
                    "simulated": cc["simulated"],
                    "cycles_equal": py["digest"] == cc["digest"],
                    "c_backend_active": cc["backend"],
                    "c_backend_reason": cc["backend_reason"],
                    "ckernel_available": kernel.status.available,
                    "slow_steps": cc["slow"] + py["slow"],
                }
                rows.append(row)

                if not row["cycles_equal"]:
                    failures.append(
                        f"{name}/{sim_name}: C backend diverges — "
                        f"python {py['digest']} vs c {cc['digest']}"
                    )
                if row["slow_steps"]:
                    failures.append(
                        f"{name}/{sim_name}: warm run fell off the fast "
                        f"path ({row['slow_steps']} slow steps)"
                    )
                if kernel.status.available and cc["backend"] != "c":
                    failures.append(
                        f"{name}/{sim_name}: C backend inactive "
                        f"({cc['backend_reason']})"
                    )
                if name == "compress" and sim_name == "functional":
                    compress_functional_speedup = speedup

    if (not args.quick and kernel.status.available
            and "functional" in sims
            and compress_functional_speedup < SPEEDUP_FLOOR):
        failures.append(
            f"C replay only {compress_functional_speedup:.2f}x python on "
            f"compress/functional (need >= {SPEEDUP_FLOOR}x)"
        )

    table = render_generic(
        "Steady-state replay: python vs. C packed-chain backend "
        "(warm runs from a python-saved snapshot)",
        ["workload", "simulator", "python s", "c s", "speedup",
         "python ksps", "c ksps", "simulated", "equal", "backend"],
        [
            [
                r["workload"],
                r["simulator"],
                f"{r['python_seconds']:.3f}",
                f"{r['c_seconds']:.3f}",
                f"{r['speedup']:.2f}x",
                f"{r['python_ksps']:.1f}k",
                f"{r['c_ksps']:.1f}k",
                f"{r['simulated']:,}",
                "yes" if r["cycles_equal"] else "NO",
                r["c_backend_active"],
            ]
            for r in rows
        ],
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "cbackend.txt").write_text(table + "\n")
    (RESULTS_DIR / "BENCH_7.json").write_text(json.dumps(
        {
            "bench": "cbackend",
            "issue": 7,
            "version": 1,
            "quick": args.quick,
            "speedup_floor": SPEEDUP_FLOOR,
            "ckernel": {
                "available": kernel.status.available,
                "reason": kernel.status.reason,
                "compile_ms": kernel.status.compile_ms,
                "cached": kernel.status.cached,
                "cc": kernel.status.cc,
            },
            "results": rows,
        },
        indent=2,
    ) + "\n")
    print(table)

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    for r in rows:
        if r["workload"] == "compress" and r["simulator"] == "functional":
            print(
                f"OK: compress/functional C replay {r['speedup']:.2f}x "
                "python, identical simulation, 0 slow steps"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
