"""§6.3 item 2 ablation: the cost of action-cache miss recovery.

The paper keeps one slow simulator whose dynamic statements are guarded
by ``if (!recover)`` tests, and proposes splitting normal and recovery
modes into separate functions.  This benchmark quantifies how expensive
recovery actually is in our runtime by constructing a simulator whose
verify values change at a controlled rate:

* 0% misses   — pure replay;
* ~10% misses — occasional recovery;
* 100% misses — every replayed step ends in recovery.

The measured quantity is steps per second, so the recovery penalty
(slow re-execution with guarded dynamic statements) is directly
visible.
"""

import time

import pytest

from repro.facile import FastForwardEngine, compile_source

SRC = """
extern probe(1);
val acc = 0;
val init = 0;

fun main(step) {
    // Some rt-static busywork that replay should skip.
    val x = step;
    val i = 0;
    while (i < 50) {
        x = (x * 3 + i) ?u32;
        i = i + 1;
    }
    val v = probe(x)?verify;
    acc = acc + v;
    init = step;
}
"""

STEPS = 4000

_results: dict = {}


def _run(miss_period: int) -> float:
    """Returns steps/second with one verify miss every `miss_period`
    steps (0 = never)."""
    if miss_period in _results:
        return _results[miss_period]
    result = compile_source(SRC, name="recovery-bench")
    counter = [0]

    def probe(x):
        counter[0] += 1
        if miss_period and counter[0] % miss_period == 0:
            return counter[0]  # fresh value -> verify miss
        return 7

    sim = result.simulator
    ctx = sim.make_context({"probe": probe})
    ctx.write_global("init", 0)
    engine = FastForwardEngine(sim, ctx)
    start = time.perf_counter()
    engine.run(max_steps=STEPS)
    elapsed = time.perf_counter() - start
    rate = STEPS / elapsed
    _results[miss_period] = rate
    return rate


@pytest.mark.parametrize("miss_period", [0, 10, 1], ids=["0%-miss", "10%-miss", "100%-miss"])
def test_recovery_rate(benchmark, miss_period):
    rate = _run(miss_period)
    benchmark.extra_info.update({"miss_period": miss_period, "steps_per_sec": round(rate)})
    benchmark.pedantic(lambda: _run(miss_period), rounds=1, iterations=1)


def test_recovery_report(benchmark):
    from repro.bench.reporting import render_generic

    from conftest import write_result

    rows = [
        ["0% (pure replay)", f"{_run(0):,.0f}"],
        ["10% miss rate", f"{_run(10):,.0f}"],
        ["100% miss rate", f"{_run(1):,.0f}"],
    ]
    text = render_generic(
        "Recovery-cost microbenchmark (paper 6.3 item 2): "
        "steps/second vs verify-miss rate",
        ["miss rate", "steps/sec"],
        rows,
    )
    benchmark.pedantic(lambda: text, rounds=1, iterations=1)
    write_result("ablation_recovery.txt", text)

    assert _run(0) > _run(1), "pure replay must beat constant recovery"
