"""Table 1: percentage of instructions simulated by the fast engine.

Paper's result: 99.689% (gcc, worst) to 99.999% (mgrid/applu/turb3d)
of instructions were replayed by the fast simulator — "the overhead of
out-of-order pipeline simulation ... was nearly eliminated".

The reproduction reports the same metric for both memoizing simulators
(hand-coded and compiled).  The paper's SPEC runs execute billions of
instructions so the warm-up fraction is invisible; our runs are five
to six orders of magnitude shorter, so the expected shape is "well
above 90%, approaching 99.9% on the most regular workloads", with the
ordering regular (mgrid, fpppp) > irregular (go, gcc) preserved.
"""

import pytest

from repro.bench.reporting import render_table1

from conftest import all_workloads, write_result


@pytest.mark.parametrize("workload", all_workloads())
def test_table1_measure(benchmark, mcache, workload):
    m = mcache.get(workload, "facile")
    f = mcache.get(workload, "fastsim")
    benchmark.extra_info.update(
        {
            "workload": workload,
            "facile_fast_fraction": round(m.fast_fraction, 5),
            "fastsim_fast_fraction": round(f.fast_fraction, 5),
        }
    )
    benchmark.pedantic(lambda: mcache.get(workload, "facile"), rounds=1, iterations=1)


def test_table1_report(benchmark, mcache):
    facile = [mcache.get(w, "facile") for w in all_workloads()]
    fastsim = [mcache.get(w, "fastsim") for w in all_workloads()]
    text = (
        render_table1(facile, "facile")
        + "\n\n(compiled Facile simulator; hand-coded FastSim below)\n\n"
        + render_table1(fastsim, "fastsim")
    )
    benchmark.pedantic(lambda: text, rounds=1, iterations=1)
    write_result("table1.txt", text)

    # Shape assertions: every workload fast-forwards the vast majority
    # of its instructions once warm.
    for m in facile:
        assert m.fast_fraction > 0.80, (m.workload, m.fast_fraction)
    by_name = {m.workload: m for m in facile}
    # The most regular workload should fast-forward a larger share than
    # the most irregular one (paper: mgrid 99.999% vs gcc 99.689%).
    assert by_name["mgrid"].fast_fraction >= by_name["go"].fast_fraction
