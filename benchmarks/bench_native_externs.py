"""Native uarch externs: in-kernel timing models vs. Python callbacks.

The pipeline simulators spend their replay steady state crossing the
C-kernel/Python boundary once per cache access and branch resolution
(the ``xcache``/``xbpred``/``xbind``/``xbcall`` externs).  The native
extern registry (:mod:`repro.facile.cbackend`) compiles the shipped
timing models into the kernel and resolves matching externs to
in-kernel dispatches, so a warm replay of the shipped configurations
makes **zero** Python extern callbacks.  This benchmark measures that
win and pins the contracts:

* **parity** — cycles, retired, and every predictor/cache statistic are
  bit-identical between the Python and C backends (the native models
  mutate the same ``array('q')`` state the Python spec classes own);
* **zero callbacks** — warm C-backend replays of inorder/ooo report no
  Python extern exits for the shipped models;
* **fastsim native** — the hand-coded twin runs its per-cycle walker
  in-kernel (``c_backend_active: "c"``), no blanket degradation;
* **speedup** — warm replay beats the Python backend by at least
  ``INORDER_FLOOR``x on inorder and ``OOO_FLOOR``x on ooo for both
  compress and go (skipped under ``--quick`` and without a compiler).

Protocol per (workload × simulator): one untimed python-backend run
saves a snapshot; best-of-``repeat`` warm runs per backend load it.

Writes ``bench_results/native_externs.txt`` and
``bench_results/BENCH_9.json``.

Run directly (not via pytest)::

    python benchmarks/bench_native_externs.py          # asserts floors
    python benchmarks/bench_native_externs.py --quick  # CI gate
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import time
from dataclasses import asdict

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.bench.reporting import render_generic
from repro.facile.cbackend import load_kernel
from repro.facile.snapshot import engine_fingerprint, warm_start
from repro.ooo.facile_inorder import FacileInOrderSim
from repro.ooo.facile_ooo import FacileOooSim
from repro.ooo.fastsim import FastSimOoo
from repro.workloads.suite import build_cached

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "bench_results"

#: Acceptance floors (ISSUE 9): warm C-backend replay vs. the Python
#: backend.  The pipeline models formerly paid a Python transition per
#: timing-model call; with native externs the whole steady state runs
#: in-kernel, so the floors sit well above the extern-callback era.
INORDER_FLOOR = 4.5
OOO_FLOOR = 3.0

SIMS = ("inorder", "ooo", "fastsim")
SCALES = {"compress": 2, "go": 1}
QUICK_SCALES = {"compress": 1, "go": 1}


def _uarch_digest(cache, predictor) -> tuple:
    """Every predictor/cache statistic, flattened for bit-compare."""
    return (
        tuple(sorted(asdict(predictor.stats).items())),
        tuple(
            (level, tuple(sorted(asdict(stats).items())))
            for level, stats in sorted(cache.stats.items())
        ),
    )


def _one_run(sim_name, program, backend, load=None, save=None):
    """One complete simulation; returns a dict of outcomes.

    The timed region is :meth:`run` alone: simulator construction and
    the snapshot load are identical Python-side work under either
    backend, and the claim under test is replay throughput."""
    if sim_name in ("inorder", "ooo"):
        cls = FacileInOrderSim if sim_name == "inorder" else FacileOooSim
        sim = cls(program, replay_backend=backend)
        warm = warm_start(
            sim.engine, engine_fingerprint(sim.compiled, program),
            cache_load=load, cache_save=save,
        )
        t0 = time.perf_counter()
        r = sim.run()
        elapsed = time.perf_counter() - t0
        if warm is not None:
            warm.finish()
        native = getattr(sim.engine, "_cnative", None)
        out = {
            "retired": r.stats.retired,
            "slow": r.run_stats.steps_slow,
            "digest": (
                r.stats.cycles, r.stats.retired, r.stats.branches,
                r.stats.mispredicts, r.stats.loads, r.stats.stores,
                _uarch_digest(sim.dcache, sim.predictor),
            ),
            "backend_status": sim.engine.backend_status,
        }
    else:  # fastsim
        sim = FastSimOoo(program, replay_backend=backend)
        warm = warm_start(
            sim, sim.snapshot_fingerprint, cache_load=load, cache_save=save,
        )
        t0 = time.perf_counter()
        stats = sim.run()
        elapsed = time.perf_counter() - t0
        if warm is not None:
            warm.finish()
        native = sim._cnative
        out = {
            "retired": stats.retired,
            "slow": sim.mstats.cycles_slow,
            "digest": (
                stats.cycles, stats.retired, stats.branches,
                stats.mispredicts, stats.loads, stats.stores,
                _uarch_digest(sim.cache, sim.predictor),
            ),
            "backend_status": sim.backend_status,
        }
    out["seconds"] = elapsed
    counts = native.extern_counts() if hasattr(native, "extern_counts") else {}
    out["externs_native"] = sum(c["native"] for c in counts.values())
    out["externs_python"] = sum(c["python"] for c in counts.values())
    out["externs"] = counts
    return out


def bench_pair(sim_name, program, snap_path, repeat):
    """Best-of-``repeat`` warm timings per backend, from one
    python-saved snapshot (the C runs load cross-backend)."""
    _one_run(sim_name, program, "python", save=str(snap_path))
    py = min((_one_run(sim_name, program, "python", load=str(snap_path))
              for _ in range(repeat)), key=lambda r: r["seconds"])
    cc = min((_one_run(sim_name, program, "c", load=str(snap_path))
              for _ in range(repeat)), key=lambda r: r["seconds"])
    return py, cc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workloads", default="compress,go",
        help="comma-separated workload names (default: compress,go)",
    )
    parser.add_argument(
        "--sims", default=",".join(SIMS),
        help=f"simulators to measure (default: {','.join(SIMS)})",
    )
    parser.add_argument("--scale", type=int, default=None)
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="timed passes per backend; best wall time wins",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small scale, one pass, skip the speedup floors (CI gate: "
        "parity, zero-callback, and fastsim-native contracts still "
        "fail hard)",
    )
    args = parser.parse_args(argv)

    kernel = load_kernel()
    if not kernel.status.available:
        print(f"note: C kernel unavailable ({kernel.status.reason}); "
              "measuring the degradation path", file=sys.stderr)

    scales = QUICK_SCALES if args.quick else SCALES
    repeat = 1 if args.quick else args.repeat
    sims = args.sims.split(",")
    rows = []
    failures = []
    floors = {"inorder": INORDER_FLOOR, "ooo": OOO_FLOOR}
    with tempfile.TemporaryDirectory(prefix="native-externs-") as tmp:
        for name in args.workloads.split(","):
            scale = args.scale if args.scale is not None else scales.get(name)
            program = build_cached(name, scale)
            for sim_name in sims:
                snap = pathlib.Path(tmp) / f"{name}-{sim_name}.facsnap"
                py, cc = bench_pair(sim_name, program, snap, repeat)
                speedup = py["seconds"] / max(cc["seconds"], 1e-9)
                bstat = cc["backend_status"]
                row = {
                    "workload": name,
                    "simulator": sim_name,
                    "python_seconds": py["seconds"],
                    "c_seconds": cc["seconds"],
                    "speedup": speedup,
                    "python_ksps": py["retired"] / max(py["seconds"], 1e-9) / 1000,
                    "c_ksps": cc["retired"] / max(cc["seconds"], 1e-9) / 1000,
                    "stats_equal": py["digest"] == cc["digest"],
                    "c_backend_active": bstat["active"],
                    "c_backend_reason": bstat["reason"],
                    "externs_native": cc["externs_native"],
                    "externs_python": cc["externs_python"],
                    "externs": cc["externs"],
                    "slow_steps": py["slow"] + cc["slow"],
                }
                rows.append(row)

                if not row["stats_equal"]:
                    failures.append(
                        f"{name}/{sim_name}: native externs diverge — "
                        f"python {py['digest']} vs c {cc['digest']}"
                    )
                if row["slow_steps"]:
                    failures.append(
                        f"{name}/{sim_name}: warm run fell off the fast "
                        f"path ({row['slow_steps']} slow steps)"
                    )
                if kernel.status.available:
                    if bstat["active"] != "c":
                        failures.append(
                            f"{name}/{sim_name}: C backend inactive "
                            f"({bstat['reason']})"
                        )
                    elif row["externs_python"]:
                        failures.append(
                            f"{name}/{sim_name}: {row['externs_python']} "
                            "Python extern callbacks on steady-state "
                            "replay (want 0)"
                        )
                    floor = floors.get(sim_name)
                    if not args.quick and floor and speedup < floor:
                        failures.append(
                            f"{name}/{sim_name}: native externs only "
                            f"{speedup:.2f}x python backend "
                            f"(need >= {floor}x)"
                        )

    table = render_generic(
        "Native uarch externs: warm replay, python vs. C backend "
        "(in-kernel timing models)",
        ["workload", "simulator", "python s", "c s", "speedup",
         "c ksps", "equal", "backend", "externs (nat/py)"],
        [
            [
                r["workload"],
                r["simulator"],
                f"{r['python_seconds']:.3f}",
                f"{r['c_seconds']:.3f}",
                f"{r['speedup']:.2f}x",
                f"{r['c_ksps']:.1f}k",
                "yes" if r["stats_equal"] else "NO",
                r["c_backend_active"],
                f"{r['externs_native']:,}/{r['externs_python']:,}",
            ]
            for r in rows
        ],
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "native_externs.txt").write_text(table + "\n")
    (RESULTS_DIR / "BENCH_9.json").write_text(json.dumps(
        {
            "bench": "native_externs",
            "issue": 9,
            "version": 1,
            "quick": args.quick,
            "floors": floors,
            "ckernel": {
                "available": kernel.status.available,
                "reason": kernel.status.reason,
                "cc": kernel.status.cc,
            },
            "results": rows,
        },
        indent=2,
    ) + "\n")
    print(table)

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    total_native = sum(r["externs_native"] for r in rows)
    print(
        f"OK: {len(rows)} cells bit-identical (stats included), "
        f"{total_native:,} native extern dispatches, 0 python callbacks "
        "on steady-state replay"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
