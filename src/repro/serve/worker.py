"""Sharded ``multiprocessing`` worker pool for simulation jobs.

Each shard is one long-lived worker process with its own job pipe.
The parent dispatches at most one job to a shard at a time (the rest
wait in a parent-side deque), so it always knows exactly which job a
worker holds — the invariant every failure path below leans on:

* **worker crash** — the shard's in-flight job is requeued on the
  respawned worker, at most ``max_retries`` times; after that it is
  reported failed.  Jobs still waiting in the parent-side deque are
  untouched (they were never handed over).
* **timeout** — a job past its deadline gets its worker killed
  (``SIGKILL``) and is reported failed immediately; timeouts are not
  retried (a deterministic simulation that blew its budget once will
  blow it again).  The shard is respawned and moves on.
* **job error** — a Python exception inside the worker (bad spec,
  simulation error) is caught there and reported; the worker survives
  and the job is not retried.

Workers run jobs through :func:`repro.bench.harness.measure` with the
pool's shared ``cache_dir``, so the first job of a (program × config)
pair records and saves the content-addressed snapshot and every later
job — routed to the same shard by :func:`~repro.serve.protocol.shard_index`
— mmaps it back and replays warm.

Two isolation decisions matter for fleet safety:

* The ``spawn`` start method: workers come from a clean interpreter,
  never forked from a parent that may already be running event-loop or
  queue-feeder threads (``fork`` + threads is a latent deadlock).
* Per-shard **pipes**, not a shared ``mp.Queue``: a queue's put lock is
  shared across writer processes, so SIGKILLing a worker mid-``put``
  (exactly what the timeout path does) can leave the lock held and
  deadlock every other worker.  Each pipe has a single writer and both
  ends are recreated when a shard respawns, so a killed worker can at
  worst tear its own last frame — which the parent discards.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection as mp_connection
import os
import threading
import time
import traceback
from collections import deque
from dataclasses import asdict, dataclass, field

from .protocol import JobSpec, shard_index

#: Seconds between worker heartbeat progress events while a job runs.
PROGRESS_INTERVAL = 0.5

#: Grace added to a job's deadline for queue/startup latency.
TIMEOUT_GRACE = 2.0


# ---------------------------------------------------------------------------
# Worker side (runs in the child process)
# ---------------------------------------------------------------------------


def _execute(spec: JobSpec, cache_dir: str | None) -> dict:
    """Run one job to completion and return its result payload."""
    from ..bench.harness import measure
    from ..isa.assembler import assemble
    from ..workloads.suite import build_cached

    if spec.workload is not None:
        program = build_cached(spec.workload, spec.scale)
        name = spec.workload
    else:
        program = assemble(spec.asm)
        name = "asm"
    t0 = time.perf_counter()
    m = measure(
        spec.simulator,
        program,
        workload_name=name,
        cache_limit_bytes=spec.cache_limit_bytes,
        cache_evict=spec.cache_evict,
        max_cycles=spec.max_cycles,
        trace_jit=spec.trace_jit,
        flat_pack=spec.flat_pack,
        cache_dir=cache_dir,
        replay_backend=spec.replay_backend,
    )
    return {
        "measurement": asdict(m),
        "seconds": time.perf_counter() - t0,
        "cycles": m.cycles,
        "retired": m.retired,
        "kips": m.kips,
        "snapshot_hit": bool(m.extra.get("snapshot_hit")),
    }


def _maybe_crash(spec: JobSpec) -> None:
    """Honour the documented test hooks (see :class:`JobSpec.crash`)."""
    if not spec.crash:
        return
    if spec.crash == "always":
        os._exit(3)
    try:
        os.unlink(spec.crash)
    except FileNotFoundError:
        return  # flag already consumed: this attempt runs normally
    except OSError:
        return
    os._exit(3)


def worker_main(
    shard: int,
    job_conn,
    event_conn,
    cache_dir: str | None,
    progress_interval: float = PROGRESS_INTERVAL,
) -> None:
    """Worker process main loop: one job at a time until the ``None``
    sentinel (or EOF).  Emits ``(kind, job_id, payload)`` tuples on
    ``event_conn``."""
    pid = os.getpid()
    send_lock = threading.Lock()  # main + heartbeat threads both send

    def emit(kind: str, job_id: int, payload: dict) -> None:
        with send_lock:
            try:
                event_conn.send((kind, job_id, payload))
            except (BrokenPipeError, OSError):
                pass  # parent is gone; nothing useful left to do

    while True:
        try:
            item = job_conn.recv()
        except (EOFError, OSError):
            return
        if item is None:
            return
        spec = JobSpec(**item)
        job_id = spec.job_id
        emit("started", job_id, {"shard": shard, "pid": pid})
        _maybe_crash(spec)
        # Heartbeat thread: streams coarse progress while the
        # simulation runs so clients see a live job, not a silent gap.
        done = threading.Event()
        t0 = time.perf_counter()

        def _heartbeat() -> None:
            while not done.wait(progress_interval):
                emit("progress", job_id,
                     {"shard": shard,
                      "elapsed_s": round(time.perf_counter() - t0, 3)})

        beat = threading.Thread(target=_heartbeat, daemon=True)
        beat.start()
        try:
            payload = _execute(spec, cache_dir)
        except Exception:
            done.set()
            beat.join()
            emit("error", job_id,
                 {"shard": shard,
                  "reason": traceback.format_exc(limit=8)})
            continue
        done.set()
        beat.join()
        payload["shard"] = shard
        emit("result", job_id, payload)


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


@dataclass
class _JobState:
    spec: JobSpec
    shard: int
    attempts: int = 0
    dispatched_at: float = 0.0
    started_at: float | None = None

    def deadline(self, default_timeout: float | None) -> float | None:
        timeout = (
            self.spec.timeout_s
            if self.spec.timeout_s is not None
            else default_timeout
        )
        if timeout is None:
            return None
        base = self.started_at if self.started_at is not None else (
            self.dispatched_at + TIMEOUT_GRACE
        )
        return base + timeout


class _Shard:
    def __init__(self, index: int):
        self.index = index
        self.process = None
        self.job_w = None  # parent -> worker job pipe (write end)
        self.event_r = None  # worker -> parent event pipe (read end)
        self.current: int | None = None  # in-flight job id
        self.pending: deque[int] = deque()  # job ids waiting, in order
        self.dispatched = 0
        self.respawns = 0

    def close_pipes(self) -> None:
        for conn in (self.job_w, self.event_r):
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass
        self.job_w = self.event_r = None


@dataclass
class PoolStats:
    submitted: int = 0
    done: int = 0
    failed: int = 0
    errors: int = 0
    requeued: int = 0
    crashes: int = 0
    timeouts: int = 0
    shard_dispatched: list = field(default_factory=list)


class WorkerPool:
    """Sharded worker pool; see the module docstring for semantics.

    Synchronous API — :class:`~repro.serve.server.SimulationServer`
    bridges it onto asyncio, :func:`~repro.serve.fleet.run_fleet`
    drives it directly.
    """

    def __init__(
        self,
        workers: int = 2,
        cache_dir: str | None = None,
        max_retries: int = 1,
        job_timeout: float | None = None,
        progress_interval: float = PROGRESS_INTERVAL,
        start_method: str = "spawn",
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.max_retries = max_retries
        self.job_timeout = job_timeout
        self.progress_interval = progress_interval
        self._ctx = multiprocessing.get_context(start_method)
        # Guards shard/job bookkeeping: the server submits from the
        # event-loop thread while next_event() runs in an executor.
        self._lock = threading.RLock()
        self._shards: list[_Shard] = []
        self._jobs: dict[int, _JobState] = {}
        self._finished: set[int] = set()
        self._next_id = 1
        self._started = False
        self._closed = False
        self.stats = PoolStats(shard_dispatched=[0] * workers)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._started:
            raise RuntimeError("pool already started")
        self._shards = [_Shard(i) for i in range(self.workers)]
        for shard in self._shards:
            self._spawn(shard)
        self._started = True

    def _spawn(self, shard: _Shard) -> None:
        shard.close_pipes()
        job_r, job_w = self._ctx.Pipe(duplex=False)
        event_r, event_w = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=worker_main,
            args=(shard.index, job_r, event_w,
                  self.cache_dir, self.progress_interval),
            daemon=True,
            name=f"repro-serve-worker-{shard.index}",
        )
        proc.start()
        # The child inherited its ends; drop the parent's copies so
        # each pipe has exactly one writer and one reader.
        job_r.close()
        event_w.close()
        shard.process = proc
        shard.job_w = job_w
        shard.event_r = event_r

    def close(self, timeout: float = 5.0) -> None:
        """Shut the pool down: sentinel every worker, join with a
        deadline, kill stragglers.  Idempotent."""
        if not self._started or self._closed:
            self._closed = True
            return
        self._closed = True
        for shard in self._shards:
            try:
                shard.job_w.send(None)
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + timeout
        for shard in self._shards:
            proc = shard.process
            if proc is None:
                continue
            proc.join(max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.kill()
                proc.join(1.0)
            shard.close_pipes()

    def __enter__(self) -> "WorkerPool":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def pids(self) -> list[int]:
        return [
            s.process.pid for s in self._shards if s.process is not None
        ]

    # -- submission and dispatch ---------------------------------------------

    def submit(self, spec: JobSpec) -> int:
        """Queue a job; returns its id.  Events for it flow out of
        :meth:`next_event`."""
        if not self._started:
            raise RuntimeError("pool not started")
        if self._closed:
            raise RuntimeError("pool closed")
        spec.validate()
        with self._lock:
            job_id = self._next_id
            self._next_id += 1
            spec.job_id = job_id
            shard_i = shard_index(spec, self.workers)
            self._jobs[job_id] = _JobState(spec=spec, shard=shard_i)
            shard = self._shards[shard_i]
            shard.pending.append(job_id)
            self.stats.submitted += 1
            self._dispatch(shard)
        return job_id

    def _dispatch(self, shard: _Shard) -> None:
        """Hand the shard its next job iff it is idle — the one-at-a-
        time invariant that makes crash accounting exact."""
        if shard.current is not None or not shard.pending:
            return
        job_id = shard.pending.popleft()
        state = self._jobs[job_id]
        state.dispatched_at = time.monotonic()
        state.started_at = None
        # The attempt is counted here, not at the worker's "started"
        # event: a worker that dies before reporting in must still
        # burn the job's requeue budget, or it would requeue forever.
        state.attempts += 1
        shard.current = job_id
        shard.dispatched += 1
        self.stats.shard_dispatched[shard.index] += 1
        try:
            shard.job_w.send(state.spec.to_json())
        except (BrokenPipeError, OSError):
            pass  # worker is dead; _reap() will requeue or fail the job

    @property
    def outstanding(self) -> int:
        """Jobs submitted but not yet resolved (result/failed)."""
        return len(self._jobs)

    # -- event loop ----------------------------------------------------------

    def next_event(self, timeout: float | None = 1.0) -> dict | None:
        """Return the next event, or ``None`` if ``timeout`` elapses.

        Events are dicts: ``{"event": "started"|"progress"|"result"|
        "error"|"failed"|"requeued", "job": id, ...}``.  Pipe events
        are drained before crash/timeout reaping so a result that
        raced a crash is never double-reported.
        """
        if not self._started:
            raise RuntimeError("pool not started")
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        while True:
            conns = [
                s.event_r for s in self._shards if s.event_r is not None
            ]
            for conn in mp_connection.wait(conns, timeout=0.05):
                try:
                    kind, job_id, payload = conn.recv()
                except (EOFError, OSError):
                    continue  # torn frame from a dying worker: drop it
                with self._lock:
                    event = self._bookkeep(kind, job_id, payload)
                if event is not None:
                    return event
            with self._lock:
                reaped = self._reap()
            if reaped is not None:
                return reaped
            if deadline is not None and time.monotonic() >= deadline:
                return None

    def _bookkeep(self, kind: str, job_id: int, payload: dict) -> dict | None:
        """Update job state for one worker event; returns the event to
        surface, or ``None`` to swallow it (stale duplicate)."""
        if job_id in self._finished or job_id not in self._jobs:
            return None
        state = self._jobs[job_id]
        event = {"event": kind, "job": job_id, **payload}
        if kind == "started":
            state.started_at = time.monotonic()
            event["attempt"] = state.attempts
        elif kind == "result":
            self._resolve(job_id)
            self.stats.done += 1
        elif kind == "error":
            self._resolve(job_id)
            self.stats.errors += 1
            self.stats.failed += 1
            event = {"event": "failed", "job": job_id,
                     "reason": payload.get("reason", "worker error"),
                     "kind": "error", "shard": payload.get("shard")}
        return event

    def _resolve(self, job_id: int) -> None:
        state = self._jobs.pop(job_id)
        self._finished.add(job_id)
        shard = self._shards[state.shard]
        if shard.current == job_id:
            shard.current = None
        else:  # resolved while waiting (shouldn't happen, but be safe)
            try:
                shard.pending.remove(job_id)
            except ValueError:
                pass
        self._dispatch(shard)

    def _reap(self) -> dict | None:
        """Handle crashed workers and overdue jobs; returns at most one
        synthesized event per call (callers loop)."""
        now = time.monotonic()
        for shard in self._shards:
            proc = shard.process
            if proc is not None and not proc.is_alive():
                return self._handle_crash(shard)
            job_id = shard.current
            if job_id is None:
                continue
            state = self._jobs.get(job_id)
            if state is None:  # resolved this tick
                continue
            deadline = state.deadline(self.job_timeout)
            if deadline is not None and now > deadline:
                return self._handle_timeout(shard, state)
        return None

    def _handle_crash(self, shard: _Shard) -> dict | None:
        """A worker died under a job: respawn the shard, requeue the
        lost job (bounded), or report it failed."""
        self.stats.crashes += 1
        exitcode = shard.process.exitcode
        shard.process.join(0.1)
        shard.respawns += 1
        job_id = shard.current
        shard.current = None
        self._spawn(shard)
        if job_id is None:
            self._dispatch(shard)
            return None
        state = self._jobs[job_id]
        if state.attempts <= self.max_retries:
            # Requeue at the front: the job keeps its place in line.
            shard.pending.appendleft(job_id)
            self.stats.requeued += 1
            self._dispatch(shard)
            return {
                "event": "requeued", "job": job_id, "shard": shard.index,
                "attempt": state.attempts,
                "reason": f"worker crashed (exit {exitcode})",
            }
        self._jobs.pop(job_id)
        self._finished.add(job_id)
        self.stats.failed += 1
        self._dispatch(shard)
        return {
            "event": "failed", "job": job_id, "shard": shard.index,
            "kind": "crash",
            "reason": (
                f"worker crashed (exit {exitcode}) and the job already "
                f"used its {self.max_retries} requeue(s)"
            ),
        }

    def _handle_timeout(self, shard: _Shard, state: _JobState) -> dict:
        """Kill a worker stuck past its job's deadline and report the
        job failed (timeouts are deterministic; no requeue)."""
        self.stats.timeouts += 1
        proc = shard.process
        if proc is not None and proc.is_alive():
            proc.kill()
            proc.join(2.0)
        shard.respawns += 1
        job_id = state.spec.job_id
        shard.current = None
        self._spawn(shard)
        self._jobs.pop(job_id, None)
        self._finished.add(job_id)
        self.stats.failed += 1
        self._dispatch(shard)
        return {
            "event": "failed", "job": job_id, "shard": shard.index,
            "kind": "timeout",
            "reason": (
                f"timed out after "
                f"{state.spec.timeout_s or self.job_timeout}s; "
                f"worker killed"
            ),
        }

    # -- reporting -----------------------------------------------------------

    def stats_dict(self) -> dict:
        return {
            "workers": self.workers,
            "outstanding": self.outstanding,
            **asdict(self.stats),
            "shard_respawns": [s.respawns for s in self._shards],
            "cache_dir": self.cache_dir,
        }
