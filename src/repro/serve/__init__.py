"""Sharded simulation service and parallel benchmark fleet.

The runtime substrate built by earlier PRs — flat-packed action caches,
content-addressed mmap-shared snapshots, and a compiled C replay
backend — is all per-process.  This package turns it into a service:

* :mod:`~repro.serve.protocol` — job specs, shard keying, and the
  newline-delimited JSON framing spoken over the wire;
* :mod:`~repro.serve.worker` — a ``multiprocessing`` worker pool that
  shards jobs by (program hash, sim config) so repeat jobs land on a
  warm shard, requeues jobs lost to worker crashes (once), and kills
  and reports jobs that exceed their deadline;
* :mod:`~repro.serve.server` — the ``repro serve`` asyncio front end
  accepting jobs over a local socket and streaming progress back;
* :mod:`~repro.serve.client` — a small blocking client for scripts,
  tests, and the CI smoke;
* :mod:`~repro.serve.fleet` — the ``repro fleet`` fan-out/aggregate
  harness that runs the whole (simulator × workload) benchmark grid
  through the same pool and emits one machine-readable report.
"""

from .protocol import JobSpec, shard_index
from .worker import WorkerPool
from .fleet import FleetReport, run_fleet

__all__ = [
    "JobSpec",
    "shard_index",
    "WorkerPool",
    "FleetReport",
    "run_fleet",
]
