"""Parallel benchmark fleet: the full grid through one worker pool.

``repro fleet`` fans the (workload × simulator) benchmark grid out
across the sharded :class:`~repro.serve.worker.WorkerPool` and folds
everything back into one machine-readable report.  Because the pool
shards by (program hash, sim config), repeat cells reuse a warm shard's
content-addressed snapshot; because simulation is deterministic and
warm replay is bit-exact (the PR-5/6 invariant), every parallel cell
must report *identical* cycles and retired counts to a serial run — and
``verify=True`` checks exactly that, cell by cell, against in-process
serial goldens.  The serial pass doubles as the serial wall-clock
baseline the speedup figure is measured against.

A fleet run always produces a complete report: cells lost to worker
crashes are requeued once by the pool, cells that crash again or time
out appear with ``status: "failed"`` and a reason, and the harmonic
mean is reported with its coverage ("over K/N cells") rather than
silently shrinking its denominator.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import time
from dataclasses import asdict, dataclass, field

from ..bench.harness import SIMULATORS, harmonic_mean_coverage, measure
from ..bench.reporting import render_generic
from .protocol import JobSpec
from .worker import WorkerPool

#: Default simulator axis: every configuration the paper compares.
FLEET_SIMULATORS = tuple(SIMULATORS)


@dataclass
class FleetCell:
    """One grid cell's outcome."""

    workload: str
    simulator: str
    scale: int
    status: str = "pending"  # "ok" | "failed"
    attempts: int = 0
    requeues: int = 0
    shard: int | None = None
    seconds: float = 0.0
    cycles: int = 0
    retired: int = 0
    kips: float = 0.0
    snapshot_hit: bool = False
    #: ``verify=True`` only: do parallel cycles/retired match the
    #: serial golden bit-for-bit?  ``None`` = not checked (cell failed
    #: or verification disabled).
    parity: bool | None = None
    serial_cycles: int = 0
    serial_seconds: float = 0.0
    reason: str = ""


@dataclass
class FleetReport:
    cells: list[FleetCell]
    workers: int
    wall_seconds: float = 0.0
    serial_seconds: float = 0.0
    speedup: float = 0.0
    hmean_kips: float = 0.0
    hmean_used: int = 0
    hmean_total: int = 0
    verified: bool = False
    cpu_count: int = 0
    # Whether the harness enforced its speedup floor on this run.  Small
    # machines and --quick grids skip the floor; the report must say so
    # explicitly instead of leaving a sub-floor speedup next to
    # ``verified: true`` with no explanation (a 1-core host reporting
    # 0.68x is expected, not a regression).
    speedup_gated: bool = False
    pool_stats: dict = field(default_factory=dict)

    @property
    def ok_cells(self) -> list[FleetCell]:
        return [c for c in self.cells if c.status == "ok"]

    @property
    def failed_cells(self) -> list[FleetCell]:
        return [c for c in self.cells if c.status != "ok"]

    @property
    def parity_ok(self) -> bool:
        """True iff every verified cell matched its serial golden."""
        checked = [c for c in self.cells if c.parity is not None]
        return bool(checked) and all(c.parity for c in checked)

    def to_json(self) -> dict:
        return {
            "bench": "fleet",
            "issue": 8,
            "version": 1,
            "workers": self.workers,
            "cpu_count": self.cpu_count,
            "wall_seconds": round(self.wall_seconds, 4),
            "serial_seconds": round(self.serial_seconds, 4),
            "speedup": round(self.speedup, 3),
            "hmean_kips": round(self.hmean_kips, 2),
            "hmean_used": self.hmean_used,
            "hmean_total": self.hmean_total,
            "verified": self.verified,
            "speedup_gated": bool(self.speedup_gated),
            "parity_ok": self.parity_ok,
            "ok": len(self.ok_cells),
            "failed": len(self.failed_cells),
            "pool": self.pool_stats,
            "cells": [asdict(c) for c in self.cells],
        }

    def write(self, path) -> pathlib.Path:
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json(), indent=2) + "\n")
        return path

    def render_text(self) -> str:
        rows = []
        for c in self.cells:
            rows.append([
                c.workload,
                c.simulator,
                c.status,
                f"{c.attempts}" + (f" (+{c.requeues} requeue)" if c.requeues else ""),
                f"{c.seconds:.3f}" if c.status == "ok" else "-",
                f"{c.cycles:,}" if c.status == "ok" else "-",
                f"{c.kips:.1f}k" if c.status == "ok" else "-",
                "warm" if c.snapshot_hit else "cold",
                {True: "yes", False: "NO", None: "-"}[c.parity],
            ])
        label = (
            "hmean" if self.hmean_used == self.hmean_total
            else f"hmean {self.hmean_used}/{self.hmean_total}"
        )
        table = render_generic(
            f"Fleet: {len(self.cells)} cells on {self.workers} workers",
            ["benchmark", "simulator", "status", "attempts", "s",
             "cycles", "kips", "snap", "parity"],
            rows,
        )
        footer = [
            "",
            f"wall {self.wall_seconds:.2f}s"
            + (
                f" vs serial {self.serial_seconds:.2f}s "
                f"({self.speedup:.2f}x, floor "
                + ("enforced)" if self.speedup_gated else "not enforced)")
                if self.verified else ""
            ),
            f"{label}: {self.hmean_kips:.1f} kips",
        ]
        if self.hmean_used < self.hmean_total:
            footer.append(
                f"({self.hmean_total - self.hmean_used} failed cells "
                f"dropped from the harmonic mean)"
            )
        return table + "\n" + "\n".join(footer)


def grid_cells(
    workloads: list[str] | None = None,
    simulators: list[str] | None = None,
    scale: int | None = None,
) -> list[FleetCell]:
    """The benchmark grid as pending cells.  ``scale=None`` uses each
    workload's ``test_scale`` (the tier-1 suite's sizes)."""
    from ..workloads.suite import WORKLOADS

    if workloads is None:
        workloads = list(WORKLOADS)
    if simulators is None:
        simulators = list(FLEET_SIMULATORS)
    cells = []
    for w in workloads:
        if w not in WORKLOADS:
            raise ValueError(f"unknown workload {w!r}")
        cell_scale = scale if scale is not None else WORKLOADS[w].test_scale
        for sim in simulators:
            if sim not in SIMULATORS:
                raise ValueError(f"unknown simulator {sim!r}")
            cells.append(FleetCell(workload=w, simulator=sim, scale=cell_scale))
    return cells


def run_fleet(
    workloads: list[str] | None = None,
    simulators: list[str] | None = None,
    scale: int | None = None,
    workers: int = 2,
    cache_dir: str | None = None,
    verify: bool = True,
    timeout: float | None = None,
    replay_backend: str = "python",
    max_cycles: int = 200_000_000,
    progress=None,
    _sabotage: dict | None = None,
) -> FleetReport:
    """Run the grid through a worker pool and aggregate one report.

    ``progress`` (optional) receives every pool event dict as it
    happens.  ``_sabotage`` is a test hook: a ``{(workload, simulator):
    crash}`` map copied onto the matching cells' job specs (see
    :class:`~repro.serve.protocol.JobSpec.crash`).
    """
    cells = grid_cells(workloads, simulators, scale)
    report = FleetReport(
        cells=cells, workers=workers, cpu_count=os.cpu_count() or 1
    )

    owned_tmp = None
    if cache_dir is None:
        owned_tmp = tempfile.TemporaryDirectory(prefix="repro-fleet-")
        cache_dir = owned_tmp.name
    try:
        _run_parallel(
            report, cells, workers, cache_dir, timeout, replay_backend,
            max_cycles, progress, _sabotage,
        )
    finally:
        if owned_tmp is not None:
            owned_tmp.cleanup()

    kips = [c.kips if c.status == "ok" else 0.0 for c in cells]
    report.hmean_kips, report.hmean_used, report.hmean_total = (
        harmonic_mean_coverage(kips)
    )

    if verify:
        _verify_serial(report, replay_backend, max_cycles)
    return report


def _run_parallel(
    report, cells, workers, cache_dir, timeout, replay_backend,
    max_cycles, progress, sabotage,
) -> None:
    t0 = time.perf_counter()
    with WorkerPool(
        workers=workers, cache_dir=cache_dir, job_timeout=timeout
    ) as pool:
        by_job: dict[int, FleetCell] = {}
        for cell in cells:
            spec = JobSpec(
                workload=cell.workload,
                scale=cell.scale,
                simulator=cell.simulator,
                max_cycles=max_cycles,
                replay_backend=replay_backend,
            )
            if sabotage:
                spec.crash = sabotage.get(
                    (cell.workload, cell.simulator), ""
                )
            by_job[pool.submit(spec)] = cell
        pending = set(by_job)
        while pending:
            event = pool.next_event(timeout=5.0)
            if event is None:
                continue
            if progress is not None:
                progress(event)
            cell = by_job.get(event.get("job"))
            if cell is None:
                continue
            kind = event["event"]
            if kind == "started":
                cell.attempts = event.get("attempt", cell.attempts + 1)
                cell.shard = event.get("shard")
            elif kind == "requeued":
                cell.requeues += 1
            elif kind == "result":
                cell.status = "ok"
                cell.seconds = event["seconds"]
                cell.cycles = event["cycles"]
                cell.retired = event["retired"]
                cell.kips = event["kips"]
                cell.snapshot_hit = event.get("snapshot_hit", False)
                pending.discard(event["job"])
            elif kind == "failed":
                cell.status = "failed"
                cell.reason = event.get("reason", "")
                pending.discard(event["job"])
        report.pool_stats = pool.stats_dict()
    report.wall_seconds = time.perf_counter() - t0


def _verify_serial(report, replay_backend, max_cycles) -> None:
    """Serial golden pass: re-run every ok cell in-process (cold, no
    shared store) and demand bit-identical cycles/retired.  Its total
    time is the serial wall-clock baseline for the speedup figure."""
    from ..workloads.suite import build_cached

    report.verified = True
    serial_total = 0.0
    for cell in report.cells:
        if cell.status != "ok":
            continue
        program = build_cached(cell.workload, cell.scale)
        t0 = time.perf_counter()
        golden = measure(
            cell.simulator,
            program,
            workload_name=cell.workload,
            max_cycles=max_cycles,
            replay_backend=replay_backend,
        )
        cell.serial_seconds = time.perf_counter() - t0
        serial_total += cell.serial_seconds
        cell.serial_cycles = golden.cycles
        cell.parity = (
            golden.cycles == cell.cycles and golden.retired == cell.retired
        )
        if not cell.parity:
            cell.reason = (
                f"parity mismatch: parallel cycles={cell.cycles:,} "
                f"retired={cell.retired:,} vs serial "
                f"cycles={golden.cycles:,} retired={golden.retired:,}"
            )
    report.serial_seconds = serial_total
    if report.wall_seconds > 0:
        report.speedup = serial_total / report.wall_seconds
