"""The ``repro serve`` asyncio front end.

A thin local service over :class:`~repro.serve.worker.WorkerPool`:
clients connect to a TCP socket on localhost, send newline-delimited
JSON requests (see :mod:`~repro.serve.protocol`), and receive a stream
of events as their jobs move through the pool.  One connection can
hold any number of in-flight jobs; every event names its job id.

Requests::

    {"op": "submit", "job": {...JobSpec fields...}}
    {"op": "ping"}
    {"op": "stats"}
    {"op": "shutdown"}

The server replies to a submit with ``{"event": "accepted", "job": id,
"shard": s}`` and then streams that job's ``started`` / ``progress`` /
``requeued`` / ``result`` / ``failed`` events to the submitting
connection as the pool emits them.  Events for jobs whose connection
has gone away are dropped — the jobs themselves keep running (their
snapshots stay warm for the next client).

The pool API is synchronous, so the server bridges it with a single
pump task that polls :meth:`WorkerPool.next_event` in the default
executor and routes events onto the owning connection's writer.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading

from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    JobSpec,
    ProtocolError,
    encode_msg,
    decode_msg,
)
from .worker import WorkerPool

#: Events that end a job's stream (its routing entry is dropped).
_TERMINAL = ("result", "failed")


class SimulationServer:
    """Asyncio server wrapping one worker pool.  Use ``await start()``
    then ``await wait_closed()``; or :class:`ServerThread` from
    synchronous code."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        cache_dir: str | None = None,
        job_timeout: float | None = None,
    ):
        self.host = host
        self.port = port
        self.workers = workers
        self.cache_dir = cache_dir
        self.job_timeout = job_timeout
        self.pool: WorkerPool | None = None
        self._server: asyncio.AbstractServer | None = None
        self._pump: asyncio.Task | None = None
        self._owners: dict[int, asyncio.StreamWriter] = {}
        self._shutdown = asyncio.Event()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self.pool = WorkerPool(
            workers=self.workers,
            cache_dir=self.cache_dir,
            job_timeout=self.job_timeout,
        )
        self.pool.start()
        self._server = await asyncio.start_server(
            self._handle_conn,
            self.host,
            self.port,
            limit=MAX_LINE_BYTES + 2,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._pump = asyncio.create_task(self._pump_events())

    async def wait_closed(self) -> None:
        """Block until a client sends ``shutdown`` (or :meth:`stop`)."""
        await self._shutdown.wait()
        await self.stop()

    async def stop(self) -> None:
        self._shutdown.set()
        if self._pump is not None:
            self._pump.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._pump
            self._pump = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.pool is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, self.pool.close
            )
            self.pool = None

    # -- event pump ----------------------------------------------------------

    async def _pump_events(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            event = await loop.run_in_executor(
                None, self.pool.next_event, 0.2
            )
            if event is None:
                continue
            job_id = event.get("job")
            writer = self._owners.get(job_id)
            if event["event"] in _TERMINAL:
                self._owners.pop(job_id, None)
            if writer is None or writer.is_closing():
                continue
            try:
                writer.write(encode_msg(event))
                await writer.drain()
            except (ConnectionError, ProtocolError):
                pass

    # -- per-connection handler ----------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(encode_msg(
                        {"event": "error", "reason": "frame too large"}
                    ))
                    await writer.drain()
                    break
                if not line:
                    break
                reply = self._handle_msg(line, writer)
                if reply is not None:
                    writer.write(encode_msg(reply))
                    await writer.drain()
                if self._shutdown.is_set():
                    break
        except ConnectionError:
            pass
        finally:
            # Routing only: the connection's jobs keep running.
            stale = [j for j, w in self._owners.items() if w is writer]
            for j in stale:
                self._owners.pop(j, None)
            with contextlib.suppress(ConnectionError):
                writer.close()

    def _handle_msg(self, line: bytes, writer) -> dict | None:
        try:
            msg = decode_msg(line)
        except ProtocolError as exc:
            return {"event": "error", "reason": str(exc)}
        op = msg.get("op")
        if op == "submit":
            try:
                spec = JobSpec.from_json(msg.get("job", {}))
                job_id = self.pool.submit(spec)
            except (ProtocolError, TypeError) as exc:
                return {"event": "error", "reason": str(exc)}
            self._owners[job_id] = writer
            from .protocol import shard_index

            return {
                "event": "accepted",
                "job": job_id,
                "shard": shard_index(spec, self.pool.workers),
            }
        if op == "ping":
            return {"event": "pong", "version": PROTOCOL_VERSION}
        if op == "stats":
            return {"event": "stats", **self.pool.stats_dict()}
        if op == "shutdown":
            self._shutdown.set()
            return {"event": "bye"}
        return {"event": "error", "reason": f"unknown op {op!r}"}


async def _amain(server: SimulationServer, on_started=None) -> None:
    await server.start()
    if on_started is not None:
        on_started(server)
    await server.wait_closed()


def run_server(
    host: str = "127.0.0.1",
    port: int = 7841,
    workers: int = 2,
    cache_dir: str | None = None,
    job_timeout: float | None = None,
) -> None:
    """Blocking entry point for ``repro serve``: serve until a client
    sends ``shutdown`` or the process is interrupted."""
    server = SimulationServer(
        host=host, port=port, workers=workers,
        cache_dir=cache_dir, job_timeout=job_timeout,
    )

    def _announce(s: SimulationServer) -> None:
        print(
            f"repro serve: listening on {s.host}:{s.port} "
            f"({s.workers} workers, cache_dir={s.cache_dir})",
            flush=True,
        )

    try:
        asyncio.run(_amain(server, _announce))
    except KeyboardInterrupt:
        pass


class ServerThread:
    """Run a :class:`SimulationServer` on a background thread — the
    bridge tests and synchronous tooling use.

    ::

        with ServerThread(workers=2) as srv:
            ...connect to ("127.0.0.1", srv.port)...
    """

    def __init__(self, **kwargs):
        self._kwargs = kwargs
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: SimulationServer | None = None
        self.host = kwargs.get("host", "127.0.0.1")
        self.port = 0
        self.error: BaseException | None = None

    def start(self, timeout: float = 30.0) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="repro-serve"
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("server did not start in time")
        if self.error is not None:
            raise RuntimeError(f"server failed to start: {self.error!r}")
        return self

    def _run(self) -> None:
        server = SimulationServer(**{"port": 0, **self._kwargs})

        def _on_started(s: SimulationServer) -> None:
            self._server = s
            self._loop = asyncio.get_running_loop()
            self.port = s.port
            self._started.set()

        try:
            asyncio.run(_amain(server, _on_started))
        except BaseException as exc:  # surfaced by start()/stop()
            self.error = exc
            self._started.set()

    def stop(self, timeout: float = 10.0) -> None:
        loop, server = self._loop, self._server
        if loop is not None and server is not None and loop.is_running():
            loop.call_soon_threadsafe(server._shutdown.set)
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
