"""Blocking client for the simulation service.

Used by tests, the CI smoke, and scripts::

    python -m repro.serve.client --port 7841 --workload compress --scale 1

Connects, submits one job, prints every event as a JSON line, and
exits 0 when the job's ``result`` arrives (1 on ``failed``/``error``).
:class:`ServeClient` is the programmatic face: a tiny synchronous
wrapper over the newline-JSON protocol that supports any number of
interleaved jobs on one connection.
"""

from __future__ import annotations

import argparse
import json
import socket
import sys

from .protocol import (
    MAX_LINE_BYTES,
    JobSpec,
    ProtocolError,
    encode_msg,
    decode_msg,
)


class ServeClient:
    """One connection to a running server."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7841,
                 timeout: float | None = 60.0):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self._buf = b""

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- requests ------------------------------------------------------------

    def send(self, msg: dict) -> None:
        self.sock.sendall(encode_msg(msg))

    def recv_event(self) -> dict:
        """Next event from the server (blocking; honours the socket
        timeout)."""
        while b"\n" not in self._buf:
            if len(self._buf) > MAX_LINE_BYTES:
                raise ProtocolError("oversized frame from server")
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self._buf += chunk
        line, self._buf = self._buf.split(b"\n", 1)
        return decode_msg(line)

    def submit(self, spec: JobSpec) -> int:
        """Submit a job; returns its server-assigned id."""
        self.send({"op": "submit", "job": spec.to_json()})
        event = self.recv_event()
        if event.get("event") != "accepted":
            raise ProtocolError(f"submit rejected: {event}")
        return event["job"]

    def ping(self) -> dict:
        self.send({"op": "ping"})
        return self.recv_event()

    def stats(self) -> dict:
        self.send({"op": "stats"})
        return self.recv_event()

    def shutdown(self) -> dict:
        self.send({"op": "shutdown"})
        return self.recv_event()

    def wait(self, job_id: int, on_event=None) -> dict:
        """Stream events until ``job_id`` resolves; returns its
        terminal ``result``/``failed`` event."""
        while True:
            event = self.recv_event()
            if on_event is not None:
                on_event(event)
            if event.get("job") == job_id and event.get("event") in (
                "result", "failed"
            ):
                return event


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.client",
        description="Submit one job to a running `repro serve` instance.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7841)
    parser.add_argument("--workload", required=True)
    parser.add_argument("--scale", type=int, default=None)
    parser.add_argument("--simulator", default="facile")
    parser.add_argument("--replay-backend", default="python",
                        choices=["python", "c"])
    parser.add_argument("--max-cycles", type=int, default=200_000_000)
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="client-side socket timeout (seconds)")
    parser.add_argument("--shutdown", action="store_true",
                        help="ask the server to shut down afterwards")
    args = parser.parse_args(argv)

    spec = JobSpec(
        workload=args.workload,
        scale=args.scale,
        simulator=args.simulator,
        replay_backend=args.replay_backend,
        max_cycles=args.max_cycles,
    )
    spec.validate()
    with ServeClient(args.host, args.port, timeout=args.timeout) as client:
        job_id = client.submit(spec)
        print(json.dumps({"event": "accepted", "job": job_id}), flush=True)
        final = client.wait(
            job_id,
            on_event=lambda e: print(json.dumps(e), flush=True),
        )
        if args.shutdown:
            client.shutdown()
    return 0 if final.get("event") == "result" else 1


if __name__ == "__main__":
    raise SystemExit(main())
