"""Job specs, shard keying, and wire framing for the simulation service.

The service speaks newline-delimited JSON over a local stream socket:
every message is one JSON object on one line.  Requests carry an
``"op"`` ("submit", "ping", "stats", "shutdown"); everything the server
sends back carries an ``"event"`` ("accepted", "started", "progress",
"result", "failed", "requeued", "error", "pong", "stats", "bye").
Events for a job always include its ``"job"`` id, so one connection can
interleave many in-flight jobs.

Shard keying
------------

Jobs are sharded by ``(program hash, sim config)``: two jobs that would
replay from the same content-addressed snapshot land on the same worker
shard.  The first run of a (program × config) pair records and saves
the snapshot; every later job on that shard mmaps it back and replays
warm, and the worker process's own in-memory caches (built programs,
compiled simulators) stay hot too.  The key deliberately excludes
anything that does not change the snapshot content address (timeouts,
test hooks).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

from ..bench.harness import SIMULATORS

#: Cap on one framed message.  Jobs and results are tiny; anything
#: bigger is a protocol error (or an attack on a local socket).
MAX_LINE_BYTES = 1 << 20

PROTOCOL_VERSION = 1


class ProtocolError(Exception):
    """A malformed frame or an invalid job specification."""


@dataclass
class JobSpec:
    """One simulation job: program × workload × sim config × backend.

    The program is named either by a suite ``workload`` (built
    deterministically from its name and ``scale``) or by raw SPARC-lite
    ``asm`` source text; exactly one must be given.
    """

    workload: str | None = None
    scale: int | None = None
    asm: str | None = None
    simulator: str = "facile"
    max_cycles: int = 200_000_000
    cache_limit_bytes: int | None = None
    cache_evict: str = "clear"
    trace_jit: bool = True
    flat_pack: bool = True
    replay_backend: str = "python"
    #: Per-job wall-clock deadline; ``None`` inherits the pool default.
    timeout_s: float | None = None
    #: Assigned by the pool/server at submit time.
    job_id: int = 0
    #: Test hooks (documented, never set by real clients): "always"
    #: makes the worker die with os._exit after reporting the job
    #: started — every attempt crashes, so the job exhausts its requeue
    #: budget; a path makes the worker crash only if the file exists,
    #: consuming it first — the retry then succeeds.
    crash: str = ""
    extra: dict = field(default_factory=dict)

    def validate(self) -> None:
        if (self.workload is None) == (self.asm is None):
            raise ProtocolError("exactly one of workload/asm is required")
        if self.simulator not in SIMULATORS:
            raise ProtocolError(
                f"unknown simulator {self.simulator!r} "
                f"(expected one of {', '.join(SIMULATORS)})"
            )
        if self.workload is not None:
            from ..workloads.suite import WORKLOADS

            if self.workload not in WORKLOADS:
                raise ProtocolError(f"unknown workload {self.workload!r}")
        if self.replay_backend not in ("python", "c"):
            raise ProtocolError(
                f"unknown replay backend {self.replay_backend!r}"
            )
        if self.cache_evict not in ("clear", "generational"):
            raise ProtocolError(
                f"unknown eviction policy {self.cache_evict!r}"
            )
        if self.max_cycles <= 0:
            raise ProtocolError("max_cycles must be positive")

    # -- shard keying --------------------------------------------------------

    def program_key(self) -> str:
        """Stable identity of the simulated program (cheap proxy for
        the snapshot store's program fingerprint: equal keys imply
        equal fingerprints)."""
        if self.workload is not None:
            return f"workload:{self.workload}:{self.scale}"
        digest = hashlib.sha256(self.asm.encode()).hexdigest()[:16]
        return f"asm:{digest}"

    def config_key(self) -> tuple:
        """The sim-config half of the shard key — everything that
        selects which content-addressed snapshot a run touches."""
        return (
            self.simulator,
            self.cache_limit_bytes,
            self.cache_evict,
            self.trace_jit,
            self.flat_pack,
            self.replay_backend,
        )

    def shard_key(self) -> str:
        return f"{self.program_key()}|{self.config_key()!r}"

    def to_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "JobSpec":
        if not isinstance(data, dict):
            raise ProtocolError("job spec must be a JSON object")
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ProtocolError(
                f"unknown job fields: {', '.join(sorted(unknown))}"
            )
        spec = cls(**data)
        spec.validate()
        return spec


def shard_index(spec: JobSpec, n_shards: int) -> int:
    """Deterministic shard for a job: same (program hash, config) →
    same shard, independent of submission order or process."""
    digest = hashlib.sha256(spec.shard_key().encode()).digest()
    return int.from_bytes(digest[:8], "big") % max(1, n_shards)


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


def encode_msg(msg: dict) -> bytes:
    """One message → one JSON line (the trailing newline is the frame
    delimiter)."""
    line = json.dumps(msg, separators=(",", ":")) + "\n"
    raw = line.encode("utf-8")
    if len(raw) > MAX_LINE_BYTES:
        raise ProtocolError(f"message too large ({len(raw)} bytes)")
    return raw


def decode_msg(line: bytes) -> dict:
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"frame too large ({len(line)} bytes)")
    try:
        msg = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad frame: {exc}") from None
    if not isinstance(msg, dict):
        raise ProtocolError("frame must be a JSON object")
    return msg
