"""Pattern algebra and decoder generation.

Facile describes instruction encodings as boolean constraints over token
fields (Figure 4 of the paper), in the style of the New Jersey
Machine-Code Toolkit.  This module normalizes pattern expressions to
disjunctive normal form, checks satisfiability of each conjunct, and
builds a decoder that maps a fetched token word to a pattern index.

The generated decoder is a decision procedure over ``(word >> lo) &
mask`` field tests.  When many patterns discriminate on a common field
with ``==`` constraints (the usual primary-opcode case), the decoder
dispatches through a dict on that field first and falls back to linear
matching inside each bucket, mirroring how generated C decoders switch
on the major opcode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import ast_nodes as A
from .diagnostics import DiagnosticSink
from .source import SourceSpan, UNKNOWN_SPAN


@dataclass(frozen=True)
class FieldInfo:
    """A named bit field of a token."""

    name: str
    token: str
    lo: int
    hi: int

    @property
    def width(self) -> int:
        return self.hi - self.lo + 1

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1

    def extract(self, word: int) -> int:
        return (word >> self.lo) & self.mask

    def extract_src(self, word_var: str) -> str:
        """Python source extracting this field from `word_var`."""
        if self.lo == 0:
            return f"({word_var} & {self.mask:#x})"
        return f"(({word_var} >> {self.lo}) & {self.mask:#x})"


@dataclass(frozen=True)
class Constraint:
    """A single relational constraint on one field."""

    fld: FieldInfo
    op: str  # == != < <= > >=
    value: int

    def matches(self, word: int) -> bool:
        v = self.fld.extract(word)
        return {
            "==": v == self.value,
            "!=": v != self.value,
            "<": v < self.value,
            "<=": v <= self.value,
            ">": v > self.value,
            ">=": v >= self.value,
        }[self.op]

    def source(self, word_var: str) -> str:
        return f"{self.fld.extract_src(word_var)} {self.op} {self.value}"


@dataclass
class PatternDef:
    """A named pattern normalized to DNF: a list of conjunctions."""

    name: str
    index: int
    conjuncts: list[tuple[Constraint, ...]]
    token: str
    span: SourceSpan = UNKNOWN_SPAN

    def matches(self, word: int) -> bool:
        return any(all(c.matches(word) for c in conj) for conj in self.conjuncts)


@dataclass
class PatternTable:
    """All patterns of a program, in declaration order, plus field info."""

    fields: dict[str, FieldInfo]
    patterns: list[PatternDef] = field(default_factory=list)
    by_name: dict[str, PatternDef] = field(default_factory=dict)
    token_widths: dict[str, int] = field(default_factory=dict)

    def pattern_index(self, name: str) -> int:
        return self.by_name[name].index

    def decode(self, word: int) -> int:
        """Reference decoder: first declared pattern that matches, else -1."""
        for pat in self.patterns:
            if pat.matches(word):
                return pat.index
        return -1

    def token_width_for(self, pat_names: list[str], span: SourceSpan = UNKNOWN_SPAN) -> int:
        widths = {self.token_widths[self.by_name[n].token] for n in pat_names}
        if len(widths) != 1:
            from .source import SemanticError

            raise SemanticError(
                f"patterns {pat_names} span tokens of different widths", span
            )
        return widths.pop()


def build_pattern_table(program: A.Program, sink: DiagnosticSink | None = None) -> PatternTable:
    """Resolve token/field/pat declarations into a :class:`PatternTable`.

    With an external `sink`, every problem is collected and the function
    recovers (keep-first on duplicates, never-matching conjunct list on
    unsatisfiable patterns) so later phases can still run.  Without one,
    a private sink raises a batched ``SemanticError`` at the end.
    """
    own_sink = sink is None
    if sink is None:
        sink = DiagnosticSink()
    fields: dict[str, FieldInfo] = {}
    token_widths: dict[str, int] = {}
    for decl in program.decls:
        if isinstance(decl, A.TokenDecl):
            if decl.name in token_widths:
                sink.emit("FAC011", f"duplicate token {decl.name!r}", decl.span)
                continue
            token_widths[decl.name] = decl.width
            for f in decl.fields:
                if f.name in fields:
                    sink.emit("FAC011", f"duplicate field {f.name!r}", f.span)
                    continue
                fields[f.name] = FieldInfo(f.name, decl.name, f.lo, f.hi)

    table = PatternTable(fields=fields, token_widths=token_widths)
    for decl in program.decls:
        if not isinstance(decl, A.PatDecl):
            continue
        if decl.name in table.by_name:
            sink.emit("FAC011", f"duplicate pattern {decl.name!r}", decl.span)
            continue
        conjuncts = _to_dnf(decl.expr, table, sink)
        conjuncts = [c for c in conjuncts if _satisfiable(c)]
        if not conjuncts:
            sink.emit("FAC018", f"pattern {decl.name!r} is unsatisfiable", decl.span)
        tokens = {c.fld.token for conj in conjuncts for c in conj}
        if len(tokens) > 1:
            sink.emit(
                "FAC018",
                f"pattern {decl.name!r} mixes fields of different tokens",
                decl.span,
            )
        token = min(tokens) if tokens else next(iter(token_widths), "")
        pat = PatternDef(decl.name, len(table.patterns), conjuncts, token, decl.span)
        table.patterns.append(pat)
        table.by_name[decl.name] = pat
    if own_sink:
        sink.checkpoint()
    return table


def _to_dnf(
    expr: A.PatExpr, table: PatternTable, sink: DiagnosticSink
) -> list[tuple[Constraint, ...]]:
    # Recovery sentinel: [()] is the always-matching DNF, which keeps the
    # pattern well-formed enough for downstream phases after an error.
    if isinstance(expr, A.PatRel):
        fld = table.fields.get(expr.field_name)
        if fld is None:
            sink.emit("FAC010", f"unknown field {expr.field_name!r} in pattern", expr.span)
            return [()]
        if not 0 <= expr.value <= fld.mask and expr.op in ("==",):
            sink.emit(
                "FAC018",
                f"value {expr.value} does not fit field {fld.name!r} ({fld.width} bits)",
                expr.span,
            )
        return [(Constraint(fld, expr.op, expr.value),)]
    if isinstance(expr, A.PatRef):
        ref = table.by_name.get(expr.name)
        if ref is None:
            sink.emit("FAC010", f"unknown pattern {expr.name!r}", expr.span)
            return [()]
        return [tuple(c) for c in ref.conjuncts]
    if isinstance(expr, A.PatOr):
        return _to_dnf(expr.left, table, sink) + _to_dnf(expr.right, table, sink)
    if isinstance(expr, A.PatAnd):
        left = _to_dnf(expr.left, table, sink)
        right = _to_dnf(expr.right, table, sink)
        return [lc + rc for lc in left for rc in right]
    sink.emit(
        "FAC030", f"unsupported pattern expression {type(expr).__name__}", expr.span
    )
    return [()]


def _satisfiable(conj: tuple[Constraint, ...]) -> bool:
    """Check a conjunction for contradictory constraints on one field."""
    by_field: dict[str, list[Constraint]] = {}
    for c in conj:
        by_field.setdefault(c.fld.name, []).append(c)
    for constraints in by_field.values():
        lo, hi = 0, constraints[0].fld.mask
        excluded: set[int] = set()
        for c in constraints:
            if c.op == "==":
                lo, hi = max(lo, c.value), min(hi, c.value)
            elif c.op == "!=":
                excluded.add(c.value)
            elif c.op == "<":
                hi = min(hi, c.value - 1)
            elif c.op == "<=":
                hi = min(hi, c.value)
            elif c.op == ">":
                lo = max(lo, c.value + 1)
            elif c.op == ">=":
                lo = max(lo, c.value)
        if lo > hi:
            return False
        if lo == hi and lo in excluded:
            return False
    return True


# -- pattern set algebra (used by the analysis lints) -------------------------
#
# A conjunct's feasible set per field is an interval [lo, hi] minus a
# finite exclusion set.  Intervals make subset/intersection decidable
# without enumerating the (possibly 2^32-sized) field domain.


def conjunct_feasible(conj: tuple[Constraint, ...]) -> dict[str, tuple[int, int, frozenset[int]]] | None:
    """Per-field ``(lo, hi, excluded)`` feasible sets, or None if empty."""
    by_field: dict[str, list[Constraint]] = {}
    for c in conj:
        by_field.setdefault(c.fld.name, []).append(c)
    out: dict[str, tuple[int, int, frozenset[int]]] = {}
    for name, constraints in by_field.items():
        lo, hi = 0, constraints[0].fld.mask
        excluded: set[int] = set()
        for c in constraints:
            if c.op == "==":
                lo, hi = max(lo, c.value), min(hi, c.value)
            elif c.op == "!=":
                excluded.add(c.value)
            elif c.op == "<":
                hi = min(hi, c.value - 1)
            elif c.op == "<=":
                hi = min(hi, c.value)
            elif c.op == ">":
                lo = max(lo, c.value + 1)
            elif c.op == ">=":
                lo = max(lo, c.value)
        excluded = {v for v in excluded if lo <= v <= hi}
        if lo > hi or hi - lo + 1 <= len(excluded):
            return None
        out[name] = (lo, hi, frozenset(excluded))
    return out


def conjunct_subset(a: tuple[Constraint, ...], b: tuple[Constraint, ...]) -> bool:
    """True if every word matching conjunct `a` also matches conjunct `b`."""
    fa = conjunct_feasible(a)
    fb = conjunct_feasible(b)
    if fa is None:
        return True  # empty set is a subset of everything
    if fb is None:
        return False
    for name, (lo_b, hi_b, ex_b) in fb.items():
        fld = next(c.fld for c in b if c.fld.name == name)
        lo_a, hi_a, ex_a = fa.get(name, (0, fld.mask, frozenset()))
        if lo_a < lo_b or hi_a > hi_b:
            return False
        # A value b excludes must be unreachable in a as well.
        for v in ex_b:
            if lo_a <= v <= hi_a and v not in ex_a:
                return False
    return True


def conjuncts_intersect(a: tuple[Constraint, ...], b: tuple[Constraint, ...]) -> bool:
    """True if some word satisfies both conjuncts at once."""
    return conjunct_feasible(a + b) is not None


def pattern_shadowed_by(pat: PatternDef, earlier: PatternDef) -> bool:
    """Conservatively: every conjunct of `pat` ⊆ some conjunct of `earlier`.

    Sound for "this arm can never fire after that one" because decoder
    priority is declaration order; incomplete (a conjunct covered only
    by a *union* of earlier conjuncts is not detected).
    """
    if not pat.conjuncts:
        return False  # unsatisfiable pattern: reported separately
    return all(
        any(conjunct_subset(pc, ec) for ec in earlier.conjuncts)
        for pc in pat.conjuncts
    )


def patterns_intersect(a: PatternDef, b: PatternDef) -> bool:
    """True if some token word matches both patterns."""
    return any(
        conjuncts_intersect(ca, cb) for ca in a.conjuncts for cb in b.conjuncts
    )


def choose_dispatch_field(table: PatternTable) -> FieldInfo | None:
    """Pick the best field for first-level dict dispatch.

    A field qualifies for a pattern if *every* conjunct of the pattern
    pins it with an ``==`` constraint.  The field pinning the most
    patterns wins; ties break toward wider fields (more selective).
    """
    scores: dict[str, int] = {}
    for pat in table.patterns:
        pinned: set[str] | None = None
        for conj in pat.conjuncts:
            here = {c.fld.name for c in conj if c.op == "=="}
            pinned = here if pinned is None else (pinned & here)
        for name in pinned or ():
            scores[name] = scores.get(name, 0) + 1
    if not scores:
        return None
    best = max(scores, key=lambda n: (scores[n], table.fields[n].width))
    if scores[best] < 2:
        return None
    return table.fields[best]


def generate_decoder_source(table: PatternTable, func_name: str = "_decode") -> str:
    """Emit Python source for a decoder function ``func_name(word) -> int``.

    The function returns the matched pattern index or -1.  Results are
    memoized per word value by the caller (see runtime.SimContext);
    decode happens only in the slow engine, where words are run-time
    static, so the cache hit rate is effectively 100% after warm-up.
    """
    lines = [f"def {func_name}(word):"]
    dispatch = choose_dispatch_field(table)
    if dispatch is None:
        _emit_linear(lines, table.patterns, "    ")
        lines.append("    return -1")
        return "\n".join(lines) + "\n"

    # Bucket patterns by their pinned dispatch-field value; patterns not
    # pinned on the dispatch field go to a residual linear chain that is
    # consulted (in declaration order) interleaved by priority.
    buckets: dict[int, list[PatternDef]] = {}
    residual: list[PatternDef] = []
    for pat in table.patterns:
        values = set()
        pinned_everywhere = True
        for conj in pat.conjuncts:
            vals = {c.value for c in conj if c.op == "==" and c.fld.name == dispatch.name}
            if len(vals) != 1:
                pinned_everywhere = False
                break
            values |= vals
        if pinned_everywhere and len(values) == 1:
            buckets.setdefault(values.pop(), []).append(pat)
        else:
            residual.append(pat)

    lines.append(f"    _k = {dispatch.extract_src('word')}")
    lines.append(f"    _b = {func_name}_buckets.get(_k)")
    lines.append("    if _b is not None:")
    lines.append("        for _idx, _pred in _b:")
    lines.append("            if _pred(word):")
    lines.append("                return _idx")
    if residual:
        _emit_linear(lines, residual, "    ")
    lines.append("    return -1")

    # Bucket table construction code.
    lines.append("")
    lines.append(f"{func_name}_buckets = {{}}")
    for value, pats in sorted(buckets.items()):
        entries = []
        for pat in pats:
            pred = _predicate_lambda(pat)
            entries.append(f"({pat.index}, {pred})")
        lines.append(f"{func_name}_buckets[{value}] = [{', '.join(entries)}]")
    return "\n".join(lines) + "\n"


def _emit_linear(lines: list[str], pats: list[PatternDef], indent: str) -> None:
    for pat in pats:
        cond = _predicate_expr(pat, "word")
        lines.append(f"{indent}if {cond}:")
        lines.append(f"{indent}    return {pat.index}")


def _predicate_expr(pat: PatternDef, word_var: str) -> str:
    parts = []
    for conj in pat.conjuncts:
        if conj:
            parts.append("(" + " and ".join(c.source(word_var) for c in conj) + ")")
        else:
            parts.append("True")
    return " or ".join(parts)


def _predicate_lambda(pat: PatternDef) -> str:
    return f"lambda word: {_predicate_expr(pat, 'word')}"


def compile_decoder(table: PatternTable):
    """Compile the generated decoder source and return the function."""
    src = generate_decoder_source(table)
    namespace: dict[str, object] = {}
    exec(compile(src, "<facile-decoder>", "exec"), namespace)
    return namespace["_decode"], src
