"""Introspection helpers: explain what the compiler and the action
cache did.

These are the tools you reach for when a simulator is slower than
expected ("why is this variable dynamic?") or when validating that the
specialized action cache looks like the paper's Figure 2/3 — entries
keyed by run-time static state, linked actions, per-value successor
chains at dynamic result tests.
"""

from __future__ import annotations

from .analysis import CheckReport
from .analysis import why_dynamic as _why_dynamic
from .bta import DYNAMIC
from .compiler import CompilationResult
from .runtime import ActionCache, CacheEntry, entry_first_record


def explain_division(result: CompilationResult) -> str:
    """Human-readable binding-time report for a compiled simulator."""
    division = result.division
    lines = [f"binding-time division for {result.simulator.name!r}"]
    lines.append(f"  step-function parameters (rt-static keys): {len(result.flat.params)}")
    lines.append(f"  dynamic result tests inserted: {result.n_dynamic_result_tests}")
    lines.append(f"  constant folds: {result.n_constant_folds}")

    globals_ = sorted(result.info.globals)
    dynamic_globals = [g for g in globals_ if division.var_bt(g) == DYNAMIC]
    constants = [g for g in globals_ if g not in division.assigned_globals]
    local_like = sorted(division.local_like_globals)
    lines.append(f"  dynamic globals:   {', '.join(dynamic_globals) or '(none)'}")
    lines.append(f"  program constants: {', '.join(constants) or '(none)'}")
    lines.append(f"  local-like (rt-static) globals: {', '.join(local_like) or '(none)'}")
    lines.append(f"  flushed at step end: {', '.join(division.flush_globals) or '(none)'}")

    dynamic_locals = sorted(
        name
        for name, bt in division.bt.items()
        if bt == DYNAMIC and name not in result.info.globals
    )
    lines.append(f"  dynamic locals (shared slots): {len(dynamic_locals)}")
    for name in dynamic_locals[:20]:
        lines.append(f"    {name}: {division.var_shape(name)}")
    if len(dynamic_locals) > 20:
        lines.append(f"    ... and {len(dynamic_locals) - 20} more")
    summary = result.simulator.division_summary
    lines.append(
        f"  generated actions: {summary['n_actions']} "
        f"({summary['n_verify_actions']} dynamic result tests)"
    )
    return "\n".join(lines)


def explain_check(report: CheckReport) -> str:
    """Human-readable static-analysis report (``repro check`` output
    plus which passes actually ran)."""
    counts = report.sink.counts()
    lines = [f"static analysis for {report.file!r}"]
    lines.append(f"  passes run: {', '.join(report.passes) or '(none)'}")
    lines.append(
        f"  verdict: {'clean' if report.clean else 'dirty'}"
        f" ({counts['error']} error(s), {counts['warning']} warning(s),"
        f" {counts['info']} info(s), {len(report.sink.suppressed)} suppressed)"
    )
    ir = report.ir
    if ir:
        lines.append(
            f"  ir tier: {ir.get('bodies_lowerable', 0)} replay bodies "
            f"lower to the C tier, {ir.get('bodies_python', 0)} stay "
            f"Python, {ir.get('bodies_rejected', 0)} rejected by the "
            "verifier"
        )
        externs = ir.get("externs") or []
        if externs:
            lines.append(f"  ir externs: {', '.join(externs)}")
        census = ir.get("wrap_census") or {}
        if census:
            ops = ", ".join(
                f"{op}×{n}" for op, n in sorted(census.items())
            )
            lines.append(f"  64-bit wrap/guard op census: {ops}")
    body = report.render_text()
    return "\n".join(lines) + ("\n" + body if body else "")


def why_dynamic(result: CompilationResult, name: str) -> list[str]:
    """Explain why ``name`` is dynamic in a compiled simulator.

    Returns provenance lines tracing the variable back to the dynamic
    roots (extern calls, non-pure built-ins, dynamic globals) that
    forced it dynamic; empty if the variable is run-time static.
    ``name`` may be a source-level name or a flattened unique name.
    """
    return _why_dynamic(result.flat, result.division, name)


def dump_entry(entry: CacheEntry, max_depth: int = 200) -> str:
    """Render one specialized-action-cache entry as a tree (Figure 3).

    Flat-packed entries are transiently reconstructed into record form
    for rendering (no accounting side effects)."""
    packed = " packed" if entry.packed is not None else ""
    lines = [f"entry key={_short(entry.key)} complete={entry.complete}{packed}"]
    _dump_chain(entry_first_record(entry), lines, indent=1, budget=[max_depth])
    return "\n".join(lines)


def _dump_chain(rec, lines: list[str], indent: int, budget: list[int]) -> None:
    pad = "  " * indent
    while rec is not None and budget[0] > 0:
        budget[0] -= 1
        if rec.is_end:
            lines.append(f"{pad}END")
            return
        if rec.is_verify:
            lines.append(f"{pad}verify action {rec.num} data={_short(rec.data)}")
            for value, succ in rec.succ.items():
                lines.append(f"{pad}  result {value!r} ->")
                _dump_chain(succ, lines, indent + 2, budget)
            return
        lines.append(f"{pad}action {rec.num} data={_short(rec.data)}")
        rec = rec.next
    if budget[0] <= 0:
        lines.append(f"{pad}... (truncated)")


def cache_summary(cache: ActionCache, engine=None) -> str:
    """Aggregate statistics plus a path-shape census of the cache.

    With ``engine`` (a :class:`FastForwardEngine`), also reports the
    active replay backend, the C-kernel compile status, and the native
    lowering/dispatch counters."""
    stats = cache.stats
    n_forks = 0
    n_records = 0
    max_succ = 0
    for entry in cache.entries.values():
        for rec in _walk_records(entry):
            n_records += 1
            if rec.is_verify:
                n_forks += 1
                max_succ = max(max_succ, len(rec.succ))
    lines = [
        "specialized action cache",
        f"  entries:          {len(cache.entries)} live "
        f"({stats.entries_created} created, {stats.clears} clears)",
        f"  records walked:   {n_records} "
        f"({n_forks} dynamic result tests, widest fork {max_succ})",
        f"  bytes:            {stats.bytes_current:,} current, "
        f"{stats.bytes_cumulative:,} cumulative "
        f"({stats.bytes_shared:,} mmap-shared, "
        f"{stats.bytes_current - stats.bytes_shared:,} private)",
        f"  evictions:        {stats.evictions} rounds "
        f"({stats.entries_evicted} entries evicted, "
        f"{stats.bytes_refunded:,} bytes refunded)",
        f"  lookups:          {stats.lookups:,} "
        f"({stats.hits:,} hits, {stats.misses_new_key:,} new keys, "
        f"{stats.misses_verify:,} verify misses)",
    ]
    if cache.flat_pack:
        pool = cache.pool
        n_packed = sum(1 for e in cache.entries.values() if e.packed is not None)
        pack_ratio = n_packed / max(1, len(cache.entries))
        hit_rate = 100 * pool.hits / max(1, pool.hits + pool.misses)
        lines += [
            f"  flat pack:        {n_packed}/{len(cache.entries)} entries packed "
            f"({100 * pack_ratio:.1f}%, {stats.packs} packs, "
            f"{stats.unpacks} unpacks)",
            f"  intern pool:      {pool.live_values():,} values, "
            f"{pool.bytes_live:,} bytes live, {hit_rate:.1f}% hit rate, "
            f"{pool.bytes_saved:,} bytes saved",
        ]
    if stats.snapshot_entries or stats.snapshot_rejected or stats.bytes_shared:
        n_shared = sum(
            1 for e in cache.entries.values()
            if e.packed is not None and e.packed.shared
        )
        lines.append(
            f"  snapshot:         {stats.snapshot_entries} entries loaded, "
            f"{n_shared} still mmap-backed, "
            f"{stats.snapshot_rejected} snapshots rejected"
        )
    bstat = getattr(engine, "backend_status", None)
    if bstat is not None:
        if bstat["active"] == "c":
            lines.append(
                f"  replay backend:   c (kernel ready in "
                f"{bstat['compile_ms']:.1f} ms)"
            )
        elif bstat["requested"] != "python":
            lines.append(
                f"  replay backend:   python (requested "
                f"{bstat['requested']}: {bstat['reason']})"
            )
        else:
            lines.append("  replay backend:   python")
        native = getattr(engine, "_cnative", None)
        if native is not None:
            ns = native.summary()
            lines.append(
                f"  native replay:    {ns['chains_lowered']:,} chains "
                f"lowered ({ns['chains_unlowerable']:,} unlowerable), "
                f"{ns['runs']:,} kernel runs, "
                f"{ns['python_fallbacks']:,} python fallbacks"
            )
            # Why-not provenance: each distinct Unlowerable reason the
            # verifier/lowering gate recorded, with occurrence counts.
            for reason, n in sorted(
                ns.get("unlowerable_reasons", {}).items()
            )[:8]:
                lines.append(f"    unlowerable ×{n}: {reason}")
            counts = getattr(native, "extern_counts", None)
            if counts is not None:
                by_name = counts()
                n_native = sum(c["native"] for c in by_name.values())
                n_python = sum(c["python"] for c in by_name.values())
                lines.append(
                    f"  externs:          {n_native:,} native / "
                    f"{n_python:,} python"
                )
                whynot = ns.get("extern_whynot", {})
                for name, c in sorted(by_name.items()):
                    kind = (
                        "native" if c["native"] and not c["python"]
                        else "python" if c["python"] and not c["native"]
                        else "mixed" if c["python"] or c["native"] else "idle"
                    )
                    lines.append(
                        f"    {name:<14} {c['native']:>12,} native "
                        f"{c['python']:>10,} python  [{kind}]"
                    )
                    why = whynot.get(name)
                    if why and kind != "native":
                        lines.append(f"      why not native: {why}")
    return "\n".join(lines)


def _walk_records(entry: CacheEntry):
    seen = set()
    stack = [entry_first_record(entry)]
    while stack:
        rec = stack.pop()
        if rec is None or id(rec) in seen:
            continue
        seen.add(id(rec))
        if rec.is_end:
            continue
        yield rec
        if rec.is_verify:
            stack.extend(rec.succ.values())
        else:
            stack.append(rec.next)


def hot_actions(engine, result: CompilationResult, top: int = 10) -> str:
    """Rank actions by fast-engine execution count.

    Requires ``engine.profile()`` to have been enabled before the run.
    Each row shows the action's replay count and its generated code, so
    the costliest dynamic basic blocks are immediately visible.
    """
    profile = engine.action_profile
    if profile is None:
        return "profiling was not enabled (call engine.profile() before run)"
    bodies = _action_bodies(result.simulator.source_fast)
    total = sum(profile.values()) or 1
    lines = [f"hot actions ({total:,} replays total)"]
    ranked = sorted(profile.items(), key=lambda kv: -kv[1])[:top]
    for num, count in ranked:
        body = bodies.get(num, ["<unknown>"])
        head = body[0] if body else ""
        lines.append(
            f"  action {num:>4}: {count:>10,} ({100 * count / total:5.1f}%)  {head.strip()}"
        )
        for extra in body[1:3]:
            lines.append(" " * 34 + extra.strip())
    return "\n".join(lines)


def trace_summary(engine, top: int = 5) -> str:
    """Report what the trace-compilation tier did for one engine.

    Shows the compile/invalidate counters, how much of the replay
    volume ran through compiled superblocks, and the hottest traces
    (by steps executed) with their chain length and side-exit counts.
    """
    manager = getattr(engine, "traces", None)
    if manager is None:
        return "trace compilation is disabled (trace_jit=False)"
    stats = manager.stats
    agg = manager.aggregate()
    run = engine.stats
    covered = 100 * agg["steps"] / max(1, run.steps_fast)
    lines = [
        "trace compilation",
        f"  traces:      {stats.traces_compiled} compiled "
        f"({len(manager.live_traces())} live, "
        f"{stats.traces_invalidated} invalidated, "
        f"{stats.compile_failures} failed)",
        f"  coverage:    {agg['steps']:,} of {run.steps_fast:,} fast steps "
        f"({covered:.1f}%) in {agg['calls']:,} trace calls",
        f"  actions:     {agg['actions']:,} replayed inline",
        f"  side exits:  {agg['side_exits']:,}",
    ]
    ranked = sorted(manager.traces, key=lambda t: -t.steps)[:top]
    for t in ranked:
        if t.steps == 0:
            break
        state = "live" if t.generation >= 0 else "dead"
        lines.append(
            f"    {state} trace: {len(t.entries)} entries, "
            f"{t.calls:,} calls, {t.steps:,} steps, "
            f"{t.side_exits} side exits"
        )
    return "\n".join(lines)


def _action_bodies(fast_source: str) -> dict[int, list[str]]:
    """Map action number -> generated body lines, parsed from the fast
    engine's source text."""
    bodies: dict[int, list[str]] = {}
    current: int | None = None
    for line in fast_source.splitlines():
        if line.startswith("def _a"):
            current = int(line[len("def _a"): line.index("(")])
            bodies[current] = []
        elif current is not None and line.startswith("    ") and "= _data" not in line:
            bodies[current].append(line)
        elif not line.strip():
            current = None
    return bodies


def _short(value, limit: int = 60) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[: limit - 3] + "..."
