"""Pretty-printer for Facile ASTs.

Renders parse trees (and the compiler's intermediate, flattened bodies)
back to canonical Facile source.  Round-tripping is tested:
``parse(pprint(parse(src)))`` produces a structurally identical tree,
which makes the printer usable for golden tests, debugging compiler
passes, and emitting generated descriptions (the ISA generator builds
text directly, but the examples show compiler phases with this).
"""

from __future__ import annotations

from . import ast_nodes as A

# Binary operator precedence (matches the parser), loosest first.
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}
_UNARY_PREC = 11
_POSTFIX_PREC = 12


def format_expr(e: A.Expr, parent_prec: int = 0) -> str:
    text, prec = _expr(e)
    if prec < parent_prec:
        return f"({text})"
    return text


def _expr(e: A.Expr) -> tuple[str, int]:
    if isinstance(e, A.IntLit):
        if e.value < 0:
            return f"(0 - {-e.value})", _POSTFIX_PREC
        return (hex(e.value) if e.value >= 4096 else str(e.value)), _POSTFIX_PREC
    if isinstance(e, A.BoolLit):
        return ("true" if e.value else "false"), _POSTFIX_PREC
    if isinstance(e, A.StrLit):
        return repr(e.value).replace("'", '"'), _POSTFIX_PREC
    if isinstance(e, A.Name):
        return e.ident, _POSTFIX_PREC
    if isinstance(e, A.Unary):
        return f"{e.op}{format_expr(e.operand, _UNARY_PREC)}", _UNARY_PREC
    if isinstance(e, A.Binary):
        prec = _PRECEDENCE[e.op]
        left = format_expr(e.left, prec)
        right = format_expr(e.right, prec + 1)  # left-associative
        return f"{left} {e.op} {right}", prec
    if isinstance(e, A.Index):
        return f"{format_expr(e.base, _POSTFIX_PREC)}[{format_expr(e.index)}]", _POSTFIX_PREC
    if isinstance(e, A.Call):
        args = ", ".join(format_expr(a) for a in e.args)
        return f"{e.func}({args})", _POSTFIX_PREC
    if isinstance(e, A.Attr):
        base = format_expr(e.base, _POSTFIX_PREC)
        if e.args or e.has_parens:
            args = ", ".join(format_expr(a) for a in e.args)
            return f"{base}?{e.name}({args})", _POSTFIX_PREC
        return f"{base}?{e.name}", _POSTFIX_PREC
    if isinstance(e, A.ArrayNew):
        return f"array({format_expr(e.size)}){{{format_expr(e.init)}}}", _POSTFIX_PREC
    if isinstance(e, A.QueueNew):
        return "queue()", _POSTFIX_PREC
    if isinstance(e, A.TupleLit):
        return "(" + ", ".join(format_expr(i) for i in e.items) + ")", _POSTFIX_PREC
    raise TypeError(f"cannot format {type(e).__name__}")


def _pat_expr(p: A.PatExpr) -> str:
    if isinstance(p, A.PatRel):
        value = f"{p.value:#x}" if p.value >= 16 else str(p.value)
        return f"{p.field_name}{p.op}{value}"
    if isinstance(p, A.PatRef):
        return p.name
    if isinstance(p, A.PatAnd):
        # || binds looser than &&, so or-children need parentheses.
        left = _pat_expr(p.left)
        right = _pat_expr(p.right)
        if isinstance(p.left, A.PatOr):
            left = f"({left})"
        if isinstance(p.right, A.PatOr):
            right = f"({right})"
        return f"{left} && {right}"
    if isinstance(p, A.PatOr):
        return f"{_pat_expr(p.left)} || {_pat_expr(p.right)}"
    raise TypeError(type(p).__name__)


class _Printer:
    def __init__(self) -> None:
        self.lines: list[str] = []
        self.indent = 0

    def line(self, text: str) -> None:
        self.lines.append("  " * self.indent + text)

    # -- statements --------------------------------------------------------

    def block(self, b: A.Block) -> None:
        for stmt in b.stmts:
            self.stmt(stmt)

    def braced(self, s: A.Stmt) -> None:
        self.line("{")
        self.indent += 1
        if isinstance(s, A.Block):
            self.block(s)
        else:
            self.stmt(s)
        self.indent -= 1
        self.line("}")

    def stmt(self, s: A.Stmt) -> None:
        if isinstance(s, A.Block):
            self.braced(s)
        elif isinstance(s, A.ValStmt):
            ann = f" : {s.type_name}" if s.type_name else ""
            init = f" = {format_expr(s.init)}" if s.init is not None else ""
            self.line(f"val {s.name}{ann}{init};")
        elif isinstance(s, A.Assign):
            self.line(f"{format_expr(s.target)} {s.op} {format_expr(s.value)};")
        elif isinstance(s, A.ExprStmt):
            self.line(f"{format_expr(s.expr)};")
        elif isinstance(s, A.If):
            self.line(f"if ({format_expr(s.cond)})")
            self.braced(s.then_body)
            if s.else_body is not None:
                self.line("else")
                self.braced(s.else_body)
        elif isinstance(s, A.Switch):
            self.line(f"switch ({format_expr(s.scrutinee)}) {{")
            self.indent += 1
            for case in s.cases:
                if case.kind == "pat":
                    self.line(f"pat {', '.join(case.pat_names)}:")
                elif case.kind == "default":
                    self.line("default:")
                else:
                    self.line(f"case {', '.join(format_expr(v) for v in case.values)}:")
                self.indent += 1
                self.block(case.body)
                self.indent -= 1
            self.indent -= 1
            self.line("}")
        elif isinstance(s, A.While):
            self.line(f"while ({format_expr(s.cond)})")
            self.braced(s.body)
        elif isinstance(s, A.DoWhile):
            self.line("do")
            self.braced(s.body)
            self.line(f"while ({format_expr(s.cond)});")
        elif isinstance(s, A.For):
            init = self._inline_stmt(s.init) if s.init is not None else ""
            cond = format_expr(s.cond) if s.cond is not None else ""
            step = self._inline_stmt(s.step) if s.step is not None else ""
            self.line(f"for ({init}; {cond}; {step})")
            self.braced(s.body)
        elif isinstance(s, A.Break):
            self.line("break;")
        elif isinstance(s, A.Continue):
            self.line("continue;")
        elif isinstance(s, A.Return):
            self.line(f"return {format_expr(s.value)};" if s.value is not None else "return;")
        else:
            raise TypeError(f"cannot format {type(s).__name__}")

    @staticmethod
    def _inline_stmt(s: A.Stmt) -> str:
        if isinstance(s, A.ValStmt):
            return f"val {s.name} = {format_expr(s.init)}"
        if isinstance(s, A.Assign):
            return f"{format_expr(s.target)} {s.op} {format_expr(s.value)}"
        if isinstance(s, A.ExprStmt):
            return format_expr(s.expr)
        raise TypeError(f"cannot inline {type(s).__name__}")

    # -- declarations --------------------------------------------------------

    def decl(self, d: A.Decl) -> None:
        if isinstance(d, A.TokenDecl):
            fields = ", ".join(f"{f.name} {f.lo}:{f.hi}" for f in d.fields)
            self.line(f"token {d.name}[{d.width}] fields {fields};")
        elif isinstance(d, A.PatDecl):
            self.line(f"pat {d.name} = {_pat_expr(d.expr)};")
        elif isinstance(d, A.SemDecl):
            self.line(f"sem {d.pat_name}")
            self.braced(d.body)
            self.lines[-1] += ";"
        elif isinstance(d, A.GlobalVal):
            ann = f" : {d.type_name}" if d.type_name else ""
            init = f" = {format_expr(d.init)}" if d.init is not None else ""
            self.line(f"val {d.name}{ann}{init};")
        elif isinstance(d, A.FunDecl):
            self.line(f"fun {d.name}({', '.join(d.params)})")
            self.braced(d.body)
        elif isinstance(d, A.ExternDecl):
            self.line(f"extern {d.name}({d.arity});")
        else:
            raise TypeError(f"cannot format {type(d).__name__}")


def format_program(program: A.Program) -> str:
    """Render a whole parsed program as canonical Facile source."""
    printer = _Printer()
    for d in program.decls:
        printer.decl(d)
    return "\n".join(printer.lines) + "\n"


def format_stmt(stmt: A.Stmt) -> str:
    """Render one statement (useful when inspecting compiler passes)."""
    printer = _Printer()
    printer.stmt(stmt)
    return "\n".join(printer.lines)
