"""Binding-time analysis (paper §4.1).

The analysis divides the flattened step function into *run-time static*
code — a function of ``main``'s arguments only, memoizable and skippable
by fast-forwarding — and *dynamic* code, which must execute on every
replay.

Lattice and rules follow the paper:

* two binding times, ``rt-static ⊑ dynamic``; merges are monotone joins,
  so the fixed point exists and is reached in a bounded number of
  iterations (paper's termination argument, §4.1);
* literals and ``main``'s arguments start rt-static; global variables
  start dynamic, **except** globals that are provably written before any
  read on every path ("local-like" — the paper describes labelling a
  global rt-static "from the point at which it is assigned" — our
  variable-level division admits exactly the globals for which that
  point precedes every use);
* target instructions are run-time static (paper footnote 3), so token
  fetch/decode inherit the binding time of the address;
* extern calls and target-memory reads are dynamic;
* ``e?verify`` is rt-static regardless of ``e`` — it is the paper's
  *dynamic result test* surfaced as an operator (§4.2);
* containers (arrays, queues) carry a single binding time: storing a
  dynamic value (or storing at a dynamic index) makes the whole
  container dynamic.

Control flow needs no special poisoning: a dynamic branch condition is
converted (by :func:`insert_dynamic_result_tests`) into an explicit
verify, which pins the executed path in the specialized action cache —
exactly the paper's mechanism for replaying only recorded control-flow
paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import ast_nodes as A
from .builtins import BUILTIN_FUNCS, PURE_ATTRS, QUEUE_ATTRS, STREAM_ATTRS
from .diagnostics import DiagnosticSink
from .inline import FlatMain
from .source import SemanticError, SourceSpan

RT_STATIC = 0
DYNAMIC = 1

# Value shapes, for key freezing/thawing and flush code generation.
SHAPE_INT = "int"
SHAPE_ARRAY = "array"
SHAPE_QUEUE = "queue"
SHAPE_TUPLE = "tuple"
SHAPE_UNKNOWN = "unknown"


@dataclass
class Division:
    """The result of binding-time analysis over one step function."""

    flat: FlatMain
    bt: dict[str, int] = field(default_factory=dict)
    shape: dict[str, str] = field(default_factory=dict)
    local_like_globals: set[str] = field(default_factory=set)
    assigned_globals: set[str] = field(default_factory=set)
    read_globals: set[str] = field(default_factory=set)
    sink: DiagnosticSink | None = None

    def _report(self, message: str, span: SourceSpan) -> None:
        """Escape hatch for malformed post-flattening trees.

        With a sink attached the problem is collected (and the caller
        recovers with a conservative answer); without one, raise as
        before.
        """
        if self.sink is not None:
            self.sink.emit("FAC030", message, span)
        else:
            raise SemanticError(message, span)

    def var_bt(self, name: str) -> int:
        return self.bt.get(name, DYNAMIC)

    def var_shape(self, name: str) -> str:
        return self.shape.get(name, SHAPE_UNKNOWN)

    def expr_bt(self, expr: A.Expr) -> int:
        """Binding time of a (pure, post-flattening) expression."""
        if isinstance(expr, (A.IntLit, A.BoolLit, A.StrLit, A.QueueNew)):
            return RT_STATIC
        if isinstance(expr, A.Name):
            return self.var_bt(expr.ident)
        if isinstance(expr, A.Unary):
            return self.expr_bt(expr.operand)
        if isinstance(expr, A.Binary):
            return max(self.expr_bt(expr.left), self.expr_bt(expr.right))
        if isinstance(expr, A.Index):
            return max(self.expr_bt(expr.base), self.expr_bt(expr.index))
        if isinstance(expr, A.ArrayNew):
            return max(self.expr_bt(expr.size), self.expr_bt(expr.init))
        if isinstance(expr, A.TupleLit):
            return max((self.expr_bt(i) for i in expr.items), default=RT_STATIC)
        if isinstance(expr, A.Call):
            sig = BUILTIN_FUNCS.get(expr.func)
            if sig is not None and sig.bt_class == "pure":
                return max((self.expr_bt(a) for a in expr.args), default=RT_STATIC)
            return DYNAMIC  # extern or dynamic builtin (lifted to stmt level)
        if isinstance(expr, A.Attr):
            if expr.name == "verify":
                return RT_STATIC
            if expr.name in PURE_ATTRS or expr.name in STREAM_ATTRS:
                base = self.expr_bt(expr.base)
                args = max((self.expr_bt(a) for a in expr.args), default=RT_STATIC)
                return max(base, args)
            if expr.name in QUEUE_ATTRS:
                return self.expr_bt(expr.base)
            self._report(f"attribute ?{expr.name} escaped flattening", expr.span)
            return DYNAMIC
        self._report(f"unhandled expression {type(expr).__name__}", expr.span)
        return DYNAMIC

    @property
    def flush_globals(self) -> list[str]:
        """Globals whose rt-static exit values must be flushed to slots.

        These are the paper's "extra statements at the end of the
        function to make their run-time static values dynamic for the
        next iteration" (§6.3 item 3).
        """
        return sorted(
            g
            for g in self.assigned_globals
            if self.var_bt(g) == RT_STATIC
        )


def analyze_binding_times(flat: FlatMain, sink: DiagnosticSink | None = None) -> Division:
    """Run the full binding-time analysis over a flattened step function."""
    division = Division(flat, sink=sink)
    global_names = set(flat.info.globals)
    division.assigned_globals = _assigned_globals(flat.body, global_names)
    division.read_globals = _read_globals(flat.body, global_names)
    division.local_like_globals = _local_like_globals(flat.body, global_names)

    # Initial division (paper §4.1): arguments rt-static, globals dynamic
    # unless provably safe.  Two exceptions to "globals are dynamic":
    # globals never assigned in the body are program constants (fixed
    # after setup, like the target text segment), and local-like globals
    # are written before any read on every path so their entry value is
    # irrelevant.
    for p in flat.params:
        division.bt[p] = RT_STATIC
    for g in global_names:
        if g not in division.assigned_globals:
            division.bt[g] = RT_STATIC  # program constant
        else:
            division.bt[g] = (
                RT_STATIC if g in division.local_like_globals else DYNAMIC
            )
    # Locals start rt-static; the fixpoint below raises them as needed.
    for name in flat.local_names:
        division.bt.setdefault(name, RT_STATIC)

    _fixpoint(flat, division)
    _infer_shapes(flat, division)
    return division


# -- fixpoint over variable binding times ------------------------------------


def _fixpoint(flat: FlatMain, division: Division) -> None:
    changed = True
    guard = 0
    while changed:
        changed = False
        guard += 1
        if guard > len(division.bt) + len(flat.local_names) + 8:
            raise AssertionError("binding-time analysis failed to converge")
        changed = _walk_stmt_bt(flat.body, division)


def _walk_stmt_bt(stmt: A.Stmt, division: Division) -> bool:
    changed = False

    def raise_var(name: str, bt: int) -> None:
        nonlocal changed
        old = division.bt.get(name, RT_STATIC)
        new = max(old, bt)
        if new != old:
            division.bt[name] = new
            changed = True

    if isinstance(stmt, A.Block):
        for s in stmt.stmts:
            changed |= _walk_stmt_bt(s, division)
    elif isinstance(stmt, A.ValStmt):
        if stmt.init is not None:
            raise_var(stmt.name, division.expr_bt(stmt.init))
        else:
            division.bt.setdefault(stmt.name, RT_STATIC)
    elif isinstance(stmt, A.Assign):
        rhs = division.expr_bt(stmt.value)
        target = stmt.target
        if isinstance(target, A.Name):
            raise_var(target.ident, rhs)
        elif isinstance(target, A.Index):
            if not isinstance(target.base, A.Name):
                division._report("nested element assignment unsupported", stmt.span)
            else:
                raise_var(target.base.ident, max(rhs, division.expr_bt(target.index)))
    elif isinstance(stmt, A.ExprStmt):
        expr = stmt.expr
        if isinstance(expr, A.Attr) and expr.name in QUEUE_ATTRS:
            arity, mutates = QUEUE_ATTRS[expr.name]
            del arity
            if mutates and expr.args and isinstance(expr.base, A.Name):
                raise_var(expr.base.ident, division.expr_bt(expr.args[0]))
    elif isinstance(stmt, A.If):
        changed |= _walk_stmt_bt(stmt.then_body, division)
        if stmt.else_body is not None:
            changed |= _walk_stmt_bt(stmt.else_body, division)
    elif isinstance(stmt, A.Switch):
        for case in stmt.cases:
            changed |= _walk_stmt_bt(case.body, division)
    elif isinstance(stmt, A.While):
        changed |= _walk_stmt_bt(stmt.body, division)
    elif isinstance(stmt, (A.Break, A.Continue, A.Return)):
        pass
    else:
        division._report(
            f"unexpected statement {type(stmt).__name__} after flattening", stmt.span
        )
    return changed


# -- global variable classification -------------------------------------------


def _assigned_globals(body: A.Block, global_names: set[str]) -> set[str]:
    assigned: set[str] = set()
    for node in _iter_nodes(body):
        if isinstance(node, A.Assign):
            target = node.target
            if isinstance(target, A.Name) and target.ident in global_names:
                assigned.add(target.ident)
            elif (
                isinstance(target, A.Index)
                and isinstance(target.base, A.Name)
                and target.base.ident in global_names
            ):
                assigned.add(target.base.ident)
        elif isinstance(node, A.ExprStmt):
            expr = node.expr
            if (
                isinstance(expr, A.Attr)
                and expr.name in QUEUE_ATTRS
                and QUEUE_ATTRS[expr.name][1]
                and isinstance(expr.base, A.Name)
                and expr.base.ident in global_names
            ):
                assigned.add(expr.base.ident)
    return assigned


def _read_globals(body: A.Block, global_names: set[str]) -> set[str]:
    reads: set[str] = set()

    def visit_expr(expr: A.Expr) -> None:
        for node in _iter_nodes(expr):
            if isinstance(node, A.Name) and node.ident in global_names:
                reads.add(node.ident)

    for node in _iter_nodes(body):
        if isinstance(node, A.Assign):
            visit_expr(node.value)
            if isinstance(node.target, A.Index):
                visit_expr(node.target.index)
                # Element assignment *reads* the container binding.
                base = node.target.base
                if isinstance(base, A.Name) and base.ident in global_names:
                    reads.add(base.ident)
        elif isinstance(node, A.ValStmt) and node.init is not None:
            visit_expr(node.init)
        elif isinstance(node, A.ExprStmt):
            visit_expr(node.expr)
        elif isinstance(node, (A.If, A.While)):
            visit_expr(node.cond)
        elif isinstance(node, A.Switch):
            visit_expr(node.scrutinee)
            for case in node.cases:
                for v in case.values:
                    visit_expr(v)
    return reads


def _local_like_globals(body: A.Block, global_names: set[str]) -> set[str]:
    """Globals definitely written before any read on every path.

    The walk is conservative: loops are assumed to run zero times for
    the purpose of definite assignment, branches intersect.  A read (or
    an element/queue update, which reads the current binding) of a
    global not yet definitely assigned disqualifies it, as does reaching
    exit without assignment.
    """
    disqualified: set[str] = set()

    def scan_expr(expr: A.Expr | None, assigned: set[str]) -> None:
        if expr is None:
            return
        for node in _iter_nodes(expr):
            if isinstance(node, A.Name) and node.ident in global_names:
                if node.ident not in assigned:
                    disqualified.add(node.ident)

    def scan_stmt(stmt: A.Stmt, assigned: set[str]) -> set[str]:
        if isinstance(stmt, A.Block):
            for s in stmt.stmts:
                assigned = scan_stmt(s, assigned)
            return assigned
        if isinstance(stmt, A.ValStmt):
            scan_expr(stmt.init, assigned)
            return assigned
        if isinstance(stmt, A.Assign):
            scan_expr(stmt.value, assigned)
            target = stmt.target
            if isinstance(target, A.Name) and target.ident in global_names:
                if stmt.op != "=":
                    scan_expr(target, assigned)  # compound assign reads too
                return assigned | {target.ident}
            if isinstance(target, A.Index):
                scan_expr(target.index, assigned)
                scan_expr(target.base, assigned)  # element write reads binding
            return assigned
        if isinstance(stmt, A.ExprStmt):
            scan_expr(stmt.expr, assigned)
            return assigned
        if isinstance(stmt, A.If):
            scan_expr(stmt.cond, assigned)
            a_then = scan_stmt(stmt.then_body, set(assigned))
            a_else = scan_stmt(stmt.else_body, set(assigned)) if stmt.else_body else set(assigned)
            return a_then & a_else
        if isinstance(stmt, A.Switch):
            scan_expr(stmt.scrutinee, assigned)
            outcomes = []
            has_default = False
            for case in stmt.cases:
                for v in case.values:
                    scan_expr(v, assigned)
                if case.kind == "default":
                    has_default = True
                outcomes.append(scan_stmt(case.body, set(assigned)))
            if outcomes and has_default:
                result = outcomes[0]
                for o in outcomes[1:]:
                    result &= o
                return result
            return assigned
        if isinstance(stmt, A.While):
            scan_expr(stmt.cond, assigned)
            scan_stmt(stmt.body, set(assigned))
            return assigned  # loop may run zero times
        if isinstance(stmt, (A.Break, A.Continue, A.Return)):
            return assigned
        raise SemanticError(f"unexpected statement {type(stmt).__name__}", stmt.span)

    exit_assigned = scan_stmt(body, set())
    candidates = _assigned_globals(body, global_names)
    # A global must be assigned before exit as well, otherwise its slot
    # value (dynamic) flows into the next step and the variable cannot
    # be treated as rt-static.
    return {
        g
        for g in candidates
        if g not in disqualified and g in exit_assigned
    }


# -- shape inference -----------------------------------------------------------


_SHAPE_ORDER = [SHAPE_UNKNOWN, SHAPE_INT, SHAPE_ARRAY, SHAPE_QUEUE, SHAPE_TUPLE]


def _join_shape(a: str, b: str) -> str:
    if a == b:
        return a
    if a == SHAPE_UNKNOWN:
        return b
    if b == SHAPE_UNKNOWN:
        return a
    # Conflicting shapes: treat as opaque int-like value.
    return SHAPE_INT


def _infer_shapes(flat: FlatMain, division: Division) -> None:
    shape = division.shape
    for g, decl in flat.info.globals.items():
        if decl.type_name == "stream":
            shape[g] = SHAPE_INT
        if decl.init is not None:
            if isinstance(decl.init, A.ArrayNew):
                shape[g] = SHAPE_ARRAY
            elif isinstance(decl.init, A.QueueNew):
                shape[g] = SHAPE_QUEUE
            elif isinstance(decl.init, A.TupleLit):
                shape[g] = SHAPE_TUPLE

    def expr_shape(expr: A.Expr) -> str:
        if isinstance(expr, A.ArrayNew):
            return SHAPE_ARRAY
        if isinstance(expr, A.QueueNew):
            return SHAPE_QUEUE
        if isinstance(expr, A.TupleLit):
            return SHAPE_TUPLE
        if isinstance(expr, A.Name):
            return shape.get(expr.ident, SHAPE_UNKNOWN)
        if isinstance(expr, A.Attr) and expr.name == "copy":
            return expr_shape(expr.base)
        if isinstance(expr, (A.IntLit, A.BoolLit)):
            return SHAPE_INT
        if isinstance(expr, (A.Binary, A.Unary, A.Index, A.Call)):
            return SHAPE_INT
        if isinstance(expr, A.Attr):
            return SHAPE_INT
        return SHAPE_UNKNOWN

    changed = True
    while changed:
        changed = False
        for node in _iter_nodes(flat.body):
            target_name: str | None = None
            rhs: A.Expr | None = None
            if isinstance(node, A.ValStmt) and node.init is not None:
                target_name, rhs = node.name, node.init
            elif isinstance(node, A.Assign) and isinstance(node.target, A.Name):
                target_name, rhs = node.target.ident, node.value
            elif isinstance(node, A.Assign) and isinstance(node.target, A.Index):
                base = node.target.base
                if isinstance(base, A.Name):
                    new = _join_shape(shape.get(base.ident, SHAPE_UNKNOWN), SHAPE_ARRAY)
                    if new != shape.get(base.ident, SHAPE_UNKNOWN):
                        shape[base.ident] = new
                        changed = True
                continue
            elif isinstance(node, A.Attr) and node.name in QUEUE_ATTRS:
                if isinstance(node.base, A.Name):
                    new = _join_shape(shape.get(node.base.ident, SHAPE_UNKNOWN), SHAPE_QUEUE)
                    if new != shape.get(node.base.ident, SHAPE_UNKNOWN):
                        shape[node.base.ident] = new
                        changed = True
                continue
            elif isinstance(node, A.Index) and isinstance(node.base, A.Name):
                new = _join_shape(shape.get(node.base.ident, SHAPE_UNKNOWN), SHAPE_ARRAY)
                if new != shape.get(node.base.ident, SHAPE_UNKNOWN):
                    shape[node.base.ident] = new
                    changed = True
                continue
            else:
                continue
            new = _join_shape(shape.get(target_name, SHAPE_UNKNOWN), expr_shape(rhs))
            if new != shape.get(target_name, SHAPE_UNKNOWN):
                shape[target_name] = new
                changed = True
    for name in list(division.bt):
        shape.setdefault(name, SHAPE_INT)


# -- dynamic result test insertion (paper §4.2) --------------------------------


def insert_dynamic_result_tests(flat: FlatMain, division: Division) -> int:
    """Wrap dynamic branch/switch conditions in explicit ``?verify``.

    Returns the number of tests inserted.  New temporaries are
    registered in the division as rt-static ints.
    """
    inserted = [0]
    counter = [len(flat.local_names) + 100000]

    def fresh() -> str:
        counter[0] += 1
        name = f"_dv__{counter[0]}"
        flat.local_names.append(name)
        division.bt[name] = RT_STATIC
        division.shape[name] = SHAPE_INT
        return name

    def rewrite_block(block: A.Block) -> None:
        out: list[A.Stmt] = []
        for stmt in block.stmts:
            out.extend(rewrite_stmt(stmt))
        block.stmts = out

    def rewrite_stmt(stmt: A.Stmt) -> list[A.Stmt]:
        if isinstance(stmt, A.Block):
            rewrite_block(stmt)
            return [stmt]
        if isinstance(stmt, A.If):
            rewrite_block(_ensure_block(stmt, "then_body"))
            if stmt.else_body is not None:
                rewrite_block(_ensure_block(stmt, "else_body"))
            if division.expr_bt(stmt.cond) == DYNAMIC:
                inserted[0] += 1
                tmp = fresh()
                test = A.ValStmt(
                    tmp,
                    A.Attr(stmt.cond, "verify", [], span=stmt.span),
                    span=stmt.span,
                )
                stmt.cond = A.Name(tmp, span=stmt.span)
                return [test, stmt]
            return [stmt]
        if isinstance(stmt, A.Switch):
            for case in stmt.cases:
                rewrite_block(case.body)
            if division.expr_bt(stmt.scrutinee) == DYNAMIC:
                inserted[0] += 1
                tmp = fresh()
                test = A.ValStmt(
                    tmp,
                    A.Attr(stmt.scrutinee, "verify", [], span=stmt.span),
                    span=stmt.span,
                )
                stmt.scrutinee = A.Name(tmp, span=stmt.span)
                return [test, stmt]
            return [stmt]
        if isinstance(stmt, A.While):
            rewrite_block(_ensure_block(stmt, "body"))
            if division.expr_bt(stmt.cond) == DYNAMIC:
                # while (d) body  =>  while (true) { val t = d?verify;
                #                     if (!t) break; body }
                inserted[0] += 1
                tmp = fresh()
                test = A.ValStmt(
                    tmp,
                    A.Attr(stmt.cond, "verify", [], span=stmt.span),
                    span=stmt.span,
                )
                guard = A.If(
                    A.Unary("!", A.Name(tmp, span=stmt.span), span=stmt.span),
                    A.Block([A.Break(span=stmt.span)]),
                    None,
                    span=stmt.span,
                )
                body = stmt.body
                assert isinstance(body, A.Block)
                stmt.body = A.Block([test, guard] + body.stmts, span=stmt.span)
                stmt.cond = A.BoolLit(True, span=stmt.span)
            return [stmt]
        return [stmt]

    rewrite_block(flat.body)
    return inserted[0]


def _ensure_block(stmt: A.Stmt, attr: str) -> A.Block:
    value = getattr(stmt, attr)
    if not isinstance(value, A.Block):
        value = A.Block([value], span=value.span)
        setattr(stmt, attr, value)
    return value


def _iter_nodes(node: A.Node):
    yield node
    for value in vars(node).values():
        if isinstance(value, A.Node):
            yield from _iter_nodes(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, A.Node):
                    yield from _iter_nodes(item)
