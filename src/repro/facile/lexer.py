"""Tokenizer for the Facile language.

The lexical grammar follows the paper's examples (Figures 4-7): C-like
operators, `//` line comments, `/* */` block comments, decimal and
hexadecimal integers, identifiers that may contain `.` is *not* allowed
(dots appear only in the paper's benchmark names), and the attribute
sigil `?` used by expressions such as ``imm?sext(32)`` and ``PC?exec()``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .source import LexError, SourceBuffer, SourceSpan


class TokKind(enum.Enum):
    IDENT = "ident"
    INT = "int"
    STRING = "string"
    PUNCT = "punct"
    KEYWORD = "keyword"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "token",
        "fields",
        "pat",
        "sem",
        "val",
        "fun",
        "extern",
        "if",
        "else",
        "switch",
        "case",
        "default",
        "while",
        "do",
        "for",
        "break",
        "continue",
        "return",
        "array",
        "queue",
        "true",
        "false",
    }
)

# Multi-character punctuation, longest first so maximal munch works.
_PUNCTS = [
    "<<=",
    ">>=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "<<",
    ">>",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ",",
    ";",
    ":",
    "?",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
    "&",
    "|",
    "^",
    "~",
    "!",
]


@dataclass(frozen=True)
class Token:
    kind: TokKind
    text: str
    value: int | str | None
    span: SourceSpan

    def __repr__(self) -> str:
        return f"Token({self.kind.value}, {self.text!r})"


def tokenize(source: SourceBuffer) -> list[Token]:
    """Tokenize an entire buffer, returning a list ending with an EOF token."""
    text = source.text
    n = len(text)
    pos = 0
    out: list[Token] = []

    def err(msg: str, start: int, end: int) -> LexError:
        return LexError(msg, source.span(start, end))

    while pos < n:
        ch = text[pos]
        if ch in " \t\r\n":
            pos += 1
            continue
        if text.startswith("//", pos):
            nl = text.find("\n", pos)
            pos = n if nl < 0 else nl + 1
            continue
        if text.startswith("/*", pos):
            close = text.find("*/", pos + 2)
            if close < 0:
                raise err("unterminated block comment", pos, n)
            pos = close + 2
            continue
        start = pos
        if ch.isalpha() or ch == "_":
            while pos < n and (text[pos].isalnum() or text[pos] == "_"):
                pos += 1
            word = text[start:pos]
            kind = TokKind.KEYWORD if word in KEYWORDS else TokKind.IDENT
            out.append(Token(kind, word, word, source.span(start, pos)))
            continue
        if ch.isdigit():
            if text.startswith("0x", pos) or text.startswith("0X", pos):
                pos += 2
                digits = pos
                while pos < n and text[pos] in "0123456789abcdefABCDEF":
                    pos += 1
                if pos == digits:
                    raise err("hexadecimal literal has no digits", start, pos)
                value = int(text[start:pos], 16)
            else:
                while pos < n and text[pos].isdigit():
                    pos += 1
                value = int(text[start:pos])
            if pos < n and (text[pos].isalpha() or text[pos] == "_"):
                raise err("identifier characters after number", start, pos + 1)
            out.append(Token(TokKind.INT, text[start:pos], value, source.span(start, pos)))
            continue
        if ch == '"':
            pos += 1
            chunk: list[str] = []
            while pos < n and text[pos] != '"':
                if text[pos] == "\\" and pos + 1 < n:
                    esc = text[pos + 1]
                    chunk.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(esc, esc))
                    pos += 2
                else:
                    chunk.append(text[pos])
                    pos += 1
            if pos >= n:
                raise err("unterminated string literal", start, n)
            pos += 1
            out.append(Token(TokKind.STRING, text[start:pos], "".join(chunk), source.span(start, pos)))
            continue
        for punct in _PUNCTS:
            if text.startswith(punct, pos):
                pos += len(punct)
                out.append(Token(TokKind.PUNCT, punct, punct, source.span(start, pos)))
                break
        else:
            raise err(f"unexpected character {ch!r}", start, start + 1)

    out.append(Token(TokKind.EOF, "", None, source.span(n, n)))
    return out
