"""Abstract syntax tree for the Facile language.

Nodes are plain dataclasses.  Every node carries a :class:`SourceSpan` so
later phases (semantic analysis, binding-time analysis) can report
precise diagnostics.  The tree is deliberately small: Facile's power
comes from its restrictions (no pointers, no recursion), not its size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .source import SourceSpan, UNKNOWN_SPAN


@dataclass
class Node:
    span: SourceSpan = field(default=UNKNOWN_SPAN, kw_only=True, repr=False, compare=False)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr(Node):
    pass


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class BoolLit(Expr):
    value: bool


@dataclass
class StrLit(Expr):
    value: str


@dataclass
class Name(Expr):
    ident: str


@dataclass
class Unary(Expr):
    op: str
    operand: Expr


@dataclass
class Binary(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass
class Index(Expr):
    base: Expr
    index: Expr


@dataclass
class Call(Expr):
    """A call ``name(args...)`` to a Facile fun, an extern, or a builtin."""

    func: str
    args: list[Expr]


@dataclass
class Attr(Expr):
    """Attribute application ``base?name(args...)``.

    The paper uses this form for bit manipulation (``imm?sext(32)``),
    decode-and-dispatch (``PC?exec()``), queue operations, and our
    explicit dynamic-result pin (``e?verify``).
    """

    base: Expr
    name: str
    args: list[Expr]
    has_parens: bool = True


@dataclass
class ArrayNew(Expr):
    """``array(size){init}`` — a fresh array of `size` copies of `init`."""

    size: Expr
    init: Expr


@dataclass
class QueueNew(Expr):
    """``queue()`` — a fresh empty double-ended queue."""


@dataclass
class TupleLit(Expr):
    """``(a, b, c)`` — used to assign multi-argument keys to ``init``."""

    items: list[Expr]


# ---------------------------------------------------------------------------
# Pattern expressions (instruction encodings)
# ---------------------------------------------------------------------------


@dataclass
class PatExpr(Node):
    pass


@dataclass
class PatRel(PatExpr):
    """A constraint on a token field, e.g. ``op == 0x00``."""

    field_name: str
    op: str  # one of == != < <= > >=
    value: int


@dataclass
class PatRef(PatExpr):
    """Reference to a previously declared pattern name."""

    name: str


@dataclass
class PatAnd(PatExpr):
    left: PatExpr
    right: PatExpr


@dataclass
class PatOr(PatExpr):
    left: PatExpr
    right: PatExpr


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class Block(Stmt):
    stmts: list[Stmt]


@dataclass
class ValStmt(Stmt):
    """``val x = e;`` — declaration of a (mutable) variable."""

    name: str
    init: Expr | None
    type_name: str | None = None


@dataclass
class Assign(Stmt):
    """``lvalue op= expr;`` where lvalue is a Name or an Index."""

    target: Expr
    op: str  # "=", "+=", ...
    value: Expr


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class If(Stmt):
    cond: Expr
    then_body: Stmt
    else_body: Stmt | None


@dataclass
class Case(Node):
    """One arm of a switch.

    ``kind`` is "int" (case constants in `values`), "pat" (pattern names
    in `pat_names`), or "default".
    """

    kind: str
    values: list[Expr]
    pat_names: list[str]
    body: Block


@dataclass
class Switch(Stmt):
    scrutinee: Expr
    cases: list[Case]


@dataclass
class While(Stmt):
    cond: Expr
    body: Stmt


@dataclass
class DoWhile(Stmt):
    body: Stmt
    cond: Expr


@dataclass
class For(Stmt):
    init: Stmt | None
    cond: Expr | None
    step: Stmt | None
    body: Stmt


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Return(Stmt):
    value: Expr | None


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class Decl(Node):
    pass


@dataclass
class FieldDecl(Node):
    name: str
    lo: int
    hi: int

    @property
    def width(self) -> int:
        return self.hi - self.lo + 1


@dataclass
class TokenDecl(Decl):
    name: str
    width: int
    fields: list[FieldDecl]


@dataclass
class PatDecl(Decl):
    name: str
    expr: PatExpr


@dataclass
class SemDecl(Decl):
    pat_name: str
    body: Block


@dataclass
class GlobalVal(Decl):
    name: str
    init: Expr | None
    type_name: str | None = None


@dataclass
class FunDecl(Decl):
    name: str
    params: list[str]
    body: Block


@dataclass
class ExternDecl(Decl):
    name: str
    arity: int


@dataclass
class Program(Node):
    decls: list[Decl]

    def functions(self) -> dict[str, FunDecl]:
        return {d.name: d for d in self.decls if isinstance(d, FunDecl)}

    def globals(self) -> dict[str, GlobalVal]:
        return {d.name: d for d in self.decls if isinstance(d, GlobalVal)}
