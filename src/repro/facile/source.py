"""Source buffers, positions, and diagnostics for the Facile compiler.

Every front-end error raised by the compiler is a :class:`FacileError`
carrying a :class:`SourceSpan`, so callers (tests, the CLI examples) can
render precise, human-readable messages.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceSpan:
    """A half-open [start, end) range of characters in a source buffer."""

    filename: str
    line: int
    column: int
    start: int
    end: int

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"

    @property
    def is_known(self) -> bool:
        return self.line > 0

    def caret_block(self, buffer: "SourceBuffer", gutter_width: int = 5) -> str:
        """Render the offending source line with a caret underline:

        ``   12 | val x = y + 1;``
        ``      |         ^^^^^``

        Returns the empty string for unknown spans or spans that do not
        fall inside `buffer` (a stale span from another file).
        """
        if not self.is_known or buffer is None:
            return ""
        if self.line > len(buffer._line_starts) or self.start > len(buffer.text):
            return ""
        text = buffer.line_text(self.line)
        col = max(1, self.column)
        # Clip the underline to the remainder of the line; always show
        # at least one caret, even for zero-width spans (EOF errors).
        width = max(1, min(self.end - self.start, len(text) - col + 1))
        gutter = f"{self.line:>{gutter_width}} | "
        blank = " " * gutter_width + " | "
        underline = " " * (col - 1) + "^" * width
        return f"{gutter}{text}\n{blank}{underline}"


UNKNOWN_SPAN = SourceSpan("<unknown>", 0, 0, 0, 0)


class FacileError(Exception):
    """Base class for all errors reported by the Facile compiler."""

    #: Diagnostic code used when this exception is converted into a
    #: :class:`repro.facile.diagnostics.Diagnostic` (see that module's
    #: code registry).
    code = "FAC030"

    def __init__(self, message: str, span: SourceSpan = UNKNOWN_SPAN):
        super().__init__(f"{span}: {message}")
        self.message = message
        self.span = span


class LexError(FacileError):
    """Raised for malformed lexemes (bad numbers, stray characters)."""

    code = "FAC001"


class ParseError(FacileError):
    """Raised when the token stream does not match the grammar."""

    code = "FAC002"


class SemanticError(FacileError):
    """Raised by semantic analysis (unknown names, type errors, recursion)."""


class SourceBuffer:
    """A named source text with line/column bookkeeping."""

    def __init__(self, text: str, filename: str = "<facile>"):
        self.text = text
        self.filename = filename
        self._line_starts = [0]
        for i, ch in enumerate(text):
            if ch == "\n":
                self._line_starts.append(i + 1)

    def span(self, start: int, end: int) -> SourceSpan:
        """Build a span for text[start:end], computing line/column lazily."""
        line = self._line_of(start)
        column = start - self._line_starts[line - 1] + 1
        return SourceSpan(self.filename, line, column, start, end)

    def _line_of(self, offset: int) -> int:
        lo, hi = 0, len(self._line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._line_starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1

    def line_text(self, line: int) -> str:
        start = self._line_starts[line - 1]
        end = self.text.find("\n", start)
        if end < 0:
            end = len(self.text)
        return self.text[start:end]
