"""Source buffers, positions, and diagnostics for the Facile compiler.

Every front-end error raised by the compiler is a :class:`FacileError`
carrying a :class:`SourceSpan`, so callers (tests, the CLI examples) can
render precise, human-readable messages.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceSpan:
    """A half-open [start, end) range of characters in a source buffer."""

    filename: str
    line: int
    column: int
    start: int
    end: int

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


UNKNOWN_SPAN = SourceSpan("<unknown>", 0, 0, 0, 0)


class FacileError(Exception):
    """Base class for all errors reported by the Facile compiler."""

    def __init__(self, message: str, span: SourceSpan = UNKNOWN_SPAN):
        super().__init__(f"{span}: {message}")
        self.message = message
        self.span = span


class LexError(FacileError):
    """Raised for malformed lexemes (bad numbers, stray characters)."""


class ParseError(FacileError):
    """Raised when the token stream does not match the grammar."""


class SemanticError(FacileError):
    """Raised by semantic analysis (unknown names, type errors, recursion)."""


class SourceBuffer:
    """A named source text with line/column bookkeeping."""

    def __init__(self, text: str, filename: str = "<facile>"):
        self.text = text
        self.filename = filename
        self._line_starts = [0]
        for i, ch in enumerate(text):
            if ch == "\n":
                self._line_starts.append(i + 1)

    def span(self, start: int, end: int) -> SourceSpan:
        """Build a span for text[start:end], computing line/column lazily."""
        line = self._line_of(start)
        column = start - self._line_starts[line - 1] + 1
        return SourceSpan(self.filename, line, column, start, end)

    def _line_of(self, offset: int) -> int:
        lo, hi = 0, len(self._line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._line_starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1

    def line_text(self, line: int) -> str:
        start = self._line_starts[line - 1]
        end = self.text.find("\n", start)
        if end < 0:
            end = len(self.text)
        return self.text[start:end]
