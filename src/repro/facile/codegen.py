"""Code generation: slow/complete, fast/residual, and plain simulators.

The paper's compiler generates C for two coupled simulators (§4.3); we
generate Python with the same structure:

* the **slow simulator** contains all source code plus memoization
  calls: ``_M.action(n, data)`` before each dynamic statement,
  placeholder data capture, ``if not _M.recover:`` guards so dynamic
  statements are skipped during miss recovery, and
  ``begin_verify``/``pop_verify``/``note_verify`` around dynamic result
  tests — a direct transliteration of Figure 10;
* the **fast simulator** is a table of per-action functions (the dynamic
  basic blocks of Figure 8/9): each receives the shared dynamic state
  and its recorded placeholder data; verify actions return the computed
  value so the driver can select the successor chain;
* the **plain simulator** (used for the "without memoization" bars of
  Figures 11/12) is the same source with no fast-forwarding machinery
  at all.

Variable placement follows the binding-time division: rt-static
variables are Python locals of the slow function (recomputed during
recovery); every dynamic variable lives in the shared slot vector
``ctx.S`` so values flow between the two engines — the paper's
"dynamic data to be passed from the fast simulator to the slow
simulator in global variables, not a stack" (§3.2).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from . import ast_nodes as A
from .bta import (
    DYNAMIC,
    RT_STATIC,
    SHAPE_ARRAY,
    SHAPE_INT,
    SHAPE_QUEUE,
    SHAPE_TUPLE,
    SHAPE_UNKNOWN,
    Division,
)
from .builtins import BUILTIN_FUNCS, PURE_ATTRS, QUEUE_ATTRS, RUNTIME_HELPERS, STREAM_ATTRS
from .patterns import generate_decoder_source
from .runtime import CompiledSimulator, freeze
from .source import SemanticError, SourceSpan, UNKNOWN_SPAN

_BINOP_PY = {
    "+": "+",
    "-": "-",
    "*": "*",
    "&": "&",
    "|": "|",
    "^": "^",
    "<<": "<<",
    ">>": ">>",
    "==": "==",
    "!=": "!=",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
}


def idiv(a: int, b: int) -> int:
    """C-style truncating integer division."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def imod(a: int, b: int) -> int:
    """C-style remainder: sign follows the dividend."""
    return a - idiv(a, b) * b


@dataclass
class _Action:
    num: int
    is_verify: bool
    body_lines: list[str] = field(default_factory=list)
    n_placeholders: int = 0
    # Span of the first source statement merged into this action, so
    # lowering diagnostics (Unlowerable, FAC4xx) can point at source.
    span: SourceSpan = UNKNOWN_SPAN


class _Emitter:
    def __init__(self) -> None:
        self.lines: list[str] = []
        self.indent = 0

    def line(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class CodeGenerator:
    """Generates all three engine variants for one analyzed simulator."""

    def __init__(
        self,
        division: Division,
        name: str = "simulator",
        flush_policy: str = "all",
        keep_flushed: tuple[str, ...] = ("init",),
        coalesce: bool = True,
    ):
        """``flush_policy`` selects how rt-static globals are flushed to
        their slots at the end of each step:

        * ``"all"`` — flush every assigned rt-static global (the paper's
          base compiler behaviour, §6.3 item 3 calls out its cost);
        * ``"live"`` — flush only ``keep_flushed`` (the key variable
          ``init`` plus any globals the harness wants to observe): the
          liveness optimization the paper proposes, valid because
          local-like globals are always rewritten before being read.
        """
        if flush_policy not in ("all", "live"):
            raise ValueError(f"unknown flush policy {flush_policy!r}")
        self.division = division
        self.flat = division.flat
        self.info = division.flat.info
        self.name = name
        self.flush_policy = flush_policy
        self.keep_flushed = keep_flushed
        self.coalesce = coalesce
        self.actions: list[_Action] = []
        self.slots: dict[str, int] = {}
        self._tmp_counter = 0
        # Coalescing state: consecutive dynamic statements merge into one
        # action (the paper's Figure 8: "In a richer simulator, a basic
        # block would contain multiple statements").  Placeholder
        # computations are emitted eagerly at each statement's position
        # (they are rt-static), so rt-static bookkeeping may interleave
        # without breaking a merge; control flow, verifies, and block
        # boundaries flush the pending action.
        self._pending: _Action | None = None
        self._pending_ph_count = 0
        self._pending_slow: list[str] = []
        self._allocate_slots()

    # -- slot allocation ----------------------------------------------------

    def _allocate_slots(self) -> None:
        # All globals get slots (dynamic state, flushed rt-static state,
        # and program constants initialized once by setup()).
        for g in self.info.globals:
            self.slots[g] = len(self.slots)
        # Dynamic locals are shared between engines via slots too.
        for name in self.flat.local_names:
            if self.division.var_bt(name) == DYNAMIC:
                self.slots[name] = len(self.slots)

    @property
    def slot_count(self) -> int:
        return len(self.slots)

    def _fresh_tmp(self, base: str = "_c") -> str:
        self._tmp_counter += 1
        return f"{base}{self._tmp_counter}"

    # -- variable classification ---------------------------------------------

    def _is_global(self, name: str) -> bool:
        return name in self.info.globals

    def _is_const_global(self, name: str) -> bool:
        return self._is_global(name) and name not in self.division.assigned_globals

    def _var_ref(self, name: str, plain: bool) -> str:
        """Reference to a variable in slow/plain engine code."""
        if plain:
            if self._is_global(name):
                return f"_S[{self.slots[name]}]"
            return name
        if self._is_global(name):
            if self._is_const_global(name) or self.division.var_bt(name) == DYNAMIC:
                return f"_S[{self.slots[name]}]"
            return f"g_{name}"  # local-like rt-static global: a Python local
        if self.division.var_bt(name) == DYNAMIC:
            return f"_S[{self.slots[name]}]"
        return name

    # -- pure expression emission (slow/plain engines) -------------------------

    def _expr(self, e: A.Expr, plain: bool) -> str:
        if isinstance(e, A.IntLit):
            return repr(e.value)
        if isinstance(e, A.BoolLit):
            return "True" if e.value else "False"
        if isinstance(e, A.StrLit):
            return repr(e.value)
        if isinstance(e, A.Name):
            return self._var_ref(e.ident, plain)
        if isinstance(e, A.Unary):
            operand = self._expr(e.operand, plain)
            if e.op == "!":
                return f"(0 if {operand} else 1)"
            return f"({e.op}{operand})"
        if isinstance(e, A.Binary):
            left = self._expr(e.left, plain)
            right = self._expr(e.right, plain)
            if e.op == "&&":
                return f"(1 if ({left} and {right}) else 0)"
            if e.op == "||":
                return f"(1 if ({left} or {right}) else 0)"
            if e.op == "/":
                return f"idiv({left}, {right})"
            if e.op == "%":
                return f"imod({left}, {right})"
            return f"({left} {_BINOP_PY[e.op]} {right})"
        if isinstance(e, A.Index):
            return f"{self._expr(e.base, plain)}[{self._expr(e.index, plain)}]"
        if isinstance(e, A.ArrayNew):
            return f"([{self._expr(e.init, plain)}] * {self._expr(e.size, plain)})"
        if isinstance(e, A.QueueNew):
            return "_deque()"
        if isinstance(e, A.TupleLit):
            items = ", ".join(self._expr(i, plain) for i in e.items)
            return f"({items},)" if e.items else "()"
        if isinstance(e, A.Call):
            return self._call_expr(e, plain)
        if isinstance(e, A.Attr):
            return self._attr_expr(e, plain)
        raise SemanticError(f"cannot emit {type(e).__name__}", e.span)

    def _call_expr(self, e: A.Call, plain: bool) -> str:
        args = [self._expr(a, plain) for a in e.args]
        name = e.func
        if name in self.info.externs:
            joined = ", ".join([repr(name)] + args)
            return f"_ctx.call_extern({joined})"
        sig = BUILTIN_FUNCS.get(name)
        if sig is None:
            raise SemanticError(f"unknown call {name!r} at codegen", e.span)
        if name == "select":
            return f"(({args[1]}) if ({args[0]}) else ({args[2]}))"
        if sig.bt_class == "pure":
            return f"{name}({', '.join(args)})"
        return self._dyn_builtin(name, args, e)

    def _attr_expr(self, e: A.Attr, plain: bool) -> str:
        base = self._expr(e.base, plain)
        args = [self._expr(a, plain) for a in e.args]
        name = e.name
        if name in PURE_ATTRS:
            if name == "sext":
                return f"sext({base}, {args[0]})"
            if name == "zext":
                return f"zext({base}, {args[0]})"
            if name == "u32":
                return f"({base} & 0xFFFFFFFF)"
            if name == "s32":
                return f"s32({base})"
            if name == "bit":
                return f"(({base} >> {args[0]}) & 1)"
            if name == "bits":
                return f"bits({base}, {args[0]}, {args[1]})"
        if name in STREAM_ATTRS:
            if name == "word":
                return f"_ctx.text_word({base}, {self._token_bytes()})"
            if name == "decode":
                return f"_decode_at(_ctx, {base})"
        if name in QUEUE_ATTRS:
            queue_map = {
                "push_back": f"{base}.append({args[0] if args else ''})",
                "push_front": f"{base}.appendleft({args[0] if args else ''})",
                "pop_back": f"{base}.pop()",
                "pop_front": f"{base}.popleft()",
                "front": f"{base}[0]",
                "back": f"{base}[-1]",
                "size": f"len({base})",
                "empty": f"(0 if {base} else 1)",
                "clear": f"{base}.clear()",
                "copy": f"_copy_val({base})",
            }
            return queue_map[name]
        if name == "verify":
            # Verify on an rt-static value degenerates to the value; the
            # statement emitter handles the dynamic case before reaching
            # here (plain build also lands here).
            return base
        raise SemanticError(f"cannot emit attribute ?{name}", e.span)

    def _token_bytes(self) -> int:
        widths = list(self.info.patterns.token_widths.values())
        if not widths:
            return 4
        return max(1, widths[0] // 8)

    # -- dynamic expression emission with placeholder extraction ----------------

    def _dyn_expr(self, e: A.Expr, placeholders: list[tuple[str, str]]) -> str:
        """Emit a dynamic expression for action bodies.

        Maximal rt-static subtrees become placeholders: entries of
        ``placeholders`` are ``(name, slow_source)`` pairs.  The returned
        source refers to placeholders by name; the slow engine computes
        them before recording, the fast engine unpacks them from the
        action's recorded data (Figure 8's ``s`` placeholders).
        """
        if self.division.expr_bt(e) == RT_STATIC:
            if isinstance(e, (A.IntLit, A.BoolLit)):
                return self._expr(e, plain=False)
            if isinstance(e, A.Name) and self._is_const_global(e.ident):
                # Program constants live in identical slots in both
                # engines: no need to record them.
                return f"_S[{self.slots[e.ident]}]"
            name = f"_ph{self._ph_base + len(placeholders)}"
            shape = self._expr_shape(e)
            src = self._expr(e, plain=False)
            if shape in (SHAPE_ARRAY, SHAPE_QUEUE, SHAPE_TUPLE, SHAPE_UNKNOWN):
                src = f"_freeze({src})"
            placeholders.append((name, src))
            return name
        if isinstance(e, A.Name):
            return self._var_ref(e.ident, plain=False)
        if isinstance(e, A.Unary):
            operand = self._dyn_expr(e.operand, placeholders)
            if e.op == "!":
                return f"(0 if {operand} else 1)"
            return f"({e.op}{operand})"
        if isinstance(e, A.Binary):
            left = self._dyn_expr(e.left, placeholders)
            right = self._dyn_expr(e.right, placeholders)
            if e.op == "&&":
                return f"(1 if ({left} and {right}) else 0)"
            if e.op == "||":
                return f"(1 if ({left} or {right}) else 0)"
            if e.op == "/":
                return f"idiv({left}, {right})"
            if e.op == "%":
                return f"imod({left}, {right})"
            return f"({left} {_BINOP_PY[e.op]} {right})"
        if isinstance(e, A.Index):
            return f"{self._dyn_expr(e.base, placeholders)}[{self._dyn_expr(e.index, placeholders)}]"
        if isinstance(e, A.ArrayNew):
            return f"([{self._dyn_expr(e.init, placeholders)}] * {self._dyn_expr(e.size, placeholders)})"
        if isinstance(e, A.TupleLit):
            items = ", ".join(self._dyn_expr(i, placeholders) for i in e.items)
            return f"({items},)" if e.items else "()"
        if isinstance(e, A.Call):
            name = e.func
            args = [self._dyn_expr(a, placeholders) for a in e.args]
            if name in self.info.externs:
                joined = ", ".join([repr(name)] + args)
                return f"_ctx.call_extern({joined})"
            if name == "select":
                return f"(({args[1]}) if ({args[0]}) else ({args[2]}))"
            sig = BUILTIN_FUNCS.get(name)
            if sig is not None and sig.bt_class == "pure":
                return f"{name}({', '.join(args)})"
            return self._dyn_builtin(name, args, e)
        if isinstance(e, A.Attr):
            return self._dyn_attr(e, placeholders)
        raise SemanticError(f"cannot emit dynamic {type(e).__name__}", e.span)

    def _dyn_builtin(self, name: str, args: list[str], e: A.Expr) -> str:
        table = {
            "mem_read": "_ctx.mem.read32",
            "mem_read8": "_ctx.mem.read8",
            "mem_read16": "_ctx.mem.read16",
            "mem_write": "_ctx.mem.write32",
            "mem_write8": "_ctx.mem.write8",
            "mem_write16": "_ctx.mem.write16",
            "stat_retire": "_ctx.stat_retire",
            "stat_cycle": "_ctx.stat_cycle",
            "stat_count": "_ctx.stat_count",
            "halt": "_ctx.halt",
            "log_value": "_ctx.log_value",
        }
        if name not in table:
            raise SemanticError(f"cannot emit dynamic builtin {name!r}", e.span)
        return f"{table[name]}({', '.join(args)})"

    def _dyn_attr(self, e: A.Attr, placeholders: list[tuple[str, str]]) -> str:
        base = self._dyn_expr(e.base, placeholders)
        args = [self._dyn_expr(a, placeholders) for a in e.args]
        name = e.name
        if name in PURE_ATTRS:
            if name == "sext":
                return f"sext({base}, {args[0]})"
            if name == "zext":
                return f"zext({base}, {args[0]})"
            if name == "u32":
                return f"({base} & 0xFFFFFFFF)"
            if name == "s32":
                return f"s32({base})"
            if name == "bit":
                return f"(({base} >> {args[0]}) & 1)"
            if name == "bits":
                return f"bits({base}, {args[0]}, {args[1]})"
        if name in STREAM_ATTRS:
            if name == "word":
                return f"_ctx.text_word({base}, {self._token_bytes()})"
            if name == "decode":
                return f"_decode_at(_ctx, {base})"
        if name in QUEUE_ATTRS:
            queue_map = {
                "push_back": f"{base}.append({args[0] if args else ''})",
                "push_front": f"{base}.appendleft({args[0] if args else ''})",
                "pop_back": f"{base}.pop()",
                "pop_front": f"{base}.popleft()",
                "front": f"{base}[0]",
                "back": f"{base}[-1]",
                "size": f"len({base})",
                "empty": f"(0 if {base} else 1)",
                "clear": f"{base}.clear()",
                "copy": f"_copy_val({base})",
            }
            return queue_map[name]
        raise SemanticError(f"cannot emit dynamic attribute ?{name}", e.span)

    def _expr_shape(self, e: A.Expr) -> str:
        if isinstance(e, A.Name):
            return self.division.var_shape(e.ident)
        if isinstance(e, A.ArrayNew):
            return SHAPE_ARRAY
        if isinstance(e, A.QueueNew):
            return SHAPE_QUEUE
        if isinstance(e, A.TupleLit):
            return SHAPE_TUPLE
        if isinstance(e, A.Attr) and e.name == "copy":
            return self._expr_shape(e.base)
        return SHAPE_INT

    # -- slow (memoized) engine -------------------------------------------------

    def emit_slow(self) -> str:
        em = _Emitter()
        params = ", ".join(self.flat.params)
        prefix = f", {params}" if params else ""
        em.line(f"def slow_main(_ctx, _M{prefix}):")
        em.indent += 1
        em.line("_S = _ctx.S")
        self._emit_block(self.flat.body, em)
        self._emit_flush(em)
        self._flush_pending(em)
        em.line("return")
        return em.source()

    # -- pending-action buffer (coalescing) ---------------------------------

    def _pending_action(self) -> _Action:
        if self._pending is None:
            self._pending = _Action(len(self.actions), False)
            self.actions.append(self._pending)
            self._pending_ph_count = 0
            self._pending_slow = []
        return self._pending

    def _take_placeholders(self, em: _Emitter, placeholders: list[tuple[str, str]]) -> None:
        """Eagerly emit placeholder computations at the current position."""
        for name, src in placeholders:
            em.line(f"{name} = {src}")

    def _buffer_dynamic(self, em: _Emitter, build,
                        span: SourceSpan = UNKNOWN_SPAN) -> int:
        """Add one dynamic statement to the pending action.

        `build` receives a placeholder list (offset to continue the
        pending action's numbering) and returns the statement's source
        line, shared verbatim by both engines.
        """
        action = self._pending_action()
        if not action.span.is_known and span.is_known:
            action.span = span
        placeholders: list[tuple[str, str]] = []
        offset = self._pending_ph_count
        line = build(placeholders, offset)
        self._take_placeholders(em, placeholders)
        self._pending_ph_count += len(placeholders)
        action.body_lines.append(line)
        self._pending_slow.append(line)
        if not self.coalesce:
            return len(placeholders) + self._flush_pending(em)
        return len(placeholders)

    def _flush_pending(self, em: _Emitter) -> int:
        if self._pending is None:
            return 0
        action = self._pending
        action.n_placeholders = self._pending_ph_count
        data = ", ".join(f"_ph{i}" for i in range(self._pending_ph_count))
        tuple_src = f"({data},)" if self._pending_ph_count else "()"
        em.line(f"_M.action({action.num}, {tuple_src})")
        em.line("if not _M.recover:")
        em.indent += 1
        for line in self._pending_slow:
            em.line(line)
        em.indent -= 1
        lines = 2 + len(self._pending_slow)
        self._pending = None
        self._pending_slow = []
        self._pending_ph_count = 0
        return lines

    # -- statement emission ---------------------------------------------------

    def _emit_block(self, block: A.Block, em: _Emitter) -> None:
        emitted = 0
        for stmt in block.stmts:
            emitted += self._emit_stmt(stmt, em)
        emitted += self._flush_pending(em)
        if emitted == 0:
            em.line("pass")

    def _emit_stmt(self, stmt: A.Stmt, em: _Emitter) -> int:
        """Emit one statement; returns number of Python statements emitted."""
        if isinstance(stmt, A.Block):
            count = 0
            for s in stmt.stmts:
                count += self._emit_stmt(s, em)
            return count
        if isinstance(stmt, A.ValStmt):
            init = stmt.init if stmt.init is not None else A.IntLit(0, span=stmt.span)
            return self._emit_assign_like(A.Name(stmt.name, span=stmt.span), "=", init, em, stmt)
        if isinstance(stmt, A.Assign):
            return self._emit_assign_like(stmt.target, stmt.op, stmt.value, em, stmt)
        if isinstance(stmt, A.ExprStmt):
            return self._emit_expr_stmt(stmt, em)
        count = self._flush_pending(em)
        if isinstance(stmt, A.If):
            em.line(f"if {self._expr(stmt.cond, plain=False)}:")
            em.indent += 1
            self._emit_block(_as_block(stmt.then_body), em)
            em.indent -= 1
            if stmt.else_body is not None:
                em.line("else:")
                em.indent += 1
                self._emit_block(_as_block(stmt.else_body), em)
                em.indent -= 1
            return count + 1
        if isinstance(stmt, A.Switch):
            return count + self._emit_switch(stmt, em, plain=False)
        if isinstance(stmt, A.While):
            em.line(f"while {self._expr(stmt.cond, plain=False)}:")
            em.indent += 1
            self._emit_block(_as_block(stmt.body), em)
            em.indent -= 1
            return count + 1
        if isinstance(stmt, A.Break):
            em.line("break")
            return count + 1
        if isinstance(stmt, A.Continue):
            em.line("continue")
            return count + 1
        if isinstance(stmt, A.Return):
            raise SemanticError("return should have been eliminated", stmt.span)
        raise SemanticError(f"cannot emit statement {type(stmt).__name__}", stmt.span)

    def _emit_switch(self, stmt: A.Switch, em: _Emitter, plain: bool) -> int:
        scrutinee = self._expr(stmt.scrutinee, plain)
        tmp = self._fresh_tmp("_sw")
        em.line(f"{tmp} = {scrutinee}")
        first = True
        default_case: A.Case | None = None
        for case in stmt.cases:
            if case.kind == "default":
                default_case = case
                continue
            values = [self._expr(v, plain) for v in case.values]
            cond = " or ".join(f"{tmp} == {v}" for v in values)
            em.line(("if " if first else "elif ") + cond + ":")
            first = False
            em.indent += 1
            if plain:
                self._emit_plain_block(case.body, em)
            else:
                self._emit_block(case.body, em)
            em.indent -= 1
        if default_case is not None:
            if first:
                if plain:
                    self._emit_plain_block(default_case.body, em)
                else:
                    self._emit_block(default_case.body, em)
            else:
                em.line("else:")
                em.indent += 1
                if plain:
                    self._emit_plain_block(default_case.body, em)
                else:
                    self._emit_block(default_case.body, em)
                em.indent -= 1
        return 2

    # -- assignment / action emission ----------------------------------------

    def _emit_assign_like(
        self, target: A.Expr, op: str, value: A.Expr, em: _Emitter, stmt: A.Stmt
    ) -> int:
        # Desugar compound assignment.
        if op != "=":
            binop = op[:-1]
            value = A.Binary(binop, _clone(target), value, span=stmt.span)

        # Dynamic result test?  (val t = <dyn>?verify)
        if (
            isinstance(value, A.Attr)
            and value.name == "verify"
            and isinstance(target, A.Name)
            and self.division.expr_bt(value.base) == DYNAMIC
        ):
            return self._emit_verify(target, value.base, em, stmt)

        target_bt = self._target_bt(target)
        if target_bt == RT_STATIC:
            # Rt-static assignments interleave with a pending action
            # safely: placeholders snapshot values eagerly, and rt-static
            # code can never read dynamic state.
            lhs = self._lvalue(target, plain=False)
            em.line(f"{lhs} = {self._expr(value, plain=False)}")
            return 1
        return self._emit_dynamic_action(target, value, em, stmt)

    def _target_bt(self, target: A.Expr) -> int:
        if isinstance(target, A.Name):
            return self.division.var_bt(target.ident)
        if isinstance(target, A.Index) and isinstance(target.base, A.Name):
            return self.division.var_bt(target.base.ident)
        raise SemanticError("unsupported assignment target", target.span)

    def _lvalue(self, target: A.Expr, plain: bool) -> str:
        if isinstance(target, A.Name):
            return self._var_ref(target.ident, plain)
        assert isinstance(target, A.Index)
        base = self._lvalue(target.base, plain)
        return f"{base}[{self._expr(target.index, plain)}]"

    def _emit_dynamic_action(
        self, target: A.Expr, value: A.Expr, em: _Emitter, stmt: A.Stmt
    ) -> int:
        def build(placeholders: list[tuple[str, str]], offset: int) -> str:
            self._ph_base = offset
            rhs = self._dyn_expr(value, placeholders)
            if isinstance(target, A.Name):
                lhs = f"_S[{self.slots[target.ident]}]"
            else:
                assert isinstance(target, A.Index) and isinstance(target.base, A.Name)
                base_name = target.base.ident
                idx = self._dyn_expr(target.index, placeholders)
                lhs = f"_S[{self.slots[base_name]}][{idx}]"
            return f"{lhs} = {rhs}"

        return self._buffer_dynamic(em, build, span=stmt.span)

    def _emit_expr_stmt(self, stmt: A.ExprStmt, em: _Emitter) -> int:
        expr = stmt.expr
        bt = self.division.expr_bt(expr)
        effect = _has_effect(expr, self.info)
        if not effect:
            return 0  # pure expression statement: no effect, drop it
        if bt == RT_STATIC and not _touches_dynamic_state(expr, self.info, self.division):
            em.line(self._expr(expr, plain=False))
            return 1

        def build(placeholders: list[tuple[str, str]], offset: int) -> str:
            self._ph_base = offset
            return self._dyn_expr(expr, placeholders)

        return self._buffer_dynamic(em, build, span=stmt.span)

    def _emit_verify(self, target: A.Name, base: A.Expr, em: _Emitter, stmt: A.Stmt) -> int:
        count = self._flush_pending(em)
        placeholders: list[tuple[str, str]] = []
        self._ph_base = 0
        src = self._dyn_expr(base, placeholders)
        action = self._new_action(
            is_verify=True, n_placeholders=len(placeholders), span=stmt.span
        )
        lhs = self._var_ref(target.ident, plain=False)
        if self.division.var_bt(target.ident) == DYNAMIC:
            # The verified value is also consumed by dynamic code, so the
            # fast engine must store it into the shared slot before
            # returning it for path selection.
            action.body_lines.append(f"_v = {src}")
            action.body_lines.append(f"{lhs} = _v")
            action.body_lines.append("return _v")
        else:
            action.body_lines.append(f"return {src}")
        self._take_placeholders(em, placeholders)
        data = ", ".join(name for name, _ in placeholders)
        tuple_src = f"({data},)" if placeholders else "()"
        em.line(f"_M.begin_verify({action.num}, {tuple_src})")
        em.line("if _M.recover:")
        em.indent += 1
        em.line(f"{lhs} = _M.pop_verify()")
        em.indent -= 1
        em.line("else:")
        em.indent += 1
        em.line(f"{lhs} = {src}")
        em.line(f"_M.note_verify({lhs})")
        em.indent -= 1
        return count + 4

    def _new_action(self, is_verify: bool, n_placeholders: int,
                    span: SourceSpan = UNKNOWN_SPAN) -> _Action:
        action = _Action(
            len(self.actions), is_verify, n_placeholders=n_placeholders,
            span=span,
        )
        self.actions.append(action)
        return action

    # -- flush epilogue ---------------------------------------------------------

    def _emit_flush(self, em: _Emitter) -> None:
        """Flush rt-static globals to their slots at the end of a step.

        This is the paper's observation that rt-static globals must be
        "made dynamic for the next iteration" (§6.3 item 3): an action
        per global stores the recorded exit value into shared state.
        """
        flushed = self.division.flush_globals
        if self.flush_policy == "live":
            flushed = [g for g in flushed if g in self.keep_flushed]
        self._flushed_globals = list(flushed)
        for g in flushed:
            shape = self.division.var_shape(g)
            slot = self.slots[g]

            def build(placeholders, offset, g=g, shape=shape, slot=slot):
                ph = f"_ph{offset}"
                src = f"g_{g}"
                freeze_src = src
                if shape in (SHAPE_ARRAY, SHAPE_QUEUE, SHAPE_TUPLE, SHAPE_UNKNOWN):
                    freeze_src = f"_freeze({src})"
                placeholders.append((ph, freeze_src))
                if shape == SHAPE_ARRAY:
                    return f"_S[{slot}] = list({ph})"
                if shape == SHAPE_QUEUE:
                    return f"_S[{slot}] = _deque({ph})"
                return f"_S[{slot}] = {ph}"

            # Flush actions are synthesized (no single owning statement);
            # point them at the program header.
            self._buffer_dynamic(em, build, span=self.info.program.span)

    # -- fast engine -----------------------------------------------------------

    def emit_fast(self) -> str:
        em = _Emitter()
        for action in self.actions:
            em.line(f"def _a{action.num}(_ctx, _S, _data):")
            em.indent += 1
            if action.n_placeholders:
                names = ", ".join(f"_ph{i}" for i in range(action.n_placeholders))
                trailer = "," if action.n_placeholders == 1 else ""
                em.line(f"({names}{trailer}) = _data")
            for line in action.body_lines:
                em.line(line)
            if not action.body_lines:
                em.line("pass")
            em.indent -= 1
            em.line("")
        entries = ", ".join(
            f"(_a{a.num}, {a.is_verify})" for a in self.actions
        )
        em.line(f"fast_actions = [{entries}]")
        return em.source()

    # -- plain (non-memoized) engine ---------------------------------------------

    def emit_plain(self) -> str:
        em = _Emitter()
        params = ", ".join(self.flat.params)
        prefix = f", {params}" if params else ""
        em.line(f"def plain_main(_ctx{prefix}):")
        em.indent += 1
        em.line("_S = _ctx.S")
        self._emit_plain_block(self.flat.body, em)
        em.line("return")
        return em.source()

    def _emit_plain_block(self, block: A.Block, em: _Emitter) -> None:
        if not block.stmts:
            em.line("pass")
            return
        emitted = 0
        for stmt in block.stmts:
            emitted += self._emit_plain_stmt(stmt, em)
        if emitted == 0:
            em.line("pass")

    def _emit_plain_stmt(self, stmt: A.Stmt, em: _Emitter) -> int:
        if isinstance(stmt, A.Block):
            count = 0
            for s in stmt.stmts:
                count += self._emit_plain_stmt(s, em)
            return count
        if isinstance(stmt, A.ValStmt):
            init = stmt.init if stmt.init is not None else A.IntLit(0, span=stmt.span)
            em.line(f"{self._var_ref(stmt.name, plain=True)} = {self._expr(init, plain=True)}")
            return 1
        if isinstance(stmt, A.Assign):
            value = stmt.value
            op = stmt.op
            if op != "=":
                value = A.Binary(op[:-1], _clone(stmt.target), value, span=stmt.span)
            em.line(f"{self._lvalue(stmt.target, plain=True)} = {self._expr(value, plain=True)}")
            return 1
        if isinstance(stmt, A.ExprStmt):
            if not _has_effect(stmt.expr, self.info):
                return 0
            em.line(self._expr(stmt.expr, plain=True))
            return 1
        if isinstance(stmt, A.If):
            em.line(f"if {self._expr(stmt.cond, plain=True)}:")
            em.indent += 1
            self._emit_plain_block(_as_block(stmt.then_body), em)
            em.indent -= 1
            if stmt.else_body is not None:
                em.line("else:")
                em.indent += 1
                self._emit_plain_block(_as_block(stmt.else_body), em)
                em.indent -= 1
            return 1
        if isinstance(stmt, A.Switch):
            return self._emit_switch(stmt, em, plain=True)
        if isinstance(stmt, A.While):
            em.line(f"while {self._expr(stmt.cond, plain=True)}:")
            em.indent += 1
            self._emit_plain_block(_as_block(stmt.body), em)
            em.indent -= 1
            return 1
        if isinstance(stmt, A.Break):
            em.line("break")
            return 1
        if isinstance(stmt, A.Continue):
            em.line("continue")
            return 1
        if isinstance(stmt, A.Return):
            raise SemanticError("return should have been eliminated", stmt.span)
        raise SemanticError(f"cannot emit statement {type(stmt).__name__}", stmt.span)

    # -- setup -------------------------------------------------------------------

    def emit_setup(self) -> str:
        em = _Emitter()
        em.line("def setup(_ctx):")
        em.indent += 1
        em.line("_S = _ctx.S")
        any_init = False
        for name, decl in self.info.globals.items():
            slot = self.slots[name]
            if decl.init is not None:
                em.line(f"_S[{slot}] = {self._expr(decl.init, plain=True)}")
                any_init = True
            else:
                em.line(f"_S[{slot}] = 0")
                any_init = True
        if not any_init:
            em.line("pass")
        return em.source()

    # -- whole module assembly -----------------------------------------------------

    def build(self, with_plain: bool = True) -> CompiledSimulator:
        decoder_src = generate_decoder_source(self.info.patterns) if self.info.patterns.patterns else "def _decode(word):\n    return -1\n"
        preamble = (
            "def _decode_at(_ctx, addr):\n"
            "    p = _ctx._decode_cache.get(addr)\n"
            "    if p is None:\n"
            f"        p = _decode(_ctx.text_word(addr, {self._token_bytes()}))\n"
            "        _ctx._decode_cache[addr] = p\n"
            "    return p\n"
        )
        slow_src = self.emit_slow()
        fast_src = self.emit_fast()
        plain_src = self.emit_plain() if with_plain else ""
        setup_src = self.emit_setup()

        namespace: dict[str, object] = dict(RUNTIME_HELPERS)
        namespace.update(
            {
                "_deque": deque,
                "_freeze": freeze,
                "_copy_val": _copy_val,
                "idiv": idiv,
                "imod": imod,
                "min": min,
                "max": max,
                "abs": abs,
            }
        )
        full_src = "\n".join([decoder_src, preamble, setup_src, slow_src, fast_src, plain_src])
        exec(compile(full_src, f"<facile:{self.name}>", "exec"), namespace)

        if "init" not in self.slots:
            raise SemanticError(
                "simulator must declare a global 'init' key variable",
                self.info.program.span,
            )
        division_summary = {
            "n_actions": len(self.actions),
            "n_verify_actions": sum(1 for a in self.actions if a.is_verify),
            "dynamic_vars": sorted(
                n for n, bt in self.division.bt.items() if bt == DYNAMIC
            ),
            "flush_globals": self.division.flush_globals,
        }
        return CompiledSimulator(
            name=self.name,
            slow_main=namespace["slow_main"],  # type: ignore[arg-type]
            fast_actions=namespace["fast_actions"],  # type: ignore[arg-type]
            slot_count=self.slot_count,
            global_slots={g: self.slots[g] for g in self.info.globals},
            init_slot=self.slots["init"],
            param_count=len(self.flat.params),
            setup=namespace["setup"],  # type: ignore[arg-type]
            init_flushed="init" in getattr(self, "_flushed_globals", ()),
            source_slow=slow_src,
            source_fast=fast_src,
            plain_main=namespace.get("plain_main"),  # type: ignore[arg-type]
            source_plain=plain_src,
            division_summary=division_summary,
            action_bodies=[
                (list(a.body_lines), a.n_placeholders, a.is_verify)
                for a in self.actions
            ],
            action_spans=[a.span for a in self.actions],
            namespace=namespace,
        )


# -- helpers -------------------------------------------------------------------


def _copy_val(value):
    if isinstance(value, deque):
        return deque(value)
    if isinstance(value, list):
        return list(value)
    return value


def _as_block(stmt: A.Stmt) -> A.Block:
    return stmt if isinstance(stmt, A.Block) else A.Block([stmt], span=stmt.span)


def _clone(expr: A.Expr) -> A.Expr:
    if isinstance(expr, A.Name):
        return A.Name(expr.ident, span=expr.span)
    if isinstance(expr, A.Index):
        return A.Index(_clone(expr.base), expr.index, span=expr.span)
    return expr


def _has_effect(expr: A.Expr, info) -> bool:
    if isinstance(expr, A.Call):
        if expr.func in info.externs:
            return True
        sig = BUILTIN_FUNCS.get(expr.func)
        return sig is not None and sig.bt_class == "dynamic"
    if isinstance(expr, A.Attr):
        if expr.name in QUEUE_ATTRS and QUEUE_ATTRS[expr.name][1]:
            return True
    return False


def _touches_dynamic_state(expr: A.Expr, info, division: Division) -> bool:
    """True if an effectful rt-static expression still needs an action.

    Queue mutations on rt-static queues are pure bookkeeping the fast
    engine can skip; extern calls and dynamic builtins always touch
    dynamic state.
    """
    if isinstance(expr, A.Call):
        return True
    if isinstance(expr, A.Attr) and expr.name in QUEUE_ATTRS:
        return division.expr_bt(expr.base) == DYNAMIC
    return False
