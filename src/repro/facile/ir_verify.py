"""Replay-IR verifier, lowering lint, and uarch-protocol audit.

PR 7 moved the hot replay loop onto a stack bytecode (`replay_ir.py`)
executed by a generated C kernel whose inner loop does **no** per-op
stack or bounds checking — the comment in the kernel template says so
explicitly: "Stack discipline is guaranteed by the Python-side
compiler".  Until now that guarantee was only implicit in
``compile_body``'s construction.  This module makes it checkable:

* :func:`verify_body` — abstract interpretation of one
  :class:`~repro.facile.replay_ir.BodyProgram`: stack-effect balance
  (no underflow, depth bounded by the kernel's ``VM_STACK`` frame),
  local definite-initialization, operand-kind discipline (an ``'o'``
  placeholder may only flow into ``STORE_SLOT_OBJ``), jump-target
  sanity (forward-only, instruction-aligned), slot/placeholder/local
  index bounds, i64 constant range, and a 64-bit semantics audit that
  flags *provable* divergence between the C kernel (guarded, wrapping)
  and :func:`~repro.facile.replay_ir.interpret_body` (unbounded Python
  ints): constant shift amounts outside ``[0, 63]``, constant zero
  divisors, constant counter keys outside the kernel's table.
* :func:`wrap_census` — which C-guarded / wrapping operations a body
  uses at all (``repro check`` reports the aggregate per file).
* :func:`verify_plan` — chain-level checks over a
  :class:`~repro.facile.replay_ir.ChainPlan`: slot-kind validity, data
  arena bounds, jump-table successor range.
* :func:`assert_lowerable` — the gate the C backend calls before
  marshalling: any error-severity finding raises
  :class:`~repro.facile.replay_ir.Unlowerable`, so a bad program can
  never reach the emitter.
* :func:`audit_model` / :func:`audit_config_key` /
  :func:`builtin_model_suite` — the uarch module-protocol conformance
  audit (FAC5xx): every mutable ``array('q')`` reachable from a model
  must be declared in ``state_arrays()`` (else a native run silently
  diverges from the Python model), no mutable containers may sit
  outside the protocol, and ``config_key()`` must move when any
  behavior-changing constructor parameter moves (else two differently
  configured models share snapshots and action-cache entries).

Everything here is pure Python over the IR — no C toolchain needed —
so ``repro check`` produces identical diagnostics with ``FACILE_NO_CC``
set, which CI asserts.
"""

from __future__ import annotations

import dataclasses
import inspect as _inspect
from array import array
from dataclasses import dataclass

from .diagnostics import CODES, ERROR
from .replay_ir import (
    K_ACTION, K_END, K_VERIFY_EQ, K_VERIFY_TAB,
    MAX_LOCALS, MAX_STACK,
    OP_ABS, OP_ADD, OP_AND, OP_BIT, OP_BITS, OP_CC_ADD, OP_CC_BR,
    OP_CC_LOGIC, OP_CC_SUB, OP_CONST, OP_DROP, OP_ELEM, OP_END, OP_EQ,
    OP_EXTERN, OP_GE, OP_GT, OP_HALT, OP_IDIV, OP_IMOD, OP_JMP, OP_JZ,
    OP_LE, OP_LOCAL, OP_LT, OP_MAX, OP_MEM_R8, OP_MEM_R16, OP_MEM_R32,
    OP_MEM_W8, OP_MEM_W16, OP_MEM_W32, OP_MIN, OP_MUL, OP_NE, OP_NEG,
    OP_NOT, OP_OR, OP_PH, OP_POPCOUNT, OP_RETURN, OP_S32, OP_SELECT,
    OP_SEXT, OP_SHL, OP_SHR, OP_SLOT, OP_STAT_COUNT, OP_STAT_CYCLE,
    OP_STAT_RETIRE, OP_STORE_ELEM, OP_STORE_LOCAL, OP_STORE_SLOT,
    OP_STORE_SLOT_OBJ, OP_SUB, OP_UDIV32, OP_UMUL32, OP_XOR, OP_ZEXT,
    OP_NAMES,
    BodyProgram, ChainPlan, ExternTable, Unlowerable,
)

#: Kernel frame limits this verifier enforces (must match the
#: ``#define``s in the C template in repro.facile.cbackend).
KERNEL_MAX_SLOTS = 64
KERNEL_NCOUNTERS = 256
KERNEL_VM_STACK = 128
KERNEL_VM_LOCALS = 32

N_OPS = len(OP_NAMES)

#: op -> (pops, pushes) for every fixed-arity opcode.
_EFFECT = {
    OP_CONST: (0, 1), OP_PH: (0, 1), OP_SLOT: (0, 1), OP_LOCAL: (0, 1),
    OP_ELEM: (1, 1),
    OP_STORE_SLOT: (1, 0), OP_STORE_SLOT_OBJ: (1, 0),
    OP_STORE_ELEM: (2, 0), OP_STORE_LOCAL: (1, 0),
    OP_ADD: (2, 1), OP_SUB: (2, 1), OP_MUL: (2, 1), OP_AND: (2, 1),
    OP_OR: (2, 1), OP_XOR: (2, 1), OP_SHL: (2, 1), OP_SHR: (2, 1),
    OP_NEG: (1, 1), OP_NOT: (1, 1),
    OP_EQ: (2, 1), OP_NE: (2, 1), OP_LT: (2, 1), OP_LE: (2, 1),
    OP_GT: (2, 1), OP_GE: (2, 1),
    OP_SELECT: (3, 1), OP_DROP: (1, 0),
    OP_SEXT: (2, 1), OP_ZEXT: (2, 1), OP_S32: (1, 1),
    OP_BIT: (2, 1), OP_BITS: (3, 1), OP_POPCOUNT: (1, 1),
    OP_MIN: (2, 1), OP_MAX: (2, 1), OP_ABS: (1, 1),
    OP_IDIV: (2, 1), OP_IMOD: (2, 1), OP_UMUL32: (2, 1), OP_UDIV32: (2, 1),
    OP_CC_ADD: (2, 1), OP_CC_SUB: (2, 1), OP_CC_LOGIC: (1, 1),
    OP_CC_BR: (2, 1),
    OP_MEM_R8: (1, 1), OP_MEM_R16: (1, 1), OP_MEM_R32: (1, 1),
    OP_MEM_W8: (2, 0), OP_MEM_W16: (2, 0), OP_MEM_W32: (2, 0),
    OP_STAT_RETIRE: (1, 0), OP_STAT_CYCLE: (1, 0), OP_STAT_COUNT: (2, 0),
    OP_HALT: (0, 0),
}

#: Ops where the C kernel guards (E_SHIFT/E_DIV0/E_COUNTER) what
#: Python computes unbounded — the audit census.
GUARDED_OPS = (OP_SHL, OP_SHR, OP_IDIV, OP_IMOD, OP_UDIV32, OP_STAT_COUNT)
#: Ops the C kernel evaluates with wrapping u64 arithmetic where
#: interpret_body uses unbounded Python ints (agreement holds because
#: generated bodies keep values in i64; the census makes usage visible).
WRAPPING_OPS = (OP_ADD, OP_SUB, OP_MUL, OP_NEG, OP_SHL,
                OP_UMUL32, OP_CC_ADD, OP_CC_SUB)

_I64_MIN, _I64_MAX = -(1 << 63), (1 << 63) - 1

#: Extern names the C kernel's native dispatch registry can take over
#: when a protocol-conformant uarch model is bound; every other extern
#: always exits to the Python callback path (FAC411).  Mirrors the
#: name checks in ``cbackend._nx_explain``.
NATIVE_EXTERN_NAMES = frozenset({"xbpred", "xbind", "xbcall", "xcache"})


@dataclass(frozen=True)
class IRFinding:
    """One verifier/audit finding, keyed by its FACnnn code."""

    code: str
    message: str
    notes: tuple[str, ...] = ()

    @property
    def severity(self) -> str:
        return CODES[self.code].severity

    @property
    def is_error(self) -> bool:
        return self.severity == ERROR


# ---------------------------------------------------------------------------
# Body verifier: abstract interpretation of the stack bytecode
# ---------------------------------------------------------------------------

# Abstract stack values: ('i', const-or-None) for kernel ints,
# ('o', None) for opaque object references (only OP_PH of an 'o'-shaped
# placeholder produces one, only OP_STORE_SLOT_OBJ may consume it).
_TOP_I = ("i", None)
_OBJ = ("o", None)

_MAX_FINDINGS = 25


class _Verify:
    def __init__(self, prog: BodyProgram, n_slots: int | None,
                 externs: ExternTable | None):
        self.prog = prog
        self.n_slots = n_slots
        self.externs = externs
        self.findings: list[IRFinding] = []
        self.max_depth = 0

    def bad(self, code: str, pc: int, why: str) -> None:
        if len(self.findings) >= _MAX_FINDINGS:
            return
        op = self.prog.code[pc] if pc < len(self.prog.code) else -1
        name = OP_NAMES[op] if 0 <= op < N_OPS else f"op{op}"
        self.findings.append(IRFinding(
            code,
            f"action {self.prog.num}: {why} (pc {pc}, {name})",
        ))

    def run(self) -> list[IRFinding]:
        prog = self.prog
        code = prog.code
        if not code or len(code) % 2:
            self.findings.append(IRFinding(
                "FAC402",
                f"action {prog.num}: truncated bytecode "
                f"({len(code)} words)"))
            return self.findings
        if code[-2] != OP_END:
            self.bad("FAC402", len(code) - 2, "program does not end in END")
        if prog.n_locals > MAX_LOCALS or prog.n_locals > KERNEL_VM_LOCALS:
            self.findings.append(IRFinding(
                "FAC404",
                f"action {prog.num}: {prog.n_locals} locals exceed the "
                f"kernel frame ({KERNEL_VM_LOCALS})"))
        # states[pc] = (stack tuple, initialized-locals frozenset)
        states: dict[int, tuple[tuple, frozenset]] = {0: ((), frozenset())}
        returned = False
        for pc in range(0, len(code), 2):
            state = states.pop(pc, None)
            if state is None:
                continue  # unreachable (e.g. the END after a RETURN)
            stack, inited = state
            op, arg = code[pc], code[pc + 1]
            if not 0 <= op < N_OPS:
                self.bad("FAC402", pc, f"unknown opcode {op}")
                continue
            nxt = pc + 2

            if op == OP_END:
                if stack:
                    self.bad("FAC401", pc,
                             f"END with {len(stack)} values on the stack")
                continue
            if op in (OP_JMP, OP_JZ):
                if arg % 2 or not 0 <= arg < len(code):
                    self.bad("FAC402", pc, f"jump target {arg} misaligned "
                             "or out of range")
                    continue
                if arg <= pc:
                    self.bad("FAC402", pc, f"backward jump to {arg} "
                             "(straight-line IR only)")
                    continue
                if op == OP_JZ:
                    stack = self._pop(stack, pc, 1)
                    if stack is None:
                        continue
                    self._merge(states, nxt, stack, inited, pc)
                self._merge(states, arg, stack, inited, pc)
                continue
            if op == OP_RETURN:
                if not prog.is_verify:
                    self.bad("FAC402", pc, "RETURN in a non-verify body")
                if len(stack) != 1:
                    self.bad("FAC401", pc,
                             f"RETURN with stack depth {len(stack)}")
                elif stack[-1][0] != "i":
                    self.bad("FAC403", pc, "RETURN of an object value")
                returned = True
                continue

            # -- fixed-arity ops ----------------------------------------
            if op == OP_EXTERN:
                nargs = arg & 0xFF
                xid = arg >> 8
                if nargs > 8:
                    self.bad("FAC402", pc, f"extern arity {nargs} > 8")
                    continue
                if self.externs is not None and not (
                        0 <= xid < len(self.externs.names)):
                    self.bad("FAC404", pc, f"extern id {xid} not interned")
                    continue
                pops, pushes = nargs, 1
            else:
                eff = _EFFECT.get(op)
                if eff is None:  # pragma: no cover - table is total
                    self.bad("FAC402", pc, "no stack effect recorded")
                    continue
                pops, pushes = eff

            self._check_arg(op, arg, pc)
            if op == OP_LOCAL and 0 <= arg < MAX_LOCALS and arg not in inited:
                self.bad("FAC403", pc,
                         f"local {arg} read before definite initialization")
            if len(stack) < pops:
                self.bad("FAC401", pc,
                         f"stack underflow (depth {len(stack)}, pops {pops})")
                continue
            operands = stack[len(stack) - pops:] if pops else ()
            stack = stack[:len(stack) - pops]
            self._check_kinds(op, operands, pc)
            self._audit_consts(op, operands, pc)
            if pushes:
                stack = stack + (self._result(op, arg, operands),)
            if len(stack) > self.max_depth:
                self.max_depth = len(stack)
            if op == OP_STORE_LOCAL and 0 <= arg < MAX_LOCALS:
                inited = inited | {arg}
            self._merge(states, nxt, stack, inited, pc)

        if prog.is_verify and not returned and not self.findings:
            self.bad("FAC402", 0, "verify body has no reachable RETURN")
        if self.max_depth > MAX_STACK:
            self.findings.append(IRFinding(
                "FAC401",
                f"action {prog.num}: max stack depth {self.max_depth} "
                f"exceeds the compiler bound {MAX_STACK} "
                f"(kernel frame is {KERNEL_VM_STACK})"))
        elif self.max_depth > prog.max_stack:
            self.findings.append(IRFinding(
                "FAC401",
                f"action {prog.num}: declared max_stack {prog.max_stack} "
                f"below the verified depth {self.max_depth}"))
        return self.findings

    # -- transfer helpers ---------------------------------------------------

    def _pop(self, stack, pc, n):
        if len(stack) < n:
            self.bad("FAC401", pc,
                     f"stack underflow (depth {len(stack)}, pops {n})")
            return None
        return stack[:len(stack) - n]

    def _merge(self, states, pc, stack, inited, from_pc) -> None:
        old = states.get(pc)
        if old is None:
            states[pc] = (stack, inited)
            return
        ostack, oinit = old
        if len(ostack) != len(stack):
            self.bad("FAC401", from_pc,
                     f"stack depth mismatch at join pc {pc} "
                     f"({len(ostack)} vs {len(stack)})")
            return
        joined = []
        for a, b in zip(ostack, stack):
            if a[0] != b[0]:
                self.bad("FAC403", from_pc,
                         f"operand kind mismatch at join pc {pc}")
                joined.append(_OBJ)
            else:
                joined.append(a if a[1] == b[1] else (a[0], None))
        states[pc] = (tuple(joined), oinit & inited)

    def _result(self, op, arg, operands):
        if op == OP_CONST:
            return ("i", arg)
        if op == OP_PH:
            shapes = self.prog.shapes
            if 0 <= arg < len(shapes) and shapes[arg] == "o":
                return _OBJ
            return _TOP_I
        return _TOP_I

    def _check_arg(self, op, arg, pc) -> None:
        n_slots = self.n_slots
        if op in (OP_SLOT, OP_STORE_SLOT, OP_STORE_SLOT_OBJ,
                  OP_ELEM, OP_STORE_ELEM):
            limit = n_slots if n_slots is not None else KERNEL_MAX_SLOTS
            if not 0 <= arg < min(limit, KERNEL_MAX_SLOTS):
                self.bad("FAC404", pc,
                         f"slot index {arg} outside [0, {limit})")
        elif op == OP_PH:
            if not 0 <= arg < len(self.prog.shapes):
                self.bad("FAC404", pc,
                         f"placeholder {arg} outside the data shape "
                         f"{self.prog.shapes!r}")
        elif op in (OP_LOCAL, OP_STORE_LOCAL):
            if not 0 <= arg < min(self.prog.n_locals, MAX_LOCALS):
                self.bad("FAC404", pc,
                         f"local index {arg} outside "
                         f"[0, {self.prog.n_locals})")
        elif op == OP_CONST:
            if not _I64_MIN <= arg <= _I64_MAX:
                self.bad("FAC404", pc, f"constant {arg} outside i64")

    def _check_kinds(self, op, operands, pc) -> None:
        if not operands:
            return
        if op == OP_STORE_SLOT_OBJ:
            if operands[-1][0] != "o":
                self.bad("FAC403", pc,
                         "STORE_SLOT_OBJ of a plain int (the kernel "
                         "would tag the slot as an object reference)")
            return
        if op == OP_DROP:
            return  # either kind may be discarded
        for val in operands:
            if val[0] != "i":
                self.bad("FAC403", pc,
                         "object placeholder used in computation "
                         "(only STORE_SLOT_OBJ may consume it)")
                return

    def _audit_consts(self, op, operands, pc) -> None:
        """Flag provable C-vs-Python divergence on constant operands."""
        if not operands:
            return
        top = operands[-1]
        if top[1] is None:
            return
        c = top[1]
        if op == OP_SHL and not 0 <= c <= 63:
            self.bad("FAC405", pc,
                     f"shift amount {c}: the kernel raises E_SHIFT where "
                     "Python computes an unbounded shift")
        elif op == OP_SHR and c < 0:
            self.bad("FAC405", pc,
                     f"shift amount {c}: the kernel raises E_SHIFT where "
                     "Python computes an unbounded shift")
        elif op in (OP_IDIV, OP_IMOD, OP_UDIV32) and c == 0:
            self.bad("FAC405", pc,
                     "constant zero divisor: the kernel raises E_DIV0 "
                     "where Python raises ZeroDivisionError mid-replay")
        elif op == OP_STAT_COUNT:
            key = operands[0][1]
            if key is not None and not 0 <= key < KERNEL_NCOUNTERS:
                self.bad("FAC405", pc,
                         f"counter key {key} outside the kernel table "
                         f"[0, {KERNEL_NCOUNTERS}): the kernel raises "
                         "E_COUNTER where Python counts it")


def verify_body(prog: BodyProgram, *, n_slots: int | None = None,
                externs: ExternTable | None = None) -> list[IRFinding]:
    """Abstractly interpret one body program; returns all findings.

    Error-severity findings (FAC401–FAC404) mean the program must not
    reach the C emitter; FAC405 warnings mark provable 64-bit semantics
    divergence between the backends.
    """
    return _Verify(prog, n_slots, externs).run()


def wrap_census(prog: BodyProgram) -> dict[str, int]:
    """Count the C-guarded / wrapping operations one body uses."""
    out: dict[str, int] = {}
    code = prog.code
    interesting = set(GUARDED_OPS) | set(WRAPPING_OPS)
    for pc in range(0, len(code), 2):
        op = code[pc]
        if op in interesting:
            name = OP_NAMES[op]
            out[name] = out.get(name, 0) + 1
    return out


# ---------------------------------------------------------------------------
# Chain-plan verifier
# ---------------------------------------------------------------------------


def verify_plan(plan: ChainPlan, *, n_slots: int | None = None) -> list[IRFinding]:
    """Structural checks over one lowered chain plan (data-arena and
    successor-table bounds; per-body checks are :func:`verify_body`)."""
    findings: list[IRFinding] = []

    def bad(code: str, why: str) -> None:
        if len(findings) < _MAX_FINDINGS:
            findings.append(IRFinding(code, why))

    arena = len(plan.data)
    for i in range(plan.n):
        kind = plan.kinds[i]
        prog = plan.progs[i]
        if kind == K_END:
            if prog is not None:
                bad("FAC402", f"slot {i}: END slot carries a body")
            if not 0 <= plan.aux[i] < len(plan.end_records):
                bad("FAC404", f"slot {i}: end-record index {plan.aux[i]} "
                    f"outside [0, {len(plan.end_records)})")
            continue
        if kind not in (K_ACTION, K_VERIFY_EQ, K_VERIFY_TAB):
            bad("FAC402", f"slot {i}: unknown slot kind {kind}")
            continue
        if prog is None:
            bad("FAC402", f"slot {i}: missing body program")
            continue
        if plan.doffs[i] + len(prog.shapes) > arena:
            bad("FAC404",
                f"slot {i}: data offset {plan.doffs[i]}+{len(prog.shapes)} "
                f"overruns the arena ({arena} values)")
        if kind in (K_VERIFY_EQ, K_VERIFY_TAB):
            if not prog.is_verify:
                bad("FAC402", f"slot {i}: verify slot runs an action body")
            tix = plan.aux[i]
            if not 0 <= tix < len(plan.tables):
                bad("FAC404", f"slot {i}: table index {tix} out of range")
                continue
            for value, succ in plan.tables[tix].items():
                if not 0 <= succ <= plan.n:
                    bad("FAC404",
                        f"slot {i}: successor {succ} for value {value!r} "
                        f"outside [0, {plan.n}]")
        elif prog.is_verify:
            bad("FAC402", f"slot {i}: action slot runs a verify body")
    return findings


def assert_lowerable(plan: ChainPlan, *, n_slots: int | None,
                     externs: ExternTable | None,
                     verified: set[int] | None = None) -> None:
    """The C backend's pre-emission gate: raise :class:`Unlowerable`
    if any body or the plan itself fails the verifier.

    ``verified`` memoizes body programs already checked (programs are
    shared across chains via the prog cache), so warm replay pays the
    verification cost once per ``(action, shapes)``.
    """
    for prog in plan.progs:
        if prog is None:
            continue
        if verified is not None and id(prog) in verified:
            continue
        errors = [f for f in verify_body(prog, n_slots=n_slots,
                                         externs=externs) if f.is_error]
        if errors:
            raise Unlowerable(
                f"action {prog.num}: rejected by the replay-IR verifier: "
                + "; ".join(f.message for f in errors[:3]))
        if verified is not None:
            verified.add(id(prog))
    errors = [f for f in verify_plan(plan, n_slots=n_slots) if f.is_error]
    if errors:
        raise Unlowerable(
            "chain rejected by the replay-IR verifier: "
            + "; ".join(f.message for f in errors[:3]))


# ---------------------------------------------------------------------------
# Uarch module-protocol conformance (FAC5xx)
# ---------------------------------------------------------------------------

#: Attribute walk depth: model -> component -> sub-component.
_WALK_DEPTH = 4
_MUTABLE_CONTAINERS = (list, dict, set, bytearray)


def _declared_arrays(model) -> tuple[set[int], list[IRFinding]]:
    findings: list[IRFinding] = []
    name = type(model).__name__
    try:
        declared = model.state_arrays()
    except Exception as exc:
        return set(), [IRFinding(
            "FAC504", f"{name}.state_arrays() raised {exc!r}")]
    if not isinstance(declared, dict):
        return set(), [IRFinding(
            "FAC504",
            f"{name}.state_arrays() returned {type(declared).__name__}, "
            "not a name -> array('q') dict")]
    ids: set[int] = set()
    for key, buf in declared.items():
        if not isinstance(buf, array) or buf.typecode != "q":
            findings.append(IRFinding(
                "FAC504",
                f"{name}.state_arrays()[{key!r}] is "
                f"{type(buf).__name__}, not array('q') — the kernel "
                "binds i64 buffers only"))
            continue
        ids.add(id(buf))
    return ids, findings


def audit_model(model, name: str | None = None) -> list[IRFinding]:
    """Audit one model *instance* against the uarch module protocol.

    Walks the attribute graph (components included) and checks that
    every reachable ``array('q')`` is declared in ``state_arrays()``
    (by identity, so the kernel mutates exactly the buffers a snapshot
    or a Python fallback run would see) and that no mutable container
    state sits outside the protocol.  Stats dataclasses (drained via
    ``drain_stats``) and frozen config dataclasses are exempt.
    """
    name = name or type(model).__name__
    declared, findings = _declared_arrays(model)
    if any(f.code == "FAC504" for f in findings):
        return findings
    if getattr(model, "config_key", None) is None:
        findings.append(IRFinding(
            "FAC504", f"{name} has no config_key(); the native registry "
            "cannot match it and snapshots cannot address its state"))
    seen: set[int] = set()
    queue: list[tuple[object, str, int]] = [(model, name, 0)]
    while queue:
        obj, path, depth = queue.pop()
        if id(obj) in seen or depth > _WALK_DEPTH:
            continue
        seen.add(id(obj))
        for attr, val in sorted(vars(obj).items()):
            where = f"{path}.{attr}"
            if isinstance(val, array):
                if val.typecode == "q" and id(val) not in declared:
                    findings.append(IRFinding(
                        "FAC501",
                        f"{where} is mutable array('q') state missing "
                        f"from {name}.state_arrays(); a native run would "
                        "mutate kernel-side copies the Python model and "
                        "snapshots never see"))
                elif val.typecode != "q":
                    findings.append(IRFinding(
                        "FAC501",
                        f"{where} is array({val.typecode!r}); protocol "
                        "state must be array('q') to bind zero-copy"))
            elif isinstance(val, _MUTABLE_CONTAINERS):
                findings.append(IRFinding(
                    "FAC502",
                    f"{where} is a mutable {type(val).__name__} outside "
                    "the module protocol; native replay cannot keep it "
                    "coherent (move it into an array('q') buffer or a "
                    "drained stats dataclass)"))
            elif dataclasses.is_dataclass(val) and not isinstance(val, type):
                continue  # stats mirrors / frozen configs
            elif hasattr(val, "state_arrays") and hasattr(val, "config_key"):
                queue.append((val, where, depth + 1))
    return findings


def audit_config_key(cls, base_kwargs: dict | None = None,
                     variants: list[dict] | None = None) -> list[IRFinding]:
    """Check that ``config_key()`` moves when constructor parameters move.

    Every int/bool keyword with a default is perturbed automatically;
    ``variants`` supplies extra keyword sets for composite parameters
    (component models, config dataclasses).  A perturbation that leaves
    the key unchanged means two behaviorally different models would
    share snapshot addresses and native dispatch plans — FAC503.
    """
    base_kwargs = dict(base_kwargs or {})
    findings: list[IRFinding] = []
    try:
        base_key = cls(**base_kwargs).config_key()
    except Exception as exc:
        return [IRFinding(
            "FAC504", f"{cls.__name__}(**{base_kwargs!r}) or its "
            f"config_key() raised {exc!r}")]

    def check(kwargs: dict, what: str) -> None:
        try:
            key = cls(**kwargs).config_key()
        except Exception:
            return  # the perturbed value is simply invalid for this class
        if key == base_key:
            findings.append(IRFinding(
                "FAC503",
                f"{cls.__name__}.config_key() does not change when "
                f"{what} changes; differently configured models would "
                "share snapshot addresses and native dispatch plans"))

    try:
        params = _inspect.signature(cls.__init__).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins only
        params = {}
    for pname, p in params.items():
        if pname == "self" or pname in base_kwargs:
            continue
        d = p.default
        if d is _inspect.Parameter.empty:
            continue
        if type(d) is bool:
            check({**base_kwargs, pname: not d}, f"{pname}={not d}")
        elif type(d) is int:
            check({**base_kwargs, pname: d + 1}, f"{pname}={d + 1}")
    for kwargs in variants or []:
        check({**base_kwargs, **kwargs},
              ", ".join(f"{k}={v!r}" for k, v in kwargs.items()))
    return findings


def builtin_model_suite() -> list[tuple[str, object, list]]:
    """Every model class reachable from the native extern registry, as
    ``(label, instance, config-key variants)`` triples.

    This is the population the ``uarch-protocol`` analysis pass audits:
    the shipped direction predictors, the BTB/RAS front end, and the
    cache hierarchy — exactly what ``cbackend._nx_lower`` can bind into
    the kernel.
    """
    from repro.uarch.branch import (
        AlwaysNotTaken, AlwaysTaken, BimodalPredictor, BranchTargetBuffer,
        FrontEndPredictor, GSharePredictor, ReturnAddressStack,
        TournamentPredictor,
    )
    from repro.uarch.cache import CacheHierarchy, HierarchyConfig

    fe_variants = [
        {"direction": GSharePredictor(history_bits=8)},
        {"btb": BranchTargetBuffer(entries=1024)},
        {"ras": ReturnAddressStack(depth=8)},
    ]
    cfg = HierarchyConfig()
    cache_variants = [
        {"config": dataclasses.replace(cfg, memory_latency=cfg.memory_latency + 1)},
        {"config": dataclasses.replace(cfg, mshr_entries=cfg.mshr_entries + 1)},
        {"config": dataclasses.replace(
            cfg, prefetch_next_line=not cfg.prefetch_next_line)},
    ]
    suite: list[tuple[str, object, list]] = [
        ("BimodalPredictor", BimodalPredictor(), []),
        ("GSharePredictor", GSharePredictor(), []),
        ("TournamentPredictor", TournamentPredictor(), []),
        ("AlwaysTaken", AlwaysTaken(), []),
        ("AlwaysNotTaken", AlwaysNotTaken(), []),
        ("BranchTargetBuffer", BranchTargetBuffer(), []),
        ("ReturnAddressStack", ReturnAddressStack(), []),
        ("FrontEndPredictor", FrontEndPredictor(), fe_variants),
        ("CacheHierarchy", CacheHierarchy(), cache_variants),
    ]
    return suite


def audit_builtin_models() -> list[IRFinding]:
    """Protocol-audit the whole shipped registry population."""
    findings: list[IRFinding] = []
    for label, model, variants in builtin_model_suite():
        findings.extend(audit_model(model, label))
        findings.extend(audit_config_key(type(model), variants=variants))
    return findings


def audit_model_classes(classes: list[type]) -> list[IRFinding]:
    """Audit user-supplied model classes (``repro check models.py``).

    Classes must be constructible with their defaults; construction
    failure is reported as FAC504 rather than raised.
    """
    findings: list[IRFinding] = []
    for cls in classes:
        try:
            model = cls()
        except Exception as exc:
            findings.append(IRFinding(
                "FAC504",
                f"{cls.__name__}() is not default-constructible "
                f"({exc!r}); the protocol audit needs a baseline instance"))
            continue
        findings.extend(audit_model(model, cls.__name__))
        findings.extend(audit_config_key(cls))
    return findings
