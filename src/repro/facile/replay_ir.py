"""Backend-agnostic replay IR for the packed-chain hot loop.

The flat-packed action cache (PR 3) stores every complete entry as
parallel ``array('q')`` streams; replay walks them slot by slot.  This
module makes that walk — and the per-slot work — explicit as a small
two-level IR, so it can be executed by more than one backend:

* the **chain IR** (:class:`ChainPlan`): one record per packed slot,
  decoded from the lane encoding (``num >= 0`` plain action, ``~num``
  dynamic result test, :data:`~repro.facile.runtime.ENDMARK` step
  boundary; fall-through / expected-value / jump-table successors);
* the **body IR** (:class:`BodyProgram`): each generated action body —
  the restricted Python the code generator emits over ``_S``/``_ph<K>``
  /``_ctx`` — compiled by :func:`compile_body` into a stack-machine
  bytecode whose operations are closed over 64-bit integer arithmetic,
  target-memory access, statistics, and extern calls.

Two emitters target this IR:

* the **Python backend** is the existing index-threaded loop
  (``FastForwardEngine._fast_step_packed`` and the fastsim
  ``_replay_packed`` twin): a hand-scheduled rendering of the chain IR
  that executes bodies as compiled Python functions.  It is the
  behavior-identical default and the fallback for everything below;
* the **C backend** (:mod:`repro.facile.cbackend`) marshals
  :class:`ChainPlan`/:class:`BodyProgram` into a process-wide compiled
  kernel and replays entirely in native code.

Lowering is *total or refused*: an action body that falls outside the
IR's closed operation set (host-object traffic, queue mutation,
``log_value``, non-integer arithmetic) raises :class:`Unlowerable`, and
the chain that contains it stays on the Python backend.  The fastsim
packed cycles always refuse — their events call back into host Python
(`exec_decoded`, cache model, predictor); see
:func:`repro.ooo.fastsim.cycle_ir`.

The reference interpreter (:func:`interpret_body`) executes body
programs with ordinary Python semantics; the tests run every generated
action body under it against the exec'd original to pin down the IR's
meaning independently of any backend.
"""

from __future__ import annotations

import ast
from typing import Any, Callable

# ---------------------------------------------------------------------------
# Body IR opcodes
# ---------------------------------------------------------------------------

# Every instruction is an (op, arg) pair; arg is 0 when unused.  The
# C kernel and interpret_body() implement exactly this list.
(
    OP_END, OP_CONST, OP_PH, OP_SLOT, OP_ELEM, OP_LOCAL,
    OP_STORE_SLOT, OP_STORE_SLOT_OBJ, OP_STORE_ELEM, OP_STORE_LOCAL,
    OP_ADD, OP_SUB, OP_MUL, OP_AND, OP_OR, OP_XOR, OP_SHL, OP_SHR,
    OP_NEG, OP_NOT, OP_EQ, OP_NE, OP_LT, OP_LE, OP_GT, OP_GE,
    OP_JMP, OP_JZ, OP_SELECT, OP_DROP,
    OP_SEXT, OP_ZEXT, OP_S32, OP_BIT, OP_BITS, OP_POPCOUNT,
    OP_MIN, OP_MAX, OP_ABS, OP_IDIV, OP_IMOD, OP_UMUL32, OP_UDIV32,
    OP_CC_ADD, OP_CC_SUB, OP_CC_LOGIC, OP_CC_BR,
    OP_MEM_R8, OP_MEM_R16, OP_MEM_R32, OP_MEM_W8, OP_MEM_W16, OP_MEM_W32,
    OP_STAT_RETIRE, OP_STAT_CYCLE, OP_STAT_COUNT, OP_HALT, OP_EXTERN,
    OP_RETURN,
) = range(59)

OP_NAMES = [
    "END", "CONST", "PH", "SLOT", "ELEM", "LOCAL",
    "STORE_SLOT", "STORE_SLOT_OBJ", "STORE_ELEM", "STORE_LOCAL",
    "ADD", "SUB", "MUL", "AND", "OR", "XOR", "SHL", "SHR",
    "NEG", "NOT", "EQ", "NE", "LT", "LE", "GT", "GE",
    "JMP", "JZ", "SELECT", "DROP",
    "SEXT", "ZEXT", "S32", "BIT", "BITS", "POPCOUNT",
    "MIN", "MAX", "ABS", "IDIV", "IMOD", "UMUL32", "UDIV32",
    "CC_ADD", "CC_SUB", "CC_LOGIC", "CC_BR",
    "MEM_R8", "MEM_R16", "MEM_R32", "MEM_W8", "MEM_W16", "MEM_W32",
    "STAT_RETIRE", "STAT_CYCLE", "STAT_COUNT", "HALT", "EXTERN",
    "RETURN",
]

# Chain IR slot kinds (one per packed slot).
K_ACTION = 0   # run body, fall through
K_VERIFY_EQ = 1  # run body; == expected falls through, else side exit
K_VERIFY_TAB = 2  # run body; jump-table successor, miss side exits
K_END = 3      # step boundary (ENDMARK)

#: Limits the compiler enforces so backends can use fixed frames.
MAX_LOCALS = 32
MAX_STACK = 120

_BIN_OPS = {
    ast.Add: OP_ADD, ast.Sub: OP_SUB, ast.Mult: OP_MUL,
    ast.BitAnd: OP_AND, ast.BitOr: OP_OR, ast.BitXor: OP_XOR,
    ast.LShift: OP_SHL, ast.RShift: OP_SHR,
}
_CMP_OPS = {
    ast.Eq: OP_EQ, ast.NotEq: OP_NE, ast.Lt: OP_LT, ast.LtE: OP_LE,
    ast.Gt: OP_GT, ast.GtE: OP_GE,
}
_HELPER_OPS = {
    # name -> (n_args, opcode); argument order matches the Python
    # helpers in repro.facile.builtins / codegen.
    "s32": (1, OP_S32), "popcount": (1, OP_POPCOUNT), "abs": (1, OP_ABS),
    "cc_logic": (1, OP_CC_LOGIC),
    "sext": (2, OP_SEXT), "zext": (2, OP_ZEXT), "bit": (2, OP_BIT),
    "min": (2, OP_MIN), "max": (2, OP_MAX),
    "idiv": (2, OP_IDIV), "imod": (2, OP_IMOD),
    "umul32": (2, OP_UMUL32), "udiv32": (2, OP_UDIV32),
    "cc_add": (2, OP_CC_ADD), "cc_sub": (2, OP_CC_SUB),
    "cc_branch_taken": (2, OP_CC_BR),
    "bits": (3, OP_BITS), "select": (3, OP_SELECT),
}
_MEM_READS = {"read8": OP_MEM_R8, "read16": OP_MEM_R16, "read32": OP_MEM_R32}
_MEM_WRITES = {"write8": OP_MEM_W8, "write16": OP_MEM_W16, "write32": OP_MEM_W32}
_STAT_OPS = {"stat_retire": OP_STAT_RETIRE, "stat_cycle": OP_STAT_CYCLE}

#: int64 range guard for constants and placeholder data.
_I64_MIN, _I64_MAX = -(1 << 63), (1 << 63) - 1


class Unlowerable(Exception):
    """An action body (or chain) falls outside the replay IR.

    ``span`` is the source span of the owning action's statement when
    the caller threaded one through (``compile_body(..., span=...)`` /
    ``plan_chain(..., action_spans=...)``), so lowerability diagnostics
    can render caret blocks instead of ``<unknown>`` locations.
    """

    def __init__(self, message: str, span=None):
        super().__init__(message)
        self.span = span


class BodyProgram:
    """One compiled action body: straight-line stack bytecode.

    ``code`` is a flat ``[op, arg, op, arg, ...]`` list.  ``shapes`` is
    the placeholder type signature the program was specialized for: one
    character per placeholder, ``'i'`` for an int (the value travels in
    the data arena), ``'o'`` for anything else (the arena carries an
    opaque object reference, storable to a slot but not computable).
    Programs are cached per ``(action number, shapes)``.
    """

    __slots__ = (
        "num", "code", "n_locals", "max_stack", "shapes", "is_verify",
        "uses_extern", "source",
    )

    def __init__(self, num: int, code: list[int], n_locals: int,
                 max_stack: int, shapes: str, is_verify: bool,
                 uses_extern: bool, source: str):
        self.num = num
        self.code = code
        self.n_locals = n_locals
        self.max_stack = max_stack
        self.shapes = shapes
        self.is_verify = is_verify
        self.uses_extern = uses_extern
        self.source = source

    def disassemble(self) -> str:
        out = []
        code = self.code
        for pc in range(0, len(code), 2):
            out.append(f"{pc:4d}  {OP_NAMES[code[pc]]} {code[pc + 1]}")
        return "\n".join(out)


def data_shapes(data: tuple) -> str:
    """Placeholder type signature of one record's data tuple."""
    return "".join(
        "i" if type(v) is int or type(v) is bool else "o" for v in data
    )


class ExternTable:
    """Stable extern-name -> id assignment shared by a backend."""

    __slots__ = ("names", "_ids")

    def __init__(self) -> None:
        self.names: list[str] = []
        self._ids: dict[str, int] = {}

    def intern(self, name: str) -> int:
        xid = self._ids.get(name)
        if xid is None:
            xid = len(self.names)
            self.names.append(name)
            self._ids[name] = xid
        return xid


# ---------------------------------------------------------------------------
# Body compiler: generated Python -> body IR
# ---------------------------------------------------------------------------


class _Emit:
    """Bytecode buffer with stack-depth accounting and backpatching."""

    def __init__(self) -> None:
        self.code: list[int] = []
        self.depth = 0
        self.max_depth = 0

    def op(self, op: int, arg: int = 0, pop: int = 0, push: int = 0) -> None:
        self.depth -= pop
        if self.depth < 0:
            raise Unlowerable("stack underflow (compiler bug)")
        self.depth += push
        if self.depth > self.max_depth:
            self.max_depth = self.depth
        self.code.append(op)
        self.code.append(arg)

    def jump(self, op: int, pop: int = 0) -> int:
        """Emit a jump with a to-be-patched target; returns patch site."""
        self.op(op, 0, pop=pop)
        return len(self.code) - 1

    def patch(self, site: int) -> None:
        self.code[site] = len(self.code)


class _BodyCompiler:
    def __init__(self, num: int, shapes: str, is_verify: bool,
                 externs: ExternTable, span=None):
        self.num = num
        self.shapes = shapes
        self.is_verify = is_verify
        self.externs = externs
        self.span = span
        self.e = _Emit()
        self.locals: dict[str, int] = {}
        self.uses_extern = False

    def fail(self, why: str) -> Unlowerable:
        return Unlowerable(f"action {self.num}: {why}", span=self.span)

    # -- expressions (each pushes exactly one value; returns 'i'/'o') ----

    def expr(self, node: ast.expr) -> str:
        e = self.e
        if isinstance(node, ast.Constant):
            v = node.value
            if type(v) is bool:
                v = int(v)
            if type(v) is not int or not _I64_MIN <= v <= _I64_MAX:
                raise self.fail(f"non-int constant {v!r}")
            e.op(OP_CONST, v, push=1)
            return "i"
        if isinstance(node, ast.Name):
            name = node.id
            if name.startswith("_ph"):
                k = int(name[3:])
                if k >= len(self.shapes):
                    raise self.fail(f"placeholder {name} out of range")
                e.op(OP_PH, k, push=1)
                return self.shapes[k]
            slot = self.locals.get(name)
            if slot is None:
                raise self.fail(f"unknown name {name!r}")
            e.op(OP_LOCAL, slot, push=1)
            return "i"
        if isinstance(node, ast.Subscript):
            base = node.value
            if isinstance(base, ast.Name) and base.id == "_S":
                k = self._const_index(node.slice)
                e.op(OP_SLOT, k, push=1)
                return "i"
            if (
                isinstance(base, ast.Subscript)
                and isinstance(base.value, ast.Name)
                and base.value.id == "_S"
            ):
                k = self._const_index(base.slice)
                if self.expr(node.slice) != "i":
                    raise self.fail("non-int element index")
                e.op(OP_ELEM, k, pop=1, push=1)
                return "i"
            raise self.fail("unsupported subscript")
        if isinstance(node, ast.BinOp):
            op = _BIN_OPS.get(type(node.op))
            if op is None:
                raise self.fail(f"operator {type(node.op).__name__}")
            self._int_expr(node.left)
            self._int_expr(node.right)
            e.op(op, pop=2, push=1)
            return "i"
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.UAdd):
                return self._int_expr(node.operand)
            self._int_expr(node.operand)
            if isinstance(node.op, ast.USub):
                e.op(OP_NEG, pop=1, push=1)
            elif isinstance(node.op, ast.Not):
                e.op(OP_NOT, pop=1, push=1)
            else:
                raise self.fail(f"unary {type(node.op).__name__}")
            return "i"
        if isinstance(node, ast.Compare):
            if len(node.ops) != 1:
                raise self.fail("chained comparison")
            op = _CMP_OPS.get(type(node.ops[0]))
            if op is None:
                raise self.fail(f"comparison {type(node.ops[0]).__name__}")
            self._int_expr(node.left)
            self._int_expr(node.comparators[0])
            e.op(op, pop=2, push=1)
            return "i"
        if isinstance(node, ast.IfExp):
            # Lazy conditional, like the Python original: only the
            # chosen arm executes (the other may divide by zero, etc.).
            self._int_expr(node.test)
            jz = e.jump(OP_JZ, pop=1)
            self._int_expr(node.body)
            e.depth -= 1  # both arms materialize the same single value
            jmp = e.jump(OP_JMP)
            e.patch(jz)
            self._int_expr(node.orelse)
            e.patch(jmp)
            return "i"
        if isinstance(node, ast.BoolOp):
            # a and b / a or b with int operands (codegen normally
            # pre-lowers these to IfExp; accept both spellings).
            op_is_and = isinstance(node.op, ast.And)
            values = node.values
            self._int_expr(values[0])
            sites = []
            for v in values[1:]:
                # keep value if it decides the result, else replace
                jz = e.jump(OP_JZ if op_is_and else OP_NOT, pop=0)
                if not op_is_and:
                    raise self.fail("or-expression (use IfExp lowering)")
                e.op(OP_DROP, pop=1)
                self._int_expr(v)
                sites.append(jz)
            end = len(e.code)
            for s in sites:
                # JZ target: jump past the recomputation, keeping 0...
                # Simple and-chains of tests are rare; bail out instead
                # of risking a subtle encoding.
                raise self.fail("and-expression (use IfExp lowering)")
            return "i"
        if isinstance(node, ast.Call):
            return self._call(node, as_stmt=False)
        raise self.fail(f"expression {type(node).__name__}")

    def _int_expr(self, node: ast.expr) -> str:
        t = self.expr(node)
        if t != "i":
            raise self.fail("object value used in computation")
        return t

    def _const_index(self, node: ast.expr) -> int:
        if isinstance(node, ast.Constant) and type(node.value) is int:
            return node.value
        raise self.fail("non-constant slot index")

    def _call(self, node: ast.Call, as_stmt: bool) -> str:
        e = self.e
        func = node.func
        if node.keywords:
            raise self.fail("keyword arguments")
        if isinstance(func, ast.Name):
            name = func.id
            if name == "u32":
                if len(node.args) != 1:
                    raise self.fail("u32 arity")
                self._int_expr(node.args[0])
                e.op(OP_CONST, 0xFFFFFFFF, push=1)
                e.op(OP_AND, pop=2, push=1)
                return "i"
            sig = _HELPER_OPS.get(name)
            if sig is None:
                raise self.fail(f"call to {name!r}")
            nargs, op = sig
            if len(node.args) != nargs:
                raise self.fail(f"{name} arity")
            for a in node.args:
                self._int_expr(a)
            e.op(op, pop=nargs, push=1)
            return "i"
        if isinstance(func, ast.Attribute):
            owner = func.value
            attr = func.attr
            if (
                isinstance(owner, ast.Attribute)
                and isinstance(owner.value, ast.Name)
                and owner.value.id == "_ctx"
                and owner.attr == "mem"
            ):
                if attr in _MEM_READS:
                    if len(node.args) != 1:
                        raise self.fail(f"mem.{attr} arity")
                    self._int_expr(node.args[0])
                    e.op(_MEM_READS[attr], pop=1, push=1)
                    return "i"
                if attr in _MEM_WRITES:
                    if not as_stmt:
                        raise self.fail("memory write in an expression")
                    if len(node.args) != 2:
                        raise self.fail(f"mem.{attr} arity")
                    self._int_expr(node.args[0])
                    self._int_expr(node.args[1])
                    e.op(_MEM_WRITES[attr], pop=2)
                    return ""
                raise self.fail(f"mem.{attr}")
            if isinstance(owner, ast.Name) and owner.id == "_ctx":
                if attr in _STAT_OPS:
                    if not as_stmt:
                        raise self.fail(f"{attr} in an expression")
                    if len(node.args) != 1:
                        raise self.fail(f"{attr} arity")
                    self._int_expr(node.args[0])
                    e.op(_STAT_OPS[attr], pop=1)
                    return ""
                if attr == "stat_count":
                    if not as_stmt:
                        raise self.fail("stat_count in an expression")
                    if len(node.args) != 2:
                        raise self.fail("stat_count arity")
                    self._int_expr(node.args[0])
                    self._int_expr(node.args[1])
                    e.op(OP_STAT_COUNT, pop=2)
                    return ""
                if attr == "halt":
                    if not as_stmt:
                        raise self.fail("halt in an expression")
                    if node.args:
                        raise self.fail("halt arity")
                    e.op(OP_HALT)
                    return ""
                if attr == "call_extern":
                    if not node.args or not (
                        isinstance(node.args[0], ast.Constant)
                        and isinstance(node.args[0].value, str)
                    ):
                        raise self.fail("extern name must be a literal")
                    xargs = node.args[1:]
                    if len(xargs) > 8:
                        raise self.fail("extern arity > 8")
                    xid = self.externs.intern(node.args[0].value)
                    for a in xargs:
                        self._int_expr(a)
                    e.op(OP_EXTERN, xid * 256 + len(xargs),
                         pop=len(xargs), push=1)
                    self.uses_extern = True
                    if as_stmt:
                        e.op(OP_DROP, pop=1)
                        return ""
                    return "i"
                # text_word would read around the context's text cache;
                # log_value / queue traffic carry host objects.
                raise self.fail(f"_ctx.{attr}")
        raise self.fail("unsupported call")

    # -- statements ------------------------------------------------------

    def stmt(self, node: ast.stmt) -> None:
        e = self.e
        if isinstance(node, ast.Assign):
            if len(node.targets) != 1:
                raise self.fail("multiple assignment targets")
            tgt = node.targets[0]
            if isinstance(tgt, ast.Name):
                t = self.expr(node.value)
                if t != "i":
                    raise self.fail("object value stored to a local")
                slot = self.locals.get(tgt.id)
                if slot is None:
                    slot = len(self.locals)
                    if slot >= MAX_LOCALS:
                        raise self.fail("too many locals")
                    self.locals[tgt.id] = slot
                e.op(OP_STORE_LOCAL, slot, pop=1)
                return
            if isinstance(tgt, ast.Subscript):
                base = tgt.value
                if isinstance(base, ast.Name) and base.id == "_S":
                    k = self._const_index(tgt.slice)
                    t = self.expr(node.value)
                    if t == "o":
                        # Only a direct placeholder store may carry an
                        # object (the flush of a frozen init tuple);
                        # expr() already rejects 'o' inside arithmetic.
                        e.op(OP_STORE_SLOT_OBJ, k, pop=1)
                    else:
                        e.op(OP_STORE_SLOT, k, pop=1)
                    return
                if (
                    isinstance(base, ast.Subscript)
                    and isinstance(base.value, ast.Name)
                    and base.value.id == "_S"
                ):
                    k = self._const_index(base.slice)
                    if self.expr(tgt.slice) != "i":
                        raise self.fail("non-int element index")
                    if self.expr(node.value) != "i":
                        raise self.fail("object stored into an array slot")
                    e.op(OP_STORE_ELEM, k, pop=2)
                    return
            raise self.fail("unsupported assignment target")
        if isinstance(node, ast.Expr):
            if not isinstance(node.value, ast.Call):
                raise self.fail("bare expression statement")
            self._call(node.value, as_stmt=True)
            return
        if isinstance(node, ast.Return):
            if not self.is_verify or node.value is None:
                raise self.fail("return outside a verify body")
            if self.expr(node.value) != "i":
                raise self.fail("non-int verify result")
            e.op(OP_RETURN, pop=1)
            return
        raise self.fail(f"statement {type(node).__name__}")


def compile_body(num: int, body_lines: list[str], shapes: str,
                 is_verify: bool, externs: ExternTable,
                 span=None) -> BodyProgram:
    """Compile one generated action body to body IR.

    Raises :class:`Unlowerable` (with the offending construct named,
    and carrying ``span`` when given) when the body falls outside the
    IR; the caller keeps that chain on the Python backend.
    """
    source = "\n".join(body_lines)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:  # pragma: no cover - generated code parses
        raise Unlowerable(
            f"action {num}: unparsable body ({exc})", span=span) from None
    c = _BodyCompiler(num, shapes, is_verify, externs, span=span)
    for node in tree.body:
        c.stmt(node)
    if is_verify and (not c.e.code or c.e.code[-2] != OP_RETURN):
        raise Unlowerable(
            f"action {num}: verify body missing return", span=span)
    c.e.op(OP_END)
    if c.e.max_depth > MAX_STACK:
        raise Unlowerable(f"action {num}: expression too deep", span=span)
    return BodyProgram(
        num, c.e.code, len(c.locals), c.e.max_depth, shapes, is_verify,
        c.uses_extern, source,
    )


# ---------------------------------------------------------------------------
# Chain lowering: PackedChain lanes -> chain IR
# ---------------------------------------------------------------------------


class ChainPlan:
    """One packed chain decoded into backend-neutral slot records.

    Parallel per-slot lists (``kinds``/``progs``/``doffs``/``aux``)
    plus a flat ``data`` arena of raw placeholder values:

    * ``kinds[i]`` — :data:`K_ACTION`/:data:`K_VERIFY_EQ`/
      :data:`K_VERIFY_TAB`/:data:`K_END`;
    * ``progs[i]`` — the slot's :class:`BodyProgram` (None for ends);
    * ``doffs[i]`` — offset of the slot's placeholder data in ``data``;
    * ``aux[i]`` — the expected value (VERIFY_EQ), an index into
      ``tables`` (VERIFY_TAB), or an index into ``end_records`` (END).

    ``tables`` maps observed values to successor slot indices;
    ``end_records`` aliases the chain's :class:`EndRecord` objects so
    backends can hand step boundaries back to the driver.
    """

    __slots__ = (
        "n", "kinds", "progs", "doffs", "aux", "data", "tables",
        "end_records",
    )


def plan_chain(chain, action_bodies: list, externs: ExternTable,
               prog_cache: dict, action_spans: list | None = None) -> ChainPlan:
    """Lower one :class:`~repro.facile.runtime.PackedChain` to chain IR.

    Reads the canonical ``nums``/``data``/``succ`` lanes (private
    arrays or mmap-backed memoryviews alike) and the interning pool;
    body programs are compiled once per ``(action, shapes)`` and cached
    in ``prog_cache``.  Raises :class:`Unlowerable` when any slot's
    body falls outside the IR; with ``action_spans`` (the compiler's
    per-action source spans) the exception carries the owning action's
    span for caret rendering.
    """
    from .runtime import ENDMARK

    def span_of(num: int):
        if action_spans is not None and 0 <= num < len(action_spans):
            return action_spans[num]
        return None

    nums = chain.nums
    dstream = chain.data
    sstream = chain.succ
    values = chain.pool.values
    n = len(nums)
    kinds = bytearray(n)
    progs: list = [None] * n
    doffs = [0] * n
    aux: list = [0] * n
    data: list = []
    tables: list[dict] = []

    def body_for(num: int, dat: tuple, is_verify: bool) -> BodyProgram:
        shapes = data_shapes(dat)
        key = (num, shapes)
        prog = prog_cache.get(key)
        if prog is None:
            if num >= len(action_bodies):
                raise Unlowerable(f"action {num}: no recorded body")
            lines, n_ph, body_verify = action_bodies[num]
            if n_ph != len(shapes) or body_verify != is_verify:
                raise Unlowerable(f"action {num}: data/body shape mismatch",
                                  span=span_of(num))
            prog = compile_body(num, lines, shapes, is_verify, externs,
                                span=span_of(num))
            prog_cache[key] = prog
        return prog

    for i in range(n):
        num = nums[i]
        if num == ENDMARK:
            kinds[i] = K_END
            aux[i] = sstream[i]
            continue
        is_verify = num < 0
        if is_verify:
            num = ~num
        dat = values[dstream[i]]
        prog = body_for(num, dat, is_verify)
        doffs[i] = len(data)
        for v in dat:
            if type(v) is bool:
                data.append(int(v))
            elif type(v) is int:
                if not _I64_MIN <= v <= _I64_MAX:
                    raise Unlowerable(f"action {num}: data value exceeds i64",
                                      span=span_of(num))
                data.append(v)
            else:
                data.append(v)
        if not is_verify:
            kinds[i] = K_ACTION
            progs[i] = prog
            continue
        progs[i] = prog
        s = sstream[i]
        if s >= 0:
            kinds[i] = K_VERIFY_EQ
            aux[i] = len(tables)
            tables.append({values[s]: i + 1})
            # (kept as a one-entry table for uniformity; backends may
            # specialize the single-successor compare.)
            kinds[i] = K_VERIFY_EQ
        else:
            kinds[i] = K_VERIFY_TAB
            aux[i] = len(tables)
            tables.append(dict(chain.tables[~s]))
    plan = ChainPlan()
    plan.n = n
    plan.kinds = kinds
    plan.progs = progs
    plan.doffs = doffs
    plan.aux = aux
    plan.data = data
    plan.tables = tables
    plan.end_records = chain.ends
    return plan


# ---------------------------------------------------------------------------
# Reference interpreter (the IR's executable specification)
# ---------------------------------------------------------------------------


def interpret_body(prog: BodyProgram, ctx, S: list, data: tuple) -> Any:
    """Execute one body program with ordinary Python semantics.

    ``data`` is the record's placeholder tuple (raw values, exactly
    what the generated body would receive).  Returns the verify value
    for verify programs, else None.  This is the IR's specification:
    both the Python loop (which runs the original compiled bodies) and
    the C kernel must agree with it on every lowerable body — the test
    suite checks the former exhaustively and the golden runs the
    latter.
    """
    from .builtins import (
        bit, bits, cc_add, cc_branch_taken, cc_logic, cc_sub, popcount,
        s32, sext, udiv32, umul32, zext,
    )
    from .codegen import idiv, imod

    code = prog.code
    stack: list = []
    push = stack.append
    pop = stack.pop
    locals_ = [0] * (prog.n_locals or 1)
    mem = ctx.mem
    pc = 0
    while True:
        op = code[pc]
        arg = code[pc + 1]
        pc += 2
        if op == OP_CONST:
            push(arg)
        elif op == OP_PH:
            push(data[arg])
        elif op == OP_SLOT:
            push(S[arg])
        elif op == OP_ELEM:
            push(S[arg][pop()])
        elif op == OP_LOCAL:
            push(locals_[arg])
        elif op == OP_STORE_SLOT or op == OP_STORE_SLOT_OBJ:
            S[arg] = pop()
        elif op == OP_STORE_ELEM:
            v = pop()
            S[arg][pop()] = v
        elif op == OP_STORE_LOCAL:
            locals_[arg] = pop()
        elif op == OP_ADD:
            b = pop(); push(pop() + b)
        elif op == OP_SUB:
            b = pop(); push(pop() - b)
        elif op == OP_MUL:
            b = pop(); push(pop() * b)
        elif op == OP_AND:
            b = pop(); push(pop() & b)
        elif op == OP_OR:
            b = pop(); push(pop() | b)
        elif op == OP_XOR:
            b = pop(); push(pop() ^ b)
        elif op == OP_SHL:
            b = pop(); push(pop() << b)
        elif op == OP_SHR:
            b = pop(); push(pop() >> b)
        elif op == OP_NEG:
            push(-pop())
        elif op == OP_NOT:
            push(0 if pop() else 1)
        elif op == OP_EQ:
            b = pop(); push(1 if pop() == b else 0)
        elif op == OP_NE:
            b = pop(); push(1 if pop() != b else 0)
        elif op == OP_LT:
            b = pop(); push(1 if pop() < b else 0)
        elif op == OP_LE:
            b = pop(); push(1 if pop() <= b else 0)
        elif op == OP_GT:
            b = pop(); push(1 if pop() > b else 0)
        elif op == OP_GE:
            b = pop(); push(1 if pop() >= b else 0)
        elif op == OP_JMP:
            pc = arg
        elif op == OP_JZ:
            if not pop():
                pc = arg
        elif op == OP_SELECT:
            b = pop(); a = pop(); c = pop()
            push(a if c else b)
        elif op == OP_DROP:
            pop()
        elif op == OP_SEXT:
            b = pop(); push(sext(pop(), b))
        elif op == OP_ZEXT:
            b = pop(); push(zext(pop(), b))
        elif op == OP_S32:
            push(s32(pop()))
        elif op == OP_BIT:
            b = pop(); push(bit(pop(), b))
        elif op == OP_BITS:
            hi = pop(); lo = pop(); push(bits(pop(), lo, hi))
        elif op == OP_POPCOUNT:
            push(popcount(pop()))
        elif op == OP_MIN:
            b = pop(); push(min(pop(), b))
        elif op == OP_MAX:
            b = pop(); push(max(pop(), b))
        elif op == OP_ABS:
            push(abs(pop()))
        elif op == OP_IDIV:
            b = pop(); push(idiv(pop(), b))
        elif op == OP_IMOD:
            b = pop(); push(imod(pop(), b))
        elif op == OP_UMUL32:
            b = pop(); push(umul32(pop(), b))
        elif op == OP_UDIV32:
            b = pop(); push(udiv32(pop(), b))
        elif op == OP_CC_ADD:
            b = pop(); push(cc_add(pop(), b))
        elif op == OP_CC_SUB:
            b = pop(); push(cc_sub(pop(), b))
        elif op == OP_CC_LOGIC:
            push(cc_logic(pop()))
        elif op == OP_CC_BR:
            b = pop(); push(cc_branch_taken(pop(), b))
        elif op == OP_MEM_R8:
            push(mem.read8(pop()))
        elif op == OP_MEM_R16:
            push(mem.read16(pop()))
        elif op == OP_MEM_R32:
            push(mem.read32(pop()))
        elif op == OP_MEM_W8:
            v = pop(); mem.write8(pop(), v)
        elif op == OP_MEM_W16:
            v = pop(); mem.write16(pop(), v)
        elif op == OP_MEM_W32:
            v = pop(); mem.write32(pop(), v)
        elif op == OP_STAT_RETIRE:
            ctx.stat_retire(pop())
        elif op == OP_STAT_CYCLE:
            ctx.stat_cycle(pop())
        elif op == OP_STAT_COUNT:
            n = pop(); ctx.stat_count(pop(), n)
        elif op == OP_HALT:
            ctx.halt()
        elif op == OP_EXTERN:
            nargs = arg & 0xFF
            name = prog_extern_name(prog, arg >> 8)
            args = stack[len(stack) - nargs:] if nargs else []
            del stack[len(stack) - nargs:]
            push(ctx.call_extern(name, *args))
        elif op == OP_RETURN:
            return pop()
        elif op == OP_END:
            return None
        else:  # pragma: no cover
            raise Unlowerable(f"bad opcode {op}")


#: interpret_body needs extern names; backends resolve ids themselves.
_EXTERN_TABLES: dict[int, ExternTable] = {}


def prog_extern_name(prog: BodyProgram, xid: int) -> str:
    table = _EXTERN_TABLES.get(id(prog))
    if table is None:
        raise Unlowerable("extern table not registered for interpretation")
    return table.names[xid]


def register_extern_table(prog: BodyProgram, table: ExternTable) -> None:
    """Associate a program with its extern table for interpret_body."""
    _EXTERN_TABLES[id(prog)] = table
