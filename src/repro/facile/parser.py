"""Recursive-descent parser for Facile.

The grammar follows the paper's figures:

* ``token NAME[WIDTH] fields f LO:HI, ... ;`` — instruction token layout
  (Figure 4);
* ``pat NAME = <field constraints>;`` — instruction encodings as boolean
  constraints over fields, composable with ``&&``/``||`` and references
  to other pattern names (Figure 4);
* ``sem NAME { ... };`` — instruction semantics attached to a pattern
  (Figure 5);
* ``val``/``fun``/``extern`` declarations and a C-like statement and
  expression language (Figures 6, 7), including the ``?attr`` postfix
  form (``imm?sext(32)``, ``PC?exec()``) and ``switch (pc) { pat add:
  ... }`` pattern dispatch.
"""

from __future__ import annotations

from . import ast_nodes as A
from .lexer import Token, TokKind, tokenize
from .source import ParseError, SourceBuffer

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}

# Binary operator precedence, loosest binding first.
_BINARY_LEVELS = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


class Parser:
    """Parses a token list produced by :func:`repro.facile.lexer.tokenize`."""

    def __init__(self, source: SourceBuffer):
        self.source = source
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token helpers ------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokKind.EOF:
            self.pos += 1
        return tok

    def _check(self, text: str) -> bool:
        return self.cur.text == text and self.cur.kind in (TokKind.PUNCT, TokKind.KEYWORD)

    def _accept(self, text: str) -> bool:
        if self._check(text):
            self._advance()
            return True
        return False

    def _expect(self, text: str) -> Token:
        if not self._check(text):
            raise ParseError(f"expected {text!r}, found {self.cur.text!r}", self.cur.span)
        return self._advance()

    def _ident(self) -> str:
        if self.cur.kind is not TokKind.IDENT:
            raise ParseError(f"expected identifier, found {self.cur.text!r}", self.cur.span)
        return self._advance().text

    def _int(self) -> int:
        if self.cur.kind is not TokKind.INT:
            raise ParseError(f"expected integer, found {self.cur.text!r}", self.cur.span)
        return self._advance().value  # type: ignore[return-value]

    # -- program ------------------------------------------------------

    def parse_program(self) -> A.Program:
        decls: list[A.Decl] = []
        start = self.cur.span
        while self.cur.kind is not TokKind.EOF:
            decls.append(self._declaration())
        return A.Program(decls, span=start)

    def _declaration(self) -> A.Decl:
        tok = self.cur
        if self._accept("token"):
            return self._token_decl(tok)
        if self._accept("pat"):
            return self._pat_decl(tok)
        if self._accept("sem"):
            return self._sem_decl(tok)
        if self._accept("val"):
            return self._global_val(tok)
        if self._accept("fun"):
            return self._fun_decl(tok)
        if self._accept("extern"):
            return self._extern_decl(tok)
        raise ParseError(f"expected declaration, found {tok.text!r}", tok.span)

    def _token_decl(self, start: Token) -> A.TokenDecl:
        name = self._ident()
        self._expect("[")
        width = self._int()
        self._expect("]")
        self._expect("fields")
        fields: list[A.FieldDecl] = []
        while True:
            ftok = self.cur
            fname = self._ident()
            lo = self._int()
            self._expect(":")
            hi = self._int()
            if lo > hi:
                raise ParseError(f"field {fname!r} has lo > hi ({lo}:{hi})", ftok.span)
            if hi >= width:
                raise ParseError(f"field {fname!r} exceeds token width {width}", ftok.span)
            fields.append(A.FieldDecl(fname, lo, hi, span=ftok.span))
            if not self._accept(","):
                break
        self._expect(";")
        return A.TokenDecl(name, width, fields, span=start.span)

    def _pat_decl(self, start: Token) -> A.PatDecl:
        name = self._ident()
        self._expect("=")
        expr = self._pat_or()
        self._expect(";")
        return A.PatDecl(name, expr, span=start.span)

    def _pat_or(self) -> A.PatExpr:
        left = self._pat_and()
        while self._check("||"):
            tok = self._advance()
            left = A.PatOr(left, self._pat_and(), span=tok.span)
        return left

    def _pat_and(self) -> A.PatExpr:
        left = self._pat_primary()
        while self._check("&&"):
            tok = self._advance()
            left = A.PatAnd(left, self._pat_primary(), span=tok.span)
        return left

    def _pat_primary(self) -> A.PatExpr:
        if self._accept("("):
            inner = self._pat_or()
            self._expect(")")
            return inner
        tok = self.cur
        name = self._ident()
        for op in ("==", "!=", "<=", ">=", "<", ">"):
            if self._accept(op):
                value = self._int()
                return A.PatRel(name, op, value, span=tok.span)
        return A.PatRef(name, span=tok.span)

    def _sem_decl(self, start: Token) -> A.SemDecl:
        name = self._ident()
        body = self._block()
        self._accept(";")
        return A.SemDecl(name, body, span=start.span)

    def _global_val(self, start: Token) -> A.GlobalVal:
        name = self._ident()
        type_name = None
        if self._accept(":"):
            type_name = self._ident_or_keyword()
        init = None
        if self._accept("="):
            init = self._expr()
        self._expect(";")
        return A.GlobalVal(name, init, type_name, span=start.span)

    def _ident_or_keyword(self) -> str:
        if self.cur.kind in (TokKind.IDENT, TokKind.KEYWORD):
            return self._advance().text
        raise ParseError(f"expected type name, found {self.cur.text!r}", self.cur.span)

    def _fun_decl(self, start: Token) -> A.FunDecl:
        name = self._ident()
        self._expect("(")
        params: list[str] = []
        if not self._check(")"):
            params.append(self._ident())
            while self._accept(","):
                params.append(self._ident())
        self._expect(")")
        body = self._block()
        self._accept(";")
        return A.FunDecl(name, params, body, span=start.span)

    def _extern_decl(self, start: Token) -> A.ExternDecl:
        name = self._ident()
        self._expect("(")
        arity = self._int()
        self._expect(")")
        self._expect(";")
        return A.ExternDecl(name, arity, span=start.span)

    # -- statements ---------------------------------------------------

    def _block(self) -> A.Block:
        start = self._expect("{")
        stmts: list[A.Stmt] = []
        while not self._check("}"):
            stmts.append(self._statement())
        self._expect("}")
        return A.Block(stmts, span=start.span)

    def _statement(self) -> A.Stmt:
        tok = self.cur
        if self._check("{"):
            return self._block()
        if self._accept("val"):
            name = self._ident()
            type_name = None
            if self._accept(":"):
                type_name = self._ident_or_keyword()
            init = None
            if self._accept("="):
                init = self._expr()
            self._expect(";")
            return A.ValStmt(name, init, type_name, span=tok.span)
        if self._accept("if"):
            self._expect("(")
            cond = self._expr()
            self._expect(")")
            then_body = self._statement()
            else_body = self._statement() if self._accept("else") else None
            return A.If(cond, then_body, else_body, span=tok.span)
        if self._accept("switch"):
            return self._switch(tok)
        if self._accept("while"):
            self._expect("(")
            cond = self._expr()
            self._expect(")")
            return A.While(cond, self._statement(), span=tok.span)
        if self._accept("do"):
            body = self._statement()
            self._expect("while")
            self._expect("(")
            cond = self._expr()
            self._expect(")")
            self._expect(";")
            return A.DoWhile(body, cond, span=tok.span)
        if self._accept("for"):
            return self._for(tok)
        if self._accept("break"):
            self._expect(";")
            return A.Break(span=tok.span)
        if self._accept("continue"):
            self._expect(";")
            return A.Continue(span=tok.span)
        if self._accept("return"):
            value = None if self._check(";") else self._expr()
            self._expect(";")
            return A.Return(value, span=tok.span)
        return self._simple_stmt(semi=True)

    def _simple_stmt(self, semi: bool) -> A.Stmt:
        tok = self.cur
        expr = self._expr()
        for op in _ASSIGN_OPS:
            if self._check(op):
                self._advance()
                value = self._expr()
                if semi:
                    self._expect(";")
                if not isinstance(expr, (A.Name, A.Index)):
                    raise ParseError("assignment target must be a variable or element", tok.span)
                return A.Assign(expr, op, value, span=tok.span)
        if semi:
            self._expect(";")
        return A.ExprStmt(expr, span=tok.span)

    def _switch(self, start: Token) -> A.Switch:
        self._expect("(")
        scrutinee = self._expr()
        self._expect(")")
        self._expect("{")
        cases: list[A.Case] = []
        while not self._check("}"):
            ctok = self.cur
            if self._accept("pat"):
                names = [self._ident()]
                while self._accept(","):
                    names.append(self._ident())
                self._expect(":")
                body = self._case_body()
                cases.append(A.Case("pat", [], names, body, span=ctok.span))
            elif self._accept("case"):
                values = [self._expr()]
                while self._accept(","):
                    values.append(self._expr())
                self._expect(":")
                body = self._case_body()
                cases.append(A.Case("int", values, [], body, span=ctok.span))
            elif self._accept("default"):
                self._expect(":")
                body = self._case_body()
                cases.append(A.Case("default", [], [], body, span=ctok.span))
            else:
                raise ParseError(f"expected case/pat/default, found {self.cur.text!r}", self.cur.span)
        self._expect("}")
        return A.Switch(scrutinee, cases, span=start.span)

    def _case_body(self) -> A.Block:
        start = self.cur
        stmts: list[A.Stmt] = []
        while not (
            self._check("}") or self._check("case") or self._check("pat") or self._check("default")
        ):
            stmts.append(self._statement())
        return A.Block(stmts, span=start.span)

    def _for(self, start: Token) -> A.For:
        self._expect("(")
        init: A.Stmt | None = None
        if not self._check(";"):
            if self._accept("val"):
                vtok = self.tokens[self.pos - 1]
                name = self._ident()
                self._expect("=")
                init_expr = self._expr()
                init = A.ValStmt(name, init_expr, span=vtok.span)
            else:
                init = self._simple_stmt(semi=False)
        self._expect(";")
        cond = None if self._check(";") else self._expr()
        self._expect(";")
        step = None if self._check(")") else self._simple_stmt(semi=False)
        self._expect(")")
        body = self._statement()
        return A.For(init, cond, step, body, span=start.span)

    # -- expressions --------------------------------------------------

    def _expr(self) -> A.Expr:
        return self._binary(0)

    def _binary(self, level: int) -> A.Expr:
        if level >= len(_BINARY_LEVELS):
            return self._unary()
        left = self._binary(level + 1)
        ops = _BINARY_LEVELS[level]
        while self.cur.kind is TokKind.PUNCT and self.cur.text in ops:
            tok = self._advance()
            right = self._binary(level + 1)
            left = A.Binary(tok.text, left, right, span=tok.span)
        return left

    def _unary(self) -> A.Expr:
        tok = self.cur
        for op in ("-", "~", "!"):
            if self._check(op):
                self._advance()
                return A.Unary(op, self._unary(), span=tok.span)
        return self._postfix()

    def _postfix(self) -> A.Expr:
        expr = self._primary()
        while True:
            tok = self.cur
            if self._accept("["):
                index = self._expr()
                self._expect("]")
                expr = A.Index(expr, index, span=tok.span)
            elif self._accept("?"):
                name = self._ident()
                args: list[A.Expr] = []
                has_parens = False
                if self._accept("("):
                    has_parens = True
                    if not self._check(")"):
                        args.append(self._expr())
                        while self._accept(","):
                            args.append(self._expr())
                    self._expect(")")
                expr = A.Attr(expr, name, args, has_parens, span=tok.span)
            else:
                return expr

    def _primary(self) -> A.Expr:
        tok = self.cur
        if tok.kind is TokKind.INT:
            self._advance()
            return A.IntLit(tok.value, span=tok.span)  # type: ignore[arg-type]
        if tok.kind is TokKind.STRING:
            self._advance()
            return A.StrLit(tok.value, span=tok.span)  # type: ignore[arg-type]
        if self._accept("true"):
            return A.BoolLit(True, span=tok.span)
        if self._accept("false"):
            return A.BoolLit(False, span=tok.span)
        if self._accept("array"):
            self._expect("(")
            size = self._expr()
            self._expect(")")
            self._expect("{")
            init = self._expr()
            self._expect("}")
            return A.ArrayNew(size, init, span=tok.span)
        if self._accept("queue"):
            self._expect("(")
            self._expect(")")
            return A.QueueNew(span=tok.span)
        if self._accept("("):
            first = self._expr()
            if self._accept(","):
                items = [first, self._expr()]
                while self._accept(","):
                    items.append(self._expr())
                self._expect(")")
                return A.TupleLit(items, span=tok.span)
            self._expect(")")
            return first
        if tok.kind is TokKind.IDENT:
            name = self._advance().text
            if self._accept("("):
                args: list[A.Expr] = []
                if not self._check(")"):
                    args.append(self._expr())
                    while self._accept(","):
                        args.append(self._expr())
                self._expect(")")
                return A.Call(name, args, span=tok.span)
            return A.Name(name, span=tok.span)
        raise ParseError(f"expected expression, found {tok.text!r}", tok.span)


def parse(text: str, filename: str = "<facile>") -> A.Program:
    """Parse Facile source text into a :class:`Program` AST."""
    return Parser(SourceBuffer(text, filename)).parse_program()
