"""Facile: a language and compiler for fast-forwarding processor simulators.

This package reproduces the PLDI 2001 paper's primary contribution.  The
public surface:

* :func:`compile_source` — compile Facile source into a two-engine
  fast-forwarding simulator;
* :class:`FastForwardEngine` — memoized driver (fast replay + slow
  recording with miss recovery);
* :class:`PlainEngine` — conventional, non-memoized driver;
* :class:`SimContext` — dynamic simulator state (slots, target memory,
  statistics, extern bindings);
* :class:`ActionCache` — the specialized action cache.
"""

from .analysis import CheckReport, check_file, run_check
from .compiler import CompilationResult, compile_source
from .diagnostics import Diagnostic, DiagnosticError, DiagnosticSink
from .inspect import (
    cache_summary,
    dump_entry,
    explain_check,
    explain_division,
    hot_actions,
    trace_summary,
    why_dynamic,
)
from .tracecomp import Trace, TraceManager
from .pprint import format_expr, format_program, format_stmt
from .runtime import (
    ActionCache,
    CompiledSimulator,
    FastForwardEngine,
    Memory,
    PlainEngine,
    SimContext,
    SimulationError,
)
from .snapshot import (
    SnapshotError,
    SnapshotInfo,
    engine_fingerprint,
    fastsim_fingerprint,
    program_fingerprint,
    simulator_fingerprint,
    store_path,
    warm_start,
)
from .source import FacileError, LexError, ParseError, SemanticError

__all__ = [
    "ActionCache",
    "CheckReport",
    "Diagnostic",
    "DiagnosticError",
    "DiagnosticSink",
    "cache_summary",
    "check_file",
    "dump_entry",
    "explain_check",
    "explain_division",
    "format_expr",
    "format_program",
    "format_stmt",
    "hot_actions",
    "trace_summary",
    "Trace",
    "TraceManager",
    "CompilationResult",
    "CompiledSimulator",
    "FacileError",
    "FastForwardEngine",
    "LexError",
    "Memory",
    "ParseError",
    "PlainEngine",
    "SemanticError",
    "SimContext",
    "SimulationError",
    "SnapshotError",
    "SnapshotInfo",
    "compile_source",
    "engine_fingerprint",
    "fastsim_fingerprint",
    "program_fingerprint",
    "run_check",
    "simulator_fingerprint",
    "store_path",
    "warm_start",
    "why_dynamic",
]
