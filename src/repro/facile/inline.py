"""Flattening and inlining for Facile simulator step functions.

Facile forbids recursion precisely so that inter-procedural analysis can
be made trivial (paper §3.2).  This module exploits that: the entire
step function is flattened into a single body before binding-time
analysis runs.  Full inlining is also how the paper's compiler achieves
*polyvariant division* — every call site gets its own copy of the
callee, so each copy can receive its own binding-time labelling.

Passes applied, in order, to (a copy of) each function body:

1. **Pattern-switch expansion.**  ``s?exec()`` becomes a switch over the
   pattern index of the instruction at stream position ``s``, with the
   declared ``sem`` bodies inlined into the arms; user-written
   ``switch (s) { pat name: ... }`` forms expand the same way.  Token
   field names used inside the arms become pure bit-extraction
   expressions on the fetched token word.

2. **Side-effect lifting.**  Any sub-expression that can have an effect
   (fun calls, extern calls, dynamic built-ins, queue mutations,
   ``?verify``) is hoisted to its own ``val`` statement in evaluation
   order, leaving every remaining expression pure.  Loop conditions with
   lifted parts are normalized to ``while (true) { ...; if (!c) break; }``.

3. **Call inlining.**  All calls to Facile functions are replaced by the
   callee's (recursively flattened) body, with parameters bound to
   argument temporaries and all locals alpha-renamed.

4. **Return elimination.**  Early ``return`` is compiled away with a
   done-flag + guarded-remainder transform, so the flat body is pure
   structured control flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import ast_nodes as A
from .builtins import BUILTIN_FUNCS, QUEUE_ATTRS
from .sema import ProgramInfo
from .source import SemanticError, SourceSpan


@dataclass
class FlatMain:
    """The fully flattened simulator step function."""

    params: list[str]
    body: A.Block
    info: ProgramInfo
    local_names: list[str] = field(default_factory=list)


class Flattener:
    def __init__(self, info: ProgramInfo):
        self.info = info
        self.counter = 0
        self.local_names: list[str] = []

    # -- name generation -------------------------------------------------

    def fresh(self, base: str) -> str:
        self.counter += 1
        name = f"{base}__{self.counter}"
        self.local_names.append(name)
        return name

    # -- entry point -------------------------------------------------------

    def flatten(self, fun_name: str = "main") -> FlatMain:
        fun = self.info.functions.get(fun_name)
        if fun is None:
            raise SemanticError(f"no function named {fun_name!r}", self.info.program.span)
        env: dict[str, A.Expr] = {}
        params: list[str] = []
        for p in fun.params:
            unique = self.fresh(p)
            env[p] = A.Name(unique)
            params.append(unique)
        body = self._flatten_body(fun.body, env)
        body = _eliminate_returns(body, ret_var=None, flattener=self)
        return FlatMain(params, body, self.info, self.local_names)

    # -- body processing (rename + expand + lift + inline in one walk) -----

    def _flatten_body(self, block: A.Block, env: dict[str, A.Expr]) -> A.Block:
        out: list[A.Stmt] = []
        inner_env = dict(env)
        for stmt in block.stmts:
            out.extend(self._flatten_stmt(stmt, inner_env))
        return A.Block(out, span=block.span)

    def _flatten_stmt(self, stmt: A.Stmt, env: dict[str, A.Expr]) -> list[A.Stmt]:
        if isinstance(stmt, A.Block):
            return [self._flatten_body(stmt, env)]

        if isinstance(stmt, A.ValStmt):
            pre: list[A.Stmt] = []
            init = None
            if stmt.init is not None:
                init = self._flatten_expr(stmt.init, env, pre)
            unique = self.fresh(stmt.name)
            env[stmt.name] = A.Name(unique)
            pre.append(A.ValStmt(unique, init, stmt.type_name, span=stmt.span))
            return pre

        if isinstance(stmt, A.Assign):
            pre = []
            value = self._flatten_expr(stmt.value, env, pre)
            target = self._flatten_lvalue(stmt.target, env, pre)
            pre.append(A.Assign(target, stmt.op, value, span=stmt.span))
            return pre

        if isinstance(stmt, A.ExprStmt):
            pre = []
            expr = self._flatten_expr(stmt.expr, env, pre, want_value=False)
            if expr is not None:
                pre.append(A.ExprStmt(expr, span=stmt.span))
            return pre

        if isinstance(stmt, A.If):
            pre = []
            cond = self._flatten_expr(stmt.cond, env, pre)
            then_body = self._flatten_body(_as_block(stmt.then_body), dict(env))
            else_body = (
                self._flatten_body(_as_block(stmt.else_body), dict(env))
                if stmt.else_body is not None
                else None
            )
            pre.append(A.If(cond, then_body, else_body, span=stmt.span))
            return pre

        if isinstance(stmt, A.Switch):
            return self._flatten_switch(stmt, env)

        if isinstance(stmt, A.While):
            pre = []
            cond = self._flatten_expr(stmt.cond, env, pre)
            body = self._flatten_body(_as_block(stmt.body), dict(env))
            if not pre:
                return [A.While(cond, body, span=stmt.span)]
            # Condition had lifted side effects: re-evaluate them on
            # every iteration inside a while(true) loop.
            guard = A.If(
                A.Unary("!", cond, span=stmt.span),
                A.Block([A.Break(span=stmt.span)]),
                None,
                span=stmt.span,
            )
            loop_body = A.Block(pre + [guard] + body.stmts, span=stmt.span)
            return [A.While(A.BoolLit(True, span=stmt.span), loop_body, span=stmt.span)]

        if isinstance(stmt, A.DoWhile):
            body = self._flatten_body(_as_block(stmt.body), dict(env))
            pre = []
            cond = self._flatten_expr(stmt.cond, env, pre)
            guard = A.If(
                A.Unary("!", cond, span=stmt.span),
                A.Block([A.Break(span=stmt.span)]),
                None,
                span=stmt.span,
            )
            loop_body = A.Block(body.stmts + pre + [guard], span=stmt.span)
            return [A.While(A.BoolLit(True, span=stmt.span), loop_body, span=stmt.span)]

        if isinstance(stmt, A.For):
            if _contains_continue(stmt.body):
                raise SemanticError(
                    "continue inside 'for' is not supported (use while)", stmt.span
                )
            loop_env = dict(env)
            out: list[A.Stmt] = []
            if stmt.init is not None:
                out.extend(self._flatten_stmt(stmt.init, loop_env))
            cond = stmt.cond if stmt.cond is not None else A.BoolLit(True, span=stmt.span)
            pre: list[A.Stmt] = []
            cond_flat = self._flatten_expr(cond, loop_env, pre)
            body = self._flatten_body(_as_block(stmt.body), dict(loop_env))
            step_stmts: list[A.Stmt] = []
            if stmt.step is not None:
                step_stmts = self._flatten_stmt(stmt.step, dict(loop_env))
            if pre:
                guard = A.If(
                    A.Unary("!", cond_flat, span=stmt.span),
                    A.Block([A.Break(span=stmt.span)]),
                    None,
                    span=stmt.span,
                )
                loop_body = A.Block(pre + [guard] + body.stmts + step_stmts, span=stmt.span)
                out.append(A.While(A.BoolLit(True, span=stmt.span), loop_body, span=stmt.span))
            else:
                loop_body = A.Block(body.stmts + step_stmts, span=stmt.span)
                out.append(A.While(cond_flat, loop_body, span=stmt.span))
            return out

        if isinstance(stmt, (A.Break, A.Continue, A.Return)):
            if isinstance(stmt, A.Return) and stmt.value is not None:
                pre = []
                value = self._flatten_expr(stmt.value, env, pre)
                pre.append(A.Return(value, span=stmt.span))
                return pre
            return [stmt]

        raise SemanticError(f"unhandled statement {type(stmt).__name__}", stmt.span)

    def _flatten_lvalue(self, target: A.Expr, env: dict[str, A.Expr], pre: list[A.Stmt]) -> A.Expr:
        if isinstance(target, A.Name):
            mapped = env.get(target.ident)
            if mapped is not None:
                if not isinstance(mapped, A.Name):
                    raise SemanticError(
                        f"cannot assign to {target.ident!r} (bound to an expression)",
                        target.span,
                    )
                return A.Name(mapped.ident, span=target.span)
            return target  # a global
        if isinstance(target, A.Index):
            base = self._flatten_lvalue(target.base, env, pre)
            index = self._flatten_expr(target.index, env, pre)
            return A.Index(base, index, span=target.span)
        raise SemanticError("invalid assignment target", target.span)

    # -- switch / exec expansion -------------------------------------------

    def _flatten_switch(self, stmt: A.Switch, env: dict[str, A.Expr]) -> list[A.Stmt]:
        has_pat = any(c.kind == "pat" for c in stmt.cases)
        pre: list[A.Stmt] = []
        scrutinee = self._flatten_expr(stmt.scrutinee, env, pre)
        if not has_pat:
            cases = []
            for case in stmt.cases:
                values = [self._flatten_expr(v, env, pre) for v in case.values]
                body = self._flatten_body(case.body, dict(env))
                cases.append(A.Case(case.kind, values, [], body, span=case.span))
            pre.append(A.Switch(scrutinee, cases, span=stmt.span))
            return pre
        # Pattern dispatch: bind the stream position, fetch the token
        # word, decode to a pattern index, then switch on the index.
        return pre + self._expand_pat_dispatch(scrutinee, stmt.cases, env, stmt.span)

    def _expand_pat_dispatch(
        self,
        stream: A.Expr,
        cases: list[A.Case],
        env: dict[str, A.Expr],
        span: SourceSpan,
    ) -> list[A.Stmt]:
        out: list[A.Stmt] = []
        s_var = self.fresh("_pc")
        w_var = self.fresh("_word")
        p_var = self.fresh("_patidx")
        out.append(A.ValStmt(s_var, stream, span=span))
        out.append(
            A.ValStmt(w_var, A.Attr(A.Name(s_var), "word", [], span=span), span=span)
        )
        out.append(
            A.ValStmt(p_var, A.Attr(A.Name(s_var), "decode", [], span=span), span=span)
        )
        int_cases: list[A.Case] = []
        for case in cases:
            if case.kind == "pat":
                values = [
                    A.IntLit(self.info.patterns.pattern_index(n), span=case.span)
                    for n in case.pat_names
                ]
                token_width = self.info.patterns.token_width_for(case.pat_names, case.span)
                arm_env = dict(env)
                self._bind_fields(arm_env, case.pat_names[0], w_var)
                body = self._flatten_body(case.body, arm_env)
                int_cases.append(A.Case("int", values, [], body, span=case.span))
                del token_width  # widths are validated; decode uses token metadata
            elif case.kind == "default":
                body = self._flatten_body(case.body, dict(env))
                int_cases.append(A.Case("default", [], [], body, span=case.span))
            else:
                raise SemanticError("cannot mix pat and case arms in one switch", case.span)
        out.append(A.Switch(A.Name(p_var), int_cases, span=span))
        return out

    def _bind_fields(self, env: dict[str, A.Expr], pat_name: str, w_var: str) -> None:
        """Map field names to bit extractions on the fetched token word."""
        token = self.info.patterns.by_name[pat_name].token
        for fld in self.info.patterns.fields.values():
            if fld.token == token:
                env[fld.name] = A.Attr(
                    A.Name(w_var),
                    "bits",
                    [A.IntLit(fld.lo), A.IntLit(fld.hi)],
                )

    def _expand_exec(self, stream: A.Expr, env: dict[str, A.Expr], span: SourceSpan) -> list[A.Stmt]:
        """``s?exec()`` == pattern switch over all sems + trap default."""
        cases: list[A.Case] = []
        for pat_name, sem in self.info.sems.items():
            cases.append(A.Case("pat", [], [pat_name], sem.body, span=sem.span))
        trap = A.Block(
            [
                A.ExprStmt(
                    A.Call("halt", [], span=span),
                    span=span,
                )
            ],
            span=span,
        )
        cases.append(A.Case("default", [], [], trap, span=span))
        return self._expand_pat_dispatch(stream, cases, env, span)

    # -- expression flattening (rename, lift side effects, inline calls) ----

    def _flatten_expr(
        self,
        expr: A.Expr,
        env: dict[str, A.Expr],
        pre: list[A.Stmt],
        want_value: bool = True,
    ) -> A.Expr | None:
        """Return a pure expression equivalent to `expr`.

        Side-effecting parts are appended to `pre` as statements.  When
        `want_value` is False and the whole expression is a side effect
        (e.g. a void call), returns None.
        """
        if isinstance(expr, (A.IntLit, A.BoolLit, A.StrLit, A.QueueNew)):
            return expr
        if isinstance(expr, A.Name):
            mapped = env.get(expr.ident)
            if mapped is not None:
                return _clone_expr(mapped, expr.span)
            return expr  # global or (checked) field handled via env
        if isinstance(expr, A.Unary):
            return A.Unary(expr.op, self._flatten_expr(expr.operand, env, pre), span=expr.span)
        if isinstance(expr, A.Binary):
            left = self._flatten_expr(expr.left, env, pre)
            right = self._flatten_expr(expr.right, env, pre)
            return A.Binary(expr.op, left, right, span=expr.span)
        if isinstance(expr, A.Index):
            base = self._flatten_expr(expr.base, env, pre)
            index = self._flatten_expr(expr.index, env, pre)
            return A.Index(base, index, span=expr.span)
        if isinstance(expr, A.ArrayNew):
            size = self._flatten_expr(expr.size, env, pre)
            init = self._flatten_expr(expr.init, env, pre)
            return A.ArrayNew(size, init, span=expr.span)
        if isinstance(expr, A.TupleLit):
            items = [self._flatten_expr(i, env, pre) for i in expr.items]
            return A.TupleLit(items, span=expr.span)
        if isinstance(expr, A.Call):
            return self._flatten_call(expr, env, pre, want_value)
        if isinstance(expr, A.Attr):
            return self._flatten_attr(expr, env, pre, want_value)
        raise SemanticError(f"unhandled expression {type(expr).__name__}", expr.span)

    def _flatten_call(
        self, expr: A.Call, env: dict[str, A.Expr], pre: list[A.Stmt], want_value: bool
    ) -> A.Expr | None:
        args = [self._flatten_expr(a, env, pre) for a in expr.args]
        name = expr.func
        if name in self.info.functions:
            return self._inline_call(name, args, env, pre, want_value, expr.span)
        if name in self.info.externs or (
            name in BUILTIN_FUNCS and BUILTIN_FUNCS[name].bt_class == "dynamic"
        ):
            call = A.Call(name, args, span=expr.span)
            returns_value = name in self.info.externs or BUILTIN_FUNCS[name].returns_value
            if not want_value or not returns_value:
                pre.append(A.ExprStmt(call, span=expr.span))
                return None if not want_value else A.IntLit(0, span=expr.span)
            tmp = self.fresh("_t")
            pre.append(A.ValStmt(tmp, call, span=expr.span))
            return A.Name(tmp, span=expr.span)
        # Pure builtin: stays inline.
        return A.Call(name, args, span=expr.span)

    def _inline_call(
        self,
        name: str,
        args: list[A.Expr],
        env: dict[str, A.Expr],
        pre: list[A.Stmt],
        want_value: bool,
        span: SourceSpan,
    ) -> A.Expr | None:
        fun = self.info.functions[name]
        callee_env: dict[str, A.Expr] = {}
        for param, arg in zip(fun.params, args):
            tmp = self.fresh(param)
            pre.append(A.ValStmt(tmp, arg, span=span))
            callee_env[param] = A.Name(tmp)
        body = self._flatten_body(fun.body, callee_env)
        ret_var = self.fresh("_ret") if _contains_value_return(body) else None
        if ret_var is not None:
            pre.append(A.ValStmt(ret_var, A.IntLit(0, span=span), span=span))
        body = _eliminate_returns(body, ret_var=ret_var, flattener=self)
        pre.append(body)
        if not want_value:
            return None
        if ret_var is None:
            return A.IntLit(0, span=span)
        return A.Name(ret_var, span=span)

    def _flatten_attr(
        self, expr: A.Attr, env: dict[str, A.Expr], pre: list[A.Stmt], want_value: bool
    ) -> A.Expr | None:
        name = expr.name
        if name == "exec":
            base = self._flatten_expr(expr.base, env, pre)
            pre.extend(self._expand_exec(base, env, expr.span))
            return None if not want_value else A.IntLit(0, span=expr.span)
        base = self._flatten_expr(expr.base, env, pre)
        args = [self._flatten_expr(a, env, pre) for a in expr.args]
        attr = A.Attr(base, name, args, expr.has_parens, span=expr.span)
        if name == "verify" or (name in QUEUE_ATTRS and QUEUE_ATTRS[name][1]):
            # Side-effecting (queue mutation) or compiler-special (verify):
            # lift to statement level.
            if not want_value:
                pre.append(A.ExprStmt(attr, span=expr.span))
                return None
            tmp = self.fresh("_t")
            pre.append(A.ValStmt(tmp, attr, span=expr.span))
            return A.Name(tmp, span=expr.span)
        return attr


# -- return elimination ------------------------------------------------------


def _eliminate_returns(body: A.Block, ret_var: str | None, flattener: Flattener) -> A.Block:
    """Compile away ``return`` with a done-flag transform.

    Statements following a statement that *may* return are wrapped in
    ``if (done == 0) { ... }``; a return inside a loop additionally
    breaks out, and enclosing loops re-check the flag right after each
    inner loop.
    """
    if not _contains_return(body):
        return body
    done = flattener.fresh("_done")
    new_body = _rewrite_returns(body, done, ret_var, in_loop=False)
    stmts = [A.ValStmt(done, A.IntLit(0))] + new_body.stmts
    return A.Block(stmts, span=body.span)


def _rewrite_returns(block: A.Block, done: str, ret_var: str | None, in_loop: bool) -> A.Block:
    out: list[A.Stmt] = []
    rest = list(block.stmts)
    while rest:
        stmt = rest.pop(0)
        if isinstance(stmt, A.Return):
            if stmt.value is not None and ret_var is not None:
                out.append(A.Assign(A.Name(ret_var), "=", stmt.value, span=stmt.span))
            out.append(A.Assign(A.Name(done), "=", A.IntLit(1), span=stmt.span))
            if in_loop:
                out.append(A.Break(span=stmt.span))
            break  # everything after an unconditional return is dead
        may_return = _contains_return(stmt)
        out.append(_rewrite_stmt_returns(stmt, done, ret_var, in_loop))
        if may_return and rest:
            remainder = _rewrite_returns(A.Block(rest, span=block.span), done, ret_var, in_loop)
            out.append(
                A.If(
                    A.Binary("==", A.Name(done), A.IntLit(0)),
                    remainder,
                    None,
                    span=block.span,
                )
            )
            rest = []
    return A.Block(out, span=block.span)


def _rewrite_stmt_returns(stmt: A.Stmt, done: str, ret_var: str | None, in_loop: bool) -> A.Stmt:
    if not _contains_return(stmt):
        return stmt
    if isinstance(stmt, A.Block):
        return _rewrite_returns(stmt, done, ret_var, in_loop)
    if isinstance(stmt, A.If):
        then_body = _rewrite_stmt_returns(stmt.then_body, done, ret_var, in_loop)
        else_body = (
            _rewrite_stmt_returns(stmt.else_body, done, ret_var, in_loop)
            if stmt.else_body is not None
            else None
        )
        return A.If(stmt.cond, then_body, else_body, span=stmt.span)
    if isinstance(stmt, A.Switch):
        cases = [
            A.Case(
                c.kind,
                c.values,
                c.pat_names,
                _rewrite_returns(c.body, done, ret_var, in_loop),
                span=c.span,
            )
            for c in stmt.cases
        ]
        return A.Switch(stmt.scrutinee, cases, span=stmt.span)
    if isinstance(stmt, A.While):
        inner = _rewrite_stmt_returns(stmt.body, done, ret_var, in_loop=True)
        check = A.If(
            A.Binary("!=", A.Name(done), A.IntLit(0)),
            A.Block([A.Break(span=stmt.span)]) if in_loop else A.Block([]),
            None,
            span=stmt.span,
        )
        # After the loop: if we are ourselves inside a loop, propagate the
        # break; at top level the guarded-remainder wrapping in
        # _rewrite_returns handles the rest.
        if in_loop:
            return A.Block([A.While(stmt.cond, _as_block(inner), span=stmt.span), check])
        return A.While(stmt.cond, _as_block(inner), span=stmt.span)
    raise SemanticError(f"return inside unsupported construct {type(stmt).__name__}", stmt.span)


# -- small tree utilities -----------------------------------------------------


def _as_block(stmt: A.Stmt) -> A.Block:
    return stmt if isinstance(stmt, A.Block) else A.Block([stmt], span=stmt.span)


def _clone_expr(expr: A.Expr, span: SourceSpan) -> A.Expr:
    if isinstance(expr, A.Name):
        return A.Name(expr.ident, span=span)
    return expr  # field substitutions are shared, pure templates


def _contains_return(node: A.Node) -> bool:
    return _any_node(node, A.Return)


def _contains_value_return(node: A.Node) -> bool:
    for child in _iter_nodes(node):
        if isinstance(child, A.Return) and child.value is not None:
            return True
    return False


def _contains_continue(node: A.Node) -> bool:
    return _any_node(node, A.Continue)


def _any_node(node: A.Node, cls: type) -> bool:
    return any(isinstance(child, cls) for child in _iter_nodes(node))


def _iter_nodes(node: A.Node):
    yield node
    for value in vars(node).values():
        if isinstance(value, A.Node):
            yield from _iter_nodes(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, A.Node):
                    yield from _iter_nodes(item)


def flatten_program(info: ProgramInfo, fun_name: str = "main") -> FlatMain:
    """Flatten `fun_name` (default: the step function) into one body."""
    return Flattener(info).flatten(fun_name)
