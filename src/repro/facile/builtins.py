"""Built-in functions, expression attributes, and value helpers.

The paper motivates building data types and helper functions into the
language: "By including these functions and data types into the
language, their semantics are known, so a compiler can analyze and
transform code that uses them" (§3.2).  This module is that knowledge:

* a registry of built-in *functions* (callable as ``name(args)``) with
  their arity and binding-time class;
* a registry of built-in *attributes* (``expr?name(args)``) likewise;
* the pure Python helpers the generated simulators call at run time
  (sign extension, 32-bit wrapping, SPARC-style condition codes).

Binding-time classes:

``pure``
    Result binding time is the join of the operands'.  No side effects.
``dynamic``
    Touches dynamic simulator state (target memory, statistics,
    the host world).  Always a dynamic action.
``control``
    Handled specially by the compiler (``?exec``, ``?verify``).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BuiltinSig:
    name: str
    arity: int
    bt_class: str  # "pure" | "dynamic" | "control"
    returns_value: bool = True


# -- built-in functions ------------------------------------------------

BUILTIN_FUNCS: dict[str, BuiltinSig] = {
    sig.name: sig
    for sig in [
        # Pure arithmetic helpers.
        BuiltinSig("min", 2, "pure"),
        BuiltinSig("max", 2, "pure"),
        BuiltinSig("abs", 1, "pure"),
        BuiltinSig("popcount", 1, "pure"),
        # Condition-code computation (packed NZVC nibble).
        BuiltinSig("cc_add", 2, "pure"),
        BuiltinSig("cc_sub", 2, "pure"),
        BuiltinSig("cc_logic", 1, "pure"),
        BuiltinSig("cc_branch_taken", 2, "pure"),
        BuiltinSig("udiv32", 2, "pure"),
        BuiltinSig("umul32", 2, "pure"),
        # select(c, a, b) == a if c else b (both arms evaluated); it lets
        # descriptions avoid rt-static control between dynamic
        # statements, which keeps coalesced actions large.
        BuiltinSig("select", 3, "pure"),
        # Target memory: contents are dynamic data (paper §2.1 lists
        # "addresses resident in a simulated data cache" as dynamic).
        BuiltinSig("mem_read", 1, "dynamic"),
        BuiltinSig("mem_read8", 1, "dynamic"),
        BuiltinSig("mem_read16", 1, "dynamic"),
        BuiltinSig("mem_write", 2, "dynamic", returns_value=False),
        BuiltinSig("mem_write8", 2, "dynamic", returns_value=False),
        BuiltinSig("mem_write16", 2, "dynamic", returns_value=False),
        # Statistics and simulation control.
        BuiltinSig("stat_retire", 1, "dynamic", returns_value=False),
        BuiltinSig("stat_cycle", 1, "dynamic", returns_value=False),
        BuiltinSig("stat_count", 2, "dynamic", returns_value=False),
        BuiltinSig("halt", 0, "dynamic", returns_value=False),
        BuiltinSig("log_value", 1, "dynamic", returns_value=False),
    ]
}

# -- built-in expression attributes -------------------------------------

PURE_ATTRS: dict[str, int] = {
    # name -> number of arguments
    "sext": 1,  # x?sext(n): interpret low n bits of x as signed
    "zext": 1,  # x?zext(n): mask x to its low n bits
    "u32": 0,  # x?u32: wrap to unsigned 32-bit
    "s32": 0,  # x?s32: interpret as signed 32-bit
    "bit": 1,  # x?bit(i): bit i of x
    "bits": 2,  # x?bits(lo, hi): inclusive bit range, shifted down
}

STREAM_ATTRS: dict[str, int] = {
    # Token streams: addresses into the (run-time static) text segment.
    "word": 0,  # s?word(): fetch the token at address s
    "decode": 0,  # s?decode(): pattern index of the instruction at s
}

CONTROL_ATTRS: dict[str, int] = {
    "exec": 0,  # s?exec(): decode + dispatch to sem bodies (inlined)
    "verify": 0,  # e?verify: dynamic-result pin (paper §4.2)
}

QUEUE_ATTRS: dict[str, tuple[int, bool]] = {
    # name -> (arity, mutates container)
    "push_back": (1, True),
    "push_front": (1, True),
    "pop_back": (0, True),
    "pop_front": (0, True),
    "front": (0, False),
    "back": (0, False),
    "size": (0, False),
    "empty": (0, False),
    "clear": (0, True),
    "copy": (0, False),
}


def known_attr(name: str) -> bool:
    return (
        name in PURE_ATTRS
        or name in STREAM_ATTRS
        or name in CONTROL_ATTRS
        or name in QUEUE_ATTRS
    )


# -- run-time value helpers (used by generated code) ---------------------

_U32 = 0xFFFFFFFF


def sext(value: int, bits: int) -> int:
    """Interpret the low `bits` bits of `value` as a signed integer."""
    value &= (1 << bits) - 1
    sign = 1 << (bits - 1)
    return value - (1 << bits) if value & sign else value


def zext(value: int, bits: int) -> int:
    """Mask `value` to its low `bits` bits."""
    return value & ((1 << bits) - 1)


def u32(value: int) -> int:
    """Wrap to an unsigned 32-bit quantity (register write semantics)."""
    return value & _U32


def s32(value: int) -> int:
    """Interpret a 32-bit quantity as signed (for comparisons)."""
    return sext(value, 32)


def bit(value: int, i: int) -> int:
    return (value >> i) & 1


def bits(value: int, lo: int, hi: int) -> int:
    return (value >> lo) & ((1 << (hi - lo + 1)) - 1)


def popcount(value: int) -> int:
    return bin(value & _U32).count("1")


# Condition codes are packed as an NZVC nibble: N=8, Z=4, V=2, C=1.
CC_N, CC_Z, CC_V, CC_C = 8, 4, 2, 1


def cc_add(a: int, b: int) -> int:
    """NZVC nibble for 32-bit addition a + b."""
    a &= _U32
    b &= _U32
    total = a + b
    result = total & _U32
    cc = 0
    if result & 0x80000000:
        cc |= CC_N
    if result == 0:
        cc |= CC_Z
    if (~(a ^ b) & (a ^ result)) & 0x80000000:
        cc |= CC_V
    if total > _U32:
        cc |= CC_C
    return cc


def cc_sub(a: int, b: int) -> int:
    """NZVC nibble for 32-bit subtraction a - b (SPARC subcc/cmp)."""
    a &= _U32
    b &= _U32
    result = (a - b) & _U32
    cc = 0
    if result & 0x80000000:
        cc |= CC_N
    if result == 0:
        cc |= CC_Z
    if ((a ^ b) & (a ^ result)) & 0x80000000:
        cc |= CC_V
    if a < b:
        cc |= CC_C
    return cc


def cc_logic(result: int) -> int:
    """NZVC nibble for a logical operation result (V and C cleared)."""
    result &= _U32
    cc = 0
    if result & 0x80000000:
        cc |= CC_N
    if result == 0:
        cc |= CC_Z
    return cc


def select(cond, a, b):
    """Non-short-circuit conditional: both arms are evaluated."""
    return a if cond else b


def udiv32(a: int, b: int) -> int:
    """Unsigned 32-bit division; division by zero yields 0 (no traps)."""
    if b == 0:
        return 0
    return ((a & _U32) // (b & _U32)) & _U32


def umul32(a: int, b: int) -> int:
    """Unsigned 32-bit multiplication (low word)."""
    return ((a & _U32) * (b & _U32)) & _U32


def cc_branch_taken(cond: int, cc: int) -> bool:
    """Evaluate a SPARC integer condition-code test.

    `cond` is the 4-bit SPARC branch condition field (Bicc cond values);
    `cc` is an NZVC nibble.
    """
    n = bool(cc & CC_N)
    z = bool(cc & CC_Z)
    v = bool(cc & CC_V)
    c = bool(cc & CC_C)
    table = {
        0b1000: True,  # ba
        0b0000: False,  # bn
        0b1001: not z,  # bne
        0b0001: z,  # be
        0b1010: not (z or (n != v)),  # bg
        0b0010: z or (n != v),  # ble
        0b1011: n == v,  # bge
        0b0011: n != v,  # bl
        0b1100: not (c or z),  # bgu
        0b0100: c or z,  # bleu
        0b1101: not c,  # bcc / bgeu
        0b0101: c,  # bcs / blu
        0b1110: not n,  # bpos
        0b0110: n,  # bneg
        0b1111: not v,  # bvc
        0b0111: v,  # bvs
    }
    return table[cond & 0xF]


# Namespace handed to generated simulator modules.
RUNTIME_HELPERS = {
    "sext": sext,
    "zext": zext,
    "u32": u32,
    "s32": s32,
    "bit": bit,
    "bits": bits,
    "popcount": popcount,
    "cc_add": cc_add,
    "cc_sub": cc_sub,
    "cc_logic": cc_logic,
    "cc_branch_taken": cc_branch_taken,
    "udiv32": udiv32,
    "umul32": umul32,
    "select": select,
}
