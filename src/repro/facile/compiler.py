"""The Facile compiler facade.

``compile_source`` runs the whole pipeline of the paper's Figure 1/§4:

    parse  →  semantic analysis  →  flattening/inlining  →
    binding-time analysis  →  dynamic-result-test insertion  →
    two-engine code generation

and returns a :class:`~repro.facile.runtime.CompiledSimulator` ready to
drive with :class:`~repro.facile.runtime.FastForwardEngine` (memoized)
or :class:`~repro.facile.runtime.PlainEngine` (conventional).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .bta import Division, analyze_binding_times, insert_dynamic_result_tests
from .codegen import CodeGenerator
from .diagnostics import Diagnostic, DiagnosticSink
from .inline import FlatMain, flatten_program
from .optimize import fold_constants
from .parser import parse
from .runtime import CompiledSimulator
from .sema import ProgramInfo, analyze
from .snapshot import simulator_fingerprint
from .source import SourceBuffer


@dataclass
class CompilationResult:
    """The compiled simulator plus every intermediate artifact, for
    inspection by tests, benchmarks, and the curious."""

    simulator: CompiledSimulator
    info: ProgramInfo
    flat: FlatMain
    division: Division
    n_dynamic_result_tests: int
    n_constant_folds: int = 0
    #: Warnings/infos from the static-analysis passes; populated only
    #: when ``compile_source(..., check=True)``.
    diagnostics: list[Diagnostic] = field(default_factory=list)


def compile_source(
    source: str,
    name: str = "simulator",
    filename: str = "<facile>",
    with_plain: bool = True,
    flush_policy: str = "all",
    keep_flushed: tuple[str, ...] = ("init",),
    coalesce: bool = True,
    fold: bool = True,
    check: bool = False,
) -> CompilationResult:
    """Compile Facile source text into a fast-forwarding simulator.

    ``flush_policy="live"`` enables the paper's §6.3-item-3 liveness
    optimization: dead rt-static globals are not flushed to shared
    state at step boundaries (``keep_flushed`` names are always kept).
    ``coalesce=False`` reverts to one action per dynamic statement
    (Figure 8's one-statement-per-block granularity), used by the
    ablation benchmarks.  ``fold`` controls compile-time constant
    folding (§6.3 item 5).  ``check=True`` additionally runs the
    static-analysis passes (see :mod:`repro.facile.analysis`): errors
    raise the usual batched ``SemanticError``; warnings and infos land
    in ``CompilationResult.diagnostics``.
    """
    sink: DiagnosticSink | None = None
    if check:
        sink = DiagnosticSink(SourceBuffer(source, filename))
    program = parse(source, filename)
    info = analyze(program, sink=sink)
    if sink is not None:
        from .analysis import AnalysisContext, run_passes

        sink.checkpoint()
        ctx = AnalysisContext(info, sink.buffer)
        run_passes("ast", ctx, sink)
    flat = flatten_program(info)
    n_folds = fold_constants(flat) if fold else 0
    division = analyze_binding_times(flat, sink)
    if sink is not None:
        ctx.flat, ctx.division = flat, division
        run_passes("bta", ctx, sink)
        sink.checkpoint()
    n_tests = insert_dynamic_result_tests(flat, division)
    if sink is not None:
        ctx.n_inserted = n_tests
        run_passes("post", ctx, sink)
        sink.checkpoint()
    generator = CodeGenerator(
        division,
        name=name,
        flush_policy=flush_policy,
        keep_flushed=keep_flushed,
        coalesce=coalesce,
    )
    simulator = generator.build(with_plain=with_plain)
    # Content fingerprint for snapshot addressing: the generated
    # sources capture action numbering and baked-in machine parameters
    # exactly, so equal fingerprints guarantee replay compatibility.
    simulator.fingerprint = simulator_fingerprint(simulator)
    return CompilationResult(
        simulator=simulator,
        info=info,
        flat=flat,
        division=division,
        n_dynamic_result_tests=n_tests,
        n_constant_folds=n_folds,
        diagnostics=list(sink.diagnostics) if sink is not None else [],
    )
