"""Static-analysis passes and the ``repro check`` pass manager.

The compiler's front half (sema, flattening, binding-time analysis)
guarantees that a program *can* be compiled.  The passes here answer the
questions the paper's restrictions leave to the simulator author:

* will this value be read before it is ever written? (``FAC101``)
* is this function / sem / global dead weight? (``FAC102``–``FAC105``)
* can this pattern or ``pat`` arm ever fire, and do arms overlap?
  (``FAC110``/``FAC111``)
* does the binding-time division actually hold — is any dynamic value
  steering control flow or reaching the rt-static step key without a
  dynamic result test? (``FAC200``–``FAC203``, the *BTA-soundness
  audit*; §4 of the paper is the correctness argument this enforces)
* will the rt-static key or an rt-static loop blow up the action cache?
  (``FAC301``/``FAC302``, the *cache-blowup predictor*; §6.2 is where
  the paper hits this in practice)

Passes are small functions registered with a stage:

``ast``
    After semantic analysis; sees the resolved :class:`ProgramInfo`.
``bta``
    After binding-time analysis but *before* dynamic result tests are
    inserted; sees the flattened body and the :class:`Division`.
``post``
    After result-test insertion; invariant checks only.
``ir``
    Below the AST: after code generation, over the replay-IR bodies the
    C backend would lower.  Bytecode verification (``FAC401``–``FAC405``),
    lowerability lint with why-not provenance (``FAC410``/``FAC411``),
    and the uarch module-protocol audit (``FAC5xx``).

:func:`run_check` drives the whole pipeline over one source text and
returns a :class:`CheckReport` (used by the ``repro check`` CLI and by
``inspect.explain_check``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from . import ast_nodes as A
from .bta import (
    DYNAMIC,
    Division,
    RT_STATIC,
    analyze_binding_times,
    insert_dynamic_result_tests,
)
from .builtins import BUILTIN_FUNCS, QUEUE_ATTRS
from .diagnostics import DiagnosticSink, Note
from .inline import FlatMain, flatten_program
from .ir_verify import (
    NATIVE_EXTERN_NAMES,
    audit_builtin_models,
    audit_model_classes,
    verify_body,
    wrap_census,
)
from .parser import parse
from .replay_ir import ExternTable, Unlowerable, compile_body
from .patterns import PatternDef, pattern_shadowed_by, patterns_intersect
from .sema import ProgramInfo, analyze
from .source import FacileError, SourceBuffer, SourceSpan, UNKNOWN_SPAN


# -- pass registry -------------------------------------------------------------


@dataclass
class AnalysisContext:
    """Everything a pass may look at.  `flat`/`division` are None for
    ``ast``-stage passes; `n_inserted` is set only for ``post``."""

    info: ProgramInfo
    buffer: SourceBuffer | None = None
    flat: FlatMain | None = None
    division: Division | None = None
    n_inserted: int = -1
    # Set only for "ir"-stage passes: the generated simulator whose
    # replay bodies the IR tier verifies, plus a summary dict the ir
    # passes fill in (copied onto CheckReport.ir by run_check).
    compiled: object | None = None
    ir: dict = field(default_factory=dict)


@dataclass(frozen=True)
class AnalysisPass:
    name: str
    stage: str  # "ast" | "bta" | "post" | "ir"
    run: Callable[[AnalysisContext, DiagnosticSink], None]
    description: str = ""


PASSES: list[AnalysisPass] = []


def _register(name: str, stage: str, description: str):
    def deco(fn):
        PASSES.append(AnalysisPass(name, stage, fn, description))
        return fn

    return deco


def run_passes(stage: str, ctx: AnalysisContext, sink: DiagnosticSink,
               only: set[str] | None = None) -> list[str]:
    ran: list[str] = []
    for p in PASSES:
        if p.stage != stage:
            continue
        if only is not None and p.name not in only:
            continue
        p.run(ctx, sink)
        ran.append(p.name)
    return ran


# -- helpers shared by passes --------------------------------------------------


def _original_name(unique: str) -> str:
    """Undo the flattener's ``name__N`` alpha-renaming for messages."""
    base, sep, tail = unique.rpartition("__")
    if sep and tail.isdigit():
        return base
    return unique


def _iter_nodes(node: A.Node):
    yield node
    for value in vars(node).values():
        if isinstance(value, A.Node):
            yield from _iter_nodes(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, A.Node):
                    yield from _iter_nodes(item)


def _is_dynamic_call(expr: A.Expr, info: ProgramInfo) -> str | None:
    """Return a human label if `expr` is an extern / dynamic-builtin call."""
    if isinstance(expr, A.Call):
        if expr.func in info.externs:
            return f"extern {expr.func!r}"
        sig = BUILTIN_FUNCS.get(expr.func)
        if sig is not None and sig.bt_class != "pure":
            return f"dynamic builtin {expr.func!r}"
    return None


# -- "why dynamic" provenance --------------------------------------------------


class DynamismProvenance:
    """Explains *why* a variable ended up dynamic in the division.

    Built once from the flat body: for every variable we record its
    defining assignments (span + the expression's variable sources and
    dynamic roots).  :meth:`chain` walks from a variable back to a root
    — an extern/dynamic-builtin call, or a global that enters the step
    dynamic — producing one :class:`Note` per hop.
    """

    def __init__(self, flat: FlatMain, division: Division):
        self.division = division
        self.info = flat.info
        # var -> list of (span, direct roots, source vars)
        self.defs: dict[str, list[tuple[SourceSpan, list[str], set[str]]]] = {}
        self._collect(flat.body)

    def _expr_deps(self, expr: A.Expr | None) -> tuple[list[str], set[str]]:
        roots: list[str] = []
        sources: set[str] = set()
        if expr is None:
            return roots, sources
        for node in _iter_nodes(expr):
            label = _is_dynamic_call(node, self.info)
            if label is not None:
                roots.append(f"value returned by {label}")
            elif isinstance(node, A.Attr) and node.name == "verify":
                # ?verify cuts the dynamic chain: its result is rt-static.
                return [], set()
            elif isinstance(node, A.Name):
                sources.add(node.ident)
        return roots, sources

    def _add_def(self, name: str, span: SourceSpan, *exprs: A.Expr | None) -> None:
        roots: list[str] = []
        sources: set[str] = set()
        for e in exprs:
            r, s = self._expr_deps(e)
            roots.extend(r)
            sources |= s
        self.defs.setdefault(name, []).append((span, roots, sources))

    def _collect(self, node: A.Node) -> None:
        for child in _iter_nodes(node):
            if isinstance(child, A.ValStmt) and child.init is not None:
                self._add_def(child.name, child.span, child.init)
            elif isinstance(child, A.Assign):
                target = child.target
                if isinstance(target, A.Name):
                    self._add_def(target.ident, child.span, child.value)
                elif isinstance(target, A.Index) and isinstance(target.base, A.Name):
                    self._add_def(
                        target.base.ident, child.span, child.value, target.index
                    )
            elif isinstance(child, A.ExprStmt):
                expr = child.expr
                if (
                    isinstance(expr, A.Attr)
                    and expr.name in QUEUE_ATTRS
                    and QUEUE_ATTRS[expr.name][1]
                    and isinstance(expr.base, A.Name)
                    and expr.args
                ):
                    self._add_def(expr.base.ident, child.span, expr.args[0])

    def _entry_dynamic_global(self, name: str) -> bool:
        d = self.division
        return (
            name in self.info.globals
            and name in d.assigned_globals
            and name not in d.local_like_globals
        )

    def chain(self, name: str, limit: int = 8) -> list[Note]:
        """Notes tracing `name` back to a dynamic root (possibly empty)."""
        notes: list[Note] = []
        visited: set[str] = set()
        current = name
        while len(notes) < limit:
            if current in visited:
                break
            visited.add(current)
            if self._entry_dynamic_global(current) and current != name:
                notes.append(
                    Note(
                        f"global {current!r} enters the step dynamic "
                        "(its previous-step value is not run-time static)"
                    )
                )
                break
            best: tuple[SourceSpan, str, str | None] | None = None
            for span, roots, sources in self.defs.get(current, []):
                if roots:
                    best = (span, roots[0], None)
                    break
                for src in sorted(sources):
                    if self.division.var_bt(src) == DYNAMIC and src not in visited:
                        best = (span, "", src)
                        break
                if best is not None:
                    break
            if best is None:
                if self._entry_dynamic_global(current):
                    notes.append(
                        Note(
                            f"global {current!r} enters the step dynamic "
                            "(its previous-step value is not run-time static)"
                        )
                    )
                break
            span, root, src = best
            pretty = _original_name(current)
            if src is None:
                notes.append(
                    Note(f"{pretty!r} becomes dynamic here: {root}", span)
                )
                break
            notes.append(
                Note(
                    f"{pretty!r} is assigned from dynamic "
                    f"{_original_name(src)!r} here",
                    span,
                )
            )
            current = src
        return notes


def why_dynamic(flat: FlatMain, division: Division, name: str) -> list[str]:
    """Human-readable provenance chain for a dynamic variable."""
    if division.var_bt(name) != DYNAMIC:
        return [f"{name!r} is run-time static"]
    prov = DynamismProvenance(flat, division)
    notes = prov.chain(name)
    if not notes:
        return [f"{name!r} is dynamic at step entry"]
    return [
        n.message + (f" ({n.span})" if n.span is not None and n.span.is_known else "")
        for n in notes
    ]


# -- pass: definite assignment / use before init (FAC101) ----------------------


@_register(
    "use-before-init",
    "bta",
    "locals declared without an initializer must be written before read",
)
def _pass_use_before_init(ctx: AnalysisContext, sink: DiagnosticSink) -> None:
    """Definite-assignment over the flat body.

    Same conservatism as BTA's local-like-global classification: loops
    are assumed to run zero times, branches intersect.  Only flat locals
    are checked — uninitialized *globals* are the host-interface idiom
    (``val init;``, stream PCs) and live in the runtime's slot store.
    """
    flat = ctx.flat
    assert flat is not None
    declared_uninit: dict[str, SourceSpan] = {}
    reported: set[str] = set()

    def scan_expr(expr: A.Expr | None, assigned: set[str]) -> None:
        if expr is None:
            return
        for node in _iter_nodes(expr):
            if (
                isinstance(node, A.Name)
                and node.ident in declared_uninit
                and node.ident not in assigned
                and node.ident not in reported
            ):
                reported.add(node.ident)
                sink.emit(
                    "FAC101",
                    f"{_original_name(node.ident)!r} may be read before "
                    "initialization",
                    node.span,
                    notes=(
                        Note(
                            "declared without an initializer here",
                            declared_uninit[node.ident],
                        ),
                    ),
                )

    def scan_stmt(stmt: A.Stmt, assigned: set[str]) -> set[str]:
        if isinstance(stmt, A.Block):
            for s in stmt.stmts:
                assigned = scan_stmt(s, assigned)
            return assigned
        if isinstance(stmt, A.ValStmt):
            scan_expr(stmt.init, assigned)
            if stmt.init is None:
                declared_uninit[stmt.name] = stmt.span
                return assigned
            return assigned | {stmt.name}
        if isinstance(stmt, A.Assign):
            scan_expr(stmt.value, assigned)
            target = stmt.target
            if isinstance(target, A.Name):
                if stmt.op != "=":
                    scan_expr(target, assigned)  # compound assign reads too
                return assigned | {target.ident}
            if isinstance(target, A.Index):
                scan_expr(target.index, assigned)
                scan_expr(target.base, assigned)  # element write reads binding
            return assigned
        if isinstance(stmt, A.ExprStmt):
            scan_expr(stmt.expr, assigned)
            return assigned
        if isinstance(stmt, A.If):
            scan_expr(stmt.cond, assigned)
            a_then = scan_stmt(stmt.then_body, set(assigned))
            a_else = (
                scan_stmt(stmt.else_body, set(assigned))
                if stmt.else_body is not None
                else set(assigned)
            )
            return a_then & a_else
        if isinstance(stmt, A.Switch):
            scan_expr(stmt.scrutinee, assigned)
            outcomes = []
            has_default = False
            for case in stmt.cases:
                for v in case.values:
                    scan_expr(v, assigned)
                if case.kind == "default":
                    has_default = True
                outcomes.append(scan_stmt(case.body, set(assigned)))
            if outcomes and has_default:
                result = outcomes[0]
                for o in outcomes[1:]:
                    result &= o
                return result
            return assigned
        if isinstance(stmt, A.While):
            scan_expr(stmt.cond, assigned)
            scan_stmt(stmt.body, set(assigned))
            return assigned  # loop may run zero times
        return assigned

    scan_stmt(flat.body, set())


# -- pass: dead code (FAC102-FAC105) -------------------------------------------


@_register(
    "dead-code",
    "ast",
    "functions never called from main, undispatched sems, unused globals",
)
def _pass_dead_code(ctx: AnalysisContext, sink: DiagnosticSink) -> None:
    info = ctx.info

    # Call edges (funs only; sem bodies can call funs too).
    def callees(node: A.Node) -> set[str]:
        return {
            n.func
            for n in _iter_nodes(node)
            if isinstance(n, A.Call) and n.func in info.functions
        }

    # Reachability from main, interleaving fun calls and sem dispatch:
    # any reachable ?exec makes every sem reachable; a reachable pat
    # switch makes the sems of its named patterns reachable.
    reachable_funs: set[str] = set()
    reachable_sems: set[str] = set()
    work: list[A.Node] = []
    if "main" in info.functions:
        reachable_funs.add("main")
        work.append(info.functions["main"].body)
    while work:
        body = work.pop()
        for node in _iter_nodes(body):
            if isinstance(node, A.Call) and node.func in info.functions:
                if node.func not in reachable_funs:
                    reachable_funs.add(node.func)
                    work.append(info.functions[node.func].body)
            elif isinstance(node, A.Attr) and node.name == "exec":
                for pat_name in info.sems:
                    if pat_name not in reachable_sems:
                        reachable_sems.add(pat_name)
                        work.append(info.sems[pat_name].body)
            elif isinstance(node, A.Case) and node.kind == "pat":
                for pat_name in node.pat_names:
                    if pat_name in info.sems and pat_name not in reachable_sems:
                        reachable_sems.add(pat_name)
                        work.append(info.sems[pat_name].body)

    for name, fun in info.functions.items():
        if name not in reachable_funs:
            sink.emit(
                "FAC102",
                f"function {name!r} is never called from 'main'",
                fun.span,
            )
    for pat_name, sem in info.sems.items():
        if pat_name not in reachable_sems:
            sink.emit(
                "FAC103",
                f"sem for pattern {pat_name!r} is never dispatched "
                "(no reachable ?exec or pat switch names it)",
                sem.span,
            )

    # Global read/write census over the whole program (dead funs
    # included, so a global used only by a dead fun gets one warning,
    # not two).  A Name occurrence is a read unless it is exactly the
    # target of a plain ``=`` or the receiver of a mutating queue op.
    reads: set[str] = set()
    writes: set[str] = set()

    bodies: list[A.Node] = [f.body for f in info.functions.values()]
    bodies += [s.body for s in info.sems.values()]
    bodies += [g.init for g in info.globals.values() if g.init is not None]

    write_only_nodes: set[int] = set()
    for body in bodies:
        for child in _iter_nodes(body):
            if isinstance(child, A.Assign):
                target = child.target
                if isinstance(target, A.Name) and target.ident in info.globals:
                    writes.add(target.ident)
                    if child.op == "=":
                        write_only_nodes.add(id(target))
                elif isinstance(target, A.Index):
                    base = target.base
                    if isinstance(base, A.Name) and base.ident in info.globals:
                        writes.add(base.ident)  # element write; binding is read too
            elif (
                isinstance(child, A.Attr)
                and child.name in QUEUE_ATTRS
                and QUEUE_ATTRS[child.name][1]
                and isinstance(child.base, A.Name)
                and child.base.ident in info.globals
            ):
                writes.add(child.base.ident)
                write_only_nodes.add(id(child.base))
    for body in bodies:
        for child in _iter_nodes(body):
            if (
                isinstance(child, A.Name)
                and child.ident in info.globals
                and id(child) not in write_only_nodes
            ):
                reads.add(child.ident)

    for name, decl in info.globals.items():
        if name == "init" or decl.type_name == "stream":
            # The step key and instruction streams are read by the
            # runtime itself; "unused" in Facile source is expected.
            continue
        if name not in reads and name not in writes:
            sink.emit("FAC104", f"global {name!r} is never used", decl.span)
        elif name in writes and name not in reads:
            sink.emit(
                "FAC105",
                f"global {name!r} is written but never read in Facile code "
                "(host-visible instrumentation?)",
                decl.span,
            )


# -- pass: pattern reachability and overlap (FAC110/FAC111) --------------------


@_register(
    "pattern-arms",
    "ast",
    "decode-shadowed patterns and overlapping pat arms",
)
def _pass_pattern_arms(ctx: AnalysisContext, sink: DiagnosticSink) -> None:
    info = ctx.info
    table = info.patterns

    # Dispatch-relevant patterns: those with a sem or named in a pat
    # switch arm.  Helper patterns exist only to be referenced by other
    # pattern definitions; being decode-shadowed is harmless for them.
    dispatch_relevant: set[str] = set(info.sems)
    switch_arms: list[tuple[list[str], SourceSpan]] = []
    for body in [f.body for f in info.functions.values()] + [
        s.body for s in info.sems.values()
    ]:
        for node in _iter_nodes(body):
            if isinstance(node, A.Case) and node.kind == "pat":
                names = [n for n in node.pat_names if n in table.by_name]
                dispatch_relevant.update(names)
                switch_arms.append((names, node.span))

    # FAC110: the reference decoder returns the first declared match, so
    # a dispatch-relevant pattern wholly inside an earlier one never
    # decodes.
    for pat in table.patterns:
        if pat.name not in dispatch_relevant:
            continue
        for earlier in table.patterns[: pat.index]:
            if pattern_shadowed_by(pat, earlier):
                sink.emit(
                    "FAC110",
                    f"pattern {pat.name!r} can never decode: every word it "
                    f"accepts is claimed by earlier pattern {earlier.name!r}",
                    pat.span,
                    notes=(Note(f"{earlier.name!r} declared here", earlier.span),),
                )
                break

    # FAC111: arms of one user switch whose patterns overlap — words in
    # the intersection decode to the earlier-declared pattern, so they
    # always dispatch to its arm.
    for fun in info.functions.values():
        _check_switch_arms(fun.body, table, sink)
    for sem in info.sems.values():
        _check_switch_arms(sem.body, table, sink)


def _check_switch_arms(body: A.Node, table, sink: DiagnosticSink) -> None:
    for node in _iter_nodes(body):
        if not isinstance(node, A.Switch):
            continue
        arms: list[tuple[PatternDef, SourceSpan]] = []
        for case in node.cases:
            if case.kind != "pat":
                continue
            for name in case.pat_names:
                pat = table.by_name.get(name)
                if pat is not None:
                    arms.append((pat, case.span))
        for i, (pat_b, span_b) in enumerate(arms):
            for pat_a, span_a in arms[:i]:
                if pat_a.name == pat_b.name or patterns_intersect(pat_a, pat_b):
                    which = (
                        "duplicates"
                        if pat_a.name == pat_b.name
                        else "overlaps"
                    )
                    sink.emit(
                        "FAC111",
                        f"pat arm {pat_b.name!r} {which} earlier arm "
                        f"{pat_a.name!r}; words matching both always dispatch "
                        "to the earlier arm",
                        span_b,
                        notes=(Note("earlier arm here", span_a),),
                    )
                    break


# -- pass: BTA-soundness audit (FAC200-FAC202) ---------------------------------


@_register(
    "bta-audit",
    "bta",
    "re-derive the dynamic/rt-static frontier; flag unsound key or control flow",
)
def _pass_bta_audit(ctx: AnalysisContext, sink: DiagnosticSink) -> None:
    flat, division = ctx.flat, ctx.division
    assert flat is not None and division is not None

    _audit_division(flat, division, sink)
    _audit_key_dynamism(flat, division, sink)
    _audit_dynamic_control(flat, division, sink)


def _audit_division(flat: FlatMain, division: Division, sink: DiagnosticSink) -> None:
    """FAC200: independently re-run the propagation fixpoint.

    Entry assumptions (params rt-static, globals classified by the
    assigned/local-like rules) are shared with the production analysis;
    what is re-derived here is the *propagation* — a worklist over
    explicit dependency edges instead of bta.py's iterate-to-fixpoint
    statement walk.  Any variable the two solvers label differently is
    a compiler bug worth failing the build over.
    """
    info = flat.info
    bt: dict[str, int] = {}
    for p in flat.params:
        bt[p] = RT_STATIC
    for g in info.globals:
        if g not in division.assigned_globals:
            bt[g] = RT_STATIC
        else:
            bt[g] = RT_STATIC if g in division.local_like_globals else DYNAMIC
    for name in flat.local_names:
        bt.setdefault(name, RT_STATIC)

    # target var -> dependency edges (floor, source vars)
    edges: list[tuple[str, int, set[str]]] = []

    def expr_floor(expr: A.Expr | None) -> tuple[int, set[str]]:
        floor = RT_STATIC
        sources: set[str] = set()
        if expr is None:
            return floor, sources
        stack = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, A.Attr) and node.name == "verify":
                continue  # rt-static by definition; do not descend
            if _is_dynamic_call(node, info) is not None:
                floor = DYNAMIC
            elif isinstance(node, A.Name):
                sources.add(node.ident)
            for value in vars(node).values():
                if isinstance(value, A.Node):
                    stack.append(value)
                elif isinstance(value, list):
                    stack.extend(v for v in value if isinstance(v, A.Node))
        return floor, sources

    for node in _iter_nodes(flat.body):
        if isinstance(node, A.ValStmt) and node.init is not None:
            floor, sources = expr_floor(node.init)
            edges.append((node.name, floor, sources))
        elif isinstance(node, A.Assign):
            target = node.target
            if isinstance(target, A.Name):
                floor, sources = expr_floor(node.value)
                edges.append((target.ident, floor, sources))
            elif isinstance(target, A.Index) and isinstance(target.base, A.Name):
                f1, s1 = expr_floor(node.value)
                f2, s2 = expr_floor(target.index)
                edges.append((target.base.ident, max(f1, f2), s1 | s2))
        elif isinstance(node, A.ExprStmt):
            expr = node.expr
            if (
                isinstance(expr, A.Attr)
                and expr.name in QUEUE_ATTRS
                and QUEUE_ATTRS[expr.name][1]
                and isinstance(expr.base, A.Name)
                and expr.args
            ):
                floor, sources = expr_floor(expr.args[0])
                edges.append((expr.base.ident, floor, sources))

    changed = True
    while changed:
        changed = False
        for target, floor, sources in edges:
            new = max(
                [floor] + [bt.get(s, DYNAMIC) for s in sources] + [bt.get(target, RT_STATIC)]
            )
            if new != bt.get(target, RT_STATIC):
                bt[target] = new
                changed = True

    labels = {RT_STATIC: "rt-static", DYNAMIC: "dynamic"}
    for name in sorted(division.bt):
        ours = bt.get(name)
        if ours is None:
            continue  # e.g. temps created after the audit snapshot
        theirs = division.bt[name]
        if ours != theirs:
            sink.emit(
                "FAC200",
                f"binding-time audit disagrees on {_original_name(name)!r}: "
                f"analysis says {labels[theirs]}, independent re-derivation "
                f"says {labels[ours]} (compiler bug — please report)",
                UNKNOWN_SPAN,
            )


def _audit_key_dynamism(flat: FlatMain, division: Division, sink: DiagnosticSink) -> None:
    """FAC201: the memoization key must be run-time static.

    The action cache is keyed on ``init``'s value at step entry; if
    dynamic data reaches ``init``, replayed steps would be looked up
    under a key the recorded actions never verified — fast-forwarding
    would silently diverge.  No result-test insertion can fix this (the
    tests pin control flow, not the key), so it is an error.
    """
    if "init" not in flat.info.globals:
        return
    if division.var_bt("init") != DYNAMIC:
        return
    prov = DynamismProvenance(flat, division)
    notes = tuple(prov.chain("init"))
    sink.emit(
        "FAC201",
        "dynamic data reaches the rt-static step key 'init'; the action "
        "cache would be keyed on a value no dynamic result test checks, "
        "so fast-forwarding cannot memoize this simulator",
        flat.info.globals["init"].span,
        notes=notes,
    )


def _audit_dynamic_control(flat: FlatMain, division: Division, sink: DiagnosticSink) -> None:
    """FAC202: dynamic-steered branches without an explicit result test.

    The compiler will auto-insert a ``?verify`` here (§4.2), which is
    sound but implicit: the author may not realize this branch forces a
    cache probe on every execution.  Surfacing it as a warning gives
    them the chance to hoist or restructure; an explicit ``?verify`` in
    the source acknowledges (and silences) it.
    """
    prov: DynamismProvenance | None = None
    for node in _iter_nodes(flat.body):
        cond: A.Expr | None = None
        what = ""
        if isinstance(node, A.If):
            cond, what = node.cond, "branch"
        elif isinstance(node, A.Switch):
            cond, what = node.scrutinee, "switch"
        elif isinstance(node, A.While):
            cond, what = node.cond, "loop"
        if cond is None or division.expr_bt(cond) != DYNAMIC:
            continue
        if prov is None:
            prov = DynamismProvenance(flat, division)
        first_var = next(
            (
                n.ident
                for n in _iter_nodes(cond)
                if isinstance(n, A.Name) and division.var_bt(n.ident) == DYNAMIC
            ),
            None,
        )
        notes = tuple(prov.chain(first_var)[:3]) if first_var is not None else ()
        sink.emit(
            "FAC202",
            f"{what} is steered by a dynamic value; an implicit dynamic "
            "result test will be inserted here — make it explicit with "
            "'?verify' if the cache probe is intended",
            node.span,
            notes=notes,
        )


@_register(
    "post-insert-invariant",
    "post",
    "no dynamic branch condition may survive result-test insertion",
)
def _pass_post_insert(ctx: AnalysisContext, sink: DiagnosticSink) -> None:
    """FAC203: after insertion every steering condition must be rt-static.

    This is the compiler invariant the fast engine's correctness rests
    on — a dynamic condition here means a control path the action cache
    would replay without verifying.
    """
    flat, division = ctx.flat, ctx.division
    assert flat is not None and division is not None
    for node in _iter_nodes(flat.body):
        cond: A.Expr | None = None
        if isinstance(node, (A.If, A.While)):
            cond = node.cond
        elif isinstance(node, A.Switch):
            cond = node.scrutinee
        if cond is not None and division.expr_bt(cond) == DYNAMIC:
            sink.emit(
                "FAC203",
                "dynamic steering condition survived result-test insertion "
                "(compiler invariant violated — the fast engine would replay "
                "an unverified path)",
                node.span,
            )


# -- pass: cache-blowup prediction (FAC301/FAC302) -----------------------------


def _affine_in_param(
    expr: A.Expr,
    params: set[str],
    defs: dict[str, A.Expr | None],
    depth: int = 0,
) -> tuple[str | None, int, int] | None:
    """Resolve `expr` to ``coef * param + offset`` if possible.

    Returns ``(param, coef, offset)`` — param None for constants — or
    None when the expression is not affine (which includes every
    bounded-domain operator: ``%``, ``&``, ``?bits``, comparisons) or
    resolves through a multiply-assigned local.
    """
    if depth > 16:
        return None
    if isinstance(expr, A.IntLit):
        return (None, 0, expr.value)
    if isinstance(expr, A.Name):
        if expr.ident in params:
            return (expr.ident, 1, 0)
        if expr.ident in defs:
            rhs = defs[expr.ident]
            if rhs is None:
                return None
            return _affine_in_param(rhs, params, defs, depth + 1)
        return None
    if isinstance(expr, A.Unary) and expr.op == "-":
        inner = _affine_in_param(expr.operand, params, defs, depth + 1)
        if inner is None:
            return None
        return (inner[0], -inner[1], -inner[2])
    if isinstance(expr, A.Binary):
        if expr.op not in ("+", "-", "*"):
            return None
        left = _affine_in_param(expr.left, params, defs, depth + 1)
        right = _affine_in_param(expr.right, params, defs, depth + 1)
        if left is None or right is None:
            return None
        lp, lc, lo = left
        rp, rc, ro = right
        if expr.op == "*":
            if lp is not None and rp is not None:
                return None  # param * param is not affine
            if lp is None:
                return (rp, rc * lo, ro * lo)
            return (lp, lc * ro, lo * ro)
        sign = 1 if expr.op == "+" else -1
        if lp is not None and rp is not None and lp != rp:
            return None  # mixes two key positions; out of scope
        param = lp if lp is not None else rp
        return (param, lc + sign * rc, lo + sign * ro)
    return None


def _single_def_locals(flat: FlatMain) -> dict[str, A.Expr | None]:
    """Map each local assigned exactly once to its defining expression."""
    counts: dict[str, int] = {}
    rhs: dict[str, A.Expr | None] = {}
    for node in _iter_nodes(flat.body):
        if isinstance(node, A.ValStmt):
            counts[node.name] = counts.get(node.name, 0) + 1
            rhs[node.name] = node.init
        elif isinstance(node, A.Assign) and isinstance(node.target, A.Name):
            counts[node.target.ident] = counts.get(node.target.ident, 0) + 1
            rhs[node.target.ident] = node.value
    return {name: rhs[name] for name, n in counts.items() if n == 1}


@_register(
    "cache-blowup",
    "bta",
    "rt-static keys that never repeat and key-dependent loop trip counts",
)
def _pass_cache_blowup(ctx: AnalysisContext, sink: DiagnosticSink) -> None:
    flat, division = ctx.flat, ctx.division
    assert flat is not None and division is not None
    params = set(flat.params)
    defs = _single_def_locals(flat)
    # Only consult defs for rt-static locals: a dynamic local's value is
    # not a function of the key, so resolving through it is meaningless.
    defs = {n: e for n, e in defs.items() if division.var_bt(n) == RT_STATIC}

    # FAC301: the key's next value as a function of its current value.
    # Step n+1's key equals the value assigned to 'init' during step n,
    # and 'init' at entry is the first parameter of main; `k' = a*k + b`
    # with (a, b) != (1, 0) means the key walks an arithmetic orbit —
    # unless the simulated program revisits values, every step mints a
    # fresh cache entry (the §6.2 blowup).  Identity (a, b) == (1, 0)
    # is the canonical re-dispatch and stays quiet; everything
    # non-affine (masking, modulo, table lookups) also stays quiet.
    key_param = flat.params[0] if flat.params else None
    if key_param is not None:
        for node in _iter_nodes(flat.body):
            if (
                isinstance(node, A.Assign)
                and isinstance(node.target, A.Name)
                and node.target.ident == "init"
            ):
                affine = _affine_in_param(node.value, {key_param}, defs)
                if affine is None:
                    continue
                param, coef, offset = affine
                if param is None or (coef, offset) == (1, 0):
                    continue
                formula = f"{coef} * {_original_name(param)} + {offset}"
                sink.emit(
                    "FAC301",
                    f"rt-static key 'init' advances as {formula} every step; "
                    "unless the simulated program revisits key values, each "
                    "step mints a fresh action-cache entry and the cache "
                    "grows without bound",
                    node.span,
                )

    # FAC302: rt-static loop whose trip count is a function of the key.
    # Each distinct key value then specializes a different unrolling;
    # cache size multiplies by the number of distinct trip counts.
    for node in _iter_nodes(flat.body):
        if not isinstance(node, A.While):
            continue
        cond = node.cond
        if division.expr_bt(cond) != RT_STATIC:
            continue
        if not isinstance(cond, A.Binary) or cond.op not in ("<", "<=", ">", ">="):
            continue
        for side in (cond.left, cond.right):
            if isinstance(side, A.IntLit):
                continue
            affine = _affine_in_param(side, params, defs)
            if affine is None or affine[0] is None or affine[1] == 0:
                continue
            param, _, _ = affine
            sink.emit(
                "FAC302",
                "trip count of this rt-static loop depends on step key "
                f"parameter {_original_name(param)!r}; every distinct key "
                "value records a differently-unrolled action sequence, "
                "multiplying action-cache size",
                node.span,
            )
            break


# -- ir-stage passes: below the AST, over the replay-IR bodies ----------------


def _ir_bodies(ctx: AnalysisContext):
    """Compile every action body to replay IR once per report.

    Returns ``(progs, failures, externs)`` where ``progs`` maps action
    number -> :class:`BodyProgram` for bodies that lower, ``failures``
    maps action number -> the :class:`Unlowerable` that pinned the body
    to the Python tier, and ``externs`` is the table of extern names
    interned while compiling (= externs reachable from replay bodies).

    Bodies are probed with the canonical all-``'i'`` placeholder shape:
    replay records with object-shaped data only change which store
    opcode is emitted, never whether the body lowers.
    """
    cached = getattr(ctx, "_ir_bodies_cache", None)
    if cached is not None:
        return cached
    compiled = ctx.compiled
    assert compiled is not None
    externs = ExternTable()
    spans = getattr(compiled, "action_spans", [])
    progs: dict[int, object] = {}
    failures: dict[int, Unlowerable] = {}
    for num, (lines, n_ph, is_verify) in enumerate(compiled.action_bodies):
        span = spans[num] if num < len(spans) else UNKNOWN_SPAN
        try:
            progs[num] = compile_body(
                num, lines, "i" * n_ph, is_verify, externs, span=span
            )
        except Unlowerable as exc:
            failures[num] = exc
    ctx._ir_bodies_cache = (progs, failures, externs)
    return ctx._ir_bodies_cache


def _ir_span(ctx: AnalysisContext, num: int) -> SourceSpan:
    spans = getattr(ctx.compiled, "action_spans", [])
    return spans[num] if num < len(spans) else UNKNOWN_SPAN


@_register(
    "ir-verify",
    "ir",
    "stack-effect/kind/bounds verifier over every compiled replay body",
)
def _pass_ir_verify(ctx: AnalysisContext, sink: DiagnosticSink) -> None:
    """Abstract interpretation of each body's stack bytecode.

    This is the same verdict :func:`ir_verify.assert_lowerable` enforces
    in front of the C emitter at replay time; running it here means a
    discipline violation surfaces as a ``repro check`` error before any
    simulation is attempted.  The 64-bit wrap/guard census is not a
    diagnostic — it lands in the report's ``ir`` summary so shipped
    sources stay clean under ``--werror``.
    """
    compiled = ctx.compiled
    assert compiled is not None
    progs, _failures, externs = _ir_bodies(ctx)
    census: dict[str, int] = {}
    n_failed = 0
    for num in sorted(progs):
        prog = progs[num]
        findings = verify_body(
            prog, n_slots=compiled.slot_count, externs=externs
        )
        span = _ir_span(ctx, num)
        for f in findings:
            sink.emit(
                f.code,
                f.message,
                span,
                notes=tuple(Note(text) for text in f.notes),
            )
        if any(f.is_error for f in findings):
            n_failed += 1
        for key, n in wrap_census(prog).items():
            census[key] = census.get(key, 0) + n
    ctx.ir["bodies_verified"] = len(progs) - n_failed
    ctx.ir["bodies_rejected"] = n_failed
    ctx.ir["wrap_census"] = census


@_register(
    "ir-lowerability",
    "ir",
    "why-not provenance for bodies and externs pinned to the Python tier",
)
def _pass_ir_lowerability(ctx: AnalysisContext, sink: DiagnosticSink) -> None:
    """FAC410/FAC411: nothing here is wrong, but the author should know
    which parts of the simulator never reach the C tier and *why* —
    mirroring the FAC201 why-dynamic provenance one tier down."""
    compiled = ctx.compiled
    assert compiled is not None
    progs, failures, externs = _ir_bodies(ctx)
    for num in sorted(failures):
        exc = failures[num]
        span = getattr(exc, "span", None) or _ir_span(ctx, num)
        sink.emit(
            "FAC410",
            f"action body {num} stays on the Python replay backend",
            span,
            notes=(Note(f"lowering declined: {exc}"),),
        )
    for name in externs.names:
        if name in NATIVE_EXTERN_NAMES:
            continue
        decl = ctx.info.externs.get(name)
        span = decl.span if decl is not None else ctx.info.program.span
        sink.emit(
            "FAC411",
            f"extern {name!r} always exits replay to the Python "
            "callback path",
            span,
            notes=(
                Note(
                    "only "
                    + ", ".join(sorted(NATIVE_EXTERN_NAMES))
                    + " have in-kernel native dispatch; bind-time "
                    "refusals are reported by cache_summary"
                ),
            ),
        )
    ctx.ir["bodies_python"] = len(failures)
    ctx.ir["bodies_lowerable"] = len(progs)
    ctx.ir["externs"] = list(externs.names)


@_register(
    "uarch-protocol",
    "ir",
    "uarch module-protocol conformance for natively dispatchable models",
)
def _pass_uarch_protocol(ctx: AnalysisContext, sink: DiagnosticSink) -> None:
    """FAC5xx: audit the shipped model suite whenever the program can
    reach the native extern registry.  A model that hides mutable state
    outside ``state_arrays()`` or under-keys ``config_key()`` would
    replay stale or mis-shared state through the kernel — the audit is
    static, so the bug surfaces in ``repro check`` rather than as a
    silently wrong simulation."""
    _progs, _failures, externs = _ir_bodies(ctx)
    if not any(name in NATIVE_EXTERN_NAMES for name in externs.names):
        return
    span = ctx.info.program.span
    for f in audit_builtin_models():
        sink.emit(
            f.code, f.message, span,
            notes=tuple(Note(text) for text in f.notes),
        )


# -- the check driver ----------------------------------------------------------


@dataclass
class CheckReport:
    """Everything ``repro check`` learned about one source file."""

    file: str
    sink: DiagnosticSink
    buffer: SourceBuffer | None = None
    passes: list[str] = field(default_factory=list)
    n_dynamic_result_tests: int = -1
    fatal: bool = False
    info: ProgramInfo | None = None
    flat: FlatMain | None = None
    division: Division | None = None
    # IR-tier summary (filled by the "ir" passes): bodies verified /
    # rejected / kept on Python, reachable externs, and the 64-bit
    # wrap/guard op census.  Empty when the ir stage did not run.
    ir: dict = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.fatal and not self.sink.diagnostics

    def exit_code(self, werror: bool = False) -> int:
        if self.fatal:
            return 2
        if self.sink.has_errors:
            return 1
        if werror and self.sink.warnings:
            return 1
        return 0

    def render_text(self) -> str:
        lines: list[str] = []
        for diag in self.sink.sorted():
            lines.append(diag.render(self.buffer))
        counts = self.sink.counts()
        summary = (
            f"{self.file}: {counts['error']} error(s), "
            f"{counts['warning']} warning(s), {counts['info']} info(s)"
        )
        if self.sink.suppressed:
            summary += f", {len(self.sink.suppressed)} suppressed"
        if self.n_dynamic_result_tests >= 0:
            summary += (
                f"; {self.n_dynamic_result_tests} implicit dynamic result "
                "test(s) inserted"
            )
        lines.append(summary)
        return "\n".join(lines)

    def to_json(self) -> dict:
        counts = self.sink.counts()
        return {
            "file": self.file,
            "clean": self.clean,
            "fatal": self.fatal,
            "counts": counts,
            "suppressed": len(self.sink.suppressed),
            "passes": list(self.passes),
            "n_dynamic_result_tests": self.n_dynamic_result_tests,
            "diagnostics": [d.to_json() for d in self.sink.sorted()],
            "ir": dict(self.ir),
        }


def run_check(
    source: str,
    filename: str = "<facile>",
    only: set[str] | None = None,
) -> CheckReport:
    """Parse, analyze, and lint one Facile source text.

    Never raises for problems *in the source* — they all land in the
    report's sink.  `only` restricts which analysis passes run (by pass
    name); the front-end checks always run.
    """
    buffer = SourceBuffer(source, filename)
    sink = DiagnosticSink(buffer)
    report = CheckReport(filename, sink, buffer)
    try:
        program = parse(source, filename)
    except FacileError as exc:
        sink.absorb(exc)
        return report

    info = analyze(program, require_main=True, sink=sink)
    report.info = info
    if sink.has_errors:
        return report

    ctx = AnalysisContext(info, buffer)
    report.passes += run_passes("ast", ctx, sink, only)

    try:
        flat = flatten_program(info)
        division = analyze_binding_times(flat, sink)
    except FacileError as exc:
        sink.absorb(exc)
        return report
    report.flat, report.division = flat, division
    ctx.flat, ctx.division = flat, division

    report.passes += run_passes("bta", ctx, sink, only)
    if sink.has_errors:
        return report

    ctx.n_inserted = insert_dynamic_result_tests(flat, division)
    report.n_dynamic_result_tests = ctx.n_inserted
    report.passes += run_passes("post", ctx, sink, only)
    if sink.has_errors:
        return report

    # The ir stage looks below the AST: it needs the generated
    # simulator's replay bodies, so the check driver runs codegen itself
    # (run_check is otherwise codegen-free).  Pure Python throughout —
    # the verdicts are identical with or without a C toolchain.
    ir_names = {p.name for p in PASSES if p.stage == "ir"}
    if only is None or (only & ir_names):
        from .codegen import CodeGenerator

        try:
            ctx.compiled = CodeGenerator(division, name=filename).build(
                with_plain=False
            )
        except FacileError as exc:
            sink.absorb(exc)
            return report
        report.passes += run_passes("ir", ctx, sink, only)
        report.ir = dict(ctx.ir)
    return report


def check_file(path: str, only: set[str] | None = None) -> CheckReport:
    """:func:`run_check` over a file; unreadable files are fatal."""
    try:
        with open(path) as fh:
            source = fh.read()
    except OSError as exc:
        sink = DiagnosticSink()
        report = CheckReport(path, sink, fatal=True)
        sink.emit("FAC030", f"cannot read {path}: {exc.strerror or exc}", severity="error")
        return report
    return run_check(source, filename=path, only=only)


def check_model_file(path: str) -> CheckReport:
    """Protocol-audit every uarch model class defined in a Python file.

    ``repro check`` routes ``.py`` arguments here: the file is executed
    in an isolated namespace and every class it *defines* (not imports)
    that exposes the module protocol surface — ``config_key`` plus
    ``state_arrays`` — is instantiated and audited (FAC5xx).  Files
    that fail to execute are fatal, mirroring unreadable sources.
    """
    sink = DiagnosticSink()
    report = CheckReport(path, sink)
    try:
        with open(path) as fh:
            source = fh.read()
    except OSError as exc:
        report.fatal = True
        sink.emit("FAC030", f"cannot read {path}: {exc.strerror or exc}", severity="error")
        return report
    namespace: dict = {"__name__": f"facile_model_audit_{abs(hash(path))}"}
    try:
        exec(compile(source, path, "exec"), namespace)
    except Exception as exc:
        report.fatal = True
        sink.emit(
            "FAC030",
            f"cannot execute {path}: {exc.__class__.__name__}: {exc}",
            severity="error",
        )
        return report
    classes = [
        obj
        for obj in namespace.values()
        if isinstance(obj, type)
        and getattr(obj, "__module__", None) == namespace["__name__"]
        and callable(getattr(obj, "config_key", None))
        and callable(getattr(obj, "state_arrays", None))
    ]
    for f in audit_model_classes(classes):
        sink.emit(f.code, f.message, notes=tuple(Note(t) for t in f.notes))
    report.passes.append("uarch-protocol")
    report.ir["model_classes_audited"] = len(classes)
    return report
