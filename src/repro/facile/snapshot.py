"""Persistent, mmap-shared action-cache snapshots (warm starts).

Facile's memoization wins are rebuilt from scratch by every process: the
expensive slow-path warmup is paid on each run of the same (simulator ×
workload) pair.  This module makes the warmed cache durable.  Complete
flat-packed entries — the position-independent ``array('q')`` streams
plus the refcounted :class:`~repro.facile.runtime.InternPool` — are
serialized to a compact, versioned, checksummed snapshot, content-
addressed by a ``(compiled-simulator fingerprint, workload fingerprint)``
pair, and loaded back through ``mmap`` so a second run starts warm and N
concurrent workers can map one snapshot without duplicating the streams
in RSS.

File layout (header integers little-endian)::

    offset  size  field
    0       8     magic  b"FACSNAP\\x01"
    8       4     format version (currently 1)
    12      4     kind (1 = facile ActionCache, 2 = fastsim memo)
    16      32    content-address fingerprint (sha-256 digest)
    48      8     meta length (bytes, before padding)
    56      8     stream length (bytes, multiple of 8)
    64      32    sha-256 of the payload (meta + padding + streams)
    96      8     byte-order probe (0x0102030405060708, host-endian)
    104     ...   meta blob (varint / tagged-value encoded), 8-padded
    ...     ...   stream blob: every entry's raw ``q`` lanes
                  (nums/data/succ or kinds/payload/succ), concatenated

The meta blob holds everything object-shaped — pool values and
refcounts, entry keys, jump tables, end-slot counts — while the stream
blob holds the hot replay lanes verbatim.  On load the stream blob is
**not copied**: each chain's lanes become ``memoryview`` slices of the
mapped file (marked ``shared``), and the resolved per-process replay
view is built lazily on the entry's first replay, so untouched entries
cost no private RSS.  Entries stay copy-on-miss: a verify miss unpacks
the entry into private record objects (recovery then repacks it with
fresh private arrays), leaving the mapped file untouched; eviction and
the exact byte accounting keep working, with mmap-backed bytes tracked
separately in ``bytes_shared``.

A stale or corrupt snapshot can never produce a wrong simulation.  The
fingerprint covers the exact generated engine sources (action numbering
and machine parameters are baked into them) and the workload's memory
image; the payload is sha-256 checksummed; and any rejection — bad
magic, version skew, truncation, checksum or fingerprint mismatch,
empty snapshot — counts a ``snapshot_rejected`` stat and degrades to a
cold start.
"""

from __future__ import annotations

import hashlib
import marshal
import mmap
import os
import pathlib
import struct
from dataclasses import dataclass, field
from typing import Any

from .runtime import (
    ENDMARK,
    ENTRY_OVERHEAD,
    PACKED_JUMP_BYTES,
    PACKED_SLOT_BYTES,
    PACKED_TABLE_OVERHEAD,
    POOL_SLOT_BYTES,
    DICT_TAG,
    CacheEntry,
    EndRecord,
    PackedChain,
    value_bytes,
)

MAGIC = b"FACSNAP\x01"
FORMAT_VERSION = 1
KIND_ACTION_CACHE = 1
KIND_FASTSIM_MEMO = 2

#: magic, version, kind, fingerprint digest, meta_len, stream_len,
#: payload sha-256, byte-order probe.  104 bytes, a multiple of 8, so
#: the stream blob that follows the padded meta blob stays 8-aligned.
_HEADER = struct.Struct("<8sII32sQQ32s8s")
_BOM = struct.pack("=Q", 0x0102030405060708)

SNAPSHOT_SUFFIX = ".facsnap"


class SnapshotError(Exception):
    """A snapshot could not be written or was rejected at load."""


@dataclass
class SnapshotInfo:
    """Outcome of one snapshot load or save, surfaced for reporting."""

    path: str
    hit: bool = False
    reason: str = ""
    entries: int = 0
    shared_bytes: int = 0
    pool_values: int = 0
    file_bytes: int = 0


class SnapshotHandle:
    """Keeps a loaded snapshot's mmap alive for the cache's lifetime."""

    __slots__ = ("path", "mm")

    def __init__(self, path: str, mm: mmap.mmap):
        self.path = path
        self.mm = mm


# ---------------------------------------------------------------------------
# Varint + tagged-value codec
# ---------------------------------------------------------------------------

_T_NONE = 0
_T_FALSE = 1
_T_TRUE = 2
_T_INT = 3
_T_STR = 4
_T_BYTES = 5
_T_FLOAT = 6
_T_TUPLE = 7
_T_DICT_TAG = 8
_T_DECODED = 9
_T_MARSHAL = 10

_DECODED_FIELDS = (
    "kind", "cls", "rd", "rs1", "rs2", "use_imm", "imm",
    "op3", "cond", "annul", "disp", "name",
)


def _w_u(buf: bytearray, n: int) -> None:
    """LEB128 unsigned varint."""
    while n > 0x7F:
        buf.append((n & 0x7F) | 0x80)
        n >>= 7
    buf.append(n)


def _w_s(buf: bytearray, n: int) -> None:
    """Zigzag-encoded signed varint (arbitrary precision)."""
    _w_u(buf, (n << 1) if n >= 0 else ((-n << 1) - 1))


def _unzigzag(z: int) -> int:
    return (z >> 1) if not (z & 1) else -((z + 1) >> 1)


class _Reader:
    """Sequential reader over the meta blob."""

    __slots__ = ("mv", "pos")

    def __init__(self, mv: memoryview):
        self.mv = mv
        self.pos = 0

    def u(self) -> int:
        mv = self.mv
        pos = self.pos
        shift = 0
        result = 0
        while True:
            b = mv[pos]
            pos += 1
            result |= (b & 0x7F) << shift
            if not b & 0x80:
                break
            shift += 7
        self.pos = pos
        return result

    def s(self) -> int:
        return _unzigzag(self.u())

    def raw(self, n: int) -> bytes:
        data = bytes(self.mv[self.pos:self.pos + n])
        if len(data) != n:
            raise SnapshotError("meta blob underrun")
        self.pos += n
        return data

    def value(self) -> Any:
        tag = self.mv[self.pos]
        self.pos += 1
        if tag == _T_NONE:
            return None
        if tag == _T_FALSE:
            return False
        if tag == _T_TRUE:
            return True
        if tag == _T_INT:
            return self.s()
        if tag == _T_STR:
            return self.raw(self.u()).decode("utf-8")
        if tag == _T_BYTES:
            return self.raw(self.u())
        if tag == _T_FLOAT:
            return struct.unpack("<d", self.raw(8))[0]
        if tag == _T_TUPLE:
            n = self.u()
            return tuple(self.value() for _ in range(n))
        if tag == _T_DICT_TAG:
            return DICT_TAG
        if tag == _T_MARSHAL:
            return marshal.loads(self.raw(self.u()))
        if tag == _T_DECODED:
            from ..isa.sparclite import Decoded

            return Decoded(**{name: self.value() for name in _DECODED_FIELDS})
        raise SnapshotError(f"unknown value tag {tag}")


def _encode_value(buf: bytearray, v: Any) -> None:
    t = type(v)
    if v is None:
        buf.append(_T_NONE)
    elif t is bool:
        buf.append(_T_TRUE if v else _T_FALSE)
    elif t is int:
        buf.append(_T_INT)
        _w_s(buf, v)
    elif t is str:
        raw = v.encode("utf-8")
        buf.append(_T_STR)
        _w_u(buf, len(raw))
        buf += raw
    elif t is bytes:
        buf.append(_T_BYTES)
        _w_u(buf, len(v))
        buf += v
    elif t is float:
        buf.append(_T_FLOAT)
        buf += struct.pack("<d", v)
    elif t is tuple:
        buf.append(_T_TUPLE)
        _w_u(buf, len(v))
        for item in v:
            _encode_value(buf, item)
    elif v is DICT_TAG:
        buf.append(_T_DICT_TAG)
    else:
        from ..isa.sparclite import Decoded

        if t is Decoded:
            buf.append(_T_DECODED)
            for name in _DECODED_FIELDS:
                _encode_value(buf, getattr(v, name))
        else:
            raise SnapshotError(
                f"cannot serialize {t.__name__} value in a cache snapshot"
            )


def _marshal_safe(v: Any) -> bool:
    """True when ``marshal`` round-trips ``v`` exactly: only None,
    bools, and *exact* ints/floats/strs/bytes/tuples.  Subclasses (a
    namedtuple, an IntEnum) would silently come back as the base type,
    so anything else falls back to the tagged codec."""
    stack = [v]
    while stack:
        x = stack.pop()
        t = type(x)
        if t is tuple:
            stack.extend(x)
        elif not (x is None or t is bool or t is int or t is float
                  or t is str or t is bytes):
            return False
    return True


def _encode_value_fast(buf: bytearray, v: Any) -> None:
    """Encode ``v`` as one ``marshal`` blob when that round-trips
    exactly — entry keys are huge flat tuples of small ints, and
    decoding them element-by-element in Python dominates load time —
    falling back to the tagged codec otherwise."""
    if _marshal_safe(v):
        raw = marshal.dumps(v)
        buf.append(_T_MARSHAL)
        _w_u(buf, len(raw))
        buf += raw
    else:
        _encode_value(buf, v)


# ---------------------------------------------------------------------------
# Fingerprints: the content address of one (simulator × workload) pair
# ---------------------------------------------------------------------------


def combine_fingerprints(*parts: str) -> str:
    """Combine component fingerprints into one content address."""
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8"))
        h.update(b"\0")
    return h.hexdigest()


def program_fingerprint(program) -> str:
    """Stable hash of a workload: the exact memory image and entry
    state a simulation starts from.  Two programs with the same
    fingerprint replay identically from the same cache."""
    h = hashlib.sha256(b"facile-program-v1\0")
    h.update(struct.pack(
        "<QQQQ", program.text_base, program.data_base,
        program.entry, program.stack_top,
    ))
    for word in program.text_words:
        h.update(struct.pack("<I", word & 0xFFFFFFFF))
    h.update(b"\0data\0")
    h.update(bytes(program.data_bytes))
    return h.hexdigest()


def simulator_fingerprint(compiled) -> str:
    """Content fingerprint of a compiled simulator.

    The generated engine sources capture everything replay correctness
    depends on — action numbering, placeholder layout, key semantics,
    and the machine parameters baked into the Facile source — so
    hashing them (plus the structural fields) is both necessary and
    sufficient.  Extern substrates (cache/predictor state) are *not*
    fingerprinted: their results flow through dynamic result tests, so
    a substrate change causes verify misses and re-recording, never a
    wrong simulation.
    """
    h = hashlib.sha256(b"facile-sim-v1\0")
    for part in (
        compiled.name,
        str(compiled.param_count),
        str(compiled.init_slot),
        str(compiled.slot_count),
        str(int(compiled.init_flushed)),
        repr(sorted(compiled.global_slots.items())),
        compiled.source_slow,
        compiled.source_fast,
    ):
        h.update(part.encode("utf-8"))
        h.update(b"\0")
    return h.hexdigest()


def engine_fingerprint(compiled, program) -> str:
    """Content address for a facile engine snapshot: compiled simulator
    × workload."""
    sim_fp = compiled.fingerprint or simulator_fingerprint(compiled)
    return combine_fingerprints("facile-engine", sim_fp,
                                program_fingerprint(program))


def fastsim_fingerprint(program, config) -> str:
    """Content address for a fastsim memo snapshot: machine config ×
    workload (the event encoding is versioned by the leading tag)."""
    return combine_fingerprints(
        "fastsim-memo-v1", repr(config), program_fingerprint(program)
    )


def store_path(cache_dir, fingerprint: str) -> pathlib.Path:
    """Content-addressed location of a snapshot inside a cache dir."""
    return pathlib.Path(cache_dir) / f"{fingerprint[:40]}{SNAPSHOT_SUFFIX}"


# ---------------------------------------------------------------------------
# Framing: write and open snapshot files
# ---------------------------------------------------------------------------


def _frame(kind: int, fingerprint: str, meta: bytes, streams: bytes) -> bytes:
    pad = (-len(meta)) % 8
    payload = meta + b"\0" * pad + streams
    header = _HEADER.pack(
        MAGIC, FORMAT_VERSION, kind, bytes.fromhex(fingerprint),
        len(meta), len(streams), hashlib.sha256(payload).digest(), _BOM,
    )
    return header + payload


def _atomic_write(path, blob: bytes) -> None:
    """Install ``blob`` at ``path`` so that a concurrent reader sees
    either the old complete file or the new complete file, never a torn
    mix: write to a pid-suffixed tmp (concurrent writers cannot collide
    on it), fsync so the rename can never expose a partially-flushed
    file after a crash, then ``os.replace`` (atomic on POSIX).  A
    failed write removes its tmp so racing fleet workers do not litter
    the store."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as f:
            f.write(blob)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _open_snapshot(
    path, kind: int, fingerprint: str
) -> tuple[SnapshotHandle, _Reader, memoryview]:
    """Map a snapshot file and validate its header; returns the keep-
    alive handle, a meta reader, and the stream blob as a ``q`` view.
    Raises :class:`SnapshotError` with a stable reason on rejection and
    ``FileNotFoundError`` when the file does not exist."""
    with open(path, "rb") as f:
        size = os.fstat(f.fileno()).st_size
        if size < _HEADER.size:
            raise SnapshotError("truncated header")
        mm = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
    magic, version, fkind, digest, meta_len, stream_len, payload_sha, bom = (
        _HEADER.unpack_from(mm, 0)
    )
    if magic != MAGIC:
        raise SnapshotError("bad magic")
    if version != FORMAT_VERSION:
        raise SnapshotError(
            f"version mismatch (snapshot v{version}, expected v{FORMAT_VERSION})"
        )
    if fkind != kind:
        raise SnapshotError("kind mismatch")
    if bom != _BOM:
        raise SnapshotError("byte-order mismatch")
    if digest != bytes.fromhex(fingerprint):
        raise SnapshotError("fingerprint mismatch")
    pad = (-meta_len) % 8
    if stream_len % 8:
        raise SnapshotError("misaligned streams")
    if _HEADER.size + meta_len + pad + stream_len != size:
        raise SnapshotError("truncated payload")
    view = memoryview(mm)
    payload = view[_HEADER.size:]
    if hashlib.sha256(payload).digest() != payload_sha:
        raise SnapshotError("checksum mismatch")
    meta_mv = view[_HEADER.size:_HEADER.size + meta_len]
    stream_off = _HEADER.size + meta_len + pad
    qmv = view[stream_off:stream_off + stream_len].cast("q")
    return SnapshotHandle(str(path), mm), _Reader(meta_mv), qmv


# ---------------------------------------------------------------------------
# Pool section (shared by both kinds)
# ---------------------------------------------------------------------------


def _encode_pool(meta: bytearray, pool) -> None:
    """Serialize the pool slot-for-slot (free slots are one byte), so
    the packed streams' pool indices stay valid verbatim and the save
    path can dump the ``q`` lanes without remapping.  Accounted costs
    are stored rather than recomputed at load — they are checksummed
    with everything else and recomputing ``value_bytes`` per slot is
    pure load-time overhead.  The leading marshal version guards the
    ``_T_MARSHAL`` fast path across interpreter upgrades."""
    values = pool.values
    refs = pool._refs
    costs = pool._costs
    _w_u(meta, marshal.version)
    _w_u(meta, len(values))
    for i in range(len(values)):
        r = refs[i]
        _w_u(meta, r)
        if r > 0:
            _w_u(meta, costs[i])
            _encode_value_fast(meta, values[i])


def _decode_pool_lists(r: _Reader) -> tuple[list, list, list]:
    if r.u() != marshal.version:
        raise SnapshotError("marshal version mismatch")
    n = r.u()
    values: list = []
    refs: list = []
    costs: list = []
    for _ in range(n):
        rc = r.u()
        refs.append(rc)
        if rc > 0:
            costs.append(r.u())
            values.append(r.value())
        else:
            costs.append(0)
            values.append(None)
    return values, refs, costs


def _install_pool(pool, values: list, refs: list, costs: list) -> None:
    if pool.values:
        raise SnapshotError("cannot load a snapshot into a non-empty pool")
    for i, (v, rc, cost) in enumerate(zip(values, refs, costs)):
        pool.values.append(v)
        pool._refs.append(rc)
        pool._costs.append(cost)
        if rc > 0:
            pool._index[v] = i
            pool.bytes_live += cost
        else:
            pool._free.append(i)


# ---------------------------------------------------------------------------
# Facile ActionCache snapshots (kind 1)
# ---------------------------------------------------------------------------


def save_action_cache(cache, path, fingerprint: str) -> SnapshotInfo:
    """Serialize every complete entry (packing any that are still in
    record form) plus the intern pool.  The write is atomic (tmp file +
    rename), so concurrent workers can race on one store path safely."""
    for entry in list(cache.entries.values()):
        if entry.complete and entry.packed is None:
            cache.pack_entry(entry)
    entries = [e for e in cache.entries.values() if e.packed is not None]
    meta = bytearray()
    streams = bytearray()
    _encode_pool(meta, cache.pool)
    _w_u(meta, len(entries))
    # All keys as one bulk blob: the marshal fast path decodes the
    # whole key set at C speed instead of per-element in Python.
    _encode_value_fast(meta, tuple(e.key for e in entries))
    shared = 0
    for entry in entries:
        chain = entry.packed
        _w_u(meta, len(chain.nums))
        _w_u(meta, len(chain.ends))
        _w_u(meta, chain.n_records)
        _w_u(meta, chain.depth)
        _w_u(meta, len(chain.tables))
        for table in chain.tables:
            _w_u(meta, len(table))
            for value, slot in table.items():
                _encode_value_fast(meta, value)
                _w_u(meta, slot)
        streams += chain.nums.tobytes()
        streams += chain.data.tobytes()
        streams += chain.succ.tobytes()
        shared += chain.local_bytes
    blob = _frame(KIND_ACTION_CACHE, fingerprint, bytes(meta), bytes(streams))
    _atomic_write(path, blob)
    return SnapshotInfo(
        path=str(path), hit=True, entries=len(entries), shared_bytes=shared,
        pool_values=cache.pool.live_values(), file_bytes=len(blob),
    )


def load_action_cache(cache, path, fingerprint: str) -> SnapshotInfo:
    """Load a snapshot into an empty cache.  Never raises for a bad
    file: any rejection counts ``stats.snapshot_rejected`` and returns
    ``hit=False`` with the reason; a missing file is a plain miss."""
    info = SnapshotInfo(path=str(path))
    if cache.entries or cache.pool.values:
        raise SnapshotError("cannot load a snapshot into a non-empty cache")
    try:
        handle, r, qmv = _open_snapshot(path, KIND_ACTION_CACHE, fingerprint)
    except FileNotFoundError:
        info.reason = "missing"
        return info
    except (SnapshotError, OSError, ValueError) as exc:
        cache.stats.snapshot_rejected += 1
        info.reason = str(exc)
        return info
    try:
        pool_values, pool_refs, pool_costs = _decode_pool_lists(r)
        n_entries = r.u()
        keys = r.value()
        if len(keys) != n_entries:
            raise SnapshotError("key count mismatch")
        built: list[tuple[Any, PackedChain]] = []
        qoff = 0
        for key in keys:
            n = r.u()
            n_ends = r.u()
            n_records = r.u()
            depth = r.u()
            n_tables = r.u()
            tables: list[dict] = []
            for _ in range(n_tables):
                count = r.u()
                table: dict = {}
                for _ in range(count):
                    value = r.value()
                    table[value] = r.u()
                tables.append(table)
            chain = PackedChain()
            chain.nums = qmv[qoff:qoff + n]
            chain.data = qmv[qoff + n:qoff + 2 * n]
            chain.succ = qmv[qoff + 2 * n:qoff + 3 * n]
            qoff += 3 * n
            chain.tables = tables
            chain.ends = [EndRecord() for _ in range(n_ends)]
            chain.pool = cache.pool
            chain.knums = None
            chain.datavals = None
            chain.sux = None
            chain.n_records = n_records
            chain.depth = depth
            chain.local_bytes = PACKED_SLOT_BYTES * n + sum(
                PACKED_TABLE_OVERHEAD + PACKED_JUMP_BYTES * len(t)
                for t in tables
            )
            chain.shared = True
            built.append((key, chain))
        if qoff != len(qmv):
            raise SnapshotError("stream length mismatch")
        if not built:
            raise SnapshotError("empty")
    except Exception as exc:  # decode failed: reject, stay cold
        cache.stats.snapshot_rejected += 1
        info.reason = str(exc) or type(exc).__name__
        return info
    # Install phase: plain assignments only, cannot fail halfway.
    _install_pool(cache.pool, pool_values, pool_refs, pool_costs)
    stats = cache.stats
    total = 0
    shared = 0
    for key, chain in built:
        entry = CacheEntry(key, cache.generation)
        entry.packed = chain
        entry.complete = True
        entry.stamp = cache.gen
        cache.entries[key] = entry
        total += value_bytes(key) + ENTRY_OVERHEAD + chain.local_bytes
        shared += chain.local_bytes
    # Loaded bytes enter bytes_current (they are resident cache state
    # and recount_bytes must reconcile) but not bytes_cumulative, which
    # counts recording volume — nothing was recorded.
    stats.bytes_current += total + cache.pool.bytes_live
    stats.bytes_shared += shared
    stats.snapshot_entries += len(built)
    cache.snapshots.append(handle)
    info.hit = True
    info.entries = len(built)
    info.shared_bytes = shared
    info.pool_values = cache.pool.live_values()
    info.file_bytes = len(handle.mm)
    return info


# ---------------------------------------------------------------------------
# Fastsim memo snapshots (kind 2)
# ---------------------------------------------------------------------------


def save_fastsim_memo(sim, path, fingerprint: str) -> SnapshotInfo:
    """Serialize a :class:`~repro.ooo.fastsim.FastSimOoo` memo table."""
    roots = []
    for key, root in sim.memo.items():
        if root.packed is None:
            if root.next_key is None and root.check is None:
                continue  # interrupted mid-record; not replayable
            # Completed roots are packed when flat_pack is on; pack any
            # stragglers (flat_pack=False runs) so the snapshot always
            # holds the stream form.
            sim._pack_root(root)
        roots.append((key, root))
    meta = bytearray()
    streams = bytearray()
    _encode_pool(meta, sim.pool)
    _w_u(meta, len(roots))
    _encode_value_fast(meta, tuple(key for key, _ in roots))
    shared = 0
    for key, root in roots:
        chain = root.packed
        _w_u(meta, len(chain.kinds))
        _w_u(meta, len(chain.tables))
        for table in chain.tables:
            _w_u(meta, len(table))
            for value, slot in table.items():
                _encode_value_fast(meta, value)
                _w_u(meta, slot)
        _encode_value_fast(meta, tuple(chain.next_keys))
        streams += chain.kinds.tobytes()
        streams += chain.payload.tobytes()
        streams += chain.succ.tobytes()
        shared += chain.local_bytes
    blob = _frame(KIND_FASTSIM_MEMO, fingerprint, bytes(meta), bytes(streams))
    _atomic_write(path, blob)
    return SnapshotInfo(
        path=str(path), hit=True, entries=len(roots), shared_bytes=shared,
        pool_values=sim.pool.live_values(), file_bytes=len(blob),
    )


def load_fastsim_memo(sim, path, fingerprint: str) -> SnapshotInfo:
    """Load a fastsim memo snapshot; same contract as
    :func:`load_action_cache`."""
    from ..ooo.fastsim import _PackedCycle, _Node

    info = SnapshotInfo(path=str(path))
    if sim.memo or sim.pool.values:
        raise SnapshotError("cannot load a snapshot into a non-empty memo")
    try:
        handle, r, qmv = _open_snapshot(path, KIND_FASTSIM_MEMO, fingerprint)
    except FileNotFoundError:
        info.reason = "missing"
        return info
    except (SnapshotError, OSError, ValueError) as exc:
        sim.mstats.snapshot_rejected += 1
        info.reason = str(exc)
        return info
    try:
        pool_values, pool_refs, pool_costs = _decode_pool_lists(r)
        n_roots = r.u()
        keys = r.value()
        if len(keys) != n_roots:
            raise SnapshotError("key count mismatch")
        built = []
        qoff = 0
        for key in keys:
            n = r.u()
            n_tables = r.u()
            tables: list[dict] = []
            for _ in range(n_tables):
                count = r.u()
                table: dict = {}
                for _ in range(count):
                    value = r.value()
                    table[value] = r.u()
                tables.append(table)
            next_keys = list(r.value())
            chain = _PackedCycle()
            chain.kinds = qmv[qoff:qoff + n]
            chain.payload = qmv[qoff + n:qoff + 2 * n]
            chain.succ = qmv[qoff + 2 * n:qoff + 3 * n]
            qoff += 3 * n
            chain.tables = tables
            chain.next_keys = next_keys
            chain.kkinds = None
            chain.payload_vals = None
            chain.sux = None
            chain.local_bytes = PACKED_SLOT_BYTES * n + sum(
                PACKED_TABLE_OVERHEAD + PACKED_JUMP_BYTES * len(t)
                for t in tables
            )
            chain.shared = True
            built.append((key, chain))
        if qoff != len(qmv):
            raise SnapshotError("stream length mismatch")
        if not built:
            raise SnapshotError("empty")
    except Exception as exc:
        sim.mstats.snapshot_rejected += 1
        info.reason = str(exc) or type(exc).__name__
        return info
    _install_pool(sim.pool, pool_values, pool_refs, pool_costs)
    mstats = sim.mstats
    total = 0
    shared = 0
    for key, chain in built:
        root = _Node()
        root.stamp = sim.gen
        root.key_cost = 8 * (8 + 6 * len(key[0]) + 33)
        root.packed = chain
        root.nbytes = root.key_cost + chain.local_bytes
        sim.memo[key] = root
        total += root.nbytes
        shared += chain.local_bytes
    mstats.bytes_estimate += total + sim.pool.bytes_live
    mstats.bytes_shared += shared
    mstats.snapshot_entries += len(built)
    sim.snapshots.append(handle)
    info.hit = True
    info.entries = len(built)
    info.shared_bytes = shared
    info.pool_values = sim.pool.live_values()
    info.file_bytes = len(handle.mm)
    return info


# ---------------------------------------------------------------------------
# Warm-start orchestration (runners and the CLI use this)
# ---------------------------------------------------------------------------


@dataclass
class WarmStart:
    """Resolved snapshot paths for one run: load happened at
    construction (via :func:`warm_start`), :meth:`finish` saves."""

    target: Any
    fingerprint: str
    save_path: str | None
    load_info: SnapshotInfo | None = None
    save_info: SnapshotInfo | None = field(default=None)

    def finish(self) -> SnapshotInfo | None:
        """Save the (possibly grown) cache after the run.  Save
        failures are reported, never raised — the simulation results in
        hand are already correct."""
        if self.save_path is None:
            return None
        try:
            info = self.target.save_snapshot(self.save_path, self.fingerprint)
        except (OSError, SnapshotError) as exc:
            info = SnapshotInfo(
                path=self.save_path, hit=False, reason=f"save failed: {exc}"
            )
            self.target.snapshot_save = info
        self.save_info = info
        return info


def warm_start(
    target,
    fingerprint: str,
    cache_dir=None,
    cache_load=None,
    cache_save=None,
) -> WarmStart | None:
    """Wire snapshot load/save paths to an engine-like target (anything
    with ``load_snapshot``/``save_snapshot``).  Explicit paths win;
    ``cache_dir`` resolves both through the content-addressed store.
    Returns ``None`` when no snapshot option was requested."""
    if cache_dir is None and cache_load is None and cache_save is None:
        return None
    store = str(store_path(cache_dir, fingerprint)) if cache_dir else None
    load_path = cache_load or store
    save_path = cache_save or store
    ws = WarmStart(target=target, fingerprint=fingerprint, save_path=save_path)
    if load_path is not None:
        ws.load_info = target.load_snapshot(load_path, fingerprint)
    return ws
