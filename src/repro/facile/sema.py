"""Semantic analysis for Facile.

Checks performed here, before any binding-time work:

* symbol resolution — every name is a global ``val``, a local ``val``,
  a function parameter, a token field (inside a ``sem`` body or a
  ``pat`` switch arm), a ``fun``, an ``extern``, or a built-in;
* arity checking for calls and attribute applications;
* the language restrictions that make the paper's analyses tractable:
  **no recursion** (the call graph must be acyclic, §3.2) — pointers do
  not exist in the syntax, so nothing to check there;
* structural rules: ``break``/``continue`` only inside loops, ``sem``
  bodies attach to declared patterns, a step function ``main`` exists
  when compiling a simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import ast_nodes as A
from .builtins import BUILTIN_FUNCS, CONTROL_ATTRS, PURE_ATTRS, QUEUE_ATTRS, STREAM_ATTRS, known_attr
from .patterns import PatternTable, build_pattern_table
from .source import SemanticError


@dataclass
class ProgramInfo:
    """Resolved program: symbol tables shared by all later phases."""

    program: A.Program
    patterns: PatternTable
    sems: dict[str, A.SemDecl] = field(default_factory=dict)
    functions: dict[str, A.FunDecl] = field(default_factory=dict)
    externs: dict[str, A.ExternDecl] = field(default_factory=dict)
    globals: dict[str, A.GlobalVal] = field(default_factory=dict)
    call_order: list[str] = field(default_factory=list)  # reverse topological


class _Scope:
    def __init__(self, parent: "_Scope | None" = None):
        self.parent = parent
        self.names: set[str] = set()

    def declare(self, name: str) -> None:
        self.names.add(name)

    def defined(self, name: str) -> bool:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.names:
                return True
            scope = scope.parent
        return False


class Analyzer:
    """Runs all semantic checks over a parsed program."""

    def __init__(self, program: A.Program):
        self.program = program
        self.patterns = build_pattern_table(program)
        self.info = ProgramInfo(program, self.patterns)

    def analyze(self, require_main: bool = True) -> ProgramInfo:
        self._collect_decls()
        self._check_call_graph()
        for decl in self.program.decls:
            if isinstance(decl, A.GlobalVal) and decl.init is not None:
                self._check_expr(decl.init, _Scope(), in_pattern=None, loop_depth=0)
        for sem in self.info.sems.values():
            scope = _Scope()
            self._check_block(sem.body, scope, in_pattern=sem.pat_name, loop_depth=0)
        for fun in self.info.functions.values():
            scope = _Scope()
            for p in fun.params:
                scope.declare(p)
            self._check_block(fun.body, scope, in_pattern=None, loop_depth=0)
        if require_main and "main" not in self.info.functions:
            raise SemanticError("simulator has no 'main' step function")
        return self.info

    # -- declaration collection ----------------------------------------

    def _collect_decls(self) -> None:
        info = self.info
        for decl in self.program.decls:
            if isinstance(decl, A.SemDecl):
                if decl.pat_name not in self.patterns.by_name:
                    raise SemanticError(
                        f"sem for unknown pattern {decl.pat_name!r}", decl.span
                    )
                if decl.pat_name in info.sems:
                    raise SemanticError(
                        f"duplicate sem for pattern {decl.pat_name!r}", decl.span
                    )
                info.sems[decl.pat_name] = decl
            elif isinstance(decl, A.FunDecl):
                self._declare_unique(decl.name, decl)
                info.functions[decl.name] = decl
            elif isinstance(decl, A.ExternDecl):
                self._declare_unique(decl.name, decl)
                info.externs[decl.name] = decl
            elif isinstance(decl, A.GlobalVal):
                self._declare_unique(decl.name, decl)
                info.globals[decl.name] = decl

    def _declare_unique(self, name: str, decl: A.Decl) -> None:
        info = self.info
        if name in info.functions or name in info.externs or name in info.globals:
            raise SemanticError(f"duplicate declaration of {name!r}", decl.span)
        if name in BUILTIN_FUNCS:
            raise SemanticError(f"{name!r} shadows a built-in function", decl.span)
        if name in self.patterns.fields:
            raise SemanticError(f"{name!r} shadows a token field", decl.span)

    # -- recursion check ------------------------------------------------

    def _check_call_graph(self) -> None:
        """Verify the fun call graph (sems included) is acyclic.

        Also records a reverse-topological ordering used by the inliner.
        Direct calls only: Facile has no function values, so the static
        call graph is exact.
        """
        edges: dict[str, set[str]] = {name: set() for name in self.info.functions}

        def collect(name: str, node: A.Node) -> None:
            for child in _walk(node):
                if isinstance(child, A.Call) and child.func in self.info.functions:
                    edges[name].add(child.func)

        for name, fun in self.info.functions.items():
            collect(name, fun.body)
        # sem bodies may call funs; they are reachable from ?exec sites,
        # but cannot themselves be recursion roots (sems are not callable),
        # except that a fun called from a sem may contain ?exec again —
        # ?exec inside sem bodies is rejected by the inliner, so the fun
        # graph alone decides acyclicity.

        state: dict[str, int] = {}
        order: list[str] = []

        def visit(name: str, stack: list[str]) -> None:
            mark = state.get(name, 0)
            if mark == 1:
                cycle = " -> ".join(stack[stack.index(name):] + [name])
                raise SemanticError(
                    f"recursion is not allowed in Facile (cycle: {cycle})",
                    self.info.functions[name].span,
                )
            if mark == 2:
                return
            state[name] = 1
            stack.append(name)
            for callee in sorted(edges[name]):
                visit(callee, stack)
            stack.pop()
            state[name] = 2
            order.append(name)

        for name in self.info.functions:
            visit(name, [])
        self.info.call_order = order

    # -- statement / expression checks -----------------------------------

    def _check_block(self, block: A.Block, scope: _Scope, in_pattern: str | None, loop_depth: int) -> None:
        inner = _Scope(scope)
        for stmt in block.stmts:
            self._check_stmt(stmt, inner, in_pattern, loop_depth)

    def _check_stmt(self, stmt: A.Stmt, scope: _Scope, in_pattern: str | None, loop_depth: int) -> None:
        if isinstance(stmt, A.Block):
            self._check_block(stmt, scope, in_pattern, loop_depth)
        elif isinstance(stmt, A.ValStmt):
            if stmt.init is not None:
                self._check_expr(stmt.init, scope, in_pattern, loop_depth)
            scope.declare(stmt.name)
        elif isinstance(stmt, A.Assign):
            self._check_expr(stmt.value, scope, in_pattern, loop_depth)
            target = stmt.target
            if isinstance(target, A.Index):
                self._check_expr(target, scope, in_pattern, loop_depth)
            elif isinstance(target, A.Name):
                if not self._name_defined(target.ident, scope, in_pattern):
                    raise SemanticError(f"assignment to undefined name {target.ident!r}", target.span)
                if target.ident in self.patterns.fields:
                    raise SemanticError(f"cannot assign to token field {target.ident!r}", target.span)
        elif isinstance(stmt, A.ExprStmt):
            self._check_expr(stmt.expr, scope, in_pattern, loop_depth)
        elif isinstance(stmt, A.If):
            self._check_expr(stmt.cond, scope, in_pattern, loop_depth)
            self._check_stmt(stmt.then_body, _Scope(scope), in_pattern, loop_depth)
            if stmt.else_body is not None:
                self._check_stmt(stmt.else_body, _Scope(scope), in_pattern, loop_depth)
        elif isinstance(stmt, A.Switch):
            self._check_expr(stmt.scrutinee, scope, in_pattern, loop_depth)
            seen_default = False
            for case in stmt.cases:
                if case.kind == "default":
                    if seen_default:
                        raise SemanticError("multiple default cases", case.span)
                    seen_default = True
                elif case.kind == "pat":
                    for name in case.pat_names:
                        if name not in self.patterns.by_name:
                            raise SemanticError(f"unknown pattern {name!r} in switch", case.span)
                else:
                    for value in case.values:
                        self._check_expr(value, scope, in_pattern, loop_depth)
                arm_pattern = case.pat_names[0] if case.kind == "pat" else in_pattern
                self._check_block(case.body, _Scope(scope), arm_pattern, loop_depth)
        elif isinstance(stmt, A.While):
            self._check_expr(stmt.cond, scope, in_pattern, loop_depth)
            self._check_stmt(stmt.body, _Scope(scope), in_pattern, loop_depth + 1)
        elif isinstance(stmt, A.DoWhile):
            self._check_stmt(stmt.body, _Scope(scope), in_pattern, loop_depth + 1)
            self._check_expr(stmt.cond, scope, in_pattern, loop_depth)
        elif isinstance(stmt, A.For):
            inner = _Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner, in_pattern, loop_depth)
            if stmt.cond is not None:
                self._check_expr(stmt.cond, inner, in_pattern, loop_depth)
            if stmt.step is not None:
                self._check_stmt(stmt.step, inner, in_pattern, loop_depth + 1)
            self._check_stmt(stmt.body, _Scope(inner), in_pattern, loop_depth + 1)
        elif isinstance(stmt, (A.Break, A.Continue)):
            if loop_depth == 0:
                kind = "break" if isinstance(stmt, A.Break) else "continue"
                raise SemanticError(f"{kind} outside of a loop", stmt.span)
        elif isinstance(stmt, A.Return):
            if stmt.value is not None:
                self._check_expr(stmt.value, scope, in_pattern, loop_depth)
        else:
            raise SemanticError(f"unhandled statement {type(stmt).__name__}", stmt.span)

    def _name_defined(self, name: str, scope: _Scope, in_pattern: str | None) -> bool:
        if scope.defined(name):
            return True
        if name in self.info.globals:
            return True
        if in_pattern is not None and name in self.patterns.fields:
            return True
        return False

    def _check_expr(self, expr: A.Expr, scope: _Scope, in_pattern: str | None, loop_depth: int) -> None:
        if isinstance(expr, (A.IntLit, A.BoolLit, A.StrLit, A.QueueNew)):
            return
        if isinstance(expr, A.Name):
            if not self._name_defined(expr.ident, scope, in_pattern):
                raise SemanticError(f"undefined name {expr.ident!r}", expr.span)
            return
        if isinstance(expr, A.Unary):
            self._check_expr(expr.operand, scope, in_pattern, loop_depth)
            return
        if isinstance(expr, A.Binary):
            self._check_expr(expr.left, scope, in_pattern, loop_depth)
            self._check_expr(expr.right, scope, in_pattern, loop_depth)
            return
        if isinstance(expr, A.Index):
            self._check_expr(expr.base, scope, in_pattern, loop_depth)
            self._check_expr(expr.index, scope, in_pattern, loop_depth)
            return
        if isinstance(expr, A.Call):
            self._check_call(expr, scope, in_pattern, loop_depth)
            return
        if isinstance(expr, A.Attr):
            self._check_attr(expr, scope, in_pattern, loop_depth)
            return
        if isinstance(expr, A.ArrayNew):
            self._check_expr(expr.size, scope, in_pattern, loop_depth)
            self._check_expr(expr.init, scope, in_pattern, loop_depth)
            return
        if isinstance(expr, A.TupleLit):
            for item in expr.items:
                self._check_expr(item, scope, in_pattern, loop_depth)
            return
        raise SemanticError(f"unhandled expression {type(expr).__name__}", expr.span)

    def _check_call(self, expr: A.Call, scope: _Scope, in_pattern: str | None, loop_depth: int) -> None:
        name = expr.func
        arity: int | None = None
        if name in self.info.functions:
            arity = len(self.info.functions[name].params)
        elif name in self.info.externs:
            arity = self.info.externs[name].arity
        elif name in BUILTIN_FUNCS:
            arity = BUILTIN_FUNCS[name].arity
        else:
            raise SemanticError(f"call to undefined function {name!r}", expr.span)
        if len(expr.args) != arity:
            raise SemanticError(
                f"{name!r} expects {arity} argument(s), got {len(expr.args)}", expr.span
            )
        for arg in expr.args:
            self._check_expr(arg, scope, in_pattern, loop_depth)

    def _check_attr(self, expr: A.Attr, scope: _Scope, in_pattern: str | None, loop_depth: int) -> None:
        name = expr.name
        if not known_attr(name):
            raise SemanticError(f"unknown attribute ?{name}", expr.span)
        if name in PURE_ATTRS:
            arity = PURE_ATTRS[name]
        elif name in STREAM_ATTRS:
            arity = STREAM_ATTRS[name]
        elif name in CONTROL_ATTRS:
            arity = CONTROL_ATTRS[name]
        else:
            arity = QUEUE_ATTRS[name][0]
        if len(expr.args) != arity:
            raise SemanticError(
                f"?{name} expects {arity} argument(s), got {len(expr.args)}", expr.span
            )
        self._check_expr(expr.base, scope, in_pattern, loop_depth)
        for arg in expr.args:
            self._check_expr(arg, scope, in_pattern, loop_depth)


def _walk(node: A.Node):
    """Yield every AST node reachable from `node`, including itself."""
    yield node
    for value in vars(node).values():
        if isinstance(value, A.Node):
            yield from _walk(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, A.Node):
                    yield from _walk(item)


def analyze(program: A.Program, require_main: bool = True) -> ProgramInfo:
    """Run semantic analysis and return resolved program info."""
    return Analyzer(program).analyze(require_main=require_main)
