"""Semantic analysis for Facile.

Checks performed here, before any binding-time work:

* symbol resolution — every name is a global ``val``, a local ``val``,
  a function parameter, a token field (inside a ``sem`` body or a
  ``pat`` switch arm), a ``fun``, an ``extern``, or a built-in;
* arity checking for calls and attribute applications;
* the language restrictions that make the paper's analyses tractable:
  **no recursion** (the call graph must be acyclic, §3.2) — pointers do
  not exist in the syntax, so nothing to check there;
* structural rules: ``break``/``continue`` only inside loops, ``sem``
  bodies attach to declared patterns, a step function ``main`` exists
  when compiling a simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import ast_nodes as A
from .builtins import BUILTIN_FUNCS, CONTROL_ATTRS, PURE_ATTRS, QUEUE_ATTRS, STREAM_ATTRS, known_attr
from .diagnostics import DiagnosticSink, Note
from .patterns import PatternTable, build_pattern_table
from .source import SourceSpan


@dataclass
class ProgramInfo:
    """Resolved program: symbol tables shared by all later phases."""

    program: A.Program
    patterns: PatternTable
    sems: dict[str, A.SemDecl] = field(default_factory=dict)
    functions: dict[str, A.FunDecl] = field(default_factory=dict)
    externs: dict[str, A.ExternDecl] = field(default_factory=dict)
    globals: dict[str, A.GlobalVal] = field(default_factory=dict)
    call_order: list[str] = field(default_factory=list)  # reverse topological


class _Scope:
    def __init__(self, parent: "_Scope | None" = None):
        self.parent = parent
        self.names: set[str] = set()

    def declare(self, name: str) -> None:
        self.names.add(name)

    def defined(self, name: str) -> bool:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.names:
                return True
            scope = scope.parent
        return False


class Analyzer:
    """Runs all semantic checks over a parsed program.

    Errors are *collected*, not raised one at a time: every check emits
    into a :class:`DiagnosticSink` and recovers (keep-first on duplicate
    declarations, treat-as-defined on unresolved names) so one mistake
    does not hide the rest.  When no external sink is supplied, a
    private one raises a batched ``SemanticError`` at the end of
    :meth:`analyze`, which is what pre-existing callers observe.
    """

    def __init__(self, program: A.Program, sink: DiagnosticSink | None = None):
        self.program = program
        self._own_sink = sink is None
        self.sink = sink if sink is not None else DiagnosticSink()
        self.patterns = build_pattern_table(program, self.sink)
        self.info = ProgramInfo(program, self.patterns)

    def _emit(self, code: str, message: str, span: SourceSpan, notes=()) -> None:
        self.sink.emit(code, message, span, notes=notes)

    def analyze(self, require_main: bool = True) -> ProgramInfo:
        self._collect_decls()
        self._check_call_graph()
        for decl in self.program.decls:
            if isinstance(decl, A.GlobalVal) and decl.init is not None:
                self._check_expr(decl.init, _Scope(), in_pattern=None, loop_depth=0)
        for sem in self.info.sems.values():
            scope = _Scope()
            self._check_block(sem.body, scope, in_pattern=sem.pat_name, loop_depth=0)
        for fun in self.info.functions.values():
            scope = _Scope()
            for p in fun.params:
                scope.declare(p)
            self._check_block(fun.body, scope, in_pattern=None, loop_depth=0)
        if require_main and "main" not in self.info.functions:
            self._emit("FAC019", "simulator has no 'main' step function", self.program.span)
        if self._own_sink:
            self.sink.checkpoint()
        return self.info

    # -- declaration collection ----------------------------------------

    def _collect_decls(self) -> None:
        info = self.info
        for decl in self.program.decls:
            if isinstance(decl, A.SemDecl):
                if decl.pat_name not in self.patterns.by_name:
                    self._emit(
                        "FAC010", f"sem for unknown pattern {decl.pat_name!r}", decl.span
                    )
                    continue
                if decl.pat_name in info.sems:
                    self._emit(
                        "FAC011", f"duplicate sem for pattern {decl.pat_name!r}", decl.span
                    )
                    continue
                info.sems[decl.pat_name] = decl
            elif isinstance(decl, A.FunDecl):
                if self._declare_unique(decl.name, decl):
                    info.functions[decl.name] = decl
            elif isinstance(decl, A.ExternDecl):
                if self._declare_unique(decl.name, decl):
                    info.externs[decl.name] = decl
            elif isinstance(decl, A.GlobalVal):
                if self._declare_unique(decl.name, decl):
                    info.globals[decl.name] = decl

    def _declare_unique(self, name: str, decl: A.Decl) -> bool:
        """Check one top-level name; keep-first on conflicts."""
        info = self.info
        if name in info.functions or name in info.externs or name in info.globals:
            self._emit("FAC011", f"duplicate declaration of {name!r}", decl.span)
            return False
        if name in BUILTIN_FUNCS:
            self._emit("FAC012", f"{name!r} shadows a built-in function", decl.span)
            return False
        if name in self.patterns.fields:
            self._emit("FAC012", f"{name!r} shadows a token field", decl.span)
            return False
        return True

    # -- recursion check ------------------------------------------------

    def _check_call_graph(self) -> None:
        """Verify the fun call graph (sems included) is acyclic.

        Also records a reverse-topological ordering used by the inliner.
        Direct calls only: Facile has no function values, so the static
        call graph is exact.  A cycle is reported with its full path
        (``a -> b -> a``), anchored at the back-edge call site, with a
        note per participating call.
        """
        edges: dict[str, dict[str, SourceSpan]] = {name: {} for name in self.info.functions}

        def collect(name: str, node: A.Node) -> None:
            for child in _walk(node):
                if isinstance(child, A.Call) and child.func in self.info.functions:
                    edges[name].setdefault(child.func, child.span)

        for name, fun in self.info.functions.items():
            collect(name, fun.body)
        # sem bodies may call funs; they are reachable from ?exec sites,
        # but cannot themselves be recursion roots (sems are not callable),
        # except that a fun called from a sem may contain ?exec again —
        # ?exec inside sem bodies is rejected by the inliner, so the fun
        # graph alone decides acyclicity.

        state: dict[str, int] = {}
        order: list[str] = []

        def visit(name: str, stack: list[str]) -> None:
            mark = state.get(name, 0)
            if mark == 1:
                cycle = stack[stack.index(name):] + [name]
                back_span = edges[cycle[-2]].get(cycle[-1], self.info.functions[name].span)
                notes = tuple(
                    Note(f"{a!r} calls {b!r} here", edges[a].get(b))
                    for a, b in zip(cycle, cycle[1:])
                )
                self._emit(
                    "FAC015",
                    "recursion is not allowed in Facile "
                    f"(cycle: {' -> '.join(cycle)})",
                    back_span,
                    notes=notes,
                )
                return
            if mark == 2:
                return
            state[name] = 1
            stack.append(name)
            for callee in sorted(edges[name]):
                visit(callee, stack)
            stack.pop()
            state[name] = 2
            order.append(name)

        for name in self.info.functions:
            visit(name, [])
        self.info.call_order = order

    # -- statement / expression checks -----------------------------------

    def _check_block(self, block: A.Block, scope: _Scope, in_pattern: str | None, loop_depth: int) -> None:
        inner = _Scope(scope)
        for stmt in block.stmts:
            self._check_stmt(stmt, inner, in_pattern, loop_depth)

    def _check_stmt(self, stmt: A.Stmt, scope: _Scope, in_pattern: str | None, loop_depth: int) -> None:
        if isinstance(stmt, A.Block):
            self._check_block(stmt, scope, in_pattern, loop_depth)
        elif isinstance(stmt, A.ValStmt):
            if stmt.init is not None:
                self._check_expr(stmt.init, scope, in_pattern, loop_depth)
            scope.declare(stmt.name)
        elif isinstance(stmt, A.Assign):
            self._check_expr(stmt.value, scope, in_pattern, loop_depth)
            target = stmt.target
            if isinstance(target, A.Index):
                self._check_expr(target, scope, in_pattern, loop_depth)
            elif isinstance(target, A.Name):
                if not self._name_defined(target.ident, scope, in_pattern):
                    self._emit("FAC010", f"assignment to undefined name {target.ident!r}", target.span)
                    scope.declare(target.ident)  # suppress cascades on later uses
                elif target.ident in self.patterns.fields:
                    self._emit("FAC017", f"cannot assign to token field {target.ident!r}", target.span)
        elif isinstance(stmt, A.ExprStmt):
            self._check_expr(stmt.expr, scope, in_pattern, loop_depth)
        elif isinstance(stmt, A.If):
            self._check_expr(stmt.cond, scope, in_pattern, loop_depth)
            self._check_stmt(stmt.then_body, _Scope(scope), in_pattern, loop_depth)
            if stmt.else_body is not None:
                self._check_stmt(stmt.else_body, _Scope(scope), in_pattern, loop_depth)
        elif isinstance(stmt, A.Switch):
            self._check_expr(stmt.scrutinee, scope, in_pattern, loop_depth)
            seen_default = False
            for case in stmt.cases:
                if case.kind == "default":
                    if seen_default:
                        self._emit("FAC011", "multiple default cases", case.span)
                    seen_default = True
                elif case.kind == "pat":
                    for name in case.pat_names:
                        if name not in self.patterns.by_name:
                            self._emit("FAC010", f"unknown pattern {name!r} in switch", case.span)
                else:
                    for value in case.values:
                        self._check_expr(value, scope, in_pattern, loop_depth)
                arm_pattern = case.pat_names[0] if case.kind == "pat" else in_pattern
                self._check_block(case.body, _Scope(scope), arm_pattern, loop_depth)
        elif isinstance(stmt, A.While):
            self._check_expr(stmt.cond, scope, in_pattern, loop_depth)
            self._check_stmt(stmt.body, _Scope(scope), in_pattern, loop_depth + 1)
        elif isinstance(stmt, A.DoWhile):
            self._check_stmt(stmt.body, _Scope(scope), in_pattern, loop_depth + 1)
            self._check_expr(stmt.cond, scope, in_pattern, loop_depth)
        elif isinstance(stmt, A.For):
            inner = _Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner, in_pattern, loop_depth)
            if stmt.cond is not None:
                self._check_expr(stmt.cond, inner, in_pattern, loop_depth)
            if stmt.step is not None:
                self._check_stmt(stmt.step, inner, in_pattern, loop_depth + 1)
            self._check_stmt(stmt.body, _Scope(inner), in_pattern, loop_depth + 1)
        elif isinstance(stmt, (A.Break, A.Continue)):
            if loop_depth == 0:
                kind = "break" if isinstance(stmt, A.Break) else "continue"
                self._emit("FAC016", f"{kind} outside of a loop", stmt.span)
        elif isinstance(stmt, A.Return):
            if stmt.value is not None:
                self._check_expr(stmt.value, scope, in_pattern, loop_depth)
        else:
            self._emit("FAC030", f"unhandled statement {type(stmt).__name__}", stmt.span)

    def _name_defined(self, name: str, scope: _Scope, in_pattern: str | None) -> bool:
        if scope.defined(name):
            return True
        if name in self.info.globals:
            return True
        if in_pattern is not None and name in self.patterns.fields:
            return True
        return False

    def _check_expr(self, expr: A.Expr, scope: _Scope, in_pattern: str | None, loop_depth: int) -> None:
        if isinstance(expr, (A.IntLit, A.BoolLit, A.StrLit, A.QueueNew)):
            return
        if isinstance(expr, A.Name):
            if not self._name_defined(expr.ident, scope, in_pattern):
                self._emit("FAC010", f"undefined name {expr.ident!r}", expr.span)
                scope.declare(expr.ident)  # report each unknown name once
            return
        if isinstance(expr, A.Unary):
            self._check_expr(expr.operand, scope, in_pattern, loop_depth)
            return
        if isinstance(expr, A.Binary):
            self._check_expr(expr.left, scope, in_pattern, loop_depth)
            self._check_expr(expr.right, scope, in_pattern, loop_depth)
            return
        if isinstance(expr, A.Index):
            self._check_expr(expr.base, scope, in_pattern, loop_depth)
            self._check_expr(expr.index, scope, in_pattern, loop_depth)
            return
        if isinstance(expr, A.Call):
            self._check_call(expr, scope, in_pattern, loop_depth)
            return
        if isinstance(expr, A.Attr):
            self._check_attr(expr, scope, in_pattern, loop_depth)
            return
        if isinstance(expr, A.ArrayNew):
            self._check_expr(expr.size, scope, in_pattern, loop_depth)
            self._check_expr(expr.init, scope, in_pattern, loop_depth)
            return
        if isinstance(expr, A.TupleLit):
            for item in expr.items:
                self._check_expr(item, scope, in_pattern, loop_depth)
            return
        self._emit("FAC030", f"unhandled expression {type(expr).__name__}", expr.span)

    def _check_call(self, expr: A.Call, scope: _Scope, in_pattern: str | None, loop_depth: int) -> None:
        name = expr.func
        arity: int | None = None
        if name in self.info.functions:
            arity = len(self.info.functions[name].params)
        elif name in self.info.externs:
            arity = self.info.externs[name].arity
        elif name in BUILTIN_FUNCS:
            arity = BUILTIN_FUNCS[name].arity
        else:
            self._emit("FAC010", f"call to undefined function {name!r}", expr.span)
        if arity is not None and len(expr.args) != arity:
            self._emit(
                "FAC013",
                f"{name!r} expects {arity} argument(s), got {len(expr.args)}",
                expr.span,
            )
        for arg in expr.args:
            self._check_expr(arg, scope, in_pattern, loop_depth)

    def _check_attr(self, expr: A.Attr, scope: _Scope, in_pattern: str | None, loop_depth: int) -> None:
        name = expr.name
        arity: int | None = None
        if not known_attr(name):
            self._emit("FAC014", f"unknown attribute ?{name}", expr.span)
        elif name in PURE_ATTRS:
            arity = PURE_ATTRS[name]
        elif name in STREAM_ATTRS:
            arity = STREAM_ATTRS[name]
        elif name in CONTROL_ATTRS:
            arity = CONTROL_ATTRS[name]
        else:
            arity = QUEUE_ATTRS[name][0]
        if arity is not None and len(expr.args) != arity:
            self._emit(
                "FAC013",
                f"?{name} expects {arity} argument(s), got {len(expr.args)}",
                expr.span,
            )
        self._check_expr(expr.base, scope, in_pattern, loop_depth)
        for arg in expr.args:
            self._check_expr(arg, scope, in_pattern, loop_depth)


def _walk(node: A.Node):
    """Yield every AST node reachable from `node`, including itself."""
    yield node
    for value in vars(node).values():
        if isinstance(value, A.Node):
            yield from _walk(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, A.Node):
                    yield from _walk(item)


def analyze(
    program: A.Program,
    require_main: bool = True,
    sink: DiagnosticSink | None = None,
) -> ProgramInfo:
    """Run semantic analysis and return resolved program info.

    With `sink`, problems are collected there and nothing is raised;
    without it, a batched ``SemanticError`` is raised if any check fails.
    """
    return Analyzer(program, sink=sink).analyze(require_main=require_main)
