"""Compile-time optimizations on the flattened step function.

The paper's §6.3 item 5: "Although our binding-time analysis currently
detects static, run-time static and dynamic code and data, it does not
perform partial evaluation at compile time ... constant folding and
similar optimizations may benefit both the slow and fast simulators.
The analysis is already in place, making these optimizations a
worthwhile addition to the compiler."

This module adds that worthwhile addition:

* **constant folding** — pure expressions whose operands are literals
  evaluate at compile time, using exactly the semantics code generation
  emits (wrap-around helpers, C-style division);
* **branch pruning** — ``if``/``while``/``switch`` with a constant
  condition keep only the reachable arm;
* **algebraic identities** — ``x + 0``, ``x * 1``, ``x * 0``,
  ``x & 0``, ``x | 0``, ``x << 0`` and friends.

Full inlining creates many such opportunities (literal arguments bound
to parameter temporaries, the return-elimination done-flags), so the
pass runs to a fixed point.
"""

from __future__ import annotations

from . import ast_nodes as A
from .builtins import (
    bit,
    bits,
    cc_add,
    cc_branch_taken,
    cc_logic,
    cc_sub,
    popcount,
    select,
    sext,
    s32,
    u32,
    udiv32,
    umul32,
    zext,
)
from .inline import FlatMain

_PURE_FUNCS = {
    "min": min,
    "max": max,
    "abs": abs,
    "popcount": popcount,
    "cc_add": cc_add,
    "cc_sub": cc_sub,
    "cc_logic": cc_logic,
    "cc_branch_taken": lambda c, cc: 1 if cc_branch_taken(c, cc) else 0,
    "udiv32": udiv32,
    "umul32": umul32,
    "select": select,
}


def _idiv(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _literal(expr: A.Expr) -> int | None:
    if isinstance(expr, A.IntLit):
        return expr.value
    if isinstance(expr, A.BoolLit):
        return 1 if expr.value else 0
    return None


def _lit(value, span) -> A.Expr:
    if isinstance(value, bool):
        return A.IntLit(1 if value else 0, span=span)
    return A.IntLit(int(value), span=span)


class ConstantFolder:
    """One folding pass; `changed` records whether anything happened."""

    def __init__(self) -> None:
        self.changed = False
        self.folds = 0

    # -- expressions ---------------------------------------------------------

    def expr(self, e: A.Expr) -> A.Expr:
        if isinstance(e, (A.IntLit, A.BoolLit, A.StrLit, A.Name, A.QueueNew)):
            return e
        if isinstance(e, A.Unary):
            operand = self.expr(e.operand)
            v = _literal(operand)
            if v is not None:
                self._note()
                if e.op == "-":
                    return _lit(-v, e.span)
                if e.op == "~":
                    return _lit(~v, e.span)
                return _lit(0 if v else 1, e.span)
            return A.Unary(e.op, operand, span=e.span)
        if isinstance(e, A.Binary):
            return self._binary(e)
        if isinstance(e, A.Index):
            return A.Index(self.expr(e.base), self.expr(e.index), span=e.span)
        if isinstance(e, A.ArrayNew):
            return A.ArrayNew(self.expr(e.size), self.expr(e.init), span=e.span)
        if isinstance(e, A.TupleLit):
            return A.TupleLit([self.expr(i) for i in e.items], span=e.span)
        if isinstance(e, A.Call):
            args = [self.expr(a) for a in e.args]
            fn = _PURE_FUNCS.get(e.func)
            values = [_literal(a) for a in args]
            if fn is not None and all(v is not None for v in values):
                self._note()
                return _lit(fn(*values), e.span)
            return A.Call(e.func, args, span=e.span)
        if isinstance(e, A.Attr):
            return self._attr(e)
        return e

    def _binary(self, e: A.Binary) -> A.Expr:
        left = self.expr(e.left)
        right = self.expr(e.right)
        lv, rv = _literal(left), _literal(right)
        if lv is not None and rv is not None:
            folded = self._eval_binary(e.op, lv, rv)
            if folded is not None:
                self._note()
                return _lit(folded, e.span)
        # Algebraic identities with one literal side.
        if rv == 0 and e.op in ("+", "-", "|", "^", "<<", ">>"):
            self._note()
            return left
        if lv == 0 and e.op in ("+", "|", "^"):
            self._note()
            return right
        if (rv == 0 and e.op in ("*", "&")) or (lv == 0 and e.op in ("*", "&")):
            self._note()
            return _lit(0, e.span)
        if rv == 1 and e.op == "*":
            self._note()
            return left
        if lv == 1 and e.op == "*":
            self._note()
            return right
        if rv == 1 and e.op == "&&":
            self._note()
            return A.Unary("!", A.Unary("!", left, span=e.span), span=e.span)
        if lv is not None and e.op == "&&":
            self._note()
            if lv == 0:
                return _lit(0, e.span)
            return A.Unary("!", A.Unary("!", right, span=e.span), span=e.span)
        if lv is not None and e.op == "||" and lv != 0:
            self._note()
            return _lit(1, e.span)
        if lv == 0 and e.op == "||":
            self._note()
            return A.Unary("!", A.Unary("!", right, span=e.span), span=e.span)
        return A.Binary(e.op, left, right, span=e.span)

    @staticmethod
    def _eval_binary(op: str, a: int, b: int):
        try:
            if op == "+":
                return a + b
            if op == "-":
                return a - b
            if op == "*":
                return a * b
            if op == "/":
                return _idiv(a, b)
            if op == "%":
                return a - _idiv(a, b) * b
            if op == "&":
                return a & b
            if op == "|":
                return a | b
            if op == "^":
                return a ^ b
            if op == "<<":
                return a << b if 0 <= b < 64 else None
            if op == ">>":
                return a >> b if b >= 0 else None
            if op == "==":
                return 1 if a == b else 0
            if op == "!=":
                return 1 if a != b else 0
            if op == "<":
                return 1 if a < b else 0
            if op == "<=":
                return 1 if a <= b else 0
            if op == ">":
                return 1 if a > b else 0
            if op == ">=":
                return 1 if a >= b else 0
            if op == "&&":
                return 1 if (a and b) else 0
            if op == "||":
                return 1 if (a or b) else 0
        except ZeroDivisionError:
            return None
        return None

    _PURE_ATTRS = {
        "sext": lambda v, n: sext(v, n),
        "zext": lambda v, n: zext(v, n),
        "bit": lambda v, i: bit(v, i),
        "bits": lambda v, lo, hi: bits(v, lo, hi),
    }

    def _attr(self, e: A.Attr) -> A.Expr:
        base = self.expr(e.base)
        args = [self.expr(a) for a in e.args]
        bv = _literal(base)
        avs = [_literal(a) for a in args]
        if bv is not None and all(v is not None for v in avs):
            if e.name in self._PURE_ATTRS:
                self._note()
                return _lit(self._PURE_ATTRS[e.name](bv, *avs), e.span)
            if e.name == "u32":
                self._note()
                return _lit(u32(bv), e.span)
            if e.name == "s32":
                self._note()
                return _lit(s32(bv), e.span)
        return A.Attr(base, e.name, args, e.has_parens, span=e.span)

    def _note(self) -> None:
        self.changed = True
        self.folds += 1

    # -- statements -----------------------------------------------------------

    def block(self, b: A.Block) -> A.Block:
        out: list[A.Stmt] = []
        for stmt in b.stmts:
            out.extend(self.stmt(stmt))
        return A.Block(out, span=b.span)

    def stmt(self, s: A.Stmt) -> list[A.Stmt]:
        if isinstance(s, A.Block):
            return [self.block(s)]
        if isinstance(s, A.ValStmt):
            init = self.expr(s.init) if s.init is not None else None
            return [A.ValStmt(s.name, init, s.type_name, span=s.span)]
        if isinstance(s, A.Assign):
            target = s.target
            if isinstance(target, A.Index):
                target = A.Index(self.expr(target.base), self.expr(target.index), span=target.span)
            return [A.Assign(target, s.op, self.expr(s.value), span=s.span)]
        if isinstance(s, A.ExprStmt):
            return [A.ExprStmt(self.expr(s.expr), span=s.span)]
        if isinstance(s, A.If):
            cond = self.expr(s.cond)
            cv = _literal(cond)
            if cv is not None:
                self._note()
                chosen = s.then_body if cv else s.else_body
                if chosen is None:
                    return []
                folded = self.stmt(chosen)
                # Splice a bare block's contents (preserves break/continue
                # semantics: blocks are not scopes for control flow).
                if len(folded) == 1 and isinstance(folded[0], A.Block):
                    return folded[0].stmts
                return folded
            then_body = self.block(_as_block(s.then_body))
            else_body = self.block(_as_block(s.else_body)) if s.else_body is not None else None
            if else_body is not None and not else_body.stmts:
                else_body = None
            return [A.If(cond, then_body, else_body, span=s.span)]
        if isinstance(s, A.Switch):
            scrutinee = self.expr(s.scrutinee)
            sv = _literal(scrutinee)
            cases = [
                A.Case(c.kind, [self.expr(v) for v in c.values], c.pat_names,
                       self.block(c.body), span=c.span)
                for c in s.cases
            ]
            if sv is not None and all(
                all(_literal(v) is not None for v in c.values) for c in cases if c.kind == "int"
            ):
                self._note()
                default = None
                for c in cases:
                    if c.kind == "default":
                        default = c
                    elif any(_literal(v) == sv for v in c.values):
                        return list(c.body.stmts)
                return list(default.body.stmts) if default is not None else []
            return [A.Switch(scrutinee, cases, span=s.span)]
        if isinstance(s, A.While):
            cond = self.expr(s.cond)
            cv = _literal(cond)
            if cv == 0:
                self._note()
                return []
            return [A.While(cond, self.block(_as_block(s.body)), span=s.span)]
        return [s]


def _as_block(s: A.Stmt) -> A.Block:
    return s if isinstance(s, A.Block) else A.Block([s], span=s.span)


def fold_constants(flat: FlatMain, max_passes: int = 8) -> int:
    """Fold the flat body to a fixed point; returns total folds."""
    total = 0
    for _ in range(max_passes):
        folder = ConstantFolder()
        flat.body = folder.block(flat.body)
        total += folder.folds
        if not folder.changed:
            break
    return total
