"""Trace compilation: promote hot action chains to compiled superblocks.

The fast engine's interpreter loop (``FastForwardEngine._fast_step``)
pays a table dispatch, a Python function call, and a data-tuple unpack
per replayed action — the paper's §6.3 names this dispatch cost as the
single largest target for compiler optimization.  This module removes
it for the paths that actually execute: once a cache entry has replayed
more than a promotion threshold, the chain walker flattens its record
tree — following ``likely_next`` links across step boundaries — and the
emitter synthesizes **one Python function for the whole chain**:

* each :class:`ActionRecord`'s generated body is spliced inline, with
  its recorded placeholder data bound as function-local constants (no
  ``actions[rec.num]`` dispatch, no per-action call, no unpack);
* each :class:`VerifyRecord` is lowered to a specialized comparison
  against its recorded successor value(s): single-successor verifies
  become a flat early-exit guard, multi-successor verifies an
  ``if``/``elif`` ladder; an unmatched value **side-exits** back to the
  driver, which runs the normal miss-recovery path;
* each :class:`EndRecord` either returns (end of trace, budget
  exhausted, or ``halt``) or — when the next entry was chained at
  compile time — re-guards the key by object identity and falls
  through into the next step's inlined chain.

Step counts, replayed-action counts, and already-consumed verify values
are all path constants of the record tree, so they are embedded as
literals at each exit: a compiled trace does **zero** per-record
bookkeeping at run time.

Trace protocol (returned tuples)::

    (TRACE_COMPLETE, steps_done, actions_replayed, last_end_record)
    (TRACE_SIDE_EXIT, steps_done, actions_replayed, entry, consumed)

``steps_done`` counts fully completed steps; on a side exit the
diverging step is *not* counted (the driver accounts it as a recovered
step, exactly like the interpreter).  ``consumed`` holds the frozen
verify values observed since ``entry``'s key, diverging value last —
the recovery stack.

Invalidation rules (enforced by :class:`TraceManager` + the engine):

* a cache clear bumps ``ActionCache.generation``; every trace stores
  the generation it was compiled at and is skipped (and dropped) when
  they disagree;
* recording a **new successor** on any verify record reached through a
  compiled trace would make its comparison ladder incomplete, so every
  recovery through entry *E* kills all traces whose chain covers *E*
  (the root entry's hotness resets, allowing later re-promotion).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable

TRACE_COMPLETE = 0
TRACE_SIDE_EXIT = 1

#: Budget passed for ``max_steps=None`` runs; far above any real count.
UNBOUNDED_BUDGET = 1 << 62

_PH_RE = re.compile(r"\b_ph(\d+)\b")

#: ``select(cond, a, b)`` / immediate-vs-register conditionals whose
#: condition is a lone placeholder — foldable once the recorded data is
#: known.  Branch payloads are limited to paren-free text so the match
#: can never cut an expression mid-parenthesis; anything fancier simply
#: stays a run-time conditional.
_SELECT_RE = re.compile(r"\(\(([^()]*)\) if \(_ph(\d+)\) else \(([^()]*)\)\)")
#: Logical not / and / or lowerings: ``(0 if _ph2 else 1)`` etc.
_BOOL_RE = re.compile(r"\((\d+) if _ph(\d+) else (\d+)\)")


class _Untraceable(Exception):
    """Raised during emission when a chain cannot be compiled."""


@dataclass
class Trace:
    """One compiled superblock, installed on its root cache entry."""

    fn: Callable  # fn(ctx, S, budget) -> result tuple
    generation: int  # cache generation at compile time; -1 = dead
    root: Any  # CacheEntry the trace is installed on
    entries: list  # every CacheEntry the chain covers (root first)
    source: str  # generated Python source (debugging/inspection)
    n_constants: int = 0
    # Run-time counters, maintained by the driver.
    calls: int = 0
    steps: int = 0
    actions: int = 0
    side_exits: int = 0


class _NoTrace:
    """Sentinel installed on entries that failed promotion, so the
    driver neither executes nor re-promotes them.  ``generation`` is
    never a valid cache generation, so the execution check rejects it."""

    generation = -1
    fn = None


NO_TRACE = _NoTrace()


@dataclass
class TraceJITStats:
    traces_compiled: int = 0
    traces_invalidated: int = 0
    compile_failures: int = 0
    entries_covered: int = 0

    def aggregate(self, traces: list[Trace]) -> dict:
        """Totals over live + dead traces (driver-maintained counters)."""
        return {
            "calls": sum(t.calls for t in traces),
            "steps": sum(t.steps for t in traces),
            "actions": sum(t.actions for t in traces),
            "side_exits": sum(t.side_exits for t in traces),
        }


# ---------------------------------------------------------------------------
# Chain sizing (pre-scan before committing to an entry)
# ---------------------------------------------------------------------------


def _tree_shape(entry) -> tuple[int, int] | None:
    """(record count, max multi-successor nesting depth) of an entry's
    record tree, or None if the tree is unfinished.

    Flat-packed entries answer from the shape the packer computed —
    free, where the object walk was proportional to the tree — which is
    what makes chain-flattening pre-scans cheaper under packing."""
    if entry.packed is not None:
        chain = entry.packed
        return chain.n_records, chain.depth
    n = 0
    depth_max = 0
    stack = [(entry.first, 0)]
    while stack:
        rec, depth = stack.pop()
        while rec is not None:
            if rec.is_end:
                break
            n += 1
            if rec.is_verify:
                if not rec.succ:
                    return None
                d = depth + (1 if len(rec.succ) > 1 else 0)
                depth_max = max(depth_max, d)
                succs = list(rec.succ.values())
                for s in succs[1:]:
                    stack.append((s, d))
                rec = succs[0]
                depth = d
                continue
            rec = rec.next
        else:
            return None  # chain ran out without an end marker
    return n, depth_max


# ---------------------------------------------------------------------------
# The emitter
# ---------------------------------------------------------------------------


class _TraceEmitter:
    def __init__(
        self,
        compiled,
        generation: int,
        init_slot: int,
        max_chain: int,
        max_records: int,
        max_depth: int,
    ):
        self.compiled = compiled
        self.generation = generation
        self.init_slot = init_slot
        self.max_chain = max_chain
        self.max_records = max_records
        self.max_depth = max_depth
        self.lines: list[str] = []
        self.consts: list[Any] = []  # strong refs keep id()s stable
        self._const_names: dict[int, str] = {}
        self._vcount = 0
        self.entries: list = []
        self._entry_ids: set[int] = set()
        self.records_emitted = 0
        self._shapes: dict[int, tuple[int, int] | None] = {}

    # -- low-level helpers --------------------------------------------------

    def line(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def const(self, obj: Any) -> str:
        """Bind a Python object as a function-local constant.

        Objects are bound by identity (not value): replayed stores must
        install the *same* object the interpreter would, so the
        ``likely_next`` identity guards keep holding.
        """
        name = self._const_names.get(id(obj))
        if name is None:
            name = f"_d{len(self.consts)}"
            self._const_names[id(obj)] = name
            self.consts.append(obj)
        return name

    def value_ref(self, obj: Any) -> str:
        """Reference for a value used only by equality: plain ints are
        emitted as literals, everything else is identity-bound."""
        if type(obj) is int or type(obj) is bool:
            return repr(obj)
        return self.const(obj)

    def _fresh_value(self) -> str:
        self._vcount += 1
        return f"_v{self._vcount}"

    def _shape(self, entry) -> tuple[int, int] | None:
        shape = self._shapes.get(id(entry))
        if id(entry) not in self._shapes:
            shape = _tree_shape(entry)
            self._shapes[id(entry)] = shape
        return shape

    # -- record emission ----------------------------------------------------

    def _splice_action(self, num: int, data: tuple, indent: int) -> None:
        """Inline one non-verify action body with data bound as constants."""
        body, n_ph, _ = self.compiled.action_bodies[num]
        sub = self._ph_subst(num, data, n_ph)
        for src in body:
            self.line(indent, self._specialize(src, data, sub))
        self.records_emitted += 1

    def _splice_verify(self, num: int, data: tuple, indent: int) -> str:
        """Inline a verify body; returns the name holding the frozen value."""
        body, n_ph, _ = self.compiled.action_bodies[num]
        sub = self._ph_subst(num, data, n_ph)
        vname = self._fresh_value()
        for src in body:
            src = self._specialize(src, data, sub)
            if src.startswith("return "):
                self.line(indent, f"{vname} = _freeze({src[len('return '):]})")
            else:
                self.line(indent, src)
        self.records_emitted += 1
        return vname

    def _specialize(self, src: str, data: tuple, sub) -> str:
        """Specialize one body line against its recorded data.

        First fold every conditional whose condition is a recorded
        placeholder (immediate-vs-register selects, logical-op
        lowerings) — the untaken branch disappears from the trace —
        then substitute the surviving placeholders.
        """
        if "_ph" not in src:
            return src
        while " if _ph" in src or " if (_ph" in src:
            folded, n1 = _SELECT_RE.subn(
                lambda m: f"({m.group(1)})" if data[int(m.group(2))]
                else f"({m.group(3)})",
                src,
            )
            folded, n2 = _BOOL_RE.subn(
                lambda m: m.group(1) if data[int(m.group(2))] else m.group(3),
                folded,
            )
            src = folded
            if not (n1 or n2):
                break
        return _PH_RE.sub(sub, src)

    def _ph_subst(self, num: int, data: tuple, n_ph: int):
        if len(data) != n_ph:
            raise _Untraceable(f"action {num}: data/placeholder mismatch")

        def sub(match: re.Match) -> str:
            value = data[int(match.group(1))]
            # Plain ints (the overwhelmingly common case) become source
            # literals: no constant slot, no prologue unpack.  Anything
            # whose object identity could matter — init-state tuples
            # guarded with ``is`` at chain boundaries — stays bound.
            if type(value) is int or type(value) is bool:
                return repr(value)
            return self.const(value)

        return sub

    # -- chain walking ------------------------------------------------------

    def emit_entry(
        self, entry, indent: int, steps: int, replayed: int, chain_left: int
    ) -> None:
        """Emit the whole record tree of one complete cache entry
        (walking the packed streams directly when it is flat-packed)."""
        if id(entry) not in self._entry_ids:
            self._entry_ids.add(id(entry))
            self.entries.append(entry)
        if entry.packed is not None:
            self.emit_packed(
                entry.packed, 0, entry, indent, steps, replayed, [], chain_left
            )
        else:
            self.emit_chain(
                entry.first, entry, indent, steps, replayed, [], chain_left
            )

    def emit_packed(
        self,
        chain,
        i: int,
        entry,
        indent: int,
        steps: int,
        replayed: int,
        consumed: list[str],
        chain_left: int,
    ) -> None:
        """Emit records straight off a :class:`PackedChain`'s streams —
        no object reconstruction; slot kinds decode from the sign of the
        action number and data comes from the interning pool."""
        if indent > self.max_depth:
            raise _Untraceable("verify nesting too deep")
        from .runtime import ENDMARK

        nums = chain.nums
        dstream = chain.data
        sstream = chain.succ
        pool_vals = chain.pool.values
        while True:
            num = nums[i]
            if num >= 0:
                self._splice_action(num, pool_vals[dstream[i]], indent)
                replayed += 1
                i += 1
                continue
            if num == ENDMARK:
                self._emit_end(
                    chain.ends[sstream[i]], indent, steps, replayed, chain_left
                )
                return
            vname = self._splice_verify(~num, pool_vals[dstream[i]], indent)
            replayed += 1
            exit_values = ", ".join(consumed + [vname])
            side_exit = (
                f"return ({TRACE_SIDE_EXIT}, {steps}, {replayed}, "
                f"{self.const(entry)}, ({exit_values},))"
            )
            s = sstream[i]
            if s >= 0:
                # Single recorded successor: the expected value sits in
                # the pool; match falls through to the next slot.
                wname = self.value_ref(pool_vals[s])
                self.line(indent, f"if {vname} != {wname}:")
                self.line(indent + 1, side_exit)
                consumed = consumed + [wname]
                i += 1
                continue
            table = chain.tables[~s]
            for k, (value, j) in enumerate(table.items()):
                wname = self.value_ref(value)
                kw = "if" if k == 0 else "elif"
                self.line(indent, f"{kw} {vname} == {wname}:")
                self.emit_packed(
                    chain, j, entry, indent + 1, steps, replayed,
                    consumed + [wname], chain_left,
                )
            self.line(indent, "else:")
            self.line(indent + 1, side_exit)
            return

    def emit_chain(
        self,
        rec,
        entry,
        indent: int,
        steps: int,
        replayed: int,
        consumed: list[str],
        chain_left: int,
    ) -> None:
        """Emit one linear run of records.

        ``steps`` / ``replayed`` are *path* constants — the completed
        step count and replayed-record count along the execution path
        reaching this point — embedded literally at every exit.
        """
        if indent > self.max_depth:
            raise _Untraceable("verify nesting too deep")
        while True:
            if rec is None:
                raise _Untraceable("record chain ended without an end marker")
            if rec.is_end:
                self._emit_end(rec, indent, steps, replayed, chain_left)
                return
            if not rec.is_verify:
                self._splice_action(rec.num, rec.data, indent)
                replayed += 1
                rec = rec.next
                continue
            vname = self._splice_verify(rec.num, rec.data, indent)
            replayed += 1
            exit_values = ", ".join(consumed + [vname])
            side_exit = (
                f"return ({TRACE_SIDE_EXIT}, {steps}, {replayed}, "
                f"{self.const(entry)}, ({exit_values},))"
            )
            succ = list(rec.succ.items())
            if len(succ) == 1:
                value, nxt = succ[0]
                wname = self.value_ref(value)
                self.line(indent, f"if {vname} != {wname}:")
                self.line(indent + 1, side_exit)
                consumed = consumed + [wname]
                rec = nxt
                continue
            for i, (value, nxt) in enumerate(succ):
                wname = self.value_ref(value)
                kw = "if" if i == 0 else "elif"
                self.line(indent, f"{kw} {vname} == {wname}:")
                self.emit_chain(
                    nxt, entry, indent + 1, steps, replayed,
                    consumed + [wname], chain_left,
                )
            self.line(indent, "else:")
            self.line(indent + 1, side_exit)
            return

    def _emit_end(
        self, end, indent: int, steps: int, replayed: int, chain_left: int
    ) -> None:
        """A step boundary: stop the trace or chain into the next entry."""
        done = steps + 1
        complete = (
            f"return ({TRACE_COMPLETE}, {done}, {replayed}, {self.const(end)})"
        )
        nxt = self._continuation(end, chain_left)
        if nxt is None:
            self.line(indent, complete)
            return
        raw, nxt_entry = nxt
        self.line(indent, f"if _ctx.halted or _budget <= {done}:")
        self.line(indent + 1, complete)
        self.line(indent, f"if _S[{self.init_slot}] is not {self.const(raw)}:")
        self.line(indent + 1, complete)
        self.emit_entry(nxt_entry, indent, done, replayed, chain_left - 1)

    def _continuation(self, end, chain_left: int):
        """Decide whether this end record's likely-next link is worth
        (and safe to) splice into the trace."""
        if chain_left <= 0:
            return None
        # The compiled continuation re-guards the key by object
        # identity, which is only sound when the init slot holds frozen
        # values (same reasoning as the engine's likely-next fast path).
        if not self.compiled.init_flushed:
            return None
        cached = end.likely_next
        if cached is None:
            return None
        raw, entry = cached
        if not entry.complete or entry.generation != self.generation:
            return None
        shape = self._shape(entry)
        if shape is None:
            return None
        n, depth = shape
        if self.records_emitted + n > self.max_records or depth > self.max_depth:
            return None
        return raw, entry


# ---------------------------------------------------------------------------
# Trace compilation
# ---------------------------------------------------------------------------


def compile_trace(
    entry,
    compiled,
    generation: int,
    max_chain: int = 4,
    max_records: int = 4000,
    max_depth: int = 24,
) -> Trace | None:
    """Compile the action chain rooted at ``entry`` into one function.

    Returns None when the chain is not worth (or not safe to) compile:
    unfinished trees, pathological verify nesting, or record counts past
    the emission budget.
    """
    if not entry.complete:
        return None
    shape = _tree_shape(entry)
    if shape is None:
        return None
    n, depth = shape
    if n > max_records or depth > max_depth:
        return None

    em = _TraceEmitter(
        compiled,
        generation,
        compiled.init_slot,
        max_chain=max_chain,
        max_records=max_records,
        max_depth=max_depth,
    )
    em._shapes[id(entry)] = shape
    try:
        em.emit_entry(entry, indent=1, steps=0, replayed=0, chain_left=max_chain)
    except _Untraceable:
        return None

    header = "def _trace(_ctx, _S, _budget, _D=_DATA):"
    prologue = []
    if em.consts:
        names = ", ".join(f"_d{i}" for i in range(len(em.consts)))
        trailer = "," if len(em.consts) == 1 else ""
        prologue.append(f"    ({names}{trailer}) = _D")
    source = "\n".join([header] + prologue + em.lines) + "\n"

    namespace = dict(compiled.namespace)
    namespace["_DATA"] = tuple(em.consts)
    try:
        exec(compile(source, f"<trace:{compiled.name}>", "exec"), namespace)
    except (SyntaxError, ValueError, RecursionError):
        return None
    return Trace(
        fn=namespace["_trace"],
        generation=generation,
        root=entry,
        entries=em.entries,
        source=source,
        n_constants=len(em.consts),
    )


# ---------------------------------------------------------------------------
# The manager: promotion policy, registry, invalidation
# ---------------------------------------------------------------------------


class TraceManager:
    """Owns every compiled trace of one engine.

    Promotion: the driver bumps ``entry.hot`` per interpreted replay and
    calls :meth:`promote` once it crosses ``threshold``.  Entries whose
    chains cannot be compiled are pinned to :data:`NO_TRACE` so the
    attempt is not repeated.

    Invalidation: :meth:`invalidate_for` kills every trace covering an
    entry (called by the engine on each miss recovery, because recovery
    appends a new verify successor); :meth:`on_cache_clear` drops all of
    them (the entries themselves are gone).

    Compile budget: a trace compile costs roughly a few hundred
    interpreted replay steps, so on workloads with diverse control flow
    (many moderately-hot entries, short runs) eager promotion can spend
    more time in ``compile()`` than replay ever gets back.  Promotion is
    therefore rationed against execution volume: the *n*-th compile is
    allowed only once ``n * compile_step_budget`` total steps have run.
    Entries refused for budget keep their heat and retry shortly after.
    """

    def __init__(
        self,
        compiled,
        cache,
        threshold: int = 64,
        max_chain: int = 4,
        max_records: int = 4000,
        max_traces: int = 512,
        compile_step_budget: int = 800,
    ):
        self.compiled = compiled
        self.cache = cache
        self.threshold = threshold
        self.max_chain = max_chain
        self.max_records = max_records
        self.max_traces = max_traces
        self.compile_step_budget = compile_step_budget
        self.traces: list[Trace] = []
        # id(covered entry) -> traces whose chain includes that entry.
        self._covering: dict[int, list[Trace]] = {}
        # id(root entry) -> times a trace rooted there was killed; used
        # for exponential re-promotion back-off.
        self._kill_counts: dict[int, int] = {}
        self.stats = TraceJITStats()

    # -- promotion ----------------------------------------------------------

    def promote(self, entry, steps_done: int | None = None) -> Trace | None:
        if self.stats.traces_compiled >= self.max_traces:
            entry.trace = NO_TRACE
            return None
        if (
            steps_done is not None
            and (self.stats.traces_compiled + 1) * self.compile_step_budget
            > steps_done
        ):
            # Not enough execution volume yet to pay for another
            # compile.  Keep most of the heat so the entry retries soon.
            entry.hot = self.threshold // 2
            return None
        trace = compile_trace(
            entry,
            self.compiled,
            self.cache.generation,
            max_chain=self.max_chain,
            max_records=self.max_records,
        )
        if trace is None:
            entry.trace = NO_TRACE
            self.stats.compile_failures += 1
            return None
        entry.trace = trace
        self.traces.append(trace)
        self.stats.traces_compiled += 1
        self.stats.entries_covered += len(trace.entries)
        for e in trace.entries:
            self._covering.setdefault(id(e), []).append(trace)
        return trace

    # -- invalidation -------------------------------------------------------

    def invalidate_for(self, entry) -> int:
        """Kill every trace whose chain covers ``entry``; returns count."""
        traces = self._covering.get(id(entry))
        if not traces:
            return 0
        killed = 0
        for trace in list(traces):
            killed += self._kill(trace)
        return killed

    def on_evict(self, entries) -> int:
        """Partial cache eviction: kill traces covering evicted entries.

        Unlike a recovery kill, the surviving roots did not grow a new
        verify successor — their chains merely lost a link — so no
        re-promotion back-off is applied; unlike :meth:`on_cache_clear`,
        traces not covering any evicted entry stay live.
        """
        killed = 0
        for entry in entries:
            traces = self._covering.get(id(entry))
            if traces:
                for trace in list(traces):
                    killed += self._kill(trace, backoff=False)
            # The entry object is gone from the cache; drop its back-off
            # history so a recycled id() cannot inherit it.
            self._kill_counts.pop(id(entry), None)
        return killed

    def covered_ids(self):
        """``id(entry)`` set of every entry covered by a live trace."""
        return self._covering

    def _kill(self, trace: Trace, backoff: bool = True) -> int:
        if trace.generation < 0:
            return 0
        trace.generation = -1
        if trace.root.trace is trace:
            trace.root.trace = None
            if backoff:
                # Exponential back-off: a chain that keeps growing new
                # verify successors must re-earn promotion at double the
                # price each time, or recompilation churn eats the
                # replay speedup.
                kills = self._kill_counts.get(id(trace.root), 0) + 1
                self._kill_counts[id(trace.root)] = kills
                trace.root.hot = -self.threshold * ((1 << min(kills, 8)) - 2)
            else:
                trace.root.hot = 0
        for e in trace.entries:
            covering = self._covering.get(id(e))
            if covering is not None:
                try:
                    covering.remove(trace)
                except ValueError:
                    pass
                if not covering:
                    del self._covering[id(e)]
        self.stats.traces_invalidated += 1
        return 1

    def on_cache_clear(self) -> None:
        for trace in self.traces:
            if trace.generation >= 0:
                trace.generation = -1
                self.stats.traces_invalidated += 1
        self._covering.clear()
        # The entries (and their ids) die with the cache contents.
        self._kill_counts.clear()

    # -- reporting ----------------------------------------------------------

    def live_traces(self) -> list[Trace]:
        generation = self.cache.generation
        return [t for t in self.traces if t.generation == generation]

    def aggregate(self) -> dict:
        return self.stats.aggregate(self.traces)
