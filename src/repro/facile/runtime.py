"""Fast-forwarding run-time system (paper §2, §4.3).

This module implements the machinery shared by every compiled
simulator:

* the **specialized action cache** — entries keyed by ``main``'s
  run-time static input, holding linked *action records*; actions that
  test dynamic values (*dynamic result tests*) have one successor chain
  per observed result value (Figure 2);
* the **memoizer** driving the slow/complete engine — it appends action
  records while recording, and during **miss recovery** walks the
  existing records, verifying action numbers and feeding previously
  replayed dynamic results back to the slow simulator from the
  *recovery stack* (Figure 10's emboldened code);
* the **fast/residual engine driver** — a loop that reads action
  numbers and dispatches to compiled dynamic basic blocks (Figure 9);
* the **simulation context** — all dynamic simulator state (slots,
  target memory, statistics, extern bindings), shared by both engines.
"""

from __future__ import annotations

from array import array
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Callable


class SimulationError(Exception):
    """Raised for runtime protocol violations (compiler bugs, bad keys)."""


# ---------------------------------------------------------------------------
# Value freezing (keys and placeholder data must be immutable)
# ---------------------------------------------------------------------------


class _DictTag:
    """Sentinel heading a frozen dict, so :func:`thaw` can restore it."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<frozen-dict>"


#: First element of every frozen dict: ``freeze({..})`` yields
#: ``(DICT_TAG, (k1, v1), (k2, v2), ...)`` with sorted keys, and
#: ``thaw`` rebuilds a dict instead of a list of pairs.
DICT_TAG = _DictTag()

_CONTAINERS = (list, deque, tuple, dict)


def _freeze_frame(value: Any) -> list:
    """One work-stack frame for :func:`freeze`: [children, out, keys]."""
    if isinstance(value, dict):
        try:
            items = sorted(value.items())
        except TypeError as exc:
            raise SimulationError(
                f"cannot freeze dict with unorderable keys for a cache key: {exc}"
            ) from None
        return [[v for _, v in items], [], [k for k, _ in items]]
    return [list(value), [], None]


def freeze(value: Any) -> Any:
    """Deep-convert mutable containers to hashable tuples.

    Dicts become ``(DICT_TAG, (key, frozen_value), ...)`` with sorted
    items so they can serve as cache keys and verify successor keys (the
    tag lets :func:`thaw` restore a dict, not a list of pairs); a dict
    whose keys cannot be ordered is reported here, at the freeze site,
    instead of surfacing as a bare ``TypeError`` deep inside a cache
    lookup.  The conversion runs on an explicit work stack, so deeply
    nested rt-static structures cannot hit Python's recursion limit
    mid-record.
    """
    if type(value) is int:
        return value
    if not isinstance(value, _CONTAINERS):
        return value
    stack = [_freeze_frame(value)]
    while True:
        children, out, keys = stack[-1]
        i = len(out)
        if i == len(children):
            if keys is None:
                result: Any = tuple(out)
            else:
                result = (DICT_TAG,) + tuple(zip(keys, out))
            stack.pop()
            if not stack:
                return result
            stack[-1][1].append(result)
            continue
        child = children[i]
        if type(child) is int or not isinstance(child, _CONTAINERS):
            out.append(child)
        else:
            stack.append(_freeze_frame(child))


def _thaw_frame(value: tuple) -> list:
    """One work-stack frame for :func:`thaw`: [children, out, keys]."""
    if value and value[0] is DICT_TAG:
        items = value[1:]
        return [[v for _, v in items], [], [k for k, _ in items]]
    return [list(value), [], None]


def thaw(value: Any) -> Any:
    """Deep-convert frozen tuples back to mutable form (inverse of
    :func:`freeze`): tagged dict freezes become dicts again, plain
    tuples become lists.  Iterative, like ``freeze``."""
    if not isinstance(value, tuple):
        return value
    stack = [_thaw_frame(value)]
    while True:
        children, out, keys = stack[-1]
        i = len(out)
        if i == len(children):
            result: Any = out if keys is None else dict(zip(keys, out))
            stack.pop()
            if not stack:
                return result
            stack[-1][1].append(result)
            continue
        child = children[i]
        if isinstance(child, tuple):
            stack.append(_thaw_frame(child))
        else:
            out.append(child)


def value_bytes(value: Any) -> int:
    """Approximate memoized size of a value, in bytes.

    Models the paper's compact C layout: 8 bytes per scalar, recursively
    for containers (the paper's example compresses an instruction queue
    into "fewer than 40 bytes"; our accounting is similarly structural,
    not Python ``sys.getsizeof``, so Table 2 is comparable in spirit).
    Iterative (explicit stack) for the same recursion-limit reason as
    :func:`freeze`.
    """
    if not isinstance(value, tuple):
        return 8
    total = 8
    stack = list(value)
    while stack:
        v = stack.pop()
        total += 8
        if isinstance(v, tuple):
            stack.extend(v)
    return total


# ---------------------------------------------------------------------------
# Placeholder-data interning pool
# ---------------------------------------------------------------------------


#: Accounted overhead of one live pool value (index + refcount lane).
POOL_SLOT_BYTES = 8


class InternPool:
    """Process-wide interning pool for recorded placeholder data.

    Flat-packed entries do not store their data tuples inline: each
    packed slot holds an index into this pool, and equal values —
    however many records across however many entries reference them —
    are stored **once** and billed once.  The pool is reference-counted
    so eviction stays exact: :meth:`release` returns the refunded bytes
    when (and only when) the last reference dies.

    Keys are compared by equality, like the verify successor dicts they
    feed, so ``True``/``1`` conflate — harmless, since every consumer
    already compares these values with ``==``.
    """

    __slots__ = (
        "_index", "values", "_refs", "_costs", "_free",
        "hits", "misses", "bytes_live", "bytes_saved",
    )

    def __init__(self) -> None:
        self._index: dict[Any, int] = {}
        self.values: list[Any] = []
        self._refs: list[int] = []
        self._costs: list[int] = []
        self._free: list[int] = []
        self.hits = 0
        self.misses = 0
        self.bytes_live = 0
        self.bytes_saved = 0

    def intern(self, value: Any) -> tuple[int, int]:
        """Return ``(index, charged_bytes)`` for one more reference to
        ``value``; ``charged_bytes`` is 0 when the value was already
        pooled (the accounting win interning exists for)."""
        idx = self._index.get(value)
        if idx is not None:
            self._refs[idx] += 1
            self.hits += 1
            self.bytes_saved += self._costs[idx]
            return idx, 0
        self.misses += 1
        cost = POOL_SLOT_BYTES + value_bytes(value)
        if self._free:
            idx = self._free.pop()
            self.values[idx] = value
            self._refs[idx] = 1
            self._costs[idx] = cost
        else:
            idx = len(self.values)
            self.values.append(value)
            self._refs.append(1)
            self._costs.append(cost)
        self._index[value] = idx
        self.bytes_live += cost
        return idx, cost

    def release(self, idx: int) -> int:
        """Drop one reference; returns the bytes freed (0 unless this
        was the last reference)."""
        refs = self._refs[idx] - 1
        self._refs[idx] = refs
        if refs:
            return 0
        cost = self._costs[idx]
        del self._index[self.values[idx]]
        self.values[idx] = None
        self._costs[idx] = 0
        self._free.append(idx)
        self.bytes_live -= cost
        return cost

    def live_values(self) -> int:
        return len(self._index)

    def recount(self) -> int:
        """Recompute ``bytes_live`` from scratch (accounting audits)."""
        return sum(
            POOL_SLOT_BYTES + value_bytes(self.values[i])
            for i in range(len(self.values))
            if self._refs[i] > 0
        )

    def clear(self) -> None:
        """Drop every value (a full cache clear kills all references).
        Cumulative hit/miss/saved counters survive; live state resets."""
        self._index.clear()
        self.values.clear()
        self._refs.clear()
        self._costs.clear()
        self._free.clear()
        self.bytes_live = 0


# ---------------------------------------------------------------------------
# Action records and the specialized action cache
# ---------------------------------------------------------------------------


class ActionRecord:
    """A recorded dynamic basic block: action number + placeholder data."""

    __slots__ = ("num", "data", "next")

    def __init__(self, num: int, data: tuple):
        self.num = num
        self.data = data
        self.next: object | None = None

    is_verify = False
    is_end = False


class VerifyRecord:
    """A dynamic result test: successors keyed by the observed value."""

    __slots__ = ("num", "data", "succ")

    def __init__(self, num: int, data: tuple):
        self.num = num
        self.data = data
        self.succ: dict[Any, object] = {}

    is_verify = True
    is_end = False


class EndRecord:
    """Marks the end of one simulator step (the INDEX_ACTION boundary).

    ``likely_next`` implements the paper's observation that "it is
    faster to follow the link to the next entry" than to do a full
    cache lookup: it caches ``(raw_init_value, entry)`` so a replayed
    chain can continue by identity comparison alone.
    """

    __slots__ = ("likely_next",)

    def __init__(self) -> None:
        self.likely_next: tuple | None = None

    is_verify = False
    is_end = True
    num = -1
    data = ()


# ---------------------------------------------------------------------------
# Flat-packed entries: parallel index streams instead of object trees
# ---------------------------------------------------------------------------


#: ``nums`` value marking an end-of-step slot.  Far outside the action
#: number range, and distinct from every ``~num`` verify encoding.
ENDMARK = -(1 << 62)

#: Accounted cost of one packed slot.  The streams model the paper's C
#: layout — a 4-byte action number, 4-byte pool index, and 4-byte
#: successor lane — mirroring the 12-byte record header of the unpacked
#: form with the next-pointer replaced by contiguity.  (The Python
#: ``array('q')`` backing spends 8 bytes per lane; the accounting, like
#: ``value_bytes``, models the compact layout, not CPython overhead.)
PACKED_SLOT_BYTES = 12
#: Accounted cost of one multi-successor jump table, plus one entry per
#: recorded successor value (value ref + target slot).
PACKED_TABLE_OVERHEAD = 16
PACKED_JUMP_BYTES = 8


class PackedChain:
    """One complete entry's record tree, flat-packed (the tentpole).

    Parallel streams, one slot per record, laid out so every
    straight-line run is contiguous:

    * ``nums[i]``  — action number: ``num`` (>= 0) for a plain action,
      ``~num`` (< 0) for a dynamic result test, :data:`ENDMARK` for a
      step boundary;
    * ``data[i]``  — :class:`InternPool` index of the record's
      placeholder data (-1 for end slots);
    * ``succ[i]``  — successor lane.  Plain actions fall through to
      ``i + 1`` (unused, 0).  A verify with one recorded successor holds
      the pool index of the expected value and falls through on match —
      the overwhelmingly common case costs one ``==`` and no dict.  A
      verify with several successors holds ``~t`` where ``tables[t]``
      maps observed value -> jump slot.  End slots hold an index into
      ``ends``, which keeps the original :class:`EndRecord` objects so
      ``likely_next`` links survive pack/unpack by identity.

    ``knums``/``datavals``/``sux`` are the *replay view*: the canonical
    streams with their pool indices resolved once at pack time, so the
    hot loop never touches the pool.  ``knums`` mirrors ``nums`` as a
    plain list (list indexing skips the array's per-read boxing);
    ``datavals[i]`` is the pooled placeholder value itself; ``sux[i]``
    is None for plain actions, a one-entry fall-through dict
    ``{expected: i + 1}`` or the shared jump table for verifies, and
    the :class:`EndRecord` for end slots.  Every reference in the view
    aliases a pooled value or a canonical-lane object, so it carries no
    accounted bytes of its own — accounting, release, and unpack all
    read the canonical ``data``/``succ`` streams.

    ``n_records``/``depth`` cache the tree shape (record count, max
    multi-successor nesting) for the trace compiler; ``local_bytes`` is
    the entry-local accounted size (slots + jump tables), excluding the
    shared pool bytes.

    ``shared`` marks a chain whose canonical streams are read-only
    ``memoryview`` slices of an mmap-backed snapshot (see
    :mod:`repro.facile.snapshot`) rather than private arrays.  Shared
    chains arrive with no replay view (``knums is None``); the view is
    built lazily by :func:`build_replay_view` on the entry's first
    replay, so unused snapshot entries cost no private RSS.  Everything
    that reads the canonical streams (replay, unpack, release, the
    trace compiler) indexes them identically either way; a recovery
    unpack turns the entry private (copy-on-miss) and repacking builds
    fresh private arrays.
    """

    __slots__ = (
        "nums", "data", "succ", "tables", "ends", "pool",
        "knums", "datavals", "sux",
        "n_records", "depth", "local_bytes", "shared",
    )


def _pack_records(first, pool: InternPool) -> tuple[PackedChain, int]:
    """Flatten a complete record tree into a :class:`PackedChain`.

    Returns ``(chain, pool_charged)`` where ``pool_charged`` counts the
    bytes newly charged to the interning pool (first references only).
    """
    nums = array("q")
    data = array("q")
    succ = array("q")
    datavals: list = []
    sux: list = []
    tables: list[dict] = []
    ends: list[EndRecord] = []
    pool_charged = 0
    n_records = 0
    depth_max = 0
    intern = pool.intern
    values = pool.values
    # (record, jump table index or -1, table key, multi-succ depth)
    pending: deque = deque([(first, -1, None, 0)])
    while pending:
        rec, t, val, depth = pending.popleft()
        if t >= 0:
            tables[t][val] = len(nums)
        while True:
            if rec is None:
                raise SimulationError(
                    "cannot pack: recorded chain ended without an end marker"
                )
            if rec.is_end:
                nums.append(ENDMARK)
                data.append(-1)
                succ.append(len(ends))
                ends.append(rec)
                datavals.append(None)
                sux.append(rec)
                break
            n_records += 1
            idx, charged = intern(rec.data)
            pool_charged += charged
            if not rec.is_verify:
                nums.append(rec.num)
                data.append(idx)
                succ.append(0)
                datavals.append(values[idx])
                sux.append(None)
                rec = rec.next
                continue
            sd = rec.succ
            if len(sd) == 1:
                ((value, nxt),) = sd.items()
                vidx, charged = intern(value)
                pool_charged += charged
                nums.append(~rec.num)
                data.append(idx)
                succ.append(vidx)
                datavals.append(values[idx])
                # Replay view: the pooled expected value itself; match
                # falls through on ``==`` with no dict probe.  Frozen
                # values are never dicts (freeze converts them to
                # DICT_TAG tuples), so the replay loop can discriminate
                # this from a jump table by class.
                sux.append(values[vidx])
                rec = nxt
                continue
            depth += 1
            if depth > depth_max:
                depth_max = depth
            t2 = len(tables)
            table: dict = {}
            tables.append(table)
            nums.append(~rec.num)
            data.append(idx)
            succ.append(~t2)
            datavals.append(values[idx])
            # The shared table object: BFS fills it as successors are
            # laid out, and the replay view sees the same dict.
            sux.append(table)
            for value, nxt in sd.items():
                pending.append((nxt, t2, value, depth))
            break
    chain = PackedChain()
    chain.nums = nums
    chain.data = data
    chain.succ = succ
    chain.tables = tables
    chain.ends = ends
    chain.pool = pool
    chain.knums = nums.tolist()
    chain.datavals = datavals
    chain.sux = sux
    chain.n_records = n_records
    chain.depth = depth_max
    chain.local_bytes = PACKED_SLOT_BYTES * len(nums) + sum(
        PACKED_TABLE_OVERHEAD + PACKED_JUMP_BYTES * len(t) for t in tables
    )
    chain.shared = False
    return chain, pool_charged


def build_replay_view(chain: PackedChain) -> None:
    """Materialize the resolved replay view (``knums``/``datavals``/
    ``sux``) from the canonical streams.

    Chains packed by :func:`_pack_records` build their view inline;
    mmap-loaded chains arrive without one and call this lazily on their
    first replay.  The resolution is identical: pool indices become the
    pooled values themselves, single-successor verifies resolve to the
    expected value, jump tables and end records alias the canonical
    lane objects.
    """
    knums = list(chain.nums)
    dstream = chain.data
    sstream = chain.succ
    values = chain.pool.values
    tables = chain.tables
    ends = chain.ends
    n = len(knums)
    datavals: list = [None] * n
    sux: list = [None] * n
    for i in range(n):
        num = knums[i]
        if num == ENDMARK:
            sux[i] = ends[sstream[i]]
            continue
        datavals[i] = values[dstream[i]]
        if num < 0:
            s = sstream[i]
            sux[i] = values[s] if s >= 0 else tables[~s]
    chain.knums = knums
    chain.datavals = datavals
    chain.sux = sux


def _packed_to_records(chain: PackedChain):
    """Rebuild the mutable record tree from a packed chain (the lazy
    unpack path: recovery needs object records the Memoizer can grow).

    End slots reuse the chain's original :class:`EndRecord` objects, so
    identity-based ``likely_next`` links into and out of this entry keep
    holding across a pack/unpack round trip.  No accounting happens
    here; callers adjust bytes and release pool references themselves.
    """
    nums = chain.nums
    dstream = chain.data
    sstream = chain.succ
    values = chain.pool.values
    n = len(nums)
    recs: list = [None] * n
    for i in range(n):
        num = nums[i]
        if num == ENDMARK:
            recs[i] = chain.ends[sstream[i]]
        elif num >= 0:
            recs[i] = ActionRecord(num, values[dstream[i]])
        else:
            recs[i] = VerifyRecord(~num, values[dstream[i]])
    for i in range(n):
        num = nums[i]
        if num == ENDMARK:
            continue
        if num >= 0:
            recs[i].next = recs[i + 1]
        else:
            s = sstream[i]
            if s >= 0:
                recs[i].succ[values[s]] = recs[i + 1]
            else:
                recs[i].succ = {
                    val: recs[j] for val, j in chain.tables[~s].items()
                }
    return recs[0]


def entry_first_record(entry):
    """First record of an entry's chain, reconstructing (without any
    accounting side effects) when the entry is flat-packed.  Inspection
    helpers use this so dumps work on both layouts."""
    if entry.packed is not None:
        return _packed_to_records(entry.packed)
    return entry.first


class CacheEntry:
    __slots__ = (
        "key", "first", "packed", "complete", "generation", "stamp", "hot",
        "trace", "cnative"
    )

    def __init__(self, key: tuple, generation: int = 0):
        self.key = key
        self.first: object | None = None
        # Flat-packed form (PackedChain), installed on completion when
        # the cache packs; exactly one of first/packed is live for a
        # complete entry (recovery unpacks lazily back to ``first``).
        self.packed: PackedChain | None = None
        self.complete = False
        self.generation = generation
        # Age generation for the eviction policy: refreshed on every
        # hit, compared against ``ActionCache.gen`` when reclaiming.
        self.stamp = 0
        # Trace-JIT bookkeeping: interpreted-replay count and the
        # compiled Trace (or NO_TRACE sentinel) rooted at this entry.
        self.hot = 0
        self.trace: object | None = None
        # C replay backend: None = not yet lowered, -1 = unlowerable,
        # else the kernel-side chain id (repro.facile.cbackend).
        self.cnative: int | None = None


@dataclass
class CacheStats:
    entries_created: int = 0
    records_created: int = 0
    bytes_current: int = 0
    bytes_cumulative: int = 0
    clears: int = 0
    lookups: int = 0
    hits: int = 0
    misses_new_key: int = 0
    misses_verify: int = 0
    # Partial-eviction accounting (generational policy).
    evictions: int = 0
    entries_evicted: int = 0
    bytes_refunded: int = 0
    # Flat-pack accounting.
    packs: int = 0
    unpacks: int = 0
    # Snapshot (warm-start) accounting.  ``bytes_shared`` is the slice
    # of ``bytes_current`` billed to mmap-backed (shared) chains; the
    # rest is process-private.  A copy-on-miss unpack or an eviction of
    # a shared entry moves its bytes out of the shared bucket.
    bytes_shared: int = 0
    snapshot_entries: int = 0
    snapshot_rejected: int = 0


#: Fixed accounted cost of one cache entry beyond its key.
ENTRY_OVERHEAD = 24

EVICT_POLICIES = ("clear", "generational")


class ActionCache:
    """The specialized action cache, with byte-limited reclamation.

    ``limit_bytes`` mirrors the paper's 256 MB cap (§6.2).  Two
    reclamation policies are available once the accounted size exceeds
    the limit:

    * ``"clear"`` — the paper's policy: drop everything and start
      recording over, "just as when the program starts";
    * ``"generational"`` — partial eviction: entries carry an age
      generation (``stamp``), refreshed on every hit and advanced as
      recording volume accrues; reclamation evicts the coldest
      generations first until the accounted size falls below
      ``low_watermark * limit_bytes``, refunding each evicted entry's
      bytes exactly (a full walk of its record tree, verify successor
      chains included).  Hot entries — the working set — survive, so a
      long-running workload pays no periodic re-record storm.
    """

    def __init__(
        self,
        limit_bytes: int | None = None,
        evict_policy: str = "clear",
        low_watermark: float = 0.5,
        flat_pack: bool = False,
    ):
        if evict_policy not in EVICT_POLICIES:
            raise ValueError(f"unknown eviction policy {evict_policy!r}")
        self.limit_bytes = limit_bytes
        self.evict_policy = evict_policy
        self.low_watermark = low_watermark
        # Flat-pack completed entries into PackedChain streams (and
        # intern placeholder data in ``pool``).  Off by default so the
        # bare recording protocol — and tests that walk ``entry.first``
        # directly — keep the object form; the engines turn it on.
        self.flat_pack = flat_pack
        self.pool = InternPool()
        self.entries: dict[tuple, CacheEntry] = {}
        self.stats = CacheStats()
        # The C replay backend (repro.facile.cbackend.CReplayBackend)
        # when one is driving this cache; lowered chains must die in
        # lockstep with unpacks, evictions, and clears.
        self.native = None
        # Keep-alive handles for mmap-backed snapshots whose streams
        # live entries may still reference (repro.facile.snapshot).
        self.snapshots: list = []
        # Identity-link epoch: bumped only by a full clear, compared by
        # the engine before trusting ``likely_next`` links and compiled
        # traces.  Evicted entries are marked with generation -1 so
        # stale links to them are rejected individually.
        self.generation = 0
        # Age generation for eviction: advanced every ``_gen_step``
        # recorded bytes (about 8 generations per limit-full) and on
        # every eviction round.
        self.gen = 0
        self._gen_step = max(limit_bytes // 8, 1) if limit_bytes else 0
        self._since_gen = 0

    def lookup(self, key: tuple) -> CacheEntry | None:
        self.stats.lookups += 1
        entry = self.entries.get(key)
        if entry is not None and entry.complete:
            self.stats.hits += 1
            entry.stamp = self.gen
            return entry
        return None

    def create_entry(self, key: tuple) -> CacheEntry:
        stale = self.entries.get(key)
        if stale is not None:
            # An interrupted step left an incomplete entry behind (or a
            # caller is re-recording a key).  Refund its charged bytes
            # (releasing any pooled data it references) before replacing
            # it, or ``bytes_current`` drifts upward and triggers
            # spurious reclaims.
            self._release_entry(stale)
            stale.generation = -1
        self._charge(value_bytes(key) + ENTRY_OVERHEAD)
        entry = CacheEntry(key, self.generation)
        entry.stamp = self.gen
        self.entries[key] = entry
        self.stats.entries_created += 1
        return entry

    def charge_record(self, record: object) -> None:
        self.stats.records_created += 1
        data = getattr(record, "data", ())
        cost = 12 + value_bytes(data)
        if getattr(record, "is_verify", False):
            cost += 16
        self._charge(cost)

    def _charge(self, nbytes: int) -> None:
        stats = self.stats
        stats.bytes_current += nbytes
        stats.bytes_cumulative += nbytes
        if self._gen_step:
            self._since_gen += nbytes
            if self._since_gen >= self._gen_step:
                self._since_gen -= self._gen_step
                self.gen += 1

    def _refund(self, nbytes: int) -> None:
        self.stats.bytes_current -= nbytes
        self.stats.bytes_refunded += nbytes

    def _adjust(self, delta: int) -> None:
        """Re-account an entry changing layout (pack/unpack).  Only
        ``bytes_current`` moves: no new data was recorded, so the
        cumulative total and the age-generation clock stay put."""
        self.stats.bytes_current += delta

    # -- flat packing ----------------------------------------------------

    def on_complete(self, entry: CacheEntry) -> None:
        """Hook called by the Memoizer once an entry's step completes
        (first recording and every recovery): pack it when enabled."""
        if self.flat_pack:
            self.pack_entry(entry)

    def pack_entry(self, entry: CacheEntry) -> None:
        """Flat-pack one complete entry: replace its record tree with
        parallel index streams, interning placeholder data.  Exact
        re-accounting: the object tree's bytes are swapped for the
        packed local bytes plus whatever the pool newly charged."""
        if entry.packed is not None or entry.first is None:
            return
        old = self.entry_bytes(entry)
        chain, pool_charged = _pack_records(entry.first, self.pool)
        entry.packed = chain
        entry.first = None
        new = value_bytes(entry.key) + ENTRY_OVERHEAD + chain.local_bytes
        self._adjust(new + pool_charged - old)
        self.stats.packs += 1

    def unpack_entry(self, entry: CacheEntry) -> None:
        """Lazily unpack an entry back to the mutable record tree (miss
        recovery needs objects the Memoizer can grow).  Releases every
        pool reference the packed form held; the inverse of
        :meth:`pack_entry`, including in the accounting."""
        chain = entry.packed
        if chain is None:
            return
        if self.native is not None:
            self.native.drop_entry(entry)
        entry.first = _packed_to_records(chain)
        entry.packed = None
        if chain.shared:
            # Copy-on-miss: the entry leaves the mmap-backed tier and
            # becomes process-private (repacking builds fresh arrays).
            self.stats.bytes_shared -= chain.local_bytes
        pool_freed = 0
        release = self.pool.release
        nums = chain.nums
        dstream = chain.data
        sstream = chain.succ
        for i in range(len(nums)):
            num = nums[i]
            if num == ENDMARK:
                continue
            pool_freed += release(dstream[i])
            if num < 0:
                s = sstream[i]
                if s >= 0:
                    pool_freed += release(s)
        old = value_bytes(entry.key) + ENTRY_OVERHEAD + chain.local_bytes
        self._adjust(self.entry_bytes(entry) - old - pool_freed)
        self.stats.unpacks += 1

    def _release_entry(self, entry: CacheEntry) -> None:
        """Refund an entry leaving the cache (eviction or stale
        overwrite), releasing its pool references when packed."""
        if self.native is not None:
            self.native.drop_entry(entry)
        chain = entry.packed
        if chain is None:
            self._refund(self.entry_bytes(entry))
            return
        if chain.shared:
            self.stats.bytes_shared -= chain.local_bytes
        freed = value_bytes(entry.key) + ENTRY_OVERHEAD + chain.local_bytes
        release = self.pool.release
        nums = chain.nums
        dstream = chain.data
        sstream = chain.succ
        for i in range(len(nums)):
            num = nums[i]
            if num == ENDMARK:
                continue
            freed += release(dstream[i])
            if num < 0:
                s = sstream[i]
                if s >= 0:
                    freed += release(s)
        self._refund(freed)

    # -- accounting ------------------------------------------------------

    @staticmethod
    def entry_bytes(entry: CacheEntry) -> int:
        """Exact accounted size of one entry: key + overhead plus every
        record in its tree, verify successor chains included — the
        inverse of every charge made while recording it.  For a packed
        entry this is the entry-local size only; the shared pool bytes
        live in ``pool.bytes_live``."""
        total = value_bytes(entry.key) + ENTRY_OVERHEAD
        if entry.packed is not None:
            return total + entry.packed.local_bytes
        stack = [entry.first]
        while stack:
            rec = stack.pop()
            if rec is None:
                continue
            total += 12 + value_bytes(rec.data)
            if rec.is_verify:
                total += 16
                stack.extend(rec.succ.values())
            elif not rec.is_end:
                stack.append(rec.next)
        return total

    def recount_bytes(self) -> int:
        """Recompute ``bytes_current`` from scratch by walking every
        surviving entry's record tree (packed entries contribute their
        local streams) plus a from-scratch recount of the live interning
        pool.  The accounting invariant — and what the tests assert
        after evictions — is that this always equals
        ``stats.bytes_current`` exactly."""
        return sum(
            self.entry_bytes(e) for e in self.entries.values()
        ) + self.pool.recount()

    def recount_shared_bytes(self) -> int:
        """Recompute ``bytes_shared`` from scratch: the local bytes of
        every surviving mmap-backed chain.  Audited alongside
        :meth:`recount_bytes` after snapshot loads, copy-on-miss
        unpacks, and evictions."""
        return sum(
            e.packed.local_bytes
            for e in self.entries.values()
            if e.packed is not None and e.packed.shared
        )

    # -- reclamation -----------------------------------------------------

    def maybe_reclaim(self, pinned=None) -> tuple[bool, list[CacheEntry]] | None:
        """Reclaim memory if over the limit.  Called at step boundaries.

        Returns ``None`` when under the limit, else ``(cleared,
        evicted)``: a full clear (``"clear"`` policy) reports ``(True,
        [])``; generational eviction reports ``(False, entries)`` with
        the evicted entries, whose traces the caller must invalidate.
        """
        if self.limit_bytes is None or self.stats.bytes_current <= self.limit_bytes:
            return None
        return self.reclaim(pinned)

    def reclaim(self, pinned=None) -> tuple[bool, list[CacheEntry]]:
        """Apply the eviction policy unconditionally (see maybe_reclaim)."""
        if self.evict_policy == "clear":
            if self.native is not None:
                self.native.drop_all()
            self.entries.clear()
            self.pool.clear()  # every reference died with the entries
            self.stats.bytes_current = 0
            self.stats.bytes_shared = 0
            self.stats.clears += 1
            self.generation += 1  # invalidates likely-next links
            return True, []
        return False, self._evict_cold(pinned)

    def _evict_cold(self, pinned=None) -> list[CacheEntry]:
        """Evict the coldest generations until below the low watermark.

        ``pinned`` (a set-like of ``id(entry)``) holds entries covered
        by live compiled traces; they are evicted only after every
        unpinned entry, so the trace tier's working set survives
        whenever the watermark allows it.
        """
        target = int((self.limit_bytes or 0) * self.low_watermark)
        if pinned:
            order = sorted(
                self.entries.values(), key=lambda e: (id(e) in pinned, e.stamp)
            )
        else:
            order = sorted(self.entries.values(), key=lambda e: e.stamp)
        stats = self.stats
        evicted: list[CacheEntry] = []
        for entry in order:
            if stats.bytes_current <= target:
                break
            del self.entries[entry.key]
            entry.generation = -1  # rejects stale likely-next links
            self._release_entry(entry)
            evicted.append(entry)
        stats.evictions += 1
        stats.entries_evicted += len(evicted)
        self.gen += 1
        self._since_gen = 0
        return evicted


# ---------------------------------------------------------------------------
# Target memory
# ---------------------------------------------------------------------------


class Memory:
    """Sparse paged byte-addressable target memory (little-endian)."""

    PAGE_BITS = 12
    PAGE_SIZE = 1 << PAGE_BITS

    def __init__(self) -> None:
        self._pages: dict[int, bytearray] = {}
        # Bumped whenever the page dict is replaced wholesale (restore);
        # the C replay backend re-pins its page pointers on a change.
        self._epoch = 0

    def _page(self, addr: int) -> tuple[bytearray, int]:
        page = self._pages.get(addr >> self.PAGE_BITS)
        if page is None:
            page = bytearray(self.PAGE_SIZE)
            self._pages[addr >> self.PAGE_BITS] = page
        return page, addr & (self.PAGE_SIZE - 1)

    def read8(self, addr: int) -> int:
        page, off = self._page(addr)
        return page[off]

    def write8(self, addr: int, value: int) -> None:
        page, off = self._page(addr)
        page[off] = value & 0xFF

    def read16(self, addr: int) -> int:
        return self.read8(addr) | (self.read8(addr + 1) << 8)

    def write16(self, addr: int, value: int) -> None:
        self.write8(addr, value)
        self.write8(addr + 1, value >> 8)

    def read32(self, addr: int) -> int:
        if addr & (self.PAGE_SIZE - 1) <= self.PAGE_SIZE - 4:
            page, off = self._page(addr)
            return int.from_bytes(page[off : off + 4], "little")
        return self.read16(addr) | (self.read16(addr + 2) << 16)

    def write32(self, addr: int, value: int) -> None:
        if addr & (self.PAGE_SIZE - 1) <= self.PAGE_SIZE - 4:
            page, off = self._page(addr)
            page[off : off + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")
            return
        self.write16(addr, value)
        self.write16(addr + 2, value >> 16)

    def load_bytes(self, addr: int, data: bytes) -> None:
        for i, b in enumerate(data):
            self.write8(addr + i, b)


# ---------------------------------------------------------------------------
# Simulation context: all dynamic state, shared by slow and fast engines
# ---------------------------------------------------------------------------


class SimContext:
    """Dynamic simulator state plus services used by generated code."""

    def __init__(
        self,
        slot_count: int,
        global_slots: dict[str, int],
        externs: dict[str, Callable] | None = None,
    ):
        self.S: list[Any] = [0] * slot_count
        self.global_slots = dict(global_slots)
        self.mem = Memory()
        self.externs: dict[str, Callable] = dict(externs or {})
        self.halted = False
        self.in_fast = False
        # Statistics maintained by dynamic built-ins.
        self.retired_total = 0
        self.retired_fast = 0
        self.cycles = 0
        self.counters: dict[str, int] = {}
        self.log: list[Any] = []
        self._text_words: dict[int, int] = {}
        self._decode_cache: dict[int, int] = {}

    # -- services for generated code ------------------------------------

    def text_word(self, addr: int, width_bytes: int = 4) -> int:
        """Fetch an instruction token; cached because target text is
        run-time static (paper footnote 3)."""
        word = self._text_words.get(addr)
        if word is None:
            if width_bytes == 4:
                word = self.mem.read32(addr)
            elif width_bytes == 2:
                word = self.mem.read16(addr)
            else:
                word = self.mem.read8(addr)
            self._text_words[addr] = word
        return word

    def stat_retire(self, n: int) -> None:
        self.retired_total += n
        if self.in_fast:
            self.retired_fast += n

    def stat_cycle(self, n: int) -> None:
        self.cycles += n

    def stat_count(self, counter_id: int, n: int) -> None:
        key = str(counter_id)
        self.counters[key] = self.counters.get(key, 0) + n

    def halt(self) -> None:
        self.halted = True

    def log_value(self, value: Any) -> None:
        self.log.append(value)

    def call_extern(self, name: str, *args: Any) -> Any:
        fn = self.externs.get(name)
        if fn is None:
            raise SimulationError(f"extern {name!r} was not bound")
        return fn(*args)

    # -- harness access ----------------------------------------------------

    def read_global(self, name: str) -> Any:
        return self.S[self.global_slots[name]]

    def write_global(self, name: str, value: Any) -> None:
        self.S[self.global_slots[name]] = value

    # -- checkpointing -------------------------------------------------------

    def snapshot(self) -> dict:
        """Capture all dynamic simulator state for later :meth:`restore`.

        Covers slots, target memory, statistics, and control flags —
        i.e. everything the context owns.  Extern substrates (cache
        simulator, branch predictor) live outside the context and must
        be checkpointed by their owner if exact timing resumption is
        required; architectural results never depend on them.
        """
        import copy

        return {
            "S": copy.deepcopy(self.S),
            "pages": {k: bytearray(v) for k, v in self.mem._pages.items()},
            "halted": self.halted,
            "retired_total": self.retired_total,
            "retired_fast": self.retired_fast,
            "cycles": self.cycles,
            "counters": dict(self.counters),
            "log": list(self.log),
        }

    def restore(self, snap: dict) -> None:
        """Restore state captured by :meth:`snapshot`."""
        import copy

        self.S[:] = copy.deepcopy(snap["S"])
        self.mem._pages = {k: bytearray(v) for k, v in snap["pages"].items()}
        self.mem._epoch += 1  # old page buffers are dead to native code
        self.halted = snap["halted"]
        self.retired_total = snap["retired_total"]
        self.retired_fast = snap["retired_fast"]
        self.cycles = snap["cycles"]
        self.counters = dict(snap["counters"])
        self.log = list(snap["log"])
        # Text/decode caches describe immutable text; keep them.


# ---------------------------------------------------------------------------
# Memoizer: drives recording and miss recovery in the slow engine
# ---------------------------------------------------------------------------


_ATTACH_ENTRY = 0  # next record becomes entry.first
_ATTACH_NEXT = 1  # next record goes into record.next
_ATTACH_SUCC = 2  # next record goes into record.succ[value]


class Memoizer:
    """Recording/recovery state machine used by generated slow code.

    Protocol emitted by the compiler (cf. Figure 10):

    * normal action:   ``M.action(num, data)`` then the guarded dynamic
      statement ``if not M.recover: ...``;
    * dynamic result:  ``M.begin_verify(num, data)`` then either
      ``v = M.pop_verify()`` (recovering) or compute ``v`` and call
      ``M.note_verify(v)``;
    * step boundary:   ``begin_step``/``begin_recovery`` before calling
      the slow function, ``end_step`` after it returns.
    """

    def __init__(self, cache: ActionCache):
        self.cache = cache
        self.recover = False
        self.entry: CacheEntry | None = None
        self._attach_kind = _ATTACH_ENTRY
        self._attach_rec: Any = None
        self._attach_val: Any = None
        self._cursor: Any = None
        self._rstack: deque = deque()

    # -- step control ------------------------------------------------------

    def begin_step(self, key: tuple) -> None:
        self.recover = False
        self.entry = self.cache.create_entry(key)
        self._attach_kind = _ATTACH_ENTRY
        self._attach_rec = None

    def begin_recovery(self, entry: CacheEntry, results: list) -> None:
        """Restart the slow simulator after an action-cache miss.

        `results` holds every dynamic result the fast simulator replayed
        since the entry key, plus (last) the result value that missed.
        """
        self.recover = True
        self.entry = entry
        self._cursor = entry.first
        self._rstack = deque(results)
        self._attach_rec = None

    def end_step(self) -> None:
        if self.recover:
            raise SimulationError("step ended while still recovering from a miss")
        end = EndRecord()
        self._attach(end)
        entry = self.entry
        self.entry = None
        if entry is not None:
            entry.complete = True
            self.cache.on_complete(entry)

    # -- recording / recovery operations -------------------------------------

    def action(self, num: int, data: tuple) -> None:
        if self.recover:
            cur = self._cursor
            if cur is None or cur.is_verify or cur.num != num:
                raise SimulationError(
                    f"recovery desync: expected action {getattr(cur, 'num', None)}, got {num}"
                )
            self._cursor = cur.next
            return
        rec = ActionRecord(num, data)
        self._attach(rec)
        self._attach_kind = _ATTACH_NEXT
        self._attach_rec = rec

    def begin_verify(self, num: int, data: tuple) -> None:
        if self.recover:
            cur = self._cursor
            if cur is None or not cur.is_verify or cur.num != num:
                raise SimulationError(
                    f"recovery desync: expected verify {getattr(cur, 'num', None)}, got {num}"
                )
            return
        rec = VerifyRecord(num, data)
        self._attach(rec)
        self._attach_kind = _ATTACH_SUCC
        self._attach_rec = rec
        self._attach_val = None  # set by note_verify

    def pop_verify(self) -> Any:
        """During recovery: feed back a dynamic result from the recovery
        stack (the paper: "they retrieve the dynamic result previously
        calculated by the fast simulator and pass it to the slow
        simulator")."""
        if not self._rstack:
            raise SimulationError("recovery stack underflow")
        value = self._rstack.popleft()
        cur = self._cursor
        if cur is None or not cur.is_verify:
            where = (
                "the end of the recorded chain"
                if cur is None or cur.is_end
                else f"action {cur.num}"
            )
            raise SimulationError(
                f"recovery desync: dynamic result fed back at {where}, "
                "not at a verify record"
            )
        if self._rstack:
            nxt = cur.succ.get(value)
            if nxt is None:
                raise SimulationError("recovery followed an unrecorded result path")
            self._cursor = nxt
        else:
            # This is the action where the miss occurred: switch to
            # normal recording, attaching the new control-flow path as a
            # fresh successor chain of this verify record.
            self.recover = False
            self._attach_kind = _ATTACH_SUCC
            self._attach_rec = cur
            self._attach_val = value
        return value

    def note_verify(self, value: Any) -> None:
        self._attach_val = freeze(value)

    # -- linking -------------------------------------------------------------

    def _attach(self, rec: Any) -> None:
        if self._attach_kind == _ATTACH_ENTRY:
            self.entry.first = rec
        elif self._attach_kind == _ATTACH_NEXT:
            self._attach_rec.next = rec
        else:
            self._attach_rec.succ[self._attach_val] = rec
        self.cache.charge_record(rec)


# ---------------------------------------------------------------------------
# Compiled simulator interface + engines
# ---------------------------------------------------------------------------


@dataclass
class RunStats:
    steps_total: int = 0
    steps_fast: int = 0
    steps_slow: int = 0
    steps_recovered: int = 0
    actions_replayed: int = 0


@dataclass
class CompiledSimulator:
    """Everything the engines need about one compiled Facile simulator."""

    name: str
    slow_main: Callable  # slow_main(ctx, M, *args)
    fast_actions: list  # index -> (fn, is_verify); fn(ctx, S, data)
    slot_count: int
    global_slots: dict[str, int]
    init_slot: int
    param_count: int
    setup: Callable  # setup(ctx): initialize global slots
    init_flushed: bool = False  # init slot always holds frozen values
    source_slow: str = ""
    source_fast: str = ""
    plain_main: Callable | None = None  # non-memoized build
    source_plain: str = ""
    division_summary: dict = field(default_factory=dict)
    # Per-action body source for the trace compiler: index ->
    # (body_lines, n_placeholders, is_verify).  Bodies reference _ctx,
    # _S, and _ph<K> placeholder names, same as the fast-action table.
    action_bodies: list = field(default_factory=list)
    # Parallel per-action source spans (the first statement merged into
    # each action), threaded into plan_chain/compile_body so lowering
    # diagnostics can point at source.  May be empty for hand-built
    # simulators; consumers must index defensively.
    action_spans: list = field(default_factory=list)
    # The exec globals the engine sources were compiled against; trace
    # functions are compiled against (a copy of) the same namespace so
    # spliced bodies resolve helpers identically.
    namespace: dict = field(default_factory=dict)
    # Content fingerprint over the generated sources and structural
    # fields, set by the compiler; snapshot content addressing keys on
    # it (repro.facile.snapshot).  Hand-built simulators may leave it
    # empty; the snapshot layer then computes one on demand.
    fingerprint: str = ""

    def make_context(self, externs: dict[str, Callable] | None = None) -> SimContext:
        ctx = SimContext(self.slot_count, self.global_slots, externs)
        self.setup(ctx)
        return ctx


class FastForwardEngine:
    """The two-engine driver: fast replay with slow fallback (Figure 1).

    When ``trace_jit`` is enabled (the default) a third tier sits above
    the record interpreter: entries whose chains replay more than
    ``trace_threshold`` times are compiled into straight-line
    superblocks by :mod:`repro.facile.tracecomp` and subsequent steps
    call a single Python function instead of dispatching per record.
    """

    def __init__(
        self,
        compiled: CompiledSimulator,
        ctx: SimContext,
        cache_limit_bytes: int | None = None,
        cache_evict: str = "clear",
        cache_low_watermark: float = 0.5,
        index_links: bool = True,
        trace_jit: bool = True,
        trace_threshold: int = 64,
        flat_pack: bool = True,
        replay_backend: str = "python",
    ):
        from .tracecomp import TraceManager

        self.compiled = compiled
        self.ctx = ctx
        self.cache = ActionCache(
            limit_bytes=cache_limit_bytes,
            evict_policy=cache_evict,
            low_watermark=cache_low_watermark,
            flat_pack=flat_pack,
        )
        self.memoizer = Memoizer(self.cache)
        # Dispatch table for the packed replay loop: a bare list of
        # action functions (verify-ness is encoded in the stream sign,
        # so the per-record tuple unpack disappears).
        self._action_fns = [fn for fn, _ in compiled.fast_actions]
        self.stats = RunStats()
        # The paper's INDEX_ACTION chaining; disable to force a full
        # cache lookup at every step boundary (ablation).
        self.index_links = index_links
        # The trace-compilation tier.  Needs action bodies from the
        # code generator; simulators built before that existed (or by
        # hand in tests) silently fall back to the interpreter.
        self.traces: TraceManager | None = None
        if trace_jit and compiled.action_bodies:
            self.traces = TraceManager(
                compiled, self.cache, threshold=trace_threshold
            )
        # Optional per-action replay counts; enable with profile().
        self.action_profile: Counter[int] | None = None
        # Warm-start reporting: set by load_snapshot/save_snapshot.
        self.snapshot_load = None
        self.snapshot_save = None
        # Replay backend selection.  ``backend_status`` reports what was
        # requested vs what actually runs (graceful degradation keeps
        # ``active == "python"`` with a reason, never a hard failure).
        self._cnative = None
        self.backend_status = {
            "requested": replay_backend,
            "active": "python",
            "reason": "",
            "compile_ms": 0.0,
        }
        if replay_backend not in ("python", "c"):
            raise ValueError(f"unknown replay backend {replay_backend!r}")
        if replay_backend == "c":
            self._init_cbackend()

    def _init_cbackend(self) -> None:
        """Stand up the C replay backend when the environment allows;
        every refusal degrades to the Python loop with a reported
        reason (backend_status) rather than an error."""
        status = self.backend_status
        if not self.compiled.action_bodies:
            status["reason"] = "no recorded action bodies to lower"
            return
        if not self.cache.flat_pack:
            status["reason"] = "flat packing disabled (--no-flat-pack)"
            return
        if len(self.ctx.S) > 64:
            status["reason"] = "too many state slots for the kernel"
            return
        from .cbackend import CReplayBackend, load_kernel

        kernel = load_kernel()
        status["compile_ms"] = kernel.status.compile_ms
        if not kernel.status.available:
            status["reason"] = kernel.status.reason
            return
        self._cnative = CReplayBackend(self, kernel)
        self.cache.native = self._cnative
        status["active"] = "c"

    # -- snapshots (warm starts) ------------------------------------------

    def load_snapshot(self, path, fingerprint: str):
        """Warm-start this engine's cache from an mmap-backed snapshot.
        Must run before any steps (the cache must be empty).  Returns a
        :class:`repro.facile.snapshot.SnapshotInfo`; a bad or missing
        file degrades to a cold start, never an exception."""
        from .snapshot import load_action_cache

        info = load_action_cache(self.cache, path, fingerprint)
        self.snapshot_load = info
        return info

    def save_snapshot(self, path, fingerprint: str):
        """Serialize the cache (complete entries + intern pool) for
        later warm starts; returns a SnapshotInfo."""
        from .snapshot import save_action_cache

        info = save_action_cache(self.cache, path, fingerprint)
        self.snapshot_save = info
        return info

    def profile(self, enabled: bool = True) -> None:
        """Count fast-engine executions per action number (hot-action
        analysis; see repro.facile.inspect.hot_actions).

        Compiled traces do no per-record bookkeeping, so while
        profiling is enabled the driver bypasses trace execution and
        suspends promotion: every replay goes through the interpreter
        and is attributed per action.  Call before :meth:`run`.

        The C replay kernel is bypassed for the same reason, and the
        downgrade is surfaced in ``backend_status`` so run reports say
        why a "c" request executed on the interpreter.
        """
        self.action_profile = Counter() if enabled else None
        status = getattr(self, "backend_status", None)
        if status is not None and status["requested"] == "c":
            if enabled and self._cnative is not None:
                status["active"] = "python"
                status["reason"] = "profiling forces the interpreter tiers"
            elif not enabled and self._cnative is not None:
                status["active"] = "c"
                status["reason"] = ""

    def _freeze_key(self, raw) -> tuple:
        # When init is written by a flush action the stored value is
        # already a frozen tuple, so the deep conversion can be skipped.
        if self.compiled.init_flushed and type(raw) is tuple:
            key = raw
        else:
            key = freeze(raw)
        if self.compiled.param_count > 1:
            if not isinstance(key, tuple) or len(key) != self.compiled.param_count:
                raise SimulationError(
                    f"init must hold a {self.compiled.param_count}-tuple key"
                )
            return key
        return (key,)

    def next_key(self) -> tuple:
        return self._freeze_key(self.ctx.S[self.compiled.init_slot])

    def run(self, max_steps: int | None = None) -> RunStats:
        from .tracecomp import TRACE_COMPLETE, UNBOUNDED_BUDGET

        ctx = self.ctx
        S = ctx.S
        init_slot = self.compiled.init_slot
        cache = self.cache
        cstats = cache.stats
        stats = self.stats
        index_links = self.index_links
        # Identity-based link trust is only sound when the init slot
        # always holds frozen (immutable, identity-stable) values: a
        # mutable value mutated in place passes the ``is`` check with
        # stale contents.  Simulators without a flushed init fall back
        # to comparing frozen keys on the cached link.
        id_links = self.compiled.init_flushed
        limit = cache.limit_bytes
        generation = cache.generation
        # Trace tier state.  Profiling needs per-action attribution, so
        # it forces the interpreter (see profile()).
        traces = self.traces if self.action_profile is None else None
        threshold = traces.threshold if traces is not None else 0
        # Packed replay may chain across step boundaries inside one
        # call (absorbing the per-step driver overhead) only when no
        # other tier needs per-step control: no trace promotion, no
        # profiling, and identity-trustworthy likely-next links.
        chain_steps = (
            traces is None
            and self.action_profile is None
            and index_links
            and id_links
        )
        # The C replay backend, when active.  Profiling needs per-action
        # attribution, so it forces the interpreter tiers.  Kernel-side
        # link chaining is sound on the same terms as Python chaining
        # (identity-trustworthy links); without them it runs one step
        # per call, exactly like the budget-1 packed loop.
        cnative = self._cnative if self.action_profile is None else None
        c_chain = index_links and id_links
        steps = 0
        last_end: EndRecord | None = None
        while not ctx.halted and (max_steps is None or steps < max_steps):
            raw = S[init_slot]
            entry = None
            key = None
            if last_end is not None and index_links:
                cached = last_end.likely_next
                if cached is not None and cached[1].generation == generation:
                    if id_links:
                        if cached[0] is raw:
                            entry = cached[1]
                    else:
                        key = self._freeze_key(raw)
                        if cached[1].key == key:
                            entry = cached[1]
                    if entry is not None:
                        cstats.lookups += 1
                        cstats.hits += 1
                        entry.stamp = cache.gen
            if entry is None:
                if key is None:
                    key = self._freeze_key(raw)
                entry = cache.lookup(key)
                if entry is not None and last_end is not None:
                    last_end.likely_next = (raw, entry)
            if entry is None:
                cstats.misses_new_key += 1
                self._slow_step(key)
                stats.steps_slow += 1
                steps += 1
                stats.steps_total += 1
                last_end = None
            else:
                trace = entry.trace
                if (
                    traces is not None
                    and trace is not None
                    and trace.generation == generation
                ):
                    budget = (
                        max_steps - steps if max_steps is not None
                        else UNBOUNDED_BUDGET
                    )
                    ctx.in_fast = True
                    try:
                        result = trace.fn(ctx, S, budget)
                    finally:
                        ctx.in_fast = False
                    trace.calls += 1
                    n = result[1]
                    trace.steps += n
                    trace.actions += result[2]
                    stats.steps_fast += n
                    stats.actions_replayed += result[2]
                    steps += n
                    stats.steps_total += n
                    if result[0] == TRACE_COMPLETE:
                        last_end = result[3]
                    else:
                        # Side exit: the diverging step recovers through
                        # the slow engine, exactly as an interpreted miss.
                        trace.side_exits += 1
                        cstats.misses_verify += 1
                        self._recover(result[3], list(result[4]))
                        stats.steps_recovered += 1
                        steps += 1
                        stats.steps_total += 1
                        last_end = None
                elif entry.packed is not None:
                    cres = None
                    if cnative is not None:
                        if c_chain:
                            budget = (
                                max_steps - steps if max_steps is not None
                                else UNBOUNDED_BUDGET
                            )
                        else:
                            budget = 1
                        cres = cnative.run_entry(entry, budget)
                    if cres is not None:
                        end, n = cres
                        stats.steps_fast += n
                        steps += n
                        stats.steps_total += n
                        if end is None:
                            stats.steps_recovered += 1
                            steps += 1
                            stats.steps_total += 1
                            last_end = None
                        else:
                            last_end = end
                        # Kernel-replayed entries never accrue ``hot``:
                        # the native loop subsumes the trace tier, which
                        # keeps serving chains the IR refuses.
                    else:
                        if chain_steps:
                            budget = (
                                max_steps - steps if max_steps is not None
                                else UNBOUNDED_BUDGET
                            )
                        else:
                            budget = 1
                        end, n = self._fast_step_packed(entry, budget)
                        stats.steps_fast += n
                        steps += n
                        stats.steps_total += n
                        if end is None:
                            stats.steps_recovered += 1
                            steps += 1
                            stats.steps_total += 1
                            last_end = None
                        else:
                            last_end = end
                            if traces is not None and trace is None:
                                hot = entry.hot + 1
                                entry.hot = hot
                                if hot >= threshold:
                                    traces.promote(entry, stats.steps_total)
                else:
                    end = self._fast_step(entry)
                    steps += 1
                    stats.steps_total += 1
                    if end is None:
                        stats.steps_recovered += 1
                        last_end = None
                    else:
                        stats.steps_fast += 1
                        last_end = end
                        if traces is not None and trace is None:
                            hot = entry.hot + 1
                            entry.hot = hot
                            if hot >= threshold:
                                traces.promote(entry, stats.steps_total)
            if limit is not None and cstats.bytes_current > limit:
                cleared, evicted = cache.reclaim(
                    pinned=traces.covered_ids() if traces is not None else None
                )
                if cleared:
                    last_end = None
                    generation = cache.generation
                    if traces is not None:
                        traces.on_cache_clear()
                elif evicted and traces is not None:
                    # Partial eviction: only traces covering an evicted
                    # entry become stale; everything else stays live.
                    traces.on_evict(evicted)
        return self.stats

    # -- slow path -------------------------------------------------------

    def _slow_step(self, key: tuple) -> None:
        M = self.memoizer
        M.begin_step(key)
        args = [thaw(v) for v in key]
        self.compiled.slow_main(self.ctx, M, *args)
        M.end_step()

    # -- fast path -------------------------------------------------------

    def _fast_step(self, entry: CacheEntry) -> EndRecord | None:
        """Replay one step through the record interpreter.

        Returns the chain's end record on a clean replay, or None when
        an action-cache miss forced recovery through the slow engine.

        Attribute lookups that sit on the per-record path (the action
        table, the value freezer, ``consumed.append``) are hoisted into
        locals: with coalesced multi-statement actions the loop body is
        otherwise dominated by attribute dispatch.
        """
        ctx = self.ctx
        S = ctx.S
        actions = self.compiled.fast_actions
        _freeze = freeze
        consumed: list = []
        consumed_append = consumed.append
        rec = entry.first
        ctx.in_fast = True
        replayed = 0
        prof = self.action_profile
        try:
            while rec is not None and not rec.is_end:
                if prof is not None:
                    prof[rec.num] += 1
                fn, is_verify = actions[rec.num]
                if is_verify:
                    value = _freeze(fn(ctx, S, rec.data))
                    nxt = rec.succ.get(value)
                    replayed += 1
                    if nxt is None:
                        # Action cache miss: return to the slow simulator.
                        consumed_append(value)
                        self.cache.stats.misses_verify += 1
                        self.stats.actions_replayed += replayed
                        self._recover(entry, consumed)
                        return None
                    consumed_append(value)
                    rec = nxt
                else:
                    fn(ctx, S, rec.data)
                    replayed += 1
                    rec = rec.next
        finally:
            ctx.in_fast = False
        self.stats.actions_replayed += replayed
        if rec is None:
            raise SimulationError("recorded action chain ended without an end marker")
        return rec

    def _fast_step_packed(
        self, entry: CacheEntry, budget: int
    ) -> tuple[EndRecord | None, int]:
        """Replay through the flat-packed streams: an index-threaded,
        bytecode-style loop over the parallel arrays — no per-record
        attribute dispatch, no successor-pointer chasing, every hot name
        a local.  Slot kinds decode from the sign of the action number
        (>= 0 plain, ENDMARK end, else ``~num`` verify).

        Runs up to ``budget`` completed steps, following likely-next
        links across step boundaries while they keep holding (the
        driver passes budget 1 when the trace tier or the profiler
        needs per-step control).  Returns ``(end, steps_done)``; end is
        None when a verify miss ended the run — the missed step has
        already recovered through the slow engine and is not counted in
        ``steps_done``.
        """
        if self.action_profile is not None:
            return self._fast_step_packed_profiled(entry)
        ctx = self.ctx
        S = ctx.S
        fns = self._action_fns
        _freeze = freeze
        cache = self.cache
        cstats = cache.stats
        gen = cache.gen
        generation = cache.generation
        init_slot = self.compiled.init_slot
        endmark = ENDMARK
        steps_done = 0
        replayed = 0
        links = 0
        end: EndRecord | None = None
        ctx.in_fast = True
        try:
            while True:
                chain = entry.packed
                nums = chain.knums
                if nums is None:
                    # First replay of an mmap-loaded chain: resolve its
                    # per-process view now (lazily, so unused snapshot
                    # entries stay zero-cost).
                    build_replay_view(chain)
                    nums = chain.knums
                datavals = chain.datavals
                sux = chain.sux
                consumed: list = []
                i = 0
                while True:
                    num = nums[i]
                    if num >= 0:
                        fns[num](ctx, S, datavals[i])
                        replayed += 1
                        i += 1
                        continue
                    if num != endmark:
                        value = _freeze(fns[~num](ctx, S, datavals[i]))
                        replayed += 1
                        consumed.append(value)
                        sx = sux[i]
                        if sx.__class__ is dict:
                            j = sx.get(value)
                            if j is not None:
                                i = j
                                continue
                        elif sx == value:
                            i += 1
                            continue
                        # Action cache miss: back to the slow simulator.
                        cstats.misses_verify += 1
                        self.stats.actions_replayed += replayed
                        self._recover(entry, consumed)
                        return None, steps_done
                    end = sux[i]
                    steps_done += 1
                    break
                if steps_done >= budget or ctx.halted:
                    break
                cached = end.likely_next
                if cached is None or cached[0] is not S[init_slot]:
                    break
                nxt = cached[1]
                if nxt.generation != generation or nxt.packed is None:
                    break
                entry = nxt
                entry.stamp = gen
                links += 1
        finally:
            ctx.in_fast = False
            if links:
                cstats.lookups += links
                cstats.hits += links
        self.stats.actions_replayed += replayed
        return end, steps_done

    def _fast_step_packed_profiled(
        self, entry: CacheEntry
    ) -> tuple[EndRecord | None, int]:
        """Single-step packed replay with per-action profile counting.

        Profiling forces budget-1 dispatch (the driver needs per-step
        control), so this variant skips the chaining machinery and the
        hot loop above stays free of per-slot profile checks."""
        ctx = self.ctx
        S = ctx.S
        fns = self._action_fns
        _freeze = freeze
        prof = self.action_profile
        endmark = ENDMARK
        replayed = 0
        chain = entry.packed
        nums = chain.knums
        if nums is None:
            build_replay_view(chain)
            nums = chain.knums
        datavals = chain.datavals
        sux = chain.sux
        consumed: list = []
        i = 0
        ctx.in_fast = True
        try:
            while True:
                num = nums[i]
                if num >= 0:
                    prof[num] += 1
                    fns[num](ctx, S, datavals[i])
                    replayed += 1
                    i += 1
                    continue
                if num != endmark:
                    num = ~num
                    prof[num] += 1
                    value = _freeze(fns[num](ctx, S, datavals[i]))
                    replayed += 1
                    consumed.append(value)
                    sx = sux[i]
                    if sx.__class__ is dict:
                        j = sx.get(value)
                        if j is not None:
                            i = j
                            continue
                    elif sx == value:
                        i += 1
                        continue
                    self.cache.stats.misses_verify += 1
                    self.stats.actions_replayed += replayed
                    self._recover(entry, consumed)
                    return None, 0
                end = sux[i]
                break
        finally:
            ctx.in_fast = False
        self.stats.actions_replayed += replayed
        return end, 1

    def _recover(self, entry: CacheEntry, results: list) -> None:
        # Recovery appends a fresh successor chain to a verify record of
        # this entry, so any compiled trace whose comparison ladder was
        # specialized on the entry's old successor set is now stale.
        if self.traces is not None:
            self.traces.invalidate_for(entry)
        # The Memoizer grows mutable record trees; a flat-packed entry
        # is unpacked here (lazily, misses only) and repacked by
        # ``end_step`` once the new successor chain is recorded.
        if entry.packed is not None:
            self.cache.unpack_entry(entry)
        self.ctx.in_fast = False
        M = self.memoizer
        M.begin_recovery(entry, results)
        args = [thaw(v) for v in entry.key]
        self.compiled.slow_main(self.ctx, M, *args)
        M.end_step()

    # -- reporting --------------------------------------------------------

    def fast_forward_fraction(self) -> float:
        """Fraction of retired instructions simulated by the fast engine
        (the paper's Table 1 metric)."""
        if self.ctx.retired_total == 0:
            return 0.0
        return self.ctx.retired_fast / self.ctx.retired_total


class PlainEngine:
    """Driver for the non-memoized build: the complete simulator only,
    with no recording machinery at all (paper §6.2: "only the slow
    simulator was generated, with no extra code for fast-forwarding")."""

    def __init__(self, compiled: CompiledSimulator, ctx: SimContext):
        if compiled.plain_main is None:
            raise SimulationError("simulator was compiled without a plain build")
        self.compiled = compiled
        self.ctx = ctx
        self.stats = RunStats()

    def next_key(self) -> tuple:
        value = freeze(self.ctx.S[self.compiled.init_slot])
        if self.compiled.param_count > 1:
            return value
        return (value,)

    def run(self, max_steps: int | None = None) -> RunStats:
        ctx = self.ctx
        steps = 0
        while not ctx.halted and (max_steps is None or steps < max_steps):
            key = self.next_key()
            args = [thaw(v) for v in key]
            self.compiled.plain_main(ctx, *args)
            steps += 1
            self.stats.steps_total += 1
            self.stats.steps_slow += 1
        return self.stats
