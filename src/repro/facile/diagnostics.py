"""Batched diagnostics for the Facile compiler.

The front half of the compiler historically raised the *first*
:class:`SemanticError` it found.  This module is the collect-many layer
that replaced that: checkers emit :class:`Diagnostic` objects into a
:class:`DiagnosticSink`, every diagnostic carries a stable ``FAC0xx``
code, a severity, and a real :class:`SourceSpan`, and the sink decides
at the end whether to raise (library mode, backwards compatible) or to
hand the whole batch to a report (``repro check``).

Severity model
--------------

``error``
    The program violates the language rules or the paper's soundness
    requirements (§3.2 restrictions, §4 dynamic result tests).  Errors
    cannot be suppressed and make ``repro check`` exit 1.
``warning``
    The program compiles but something is suspicious (dead code,
    shadowed pattern arms, predicted cache blowup).  Warnings become
    errors under ``--werror``.
``info``
    Observations that are usually idiomatic (write-only instrumentation
    globals read by the host).

Suppression comments
--------------------

Warnings and infos can be silenced from the source text::

    x = x;                  // fac: disable=FAC105
    // fac: disable-next-line=FAC101
    val y = maybe_unset;
    // fac: disable-file=FAC105,FAC110

A ``disable`` comment that has the whole line to itself behaves like
``disable-next-line``.  ``all`` is accepted as a code.  Errors are never
suppressible: a suppressed error would silently produce an unsound
simulator.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .source import SemanticError, SourceBuffer, SourceSpan, UNKNOWN_SPAN

ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITY_ORDER = {ERROR: 0, WARNING: 1, INFO: 2}


@dataclass(frozen=True)
class CodeInfo:
    """Registry entry for one diagnostic code."""

    code: str
    severity: str
    title: str


def _registry(entries: list[tuple[str, str, str]]) -> dict[str, CodeInfo]:
    table: dict[str, CodeInfo] = {}
    for code, severity, title in entries:
        if code in table:
            raise ValueError(f"duplicate diagnostic code {code}")
        table[code] = CodeInfo(code, severity, title)
    return table


#: Every diagnostic the compiler and the analysis passes can produce.
#: FAC0xx: front-end errors.  FAC1xx: flow/liveness lints.  FAC2xx: the
#: BTA-soundness audit.  FAC3xx: the cache-blowup predictor.  FAC4xx:
#: the replay-IR verifier and lowerability lint.  FAC5xx: the uarch
#: module-protocol conformance audit.
CODES: dict[str, CodeInfo] = _registry([
    ("FAC001", ERROR, "malformed lexeme"),
    ("FAC002", ERROR, "syntax error"),
    ("FAC010", ERROR, "unresolved name"),
    ("FAC011", ERROR, "duplicate declaration"),
    ("FAC012", ERROR, "declaration shadows a built-in or token field"),
    ("FAC013", ERROR, "arity mismatch"),
    ("FAC014", ERROR, "unknown attribute"),
    ("FAC015", ERROR, "recursion is not allowed"),
    ("FAC016", ERROR, "break/continue outside a loop"),
    ("FAC017", ERROR, "invalid assignment"),
    ("FAC018", ERROR, "ill-formed pattern"),
    ("FAC019", ERROR, "missing 'main' step function"),
    ("FAC030", ERROR, "unsupported or internal construct"),
    ("FAC101", WARNING, "use before initialization"),
    ("FAC102", WARNING, "dead function"),
    ("FAC103", WARNING, "unreachable sem"),
    ("FAC104", WARNING, "unused global"),
    ("FAC105", INFO, "write-only global"),
    ("FAC110", WARNING, "unreachable pattern or pat arm"),
    ("FAC111", WARNING, "overlapping pat arms"),
    ("FAC200", ERROR, "binding-time division mismatch (audit)"),
    ("FAC201", ERROR, "dynamic value reaches the rt-static step key"),
    ("FAC202", WARNING, "dynamic-steered control flow without an explicit result test"),
    ("FAC203", ERROR, "dynamic-steered control flow left unpinned after insertion"),
    ("FAC301", WARNING, "unbounded-domain rt-static key component"),
    ("FAC302", WARNING, "rt-static loop trip count depends on the key"),
    ("FAC401", ERROR, "replay-IR stack discipline violation"),
    ("FAC402", ERROR, "malformed replay-IR bytecode"),
    ("FAC403", ERROR, "replay-IR operand-kind violation"),
    ("FAC404", ERROR, "replay-IR operand or index out of range"),
    ("FAC405", WARNING, "provably divergent 64-bit semantics between backends"),
    ("FAC410", INFO, "action body stays on the Python replay backend"),
    ("FAC411", INFO, "extern stays on the Python callback path"),
    ("FAC501", WARNING, "uarch model array state missing from state_arrays()"),
    ("FAC502", WARNING, "uarch model keeps mutable state outside the protocol"),
    ("FAC503", WARNING, "uarch config_key() misses a behavior-changing parameter"),
    ("FAC504", WARNING, "uarch module-protocol surface is malformed"),
])

#: One short illustrative trigger per code, for docs/DIAGNOSTICS.md.
CODE_EXAMPLES: dict[str, str] = {
    "FAC001": "val x = 0q7;  // no such integer literal",
    "FAC002": "fun main( { }",
    "FAC010": "fun main(pc) { init = nope; }",
    "FAC011": "val x; val x;",
    "FAC012": "fun popcount(v) { }",
    "FAC013": "fun f(a, b) { } fun main(pc) { f(1); }",
    "FAC014": "val y = token ? no_such_field;",
    "FAC015": "fun f(n) { return f(n); }",
    "FAC016": "fun main(pc) { break; }",
    "FAC017": "fun main(pc) { 3 = pc; }",
    "FAC018": "pat p = 1;  // pattern must constrain token fields",
    "FAC019": "val init;  // no 'main' step function",
    "FAC030": "internal or unsupported construct reached the back end",
    "FAC101": "val x; if (pc) { x = 1; } val y = x;",
    "FAC102": "fun never_called() { }",
    "FAC103": "sem after an unconditional branch",
    "FAC104": "val unused_global;",
    "FAC105": "val stat; fun main(pc) { stat = stat + 1; init = pc; }",
    "FAC110": "pat a = op==1; pat also_a = op==1;  // second arm dead",
    "FAC111": "pat wide = op>0; pat narrow = op==3;",
    "FAC200": "audit found a dynamic value in an rt-static position",
    "FAC201": "init = read8(addr);  // dynamic value reaches the key",
    "FAC202": "if (read8(pc)) { cycles = cycles + 1; }",
    "FAC203": "insertion left a dynamic branch unpinned (internal audit)",
    "FAC301": "init = init + 4;  // key never revisits a value",
    "FAC302": "while (i < key_param) { ... }  // per-key unrolling",
    "FAC401": "bytecode END reached with values still on the stack",
    "FAC402": "jump target 7 misaligned or out of range",
    "FAC403": "object placeholder used in computation",
    "FAC404": "slot index 91 outside [0, 64)",
    "FAC405": "x << 64  // kernel raises E_SHIFT, Python keeps shifting",
    "FAC410": "log_value(pc);  // host-object traffic, chain stays Python",
    "FAC411": "extern bound to a model the native registry cannot match",
    "FAC501": "self.table = array('q', ...) not listed in state_arrays()",
    "FAC502": "self.history = []  # mutable list outside the protocol",
    "FAC503": "config_key() ignores the 'entries' constructor parameter",
    "FAC504": "state_arrays() returned a list, not a name -> array dict",
}


@dataclass(frozen=True)
class Note:
    """Secondary location or explanation attached to a diagnostic."""

    message: str
    span: SourceSpan | None = None


@dataclass
class Diagnostic:
    """One batched finding: code, severity, message, primary span, notes."""

    code: str
    severity: str
    message: str
    span: SourceSpan = UNKNOWN_SPAN
    notes: tuple[Note, ...] = ()

    def render(self, buffer: SourceBuffer | None = None) -> str:
        """Multi-line human rendering with caret blocks when possible."""
        lines = [f"{self.span}: {self.severity}: {self.message} [{self.code}]"]
        if buffer is not None:
            block = self.span.caret_block(buffer)
            if block:
                lines.append(block)
        for note in self.notes:
            where = f"{note.span}: " if note.span is not None and note.span.is_known else ""
            lines.append(f"    {where}note: {note.message}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        out = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "file": self.span.filename,
            "line": self.span.line,
            "column": self.span.column,
            "span": [self.span.start, self.span.end],
        }
        if self.notes:
            out["notes"] = [
                {
                    "message": n.message,
                    **(
                        {"file": n.span.filename, "line": n.span.line, "column": n.span.column}
                        if n.span is not None and n.span.is_known
                        else {}
                    ),
                }
                for n in self.notes
            ]
        return out


class DiagnosticError(SemanticError):
    """Raised when a sink holding one or more errors is checkpointed.

    Subclasses :class:`SemanticError` so every existing caller and test
    that catches ``SemanticError`` keeps working; ``str()`` contains the
    rendered message of *every* collected error, so ``pytest.raises(...,
    match=...)`` matches regardless of which error came first.
    """

    def __init__(self, diagnostics: list[Diagnostic]):
        errors = [d for d in diagnostics if d.severity == ERROR]
        if not errors:  # defensive: checkpoint only raises with errors
            errors = list(diagnostics)
        primary = errors[0]
        if len(errors) == 1:
            summary = f"{primary.span}: {primary.message}"
        else:
            body = "\n".join(f"{d.span}: {d.message} [{d.code}]" for d in errors)
            summary = f"{len(errors)} errors:\n{body}"
        Exception.__init__(self, summary)
        self.message = primary.message
        self.span = primary.span
        self.code = primary.code
        self.diagnostics = list(diagnostics)


_SUPPRESS_RE = re.compile(
    r"fac:\s*(disable(?:-next-line|-file)?)\s*=\s*([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


def scan_suppressions(text: str) -> tuple[set[str], dict[int, set[str]]]:
    """Collect ``fac: disable`` directives from comments in `text`.

    Returns ``(file_wide_codes, {line: codes})``.  Codes are upper-cased;
    ``all`` becomes ``ALL``.  Directives are honoured only inside ``//``
    or ``/*`` comments so the word "fac:" in a string literal is inert.
    """
    file_wide: set[str] = set()
    by_line: dict[int, set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        slash = line.find("//")
        block = line.find("/*")
        comment_at = min(p for p in (slash, block) if p >= 0) if max(slash, block) >= 0 else -1
        if comment_at < 0:
            continue
        m = _SUPPRESS_RE.search(line, comment_at)
        if m is None:
            continue
        kind = m.group(1)
        codes = {c.strip().upper() for c in m.group(2).split(",") if c.strip()}
        if kind == "disable-file":
            file_wide |= codes
        elif kind == "disable-next-line":
            by_line.setdefault(lineno + 1, set()).update(codes)
        else:  # disable: this line; a comment-only line guards the next one
            target = lineno + 1 if line[:comment_at].strip() == "" else lineno
            by_line.setdefault(target, set()).update(codes)
    return file_wide, by_line


@dataclass
class DiagnosticSink:
    """Accumulates diagnostics; optionally applies source suppressions."""

    buffer: SourceBuffer | None = None
    max_diagnostics: int = 500
    diagnostics: list[Diagnostic] = field(default_factory=list)
    suppressed: list[Diagnostic] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.buffer is not None:
            self._file_off, self._line_off = scan_suppressions(self.buffer.text)
        else:
            self._file_off, self._line_off = set(), {}

    # -- emission -------------------------------------------------------

    def emit(
        self,
        code: str,
        message: str,
        span: SourceSpan = UNKNOWN_SPAN,
        severity: str | None = None,
        notes: tuple[Note, ...] | list[Note] = (),
    ) -> Diagnostic | None:
        """Record one diagnostic; returns None if it was suppressed."""
        info = CODES.get(code)
        if info is None:
            raise KeyError(f"unknown diagnostic code {code!r}")
        diag = Diagnostic(code, severity or info.severity, message, span, tuple(notes))
        if self._is_suppressed(diag):
            self.suppressed.append(diag)
            return None
        if len(self.diagnostics) < self.max_diagnostics:
            self.diagnostics.append(diag)
        return diag

    def _is_suppressed(self, diag: Diagnostic) -> bool:
        if diag.severity == ERROR:
            return False  # errors are never suppressible
        if diag.code in self._file_off or "ALL" in self._file_off:
            return True
        line_codes = self._line_off.get(diag.span.line)
        return bool(line_codes) and (diag.code in line_codes or "ALL" in line_codes)

    def absorb(self, exc: "Exception") -> Diagnostic | None:
        """Convert a raised :class:`FacileError` into a diagnostic."""
        code = getattr(exc, "code", "FAC030")
        span = getattr(exc, "span", UNKNOWN_SPAN)
        message = getattr(exc, "message", str(exc))
        return self.emit(code if code in CODES else "FAC030", message, span)

    # -- queries --------------------------------------------------------

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity == ERROR for d in self.diagnostics)

    def counts(self) -> dict[str, int]:
        out = {ERROR: 0, WARNING: 0, INFO: 0}
        for d in self.diagnostics:
            out[d.severity] = out.get(d.severity, 0) + 1
        return out

    def sorted(self) -> list[Diagnostic]:
        """Diagnostics in (severity, source position) order."""
        return sorted(
            self.diagnostics,
            key=lambda d: (d.span.filename, d.span.start, _SEVERITY_ORDER.get(d.severity, 3), d.code),
        )

    # -- the raise-at-end compatibility shim ----------------------------

    def checkpoint(self) -> None:
        """Raise a :class:`DiagnosticError` if any errors were collected.

        This is what keeps ``analyze()``/``build_pattern_table()``
        backwards compatible: callers that never pass a sink still get a
        ``SemanticError``, now summarizing *every* error at once.
        """
        if self.has_errors:
            raise DiagnosticError(self.diagnostics)


# -- the generated code index (docs/DIAGNOSTICS.md) -------------------------

_RANGE_TITLES = [
    ("FAC0", "Front-end errors"),
    ("FAC1", "Flow and liveness lints"),
    ("FAC2", "BTA-soundness audit"),
    ("FAC3", "Cache-blowup predictor"),
    ("FAC4", "Replay-IR verifier and lowerability lint"),
    ("FAC5", "Uarch module-protocol conformance"),
]


def render_code_index() -> str:
    """The full FACnnn index as markdown, generated from the registry.

    ``docs/DIAGNOSTICS.md`` is this text verbatim; CI regenerates it and
    fails when the checked-in copy is stale (``python -m
    repro.facile.diagnostics --check docs/DIAGNOSTICS.md``).
    """
    lines = [
        "# Diagnostic codes",
        "",
        "<!-- GENERATED FILE - do not edit by hand.",
        "     Regenerate with:",
        "       python -m repro.facile.diagnostics --write docs/DIAGNOSTICS.md -->",
        "",
        "Every diagnostic `repro check` and the compiler can emit, generated",
        "from the registry in `src/repro/facile/diagnostics.py`.  Errors are",
        "never suppressible and exit 1; warnings exit 1 under `--werror`;",
        "infos never affect the exit code.  Warnings and infos can be",
        "silenced in source with `// fac: disable=CODE` comments.",
        "",
    ]
    for prefix, title in _RANGE_TITLES:
        codes = [c for c in sorted(CODES) if c.startswith(prefix)]
        if not codes:
            continue
        lines += [f"## {title} ({prefix}xx)", ""]
        lines += ["| code | severity | description | example |",
                  "|------|----------|-------------|---------|"]
        for code in codes:
            info = CODES[code]
            example = CODE_EXAMPLES.get(code, "")
            example = example.replace("|", "\\|")
            lines.append(
                f"| {code} | {info.severity} | {info.title} | `{example}` |"
            )
        lines.append("")
    return "\n".join(lines)


def _main(argv: list[str] | None = None) -> int:  # pragma: no cover - CLI
    import argparse
    import sys

    ap = argparse.ArgumentParser(
        prog="python -m repro.facile.diagnostics",
        description="render or freshness-check the FACnnn code index",
    )
    ap.add_argument("--write", metavar="PATH",
                    help="write the generated index to PATH")
    ap.add_argument("--check", metavar="PATH",
                    help="exit 1 if PATH differs from the generated index")
    args = ap.parse_args(argv)
    text = render_code_index() + "\n"
    if args.write:
        with open(args.write, "w") as fh:
            fh.write(text)
        return 0
    if args.check:
        try:
            with open(args.check) as fh:
                on_disk = fh.read()
        except OSError as exc:
            print(f"diagnostics index: cannot read {args.check}: {exc}",
                  file=sys.stderr)
            return 1
        if on_disk != text:
            print(
                f"diagnostics index: {args.check} is stale — regenerate "
                "with python -m repro.facile.diagnostics --write "
                f"{args.check}",
                file=sys.stderr,
            )
            return 1
        return 0
    sys.stdout.write(text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(_main())
